// Fig 14: bottleneck analysis — the predicted job completion time if each resource
// were infinitely fast, as a fraction of the actual runtime. This replicates the
// blocked-time analysis of Ousterhout et al. (NSDI'15) [25] without any added
// instrumentation: monotask runtimes are the instrumentation.
//
// Paper's findings, replicated: CPU is the bottleneck for most BDB queries
// (optimizing CPU helps most), improving disk speed reduces some queries' runtime,
// improving network speed has little effect, and multi-stage queries like 3c benefit
// from optimizing multiple resources because different stages have different
// bottlenecks.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/bdb.h"

int main() {
  std::puts("=== Fig 14: runtime with infinitely fast disk / network / CPU ===");
  std::puts("(fraction of actual runtime; smaller = that resource mattered more)");
  std::puts("Paper: CPU bottlenecks most queries; network barely matters\n");

  const auto cluster = monoload::BdbClusterConfig();
  monoutil::TablePrinter table({"query", "actual", "no-disk", "no-network",
                                "perfect-cpu", "bottleneck"});
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto result = monobench::RunMonotasks(cluster, make_job);
    const monomodel::MonotasksModel model(
        result, monomodel::HardwareProfile::FromCluster(cluster));
    const double actual = result.duration().seconds();
    auto fraction = [&](monomodel::Resource resource) {
      return model.PredictWithInfinitelyFast(resource) / actual;
    };
    table.AddRow({monoload::BdbQueryName(query), monoutil::FormatSeconds(monoutil::Seconds(actual)),
                  monoutil::FormatDouble(fraction(monomodel::Resource::kDisk), 2),
                  monoutil::FormatDouble(fraction(monomodel::Resource::kNetwork), 2),
                  monoutil::FormatDouble(fraction(monomodel::Resource::kCpu), 2),
                  monomodel::ResourceName(model.JobBottleneck())});
  }
  table.Print(std::cout);
  return 0;
}
