// Ablation (§3.3, flash scheduler): outstanding monotasks per SSD.
//
// The paper: "for the flash drives we used, we found that using four outstanding
// monotasks achieved nearly the maximum throughput (results omitted for brevity)".
// This bench un-omits the result on the simulated SSDs: a disk-heavy sort sweeps the
// per-SSD outstanding-monotask count.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Ablation: outstanding monotasks per SSD (flash scheduler) ===");
  std::puts("Paper (§3.3): ~4 outstanding reaches near-peak flash throughput\n");

  const auto cluster = monoload::SsdClusterConfig(5, 1);
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(150);
  params.values_per_key = 200;  // Disk-heavy so the SSDs are the bottleneck.
  params.num_map_tasks = 600;
  params.num_reduce_tasks = 600;
  auto make_job = [&params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };

  monoutil::TablePrinter table({"outstanding/SSD", "runtime", "vs best"});
  double best = 1e18;
  std::vector<std::pair<int, double>> rows;
  for (int outstanding : {1, 2, 3, 4, 6, 8}) {
    monosim::MonoConfig config;
    config.ssd_outstanding = outstanding;
    const auto result = monobench::RunMonotasks(cluster, make_job, config);
    rows.emplace_back(outstanding, result.duration().seconds());
    best = std::min(best, result.duration().seconds());
  }
  for (const auto& [outstanding, seconds] : rows) {
    table.AddRow({std::to_string(outstanding), monoutil::FormatSeconds(monoutil::Seconds(seconds)),
                  monoutil::FormatDouble(seconds / best, 2) + "x"});
  }
  table.Print(std::cout);
  return 0;
}
