// Fig 17: even when Spark's resource use *can* be measured (job running in
// isolation, device counters sampled at stage boundaries), a model built from those
// measurements mispredicts the 2 HDD -> 1 HDD change by 20-30% for most queries and
// by over 50% for 1c.
//
// The errors have structural causes that monotasks eliminate: measured disk rates
// embed contention (which changes when a disk is removed), buffer-cache writes are
// partly invisible to the devices during the job (1c), and deserialization time
// cannot be separated at all.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/spark_models.h"
#include "src/workloads/bdb.h"

int main() {
  std::puts("=== Fig 17: model from Spark's measured usage, 2 HDD -> 1 HDD ===");
  std::puts("Paper: 20-30% error for most queries, >50% for 1c\n");

  const auto two_disk = monoload::BdbClusterConfig();
  auto one_disk = two_disk;
  one_disk.machine.disks.resize(1);

  monoutil::TablePrinter table({"query", "observed 2-disk", "predicted 1-disk",
                                "actual 1-disk", "error"});
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto baseline = monobench::RunSpark(two_disk, make_job);
    const monomodel::MonotasksModel model = monomodel::ModelFromMeasuredUsage(
        baseline, monomodel::HardwareProfile::FromCluster(two_disk));
    const double predicted =
        model.PredictJobSeconds(model.baseline().WithDisksPerMachine(1));
    const auto actual = monobench::RunSpark(one_disk, make_job);
    table.AddRow({monoload::BdbQueryName(query),
                  monoutil::FormatSeconds(baseline.duration()),
                  monoutil::FormatSeconds(monoutil::Seconds(predicted)),
                  monoutil::FormatSeconds(actual.duration()),
                  monoutil::FormatDouble(
                      100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
                      "%"});
  }
  table.Print(std::cout);
  return 0;
}
