// Fig 12: predicting the effect of removing one of the two disks on each machine,
// for every Big Data Benchmark query, using the monotasks model.
//
// Paper's result: predictions within 9% of the actual runtime for all queries except
// 3c, which is overestimated by 28% — its large shuffle stage uses CPU, disk and
// network about equally, so the model's assumption that utilization stays constant
// breaks (MonoSpark drives the now-clearly-bottlenecked single disk to higher
// utilization than the balanced three-way stage achieved).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/bdb.h"

int main() {
  std::puts("=== Fig 12: predict 2 HDDs -> 1 HDD per machine (BDB, MonoSpark) ===");
  std::puts("Paper: error <= 9% for all queries except 3c (28% overestimate)\n");

  const auto two_disk = monoload::BdbClusterConfig();
  auto one_disk = two_disk;
  one_disk.machine.disks.resize(1);

  monoutil::TablePrinter table(
      {"query", "observed 2-disk", "predicted 1-disk", "actual 1-disk", "error"});
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto baseline = monobench::RunMonotasks(two_disk, make_job);
    const monomodel::MonotasksModel model(
        baseline, monomodel::HardwareProfile::FromCluster(two_disk));
    const double predicted =
        model.PredictJobSeconds(model.baseline().WithDisksPerMachine(1));
    const auto actual = monobench::RunMonotasks(one_disk, make_job);
    table.AddRow({monoload::BdbQueryName(query),
                  monoutil::FormatSeconds(baseline.duration()),
                  monoutil::FormatSeconds(monoutil::Seconds(predicted)),
                  monoutil::FormatSeconds(actual.duration()),
                  monoutil::FormatDouble(
                      100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
                      "%"});
  }
  table.Print(std::cout);
  return 0;
}
