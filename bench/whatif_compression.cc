// "Should I store compressed or uncompressed data?" — the second question in the
// paper's introduction, answered with the monotasks model and validated by actually
// running both configurations.
//
// The Big Data Benchmark's inputs are compressed sequence files (Fig 5's setup); a
// scan stage's compute monotasks therefore spend a measurable share of their time
// decompressing, and the model can trade that CPU against the larger reads an
// uncompressed layout would need — per query, from a single instrumented run.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/bdb.h"

namespace {

// Rebuilds a query with uncompressed input: reads grow by the compression ratio,
// CPU loses the decompression share. Used as the "actual" configuration.
monosim::JobSpec UncompressedVariant(monosim::DfsSim* dfs, monoload::BdbQuery query) {
  monosim::JobSpec job = monoload::MakeBdbQueryJob(dfs, query);
  for (auto& stage : job.stages) {
    if (stage.input != monosim::InputSource::kDfs ||
        stage.input_compression_ratio <= 1.0) {
      continue;
    }
    const std::string expanded = stage.input_file + ".uncompressed";
    if (!dfs->HasFile(expanded)) {
      const auto& original = dfs->GetFile(stage.input_file);
      dfs->CreateFileWithBlocks(
          expanded,
          monoutil::Bytes(static_cast<int64_t>(
              static_cast<double>(original.total_bytes().count()) *
              stage.input_compression_ratio)),
          static_cast<int>(original.blocks.size()));
    }
    stage.input_file = expanded;
    stage.cpu_seconds_per_task *= 1.0 - stage.decompress_fraction;
    stage.deser_fraction /= 1.0 - stage.decompress_fraction;
    stage.decompress_fraction = 0.0;
    stage.input_compression_ratio = 1.0;
  }
  return job;
}

}  // namespace

int main() {
  std::puts("=== What-if: store the BDB inputs uncompressed? (paper intro, Q2) ===");
  std::puts("Prediction from one compressed-input run vs. actually running it\n");

  const auto cluster = monoload::BdbClusterConfig();
  monoutil::TablePrinter table({"query", "compressed (observed)",
                                "uncompressed (predicted)", "uncompressed (actual)",
                                "error", "verdict"});
  for (monoload::BdbQuery query :
       {monoload::BdbQuery::k1a, monoload::BdbQuery::k1c, monoload::BdbQuery::k2a,
        monoload::BdbQuery::k2c, monoload::BdbQuery::k4}) {
    auto compressed = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto baseline = monobench::RunMonotasks(cluster, compressed);
    const monomodel::MonotasksModel model(
        baseline, monomodel::HardwareProfile::FromCluster(cluster));
    monomodel::SoftwareChanges software;
    software.input_stored_uncompressed = true;
    const double predicted = model.PredictJobSeconds(model.baseline(), software);

    auto uncompressed = [query](monosim::SimEnvironment* env) {
      return UncompressedVariant(&env->dfs(), query);
    };
    const auto actual = monobench::RunMonotasks(cluster, uncompressed);

    table.AddRow({monoload::BdbQueryName(query),
                  monoutil::FormatSeconds(baseline.duration()),
                  monoutil::FormatSeconds(monoutil::Seconds(predicted)),
                  monoutil::FormatSeconds(actual.duration()),
                  monoutil::FormatDouble(
                      100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
                      "%",
                  predicted < baseline.duration().seconds() ? "uncompress" : "keep compressed"});
  }
  table.Print(std::cout);
  return 0;
}
