// Ablation (§3.3, network scheduler): receiver-side outstanding-multitask limit.
//
// The paper chose 4 after "an experimental parameter sweep", balancing two failure
// modes: with 1 outstanding multitask the receiving link idles whenever the single
// multitask waits on one slow remote disk; with too many, no multitask's fetch
// completes early enough to pipeline its compute monotask behind the others'
// network use. This bench reproduces the sweep on a shuffle-heavy workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Ablation: receiver-side outstanding-multitask limit (network) ===");
  std::puts("Paper (§3.3): 4 balances link utilization vs pipelining with compute\n");

  const auto cluster = monoload::SortClusterConfig();
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(200);
  params.values_per_key = 20;
  params.num_map_tasks = 800;
  params.num_reduce_tasks = 800;
  auto make_job = [&params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };

  monoutil::TablePrinter table({"multitask limit", "reduce stage", "total", "vs best"});
  std::vector<std::tuple<int, double, double>> rows;
  double best = 1e18;
  for (int limit : {1, 2, 4, 8, 16}) {
    monosim::MonoConfig config;
    config.network_multitask_limit = limit;
    const auto result = monobench::RunMonotasks(cluster, make_job, config);
    rows.emplace_back(limit, result.stages[1].duration().seconds(),
                      result.duration().seconds());
    best = std::min(best, result.duration().seconds());
  }
  for (const auto& [limit, reduce_seconds, total] : rows) {
    table.AddRow({std::to_string(limit), monoutil::FormatSeconds(monoutil::Seconds(reduce_seconds)),
                  monoutil::FormatSeconds(monoutil::Seconds(total)),
                  monoutil::FormatDouble(total / best, 2) + "x"});
  }
  table.Print(std::cout);
  return 0;
}
