// Fig 16: when two jobs run concurrently, attributing resource use to each job is
// guesswork in Spark but trivial with monotasks.
//
// Two sort jobs (10-value and 50-value, different resource profiles) run at the same
// time. The Spark-style estimate divides each machine-level measurement across jobs
// by their share of task-slot-seconds in the window — wrong whenever the jobs'
// resource profiles differ. Monotask service times attribute exactly.
//
// Paper's result: Spark-style attribution has median error 17% and 75th-percentile
// error 68%; monotask-based attribution is consistently below 1%.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace {

using monosim::JobResult;
using monosim::StageResult;

monoload::SortParams ParamsFor(int values, const std::string& name) {
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(150);
  params.values_per_key = values;
  params.num_map_tasks = 480;
  params.num_reduce_tasks = 480;
  params.name_prefix = name;
  params.seed = 100 + static_cast<uint64_t>(values);
  return params;
}

// Overlap, in seconds, of [a0, a1] and [b0, b1].
double Overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

// Task-slot-seconds that `stage` contributes to the window [from, to], assuming its
// task time is spread uniformly across its own duration.
double TaskSecondsIn(const StageResult& stage, double from, double to) {
  if (stage.duration().seconds() <= 0) {
    return 0.0;
  }
  return stage.task_seconds *
         Overlap(stage.start.seconds(), stage.end.seconds(), from, to) /
         stage.duration().seconds();
}

}  // namespace

int main() {
  std::puts("=== Fig 16: per-job resource attribution with two concurrent jobs ===");
  std::puts("Paper: Spark-style estimate median 17% / p75 68% error; monotasks <1%\n");

  const auto cluster = monoload::SortClusterConfig();

  // ---- Spark: slot-share attribution vs ground truth ----
  monosim::SimEnvironment env(cluster);
  monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&spark);
  JobResult job_a;
  JobResult job_b;
  int done = 0;
  env.driver().SubmitJob(
      monoload::MakeSortJob(&env.dfs(), ParamsFor(10, "sort10")),
      [&](JobResult r) { job_a = std::move(r); ++done; });
  env.driver().SubmitJob(
      monoload::MakeSortJob(&env.dfs(), ParamsFor(50, "sort50")),
      [&](JobResult r) { job_b = std::move(r); ++done; });
  env.sim().Run();
  if (done != 2) {
    std::fprintf(stderr, "concurrent jobs did not finish\n");
    return 1;
  }

  std::vector<double> spark_errors;
  auto estimate_errors = [&](const JobResult& mine, const JobResult& other) {
    for (const auto& stage : mine.stages) {
      // The measurement over this stage's window mixes both jobs' work; scale it by
      // this stage's share of the slot-seconds in the window, as a Spark user would.
      double my_slots =
          TaskSecondsIn(stage, stage.start.seconds(), stage.end.seconds());
      double total_slots = my_slots;
      for (const auto& other_stage : mine.stages) {
        if (&other_stage != &stage) {
          total_slots +=
              TaskSecondsIn(other_stage, stage.start.seconds(), stage.end.seconds());
        }
      }
      for (const auto& other_stage : other.stages) {
        total_slots +=
            TaskSecondsIn(other_stage, stage.start.seconds(), stage.end.seconds());
      }
      if (total_slots <= 0) {
        continue;
      }
      const double share = my_slots / total_slots;
      const auto& measured = stage.measured;
      const auto& truth = stage.usage;
      spark_errors.push_back(
          monoutil::RelativeError(measured.cpu_seconds * share, truth.cpu_seconds));
      const double truth_disk =
          static_cast<double>((truth.disk_read_bytes + truth.disk_write_bytes).count());
      const double est_disk =
          static_cast<double>(
              (measured.disk_read_bytes + measured.disk_write_bytes).count()) *
          share;
      spark_errors.push_back(monoutil::RelativeError(est_disk, truth_disk));
      if (truth.network_bytes > monoutil::Bytes(0)) {
        spark_errors.push_back(monoutil::RelativeError(
            static_cast<double>(measured.network_bytes.count()) * share,
            static_cast<double>(truth.network_bytes.count())));
      }
    }
  };
  estimate_errors(job_a, job_b);
  estimate_errors(job_b, job_a);

  // ---- Monotasks: per-monotask accounting vs ground truth ----
  monosim::SimEnvironment menv(cluster);
  monosim::MonotasksExecutorSim mono(&menv.sim(), &menv.cluster(), &menv.pool(), {});
  menv.AttachExecutor(&mono);
  JobResult mjob_a;
  JobResult mjob_b;
  done = 0;
  menv.driver().SubmitJob(
      monoload::MakeSortJob(&menv.dfs(), ParamsFor(10, "sort10")),
      [&](JobResult r) { mjob_a = std::move(r); ++done; });
  menv.driver().SubmitJob(
      monoload::MakeSortJob(&menv.dfs(), ParamsFor(50, "sort50")),
      [&](JobResult r) { mjob_b = std::move(r); ++done; });
  menv.sim().Run();

  std::vector<double> mono_errors;
  for (const JobResult* job : {&mjob_a, &mjob_b}) {
    for (const auto& stage : job->stages) {
      // Monotask instrumentation *is* the per-job measurement: compute monotask
      // seconds vs the job's true CPU demand (disk/network bytes are per-monotask
      // metadata and match trivially).
      mono_errors.push_back(monoutil::RelativeError(
          stage.monotask_times.compute_seconds, stage.usage.cpu_seconds));
    }
  }

  std::printf("  Spark-style estimate:  median error %5.1f%%   p75 error %5.1f%%   "
              "(%zu samples)\n",
              100 * monoutil::Median(spark_errors),
              100 * monoutil::Percentile(spark_errors, 0.75), spark_errors.size());
  std::printf("  Monotask attribution:  median error %5.2f%%   p75 error %5.2f%%\n",
              100 * monoutil::Median(mono_errors),
              100 * monoutil::Percentile(mono_errors, 0.75));
  return 0;
}
