// Fig 8: sensitivity to the number of tasks, for a job that reads input from disk
// and computes on it, on 20 workers (160 cores).
//
// Paper's result: with one or two waves of tasks Spark is faster (MonoSpark has no
// fine-grained pipelining to hide the disk read behind compute), but by roughly three
// waves MonoSpark's coarse-grained cross-task pipelining has caught up.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/read_compute.h"

int main() {
  std::puts("=== Fig 8: runtime vs number of tasks (read input, then compute) ===");
  std::puts("Paper: Spark wins at 1-2 waves; MonoSpark catches up by ~3 waves\n");

  const auto cluster = monoload::SortClusterConfig();  // 20 workers, 160 cores.
  monoutil::TablePrinter table(
      {"tasks", "waves", "spark", "monospark", "mono/spark"});
  for (int tasks : {160, 320, 480, 960, 1920, 2560}) {
    monoload::ReadComputeParams params;
    params.num_tasks = tasks;
    auto make_job = [&params](monosim::SimEnvironment* env) {
      return monoload::MakeReadComputeJob(&env->dfs(), params);
    };
    const auto spark = monobench::RunSpark(cluster, make_job);
    const auto mono = monobench::RunMonotasks(cluster, make_job);
    table.AddRow({std::to_string(tasks), monoutil::FormatDouble(tasks / 160.0, 1),
                  monoutil::FormatSeconds(spark.duration()),
                  monoutil::FormatSeconds(mono.duration()),
                  monoutil::FormatDouble(mono.duration() / spark.duration(), 2)});
  }
  table.Print(std::cout);
  return 0;
}
