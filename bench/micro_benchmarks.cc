// Google-benchmark microbenchmarks for the hot paths of the simulators and the
// engine's serialization layer. These guard the performance of the tooling itself:
// the figure benches replay hundreds of thousands of events per run, so regressions
// here directly slow experiment turnaround.
#include <benchmark/benchmark.h>

#include "src/api/serde.h"
#include "src/common/rng.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"

namespace {

void BM_EventQueueScheduleAndFire(benchmark::State& state) {
  for (auto _ : state) {
    monosim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(monoutil::Seconds(static_cast<double>(i % 97)),
                     [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndFire)->Arg(1000)->Arg(10000);

void BM_FluidServerChurn(benchmark::State& state) {
  // Continuous arrivals into a processor-sharing server: the inner loop of every
  // device in the cluster simulator.
  for (auto _ : state) {
    monosim::Simulation sim;
    monosim::FluidServer server(&sim, "bench", monosim::HddCapacity(100.0, 0.3));
    int completed = 0;
    std::function<void(int)> submit = [&](int remaining) {
      if (remaining == 0) {
        return;
      }
      server.Submit(10.0, [&, remaining] {
        ++completed;
        submit(remaining - 1);
      });
    };
    for (int lane = 0; lane < 8; ++lane) {
      submit(state.range(0) / 8);
    }
    sim.Run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FluidServerChurn)->Arg(800)->Arg(8000);

void BM_RngNextU64(benchmark::State& state) {
  monoutil::Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.NextU64();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngNextU64);

void BM_SerializeRecords(benchmark::State& state) {
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> records;
  for (int64_t i = 0; i < state.range(0); ++i) {
    records.emplace_back(i, i * 3);
  }
  for (auto _ : state) {
    monotasks::Buffer buffer = monotasks::SerializeVector(records);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_SerializeRecords)->Arg(1000)->Arg(100000);

void BM_DeserializeRecords(benchmark::State& state) {
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> records;
  for (int64_t i = 0; i < state.range(0); ++i) {
    records.emplace_back(i, i * 3);
  }
  const monotasks::Buffer buffer = monotasks::SerializeVector(records);
  for (auto _ : state) {
    auto out = monotasks::DeserializeVector<Record>(buffer);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_DeserializeRecords)->Arg(1000)->Arg(100000);

void BM_SerializeStrings(benchmark::State& state) {
  std::vector<std::string> records;
  for (int i = 0; i < 10000; ++i) {
    records.push_back("record-" + std::to_string(i));
  }
  for (auto _ : state) {
    monotasks::Buffer buffer = monotasks::SerializeVector(records);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_SerializeStrings);

}  // namespace

BENCHMARK_MAIN();
