// Shared helpers for the experiment benches. Each bench binary regenerates one
// figure or table from the paper; these helpers run a job spec under a chosen
// executor on a fresh simulated cluster and return the results.
//
// Determinism contract (DESIGN §10): all bench entropy flows through
// monoutil::Rng seeded from the JobSpec — never std::random_device, rand(), or
// the wall clock (mono_lint enforces this for bench/ sources). The returned
// JobResult carries the run's event-stream digest (JobResult::sim_digest), so a
// bench's output records which schedule produced it.
#ifndef MONOTASKS_BENCH_BENCH_UTIL_H_
#define MONOTASKS_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>

#include "src/common/tracing/telemetry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/simcore/audit.h"

namespace monobench {

// Runs `make_job(env)` under the Spark-baseline executor and returns the result.
// Setting the MONO_SIM_AUDIT environment variable runs the simulation under the
// invariant audit (audit.h) and aborts on any violation. Setting
// MONO_TRACE=<path> records every run in the process into one Chrome-trace file
// written at exit (tracer.h). Setting MONO_TELEMETRY=<path> writes the
// process's aggregated TelemetrySnapshot as JSON at exit (telemetry.h).
inline monosim::JobResult RunSpark(
    const monosim::ClusterConfig& cluster,
    const std::function<monosim::JobSpec(monosim::SimEnvironment*)>& make_job,
    monosim::SparkConfig config = {}, bool trace = false) {
  monotrace::InstallEnvTracerOnce();
  monotrace::InstallEnvTelemetrySinkOnce();
  monosim::EnvScopedAudit audit;
  monosim::SimEnvironment env(cluster);
  if (trace || monotrace::Tracer::current() != nullptr) {
    env.cluster().EnableTrace();
  }
  monosim::SparkExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), config);
  env.AttachExecutor(&executor);
  return env.driver().RunJob(make_job(&env));
}

// Runs `make_job(env)` under the monotasks executor and returns the result.
// MONO_SIM_AUDIT enables the invariant audit, MONO_TRACE the event tracer, and
// MONO_TELEMETRY the exit-time telemetry snapshot, as in RunSpark.
inline monosim::JobResult RunMonotasks(
    const monosim::ClusterConfig& cluster,
    const std::function<monosim::JobSpec(monosim::SimEnvironment*)>& make_job,
    monosim::MonoConfig config = {}, bool trace = false) {
  monotrace::InstallEnvTracerOnce();
  monotrace::InstallEnvTelemetrySinkOnce();
  monosim::EnvScopedAudit audit;
  monosim::SimEnvironment env(cluster);
  if (trace || monotrace::Tracer::current() != nullptr) {
    env.cluster().EnableTrace();
  }
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), config);
  env.AttachExecutor(&executor);
  return env.driver().RunJob(make_job(&env));
}

// True if the bench was invoked with the given flag (e.g. "--ssd").
inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      return true;
    }
  }
  return false;
}

}  // namespace monobench

#endif  // MONOTASKS_BENCH_BENCH_UTIL_H_
