// Trace exporter: writes the raw time series behind the utilization figures as CSV
// files, for plotting with any external tool.
//
// Produces, in the current directory:
//   fig02_spark_utilization.csv   — per-second CPU/disk utilization under Spark
//   fig09_mono_utilization.csv    — the same stage under monotasks
//   mono_queue_lengths.csv        — per-second scheduler queue lengths (§3.1)
//
// Columns adapt to the cluster: one disk column per configured disk. With
// MONO_TRACE=<path> set, the full event trace (spans, counters, queues) is
// additionally written as Chrome-trace JSON at exit — the CSVs are the
// flat-file view, the trace the interactive one.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/tracing/tracer.h"
#include "src/workloads/bdb.h"
#include "src/workloads/sort.h"

namespace {

monoload::SortParams Workload() {
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(60);
  params.values_per_key = 20;
  params.num_map_tasks = 480;
  params.num_reduce_tasks = 480;
  return params;
}

void ExportUtilization(const std::string& path, monosim::SimEnvironment* env,
                       const monosim::StageResult& stage) {
  std::ofstream out(path);
  const auto& machine = env->cluster().machine(0);
  out << "second,cpu";
  for (int d = 0; d < machine.num_disks(); ++d) {
    out << ",disk" << d;
  }
  out << '\n';
  const auto cpu = machine.cpu().rate_trace().SampleWindows(
      stage.start, stage.end, monoutil::Seconds(1.0),
      static_cast<double>(machine.num_cores()));
  std::vector<std::vector<double>> disks;
  for (int d = 0; d < machine.num_disks(); ++d) {
    disks.push_back(machine.disk(d).rate_trace().SampleWindows(
        stage.start, stage.end, monoutil::Seconds(1.0),
        machine.disk(d).nominal_bandwidth().bps()));
  }
  for (size_t i = 0; i < cpu.size(); ++i) {
    out << i << ',' << cpu[i];
    for (const auto& disk : disks) {
      out << ',' << disk[i];
    }
    out << '\n';
  }
  std::printf("  wrote %s (%zu seconds)\n", path.c_str(), cpu.size());
}

}  // namespace

int main() {
  std::puts("=== Exporting raw utilization and queue-length traces as CSV ===\n");
  monotrace::InstallEnvTracerOnce();
  monotrace::InstallEnvTelemetrySinkOnce();
  const auto cluster = monoload::BdbClusterConfig();

  {
    monosim::SimEnvironment env(cluster);
    env.cluster().EnableTrace();
    monosim::SparkConfig config;
    config.chunk_cpu_jitter_cv = 0.6;
    monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), config);
    env.AttachExecutor(&spark);
    auto params = Workload();
    const auto result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
    ExportUtilization("fig02_spark_utilization.csv", &env, result.stages[0]);
  }
  {
    monosim::SimEnvironment env(cluster);
    env.cluster().EnableTrace();
    monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    mono.EnableQueueTraces();
    env.AttachExecutor(&mono);
    auto params = Workload();
    const auto result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
    ExportUtilization("fig09_mono_utilization.csv", &env, result.stages[0]);

    const int num_disks = mono.num_disks(0);
    std::ofstream out("mono_queue_lengths.csv");
    out << "second,cpu_queue";
    for (int d = 0; d < num_disks; ++d) {
      out << ",disk" << d << "_queue";
    }
    out << '\n';
    const auto& map = result.stages[0];
    const auto cpu_queue = mono.cpu_scheduler(0).queue_trace().SampleWindows(
        map.start, map.end, monoutil::Seconds(1.0), 1.0);
    std::vector<std::vector<double>> disk_queues;
    for (int d = 0; d < num_disks; ++d) {
      disk_queues.push_back(mono.disk_scheduler(0, d).queue_trace().SampleWindows(
          map.start, map.end, monoutil::Seconds(1.0), 1.0));
    }
    for (size_t i = 0; i < cpu_queue.size(); ++i) {
      out << i << ',' << cpu_queue[i];
      for (const auto& queue : disk_queues) {
        out << ',' << queue[i];
      }
      out << '\n';
    }
    std::printf("  wrote mono_queue_lengths.csv (%zu seconds)\n", cpu_queue.size());
  }
  return 0;
}
