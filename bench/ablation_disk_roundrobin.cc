// Ablation (§3.3 "Queueing monotasks"): round-robin across DAG phases vs plain FIFO
// in the disk scheduler.
//
// The paper's argument: with FIFO queues, a backlog of disk *writes* traps the disk
// *reads* that feed the CPU, so the machine alternates between all-CPU and all-disk
// phases and both resources idle half the time. Round-robin between reads and writes
// keeps a pipeline of monotasks on every resource.
//
// We compare the stock monotasks executor against one whose disk schedulers use a
// single FIFO queue, on a read-compute-write workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace monosim {

// A monotasks executor variant with FIFO disk queues: implemented by funneling every
// disk monotask into the same phase queue, which degenerates round-robin to FIFO.
class FifoDiskExecutor : public MonotasksExecutorSim {
 public:
  using MonotasksExecutorSim::MonotasksExecutorSim;
};

}  // namespace monosim

int main() {
  std::puts("=== Ablation: disk scheduler round-robin vs FIFO queueing ===");
  std::puts("Paper (§3.3): FIFO lets write backlogs starve reads, idling the CPU\n");

  const auto cluster = monoload::SortClusterConfig();
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(200);
  params.values_per_key = 20;
  params.num_map_tasks = 800;
  params.num_reduce_tasks = 800;
  auto make_job = [&params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };

  monosim::MonoConfig round_robin;
  const auto rr = monobench::RunMonotasks(cluster, make_job, round_robin);

  monosim::MonoConfig fifo;
  fifo.fifo_disk_queues = true;
  const auto ff = monobench::RunMonotasks(cluster, make_job, fifo);

  monoutil::TablePrinter table({"disk queueing", "map", "reduce", "total"});
  table.AddRow({"round-robin (paper)", monoutil::FormatSeconds(rr.stages[0].duration()),
                monoutil::FormatSeconds(rr.stages[1].duration()),
                monoutil::FormatSeconds(rr.duration())});
  table.AddRow({"FIFO", monoutil::FormatSeconds(ff.stages[0].duration()),
                monoutil::FormatSeconds(ff.stages[1].duration()),
                monoutil::FormatSeconds(ff.duration())});
  table.Print(std::cout);
  std::printf("\nFIFO / round-robin runtime: %.2fx\n", ff.duration() / rr.duration());
  return 0;
}
