// Fig 9: utilization during the map stage of Big Data Benchmark query 2c.
//
// Paper's result: MonoSpark's per-resource schedulers keep the bottleneck resource
// (CPU) fully utilized — average utilization over 92% on all machines — while with
// Spark, tasks independently deciding when to use resources leave the CPU at 75-83%,
// stalled behind disk at some instants.
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/bdb.h"

namespace {

struct MapStageCpu {
  double min_util = 1.0;
  double max_util = 0.0;
  double mean_util = 0.0;
  uint64_t digest = 0;  // Run digest: same build + same seed must reproduce it.
};

MapStageCpu Measure(bool monotasks) {
  const auto cluster = monoload::BdbClusterConfig();
  monosim::SimEnvironment env(cluster);
  env.cluster().EnableTrace();
  monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
  monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(monotasks ? static_cast<monosim::ExecutorSim*>(&mono)
                               : static_cast<monosim::ExecutorSim*>(&spark));
  const auto result = env.driver().RunJob(
      monoload::MakeBdbQueryJob(&env.dfs(), monoload::BdbQuery::k2c));
  const auto& map = result.stages[0];

  MapStageCpu out;
  double total = 0.0;
  for (size_t m = 0; m < map.utilization.cpu.size(); ++m) {
    const double util = map.utilization.cpu[m];
    out.min_util = std::min(out.min_util, util);
    out.max_util = std::max(out.max_util, util);
    total += util;
  }
  out.mean_util = total / static_cast<double>(map.utilization.cpu.size());
  out.digest = result.sim_digest;
  return out;
}

}  // namespace

int main() {
  std::puts("=== Fig 9: CPU utilization during the map stage of BDB query 2c ===");
  std::puts("Paper: MonoSpark >92% on all machines; Spark 75-83%\n");

  const MapStageCpu spark = Measure(false);
  const MapStageCpu mono = Measure(true);
  std::printf("  Spark     CPU utilization: mean %.1f%%  (min %.1f%%, max %.1f%%)\n",
              100 * spark.mean_util, 100 * spark.min_util, 100 * spark.max_util);
  std::printf("  MonoSpark CPU utilization: mean %.1f%%  (min %.1f%%, max %.1f%%)\n",
              100 * mono.mean_util, 100 * mono.min_util, 100 * mono.max_util);
  std::printf("  run digests: spark %016llx, mono %016llx\n",
              static_cast<unsigned long long>(spark.digest),
              static_cast<unsigned long long>(mono.digest));
  return 0;
}
