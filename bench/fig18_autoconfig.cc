// Fig 18 (a/b/c): automatic concurrency configuration (§7).
//
// Spark requires the user to configure tasks-per-machine; the best value depends on
// the workload (CPU-bound jobs want >= cores, disk-bound jobs want fewer tasks to
// avoid seek thrash) and even differs between a job's stages. MonoSpark has no such
// knob: each per-resource scheduler runs the right number of monotasks.
//
// Paper's result: MonoSpark performs at least as well as the *best* Spark
// configuration for all three jobs (1 / 25 / 100 longs per value), and up to 30%
// better, because Spark cannot change concurrency between stages and does not
// control disk-access concurrency.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Fig 18: Spark slot-count sweep vs MonoSpark auto-configuration ===");
  std::puts("Paper: MonoSpark >= best Spark config everywhere, up to 30% better\n");

  const auto cluster = monoload::SortClusterConfig();
  const std::vector<int> slot_counts = {2, 4, 8, 16, 32};

  monoutil::TablePrinter table({"values/key", "spark2", "spark4", "spark8", "spark16",
                                "spark32", "monospark", "mono/best-spark"});
  for (int values : {1, 25, 100}) {
    monoload::SortParams params;
    params.total_bytes = monoutil::GiB(200);
    params.values_per_key = values;
    params.num_map_tasks = 2400;
    params.num_reduce_tasks = 2400;
    auto make_job = [&params](monosim::SimEnvironment* env) {
      return monoload::MakeSortJob(&env->dfs(), params);
    };

    std::vector<std::string> row = {std::to_string(values)};
    double best_spark = 1e18;
    for (int slots : slot_counts) {
      monosim::SparkConfig config;
      config.slots_per_machine = slots;
      const auto result = monobench::RunSpark(cluster, make_job, config);
      best_spark = std::min(best_spark, result.duration().seconds());
      row.push_back(monoutil::FormatSeconds(result.duration()));
    }
    const auto mono = monobench::RunMonotasks(cluster, make_job);
    row.push_back(monoutil::FormatSeconds(mono.duration()));
    row.push_back(monoutil::FormatDouble(mono.duration().seconds() / best_spark, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}
