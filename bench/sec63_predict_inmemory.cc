// §6.3: predicting the runtime if input data were stored in memory, deserialized,
// instead of serialized on disk.
//
// This what-if needs two pieces of information only monotasks can provide: the input
// disk-read time (drop it) and the deserialization share of the compute monotasks
// (drop it). The paper predicted a sort job would go from 48.5 s to 38.0 s; the
// actual in-memory runtime was 36.7 s — a 4% error.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== §6.3: predict on-disk input -> in-memory deserialized input ===");
  std::puts("Paper: 48.5 s observed -> 38.0 s predicted vs 36.7 s actual (4% error)\n");

  // A sort small enough that the input fits in cluster memory.
  const auto cluster = monoload::SortClusterConfig();
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(100);
  params.values_per_key = 20;
  params.num_map_tasks = 800;
  params.num_reduce_tasks = 800;

  auto on_disk = [&params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };
  const auto baseline = monobench::RunMonotasks(cluster, on_disk);

  const monomodel::MonotasksModel model(
      baseline, monomodel::HardwareProfile::FromCluster(cluster));
  monomodel::SoftwareChanges software;
  software.input_in_memory_deserialized = true;
  const double predicted = model.PredictJobSeconds(model.baseline(), software);

  monoload::SortParams memory_params = params;
  memory_params.input_in_memory = true;
  auto in_memory = [&memory_params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), memory_params);
  };
  const auto actual = monobench::RunMonotasks(cluster, in_memory);

  std::printf("  observed (on-disk input):      %6.1f s\n",
              baseline.duration().seconds());
  std::printf("  predicted (in-memory input):   %6.1f s\n", predicted);
  std::printf("  actual (in-memory input):      %6.1f s\n",
              actual.duration().seconds());
  std::printf("  prediction error:              %6.1f%%\n",
              100 * monoutil::RelativeError(predicted, actual.duration().seconds()));
  return 0;
}
