// Fig 5 (and the §5.2 SSD follow-up with --ssd): Big Data Benchmark query runtimes
// under Spark (default, lazy buffer-cache writes), Spark with writes flushed to disk,
// and MonoSpark, on 5 workers with 2 HDDs (or 2 SSDs with --ssd).
//
// Paper's result (HDD): MonoSpark is between 21% faster and 5% slower than Spark for
// every query except 1c, which is 55% slower than lazy Spark but only 9% slower than
// Spark-with-flushed-writes (the gap is Spark's invisible buffer-cache writes, §5.3).
// On SSDs MonoSpark is at most 1% slower and up to 24% faster.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/bdb.h"

namespace {

void RunSuite(bool ssd, bool show_stages) {
  std::printf("=== Fig 5: Big Data Benchmark, 5 workers x 2 %s ===\n", ssd ? "SSD" : "HDD");
  std::puts(ssd ? "Paper (§5.2): MonoSpark at most 1% slower, up to 24% faster than Spark\n"
                : "Paper: MonoSpark within -21%..+5% of Spark except 1c (+55% lazy / +9% "
                  "flushed)\n");

  const auto cluster = monoload::BdbClusterConfig(ssd);
  monoutil::TablePrinter table({"query", "spark", "spark-flush", "monospark",
                                "mono/spark", "mono/spark-flush"});
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto spark = monobench::RunSpark(cluster, make_job);
    monosim::SparkConfig flush_config;
    flush_config.write_through = true;
    const auto spark_flush = monobench::RunSpark(cluster, make_job, flush_config);
    const auto mono = monobench::RunMonotasks(cluster, make_job);
    table.AddRow({monoload::BdbQueryName(query), monoutil::FormatSeconds(spark.duration()),
                  monoutil::FormatSeconds(spark_flush.duration()),
                  monoutil::FormatSeconds(mono.duration()),
                  monoutil::FormatDouble(mono.duration() / spark.duration(), 2),
                  monoutil::FormatDouble(mono.duration() / spark_flush.duration(), 2)});
    if (show_stages) {
      for (size_t s = 0; s < spark.stages.size(); ++s) {
        std::printf("    stage %-14s spark %7.1f s   mono %7.1f s\n",
                    spark.stages[s].name.c_str(), spark.stages[s].duration(),
                    mono.stages[s].duration());
      }
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool show_stages = monobench::HasFlag(argc, argv, "--stages");
  if (monobench::HasFlag(argc, argv, "--ssd")) {
    RunSuite(true, show_stages);
    return 0;
  }
  if (monobench::HasFlag(argc, argv, "--hdd")) {
    RunSuite(false, show_stages);
    return 0;
  }
  RunSuite(false, show_stages);
  std::puts("");
  RunSuite(true, show_stages);
  return 0;
}
