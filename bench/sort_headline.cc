// §5.2 "Sort": 600 GB sort on 20 workers with 2 HDDs each.
//
// Paper's result: Spark sorts in 88 min (36 min map + 52 min reduce); MonoSpark in
// 57 min (22 + 35) — faster because the per-disk schedulers avoid seek contention,
// roughly doubling effective disk throughput (§5.4).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Sort headline (paper §5.2): 600 GB sort, 20 workers x 2 HDD ===");
  std::puts("Paper: Spark 88 min (map 36 / reduce 52); MonoSpark 57 min (map 22 / 35)\n");

  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(600);
  params.values_per_key = 20;  // CPU and disk roughly balanced, as the paper tuned it.
  params.num_map_tasks = 960;  // 6 waves over 160 cores.
  params.num_reduce_tasks = 960;

  auto make_job = [&](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };
  const auto cluster = monoload::SortClusterConfig();

  const monosim::JobResult spark = monobench::RunSpark(cluster, make_job);
  const monosim::JobResult mono = monobench::RunMonotasks(cluster, make_job);

  monoutil::TablePrinter table(
      {"system", "map", "reduce", "total", "paper map", "paper reduce", "paper total"});
  table.AddRow({"Spark", monoutil::FormatSeconds(spark.stages[0].duration()),
                monoutil::FormatSeconds(spark.stages[1].duration()),
                monoutil::FormatSeconds(spark.duration()), "36 min", "52 min", "88 min"});
  table.AddRow({"MonoSpark", monoutil::FormatSeconds(mono.stages[0].duration()),
                monoutil::FormatSeconds(mono.stages[1].duration()),
                monoutil::FormatSeconds(mono.duration()), "22 min", "35 min", "57 min"});
  table.Print(std::cout);

  std::printf("\nSpeedup (Spark/MonoSpark): measured %.2fx, paper %.2fx\n",
              spark.duration() / mono.duration(), 88.0 / 57.0);
  return 0;
}
