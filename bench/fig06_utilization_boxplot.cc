// Fig 6: boxplots of the utilization of the most-utilized (bottleneck) and
// second-most-utilized resource on each executor during each Big Data Benchmark
// stage, for Spark and MonoSpark.
//
// Paper's result: multiple resources are well utilized during most stages, and
// MonoSpark's per-resource schedulers utilize resources as well as or better than
// Spark.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/workloads/bdb.h"

namespace {

// Gathers, over all stages x machines, the highest and second-highest resource
// utilization.
void Collect(const monosim::JobResult& result, std::vector<double>* top,
             std::vector<double>* second) {
  for (const auto& stage : result.stages) {
    const auto& util = stage.utilization;
    for (size_t m = 0; m < util.cpu.size(); ++m) {
      std::vector<double> values = {util.cpu[m], util.disk[m], util.network[m]};
      std::sort(values.begin(), values.end(), std::greater<>());
      top->push_back(values[0]);
      second->push_back(values[1]);
    }
  }
}

void PrintBox(const char* label, const std::vector<double>& samples) {
  const monoutil::BoxplotSummary box = monoutil::Boxplot(samples);
  std::printf("  %-28s p5 %5.1f%%  p25 %5.1f%%  median %5.1f%%  p75 %5.1f%%  p95 %5.1f%%\n",
              label, 100 * box.p5, 100 * box.p25, 100 * box.p50, 100 * box.p75,
              100 * box.p95);
}

}  // namespace

int main() {
  std::puts("=== Fig 6: bottleneck / second-resource utilization across BDB stages ===");
  std::puts("Paper: multiple resources well utilized; MonoSpark >= Spark\n");

  const auto cluster = monoload::BdbClusterConfig();
  std::vector<double> spark_top;
  std::vector<double> spark_second;
  std::vector<double> mono_top;
  std::vector<double> mono_second;

  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    Collect(monobench::RunSpark(cluster, make_job, {}, /*trace=*/true), &spark_top,
            &spark_second);
    Collect(monobench::RunMonotasks(cluster, make_job, {}, /*trace=*/true), &mono_top,
            &mono_second);
  }

  PrintBox("Spark     bottleneck", spark_top);
  PrintBox("MonoSpark bottleneck", mono_top);
  PrintBox("Spark     2nd resource", spark_second);
  PrintBox("MonoSpark 2nd resource", mono_second);

  std::printf("\nMedian bottleneck utilization: Spark %.1f%%, MonoSpark %.1f%%\n",
              100 * monoutil::Median(spark_top), 100 * monoutil::Median(mono_top));
  return 0;
}
