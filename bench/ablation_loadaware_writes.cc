// Ablation (§8 "Disk scheduling"): load-aware write placement.
//
// The paper's implementation balances write monotasks across disks independent of
// load and names shortest-queue placement as future work. Both are implemented here;
// this bench measures the difference on a write-heavy workload with heterogeneous
// disk pressure (reads keep one disk busier than the other, so blind round-robin
// writes queue behind reads unnecessarily).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Ablation: round-robin vs shortest-queue disk-write placement (§8) ===\n");

  const auto cluster = monoload::SortClusterConfig();
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(200);
  params.values_per_key = 50;  // Disk-heavy: writes matter.
  params.num_map_tasks = 800;
  params.num_reduce_tasks = 800;
  auto make_job = [&params](monosim::SimEnvironment* env) {
    return monoload::MakeSortJob(&env->dfs(), params);
  };

  monosim::MonoConfig round_robin;
  const auto rr = monobench::RunMonotasks(cluster, make_job, round_robin);
  monosim::MonoConfig load_aware;
  load_aware.load_aware_disk_writes = true;
  const auto la = monobench::RunMonotasks(cluster, make_job, load_aware);

  monoutil::TablePrinter table({"write placement", "map", "reduce", "total"});
  table.AddRow({"round-robin (paper)", monoutil::FormatSeconds(rr.stages[0].duration()),
                monoutil::FormatSeconds(rr.stages[1].duration()),
                monoutil::FormatSeconds(rr.duration())});
  table.AddRow({"shortest queue (§8)", monoutil::FormatSeconds(la.stages[0].duration()),
                monoutil::FormatSeconds(la.stages[1].duration()),
                monoutil::FormatSeconds(la.duration())});
  table.Print(std::cout);
  std::printf("\nload-aware / round-robin runtime: %.3fx\n", la.duration() / rr.duration());
  return 0;
}
