// Fig 13: predicting a combined hardware + software migration: from 5 machines with
// HDDs and on-disk input to 20 machines with SSDs and in-memory, deserialized input.
//
// Three simultaneous changes (4x machines, HDD -> SSD, on-disk -> in-memory input)
// produce a ~10x runtime change; the paper's model predicted it within 23% in the
// worst case, with part of the error coming from the model assuming network bytes
// stay constant while the larger cluster actually reads a smaller fraction of data
// locally.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts(
      "=== Fig 13: predict 5xHDD/on-disk -> 20xSSD/in-memory (100 GB sort) ===");
  std::puts("Paper: ~10x speedup predicted within 23% worst case\n");

  // The "before" cluster: §6.4's 5 machines with hard disks. The paper's m2.4xlarge
  // HDDs delivered roughly half the streaming bandwidth of our calibrated default
  // (2010-era drives), which is what made even the CPU-heavy sort variants
  // disk-bound before the migration — the precondition for the 10x improvement.
  auto small = monoload::SmallHddClusterConfig();
  for (auto& disk : small.machine.disks) {
    disk.bandwidth = monoutil::MiBps(45);
  }
  const auto big = monoload::SsdClusterConfig(20, 2);

  monoutil::TablePrinter table({"values/key", "observed 5xHDD", "predicted 20xSSD",
                                "actual 20xSSD", "speedup", "error"});
  for (int values : {10, 20, 50}) {
    monoload::SortParams params;
    params.total_bytes = monoutil::GiB(100);
    params.values_per_key = values;
    params.num_map_tasks = 400;  // Constant task count across clusters, as in §6.4.
    params.num_reduce_tasks = 400;
    auto on_disk = [&params](monosim::SimEnvironment* env) {
      return monoload::MakeSortJob(&env->dfs(), params);
    };
    const auto baseline = monobench::RunMonotasks(small, on_disk);

    const monomodel::MonotasksModel model(
        baseline, monomodel::HardwareProfile::FromCluster(small));
    monomodel::SoftwareChanges software;
    software.input_in_memory_deserialized = true;
    const double predicted = model.PredictJobSeconds(
        monomodel::HardwareProfile::FromCluster(big), software);

    monoload::SortParams memory_params = params;
    memory_params.input_in_memory = true;
    auto in_memory = [&memory_params](monosim::SimEnvironment* env) {
      return monoload::MakeSortJob(&env->dfs(), memory_params);
    };
    const auto actual = monobench::RunMonotasks(big, in_memory);

    table.AddRow(
        {std::to_string(values), monoutil::FormatSeconds(baseline.duration()),
         monoutil::FormatSeconds(monoutil::Seconds(predicted)), monoutil::FormatSeconds(actual.duration()),
         monoutil::FormatDouble(baseline.duration() / actual.duration(), 1) + "x",
         monoutil::FormatDouble(
             100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
             "%"});
  }
  table.Print(std::cout);
  return 0;
}
