// Simcore/fabric microbenchmark: the perf baseline for the simulator's two hot
// paths — the event queue (schedule/cancel/fire) and the network fabric's rate
// recomputation. Emits BENCH_simcore.json so perf work is measured, not asserted.
//
// The cancel-churn scenarios run the same workload with tombstone compaction
// disabled ("before": cancelled entries sit in the heap until their virtual time,
// the behavior of the pre-compaction queue) and enabled ("after"), so the JSON
// records events/sec before vs. after as a durable record of the change. The
// fabric scenarios do the same for the legacy min-share model vs. the
// work-conserving max-min fabric, pricing the fidelity fix.
//
// Usage: simcore_bench [output.json]   (default ./BENCH_simcore.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/simcore/simulation.h"

namespace {

struct Scenario {
  std::string name;
  uint64_t events;        // Simulation events fired (or churn ops, see ops_label).
  double seconds;         // Wall-clock seconds.
  double events_per_sec;  // events / seconds.
  uint64_t max_queue;     // Peak live-plus-tombstone queue size observed.
  uint64_t digest;        // Simulation::digest(): must match across same-build runs.
};

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Pure schedule+fire throughput with no cancellations: the floor every other
// scenario pays on top of.
Scenario BenchScheduleFire() {
  constexpr int kEvents = 2000000;
  monosim::Simulation sim;
  const auto start = std::chrono::steady_clock::now();
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    sim.ScheduleAt(static_cast<double>(i % 9973), [&fired] { ++fired; });
  }
  sim.Run();
  const double seconds = Elapsed(start);
  return Scenario{"event_queue_schedule_fire", static_cast<uint64_t>(fired), seconds,
                  fired / seconds, kEvents, sim.digest()};
}

// The fabric's signature pattern: every recompute cancels a pending completion
// and schedules a replacement, so almost every queue entry dies as a tombstone.
// With compaction disabled this is the pre-compaction queue: tombstones for the
// far-future horizon accumulate until the run ends.
Scenario BenchCancelChurn(bool compaction, const char* name) {
  constexpr int kChurn = 1000000;
  monosim::Simulation sim;
  sim.set_compaction_enabled(compaction);
  monosim::EventHandle pending;
  size_t max_queue = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kChurn; ++i) {
    pending.Cancel();
    pending = sim.ScheduleAt(1e9 + i, [] {});
    if (sim.queue_size() > max_queue) {
      max_queue = sim.queue_size();
    }
  }
  pending.Cancel();
  sim.Run();  // Drains whatever tombstones remain.
  const double seconds = Elapsed(start);
  return Scenario{name, static_cast<uint64_t>(kChurn), seconds, kChurn / seconds,
                  static_cast<uint64_t>(max_queue), sim.digest()};
}

// Continuous flow churn through the fabric: every completion starts a replacement
// flow, so rates are recomputed (and completion events rescheduled) constantly.
// This is the shuffle inner loop of the figure benches.
Scenario BenchFabricChurn(monosim::NetworkFabricSim::SharePolicy policy,
                          const char* name) {
  constexpr int kMachines = 16;
  constexpr int kLanes = 64;
  constexpr int kFlowsPerLane = 400;
  monosim::Simulation sim;
  monosim::NetworkFabricSim fabric(&sim, kMachines, /*nic_bandwidth=*/1e8);
  fabric.set_share_policy_for_test(policy);
  monoutil::Rng rng(7);
  size_t max_queue = 0;
  int completed = 0;
  const auto start = std::chrono::steady_clock::now();
  std::function<void(int)> launch = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    const int src = static_cast<int>(rng.NextBelow(kMachines));
    int dst = static_cast<int>(rng.NextBelow(kMachines - 1));
    if (dst >= src) {
      ++dst;
    }
    const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(1 << 20));
    fabric.StartFlow(src, dst, bytes, [&, remaining] {
      ++completed;
      if (sim.queue_size() > max_queue) {
        max_queue = sim.queue_size();
      }
      launch(remaining - 1);
    });
  };
  for (int lane = 0; lane < kLanes; ++lane) {
    launch(kFlowsPerLane);
  }
  sim.Run();
  const double seconds = Elapsed(start);
  const auto events = sim.fired_events();
  return Scenario{name, events, seconds, events / seconds,
                  static_cast<uint64_t>(max_queue), sim.digest()};
}

void WriteJson(const std::string& path, const std::vector<Scenario>& scenarios) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"simcore\",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"events\": %llu, \"seconds\": %.4f, "
                  "\"events_per_sec\": %.0f, \"max_queue\": %llu, "
                  "\"digest\": \"%016llx\"}%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.events),
                  s.seconds, s.events_per_sec,
                  static_cast<unsigned long long>(s.max_queue),
                  static_cast<unsigned long long>(s.digest),
                  i + 1 < scenarios.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simcore.json";
  std::vector<Scenario> scenarios;
  scenarios.push_back(BenchScheduleFire());
  scenarios.push_back(
      BenchCancelChurn(/*compaction=*/false, "cancel_churn_before_compaction"));
  scenarios.push_back(
      BenchCancelChurn(/*compaction=*/true, "cancel_churn_after_compaction"));
  scenarios.push_back(BenchFabricChurn(
      monosim::NetworkFabricSim::SharePolicy::kMinShareLegacy, "fabric_churn_legacy_minshare"));
  scenarios.push_back(BenchFabricChurn(
      monosim::NetworkFabricSim::SharePolicy::kMaxMinFair, "fabric_churn_maxmin"));
  WriteJson(out_path, scenarios);
  for (const Scenario& s : scenarios) {
    std::cout << s.name << ": " << static_cast<uint64_t>(s.events_per_sec)
              << " events/s (" << s.events << " events, max queue " << s.max_queue
              << ")\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
