// Simcore/fabric microbenchmark: the perf baseline for the simulator's two hot
// paths — the event queue (schedule/cancel/fire) and the network fabric's rate
// recomputation. Emits BENCH_simcore.json so perf work is measured, not asserted.
//
// The cancel-churn scenarios run the same workload with tombstone compaction
// disabled ("before": cancelled entries sit in the heap until their virtual time,
// the behavior of the pre-compaction queue) and enabled ("after"), so the JSON
// records events/sec before vs. after as a durable record of the change. The
// fabric scenarios do the same for the legacy min-share model vs. the
// work-conserving max-min fabric, pricing the fidelity fix.
//
// Each fabric scenario runs twice: bare, and with the invariant audit installed
// (the "_audit" variants, equivalent to MONO_SIM_AUDIT=report). The audit sweeps
// every epoch boundary, so solver speedups must be read off the variant they were
// measured under — the env var alone used to be silently ignored here, masking
// the audit's share of the cost. Fabric scenarios also record the incremental
// solver's own counters (solves, flows touched, rate changes, patched/batched
// deltas) so a throughput change can be attributed to solver work, not guessed.
//
// Usage: simcore_bench [output.json]   (default ./BENCH_simcore.json)
// MONO_BENCH_FILTER=<substring> runs only matching scenarios (profiling aid).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace {

// Runs `body` with telemetry (histograms, gauges, and — via `sim` — the flight
// recorder) globally disabled, restoring the always-on default afterwards. The
// *_telemetry_off scenarios price the telemetry tentpole: the paired on/off
// digests must be identical (telemetry never schedules events) and CI gates
// the throughput ratio at 0.95 (within 5%, ISSUE acceptance).
template <typename Fn>
auto WithTelemetryOff(Fn&& body) {
  monotrace::SetTelemetryEnabled(false);
  auto result = body();
  monotrace::SetTelemetryEnabled(true);
  return result;
}

struct Scenario {
  std::string name;
  uint64_t events;        // Simulation events fired (or churn ops, see ops_label).
  double seconds;         // Wall-clock seconds.
  double events_per_sec;  // events / seconds.
  uint64_t max_queue;     // Peak live-plus-tombstone queue size observed.
  uint64_t digest;        // Simulation::digest(): must match across same-build runs.
  bool has_solver_stats = false;  // Fabric scenarios carry the solver counters.
  monosim::NetworkFabricSim::SolverStats solver;
};

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Pure schedule+fire throughput with no cancellations: the floor every other
// scenario pays on top of. With `telemetry` off the flight recorder is also
// disabled, so the pair isolates the always-on recording cost on the kernel's
// hottest path.
Scenario BenchScheduleFire(bool telemetry, const char* name) {
  constexpr int kEvents = 2000000;
  monosim::Simulation sim;
  sim.flight_recorder().set_enabled(telemetry);
  const auto start = std::chrono::steady_clock::now();
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    sim.ScheduleAt(monoutil::Seconds(static_cast<double>(i % 9973)),
                   [&fired] { ++fired; });
  }
  sim.Run();
  const double seconds = Elapsed(start);
  return Scenario{name, static_cast<uint64_t>(fired), seconds,
                  fired / seconds, kEvents, sim.digest()};
}

// The fabric's signature pattern: every recompute cancels a pending completion
// and schedules a replacement, so almost every queue entry dies as a tombstone.
// With compaction disabled this is the pre-compaction queue: tombstones for the
// far-future horizon accumulate until the run ends.
Scenario BenchCancelChurn(bool compaction, const char* name) {
  constexpr int kChurn = 1000000;
  monosim::Simulation sim;
  sim.set_compaction_enabled(compaction);
  monosim::EventHandle pending;
  size_t max_queue = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kChurn; ++i) {
    pending.Cancel();
    pending = sim.ScheduleAt(monoutil::Seconds(1e9 + i), [] {});
    if (sim.queue_size() > max_queue) {
      max_queue = sim.queue_size();
    }
  }
  pending.Cancel();
  sim.Run();  // Drains whatever tombstones remain.
  const double seconds = Elapsed(start);
  return Scenario{name, static_cast<uint64_t>(kChurn), seconds, kChurn / seconds,
                  static_cast<uint64_t>(max_queue), sim.digest()};
}

// Continuous flow churn through the fabric: every completion starts a replacement
// flow, so rates are recomputed (and completion events rescheduled) constantly.
// This is the shuffle inner loop of the figure benches. With `audited` the full
// invariant audit (including the max-min bottleneck certification) sweeps every
// epoch boundary, as under MONO_SIM_AUDIT=report; a violation fails the bench.
Scenario BenchFabricChurn(monosim::NetworkFabricSim::SharePolicy policy,
                          const char* name, bool audited, bool telemetry = true) {
  constexpr int kMachines = 16;
  constexpr int kLanes = 64;
  constexpr int kFlowsPerLane = 400;
  std::unique_ptr<monosim::ScopedAudit> audit;
  if (audited) {
    audit = std::make_unique<monosim::ScopedAudit>(monosim::ScopedAudit::kReport);
  }
  monosim::Simulation sim;
  sim.flight_recorder().set_enabled(telemetry);
  monosim::NetworkFabricSim fabric(&sim, kMachines,
                                   /*nic_bandwidth=*/monoutil::BytesPerSecond(1e8));
  fabric.set_share_policy_for_test(policy);
  monoutil::Rng rng(7);
  size_t max_queue = 0;
  int completed = 0;
  const auto start = std::chrono::steady_clock::now();
  std::function<void(int)> launch = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    const int src = static_cast<int>(rng.NextBelow(kMachines));
    int dst = static_cast<int>(rng.NextBelow(kMachines - 1));
    if (dst >= src) {
      ++dst;
    }
    const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(1 << 20));
    fabric.StartFlow(src, dst, bytes, [&, remaining] {
      ++completed;
      if (sim.queue_size() > max_queue) {
        max_queue = sim.queue_size();
      }
      launch(remaining - 1);
    });
  };
  for (int lane = 0; lane < kLanes; ++lane) {
    launch(kFlowsPerLane);
  }
  sim.Run();
  const double seconds = Elapsed(start);
  const auto events = sim.fired_events();
  // The legacy policy is *expected* to fail the max-min certification; only the
  // max-min policy's audited run must come back clean.
  if (audited && policy == monosim::NetworkFabricSim::SharePolicy::kMaxMinFair &&
      !audit->audit().ok()) {
    std::cerr << name << ": audit violations\n" << audit->audit().Summary() << "\n";
    std::exit(1);
  }
  Scenario s{name, events, seconds, events / seconds,
             static_cast<uint64_t>(max_queue), sim.digest()};
  s.has_solver_stats = true;
  s.solver = fabric.solver_stats();
  return s;
}

void WriteJson(const std::string& path, const std::vector<Scenario>& scenarios) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"simcore\",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    char line[768];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"events\": %llu, \"seconds\": %.4f, "
                  "\"events_per_sec\": %.0f, \"max_queue\": %llu, "
                  "\"digest\": \"%016llx\"",
                  s.name.c_str(), static_cast<unsigned long long>(s.events),
                  s.seconds, s.events_per_sec,
                  static_cast<unsigned long long>(s.max_queue),
                  static_cast<unsigned long long>(s.digest));
    out << line;
    if (s.has_solver_stats) {
      std::snprintf(line, sizeof(line),
                    ", \"solves\": %llu, \"flows_touched\": %llu, "
                    "\"rate_changes\": %llu, \"epochs_flushed\": %llu, "
                    "\"batched_changes\": %llu, \"patched_arrivals\": %llu, "
                    "\"patched_departures\": %llu",
                    static_cast<unsigned long long>(s.solver.solves),
                    static_cast<unsigned long long>(s.solver.flows_touched),
                    static_cast<unsigned long long>(s.solver.rate_changes),
                    static_cast<unsigned long long>(s.solver.epochs_flushed),
                    static_cast<unsigned long long>(s.solver.batched_changes),
                    static_cast<unsigned long long>(s.solver.patched_arrivals),
                    static_cast<unsigned long long>(s.solver.patched_departures));
      out << line;
    }
    out << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  // Aggregation-side observability for the run itself: every counter,
  // histogram and gauge the process accumulated (telemetry tentpole).
  out << "  ],\n  \"telemetry\":\n"
      << monotrace::MetricsRegistry::Global().TakeTelemetrySnapshot().ToJson(2)
      << "\n}\n";
}

// Folds `next` into `best`, keeping the faster run. The workload is
// deterministic — repeats must produce identical digests, and a mismatch here
// means the simulation itself lost determinism.
void MergeBest(Scenario& best, Scenario&& next) {
  if (next.digest != best.digest) {
    std::cerr << best.name << ": digest changed across repeats (" << std::hex
              << best.digest << " vs " << next.digest << std::dec
              << ") — simulation is nondeterministic\n";
    std::exit(1);
  }
  if (next.events_per_sec > best.events_per_sec) {
    best = std::move(next);
  }
}

// Best-of-N for the scenarios under the tight --pair gate (0.95x): a single
// fabric-churn measurement is ~0.2s and wobbles a few percent on shared CI
// runners, so the pair ratio is taken over each side's best of three.
Scenario BestOf(int n, const std::function<Scenario()>& run) {
  Scenario best = run();
  for (int i = 1; i < n; ++i) {
    MergeBest(best, run());
  }
  return best;
}

// Measures an on/off scenario pair by alternating the two sides, after one
// untimed warmup run of each. Measuring one side's best-of-N to completion
// before the other side starts — the previous shape — lets one-time cold-start
// costs (first-touch page faults for the multi-megabyte queue, CPU frequency
// ramp) land entirely on whichever side runs first, which is how a committed
// baseline once recorded the telemetry-*off* variant 23% slower than its
// telemetry-on twin. Interleaving puts both sides behind the same warm state,
// so the pair ratio measures the feature, not the run order.
std::pair<Scenario, Scenario> BestOfPair(int n, const std::function<Scenario()>& run_a,
                                         const std::function<Scenario()>& run_b) {
  (void)run_a();  // Warmups: timed below, discarded here.
  (void)run_b();
  Scenario best_a = run_a();
  Scenario best_b = run_b();
  for (int i = 1; i < n; ++i) {
    MergeBest(best_a, run_a());
    MergeBest(best_b, run_b());
  }
  return {std::move(best_a), std::move(best_b)};
}

// The telemetry-off variants re-run the exact workload of their "on" twins;
// telemetry must never schedule an event, so the event-stream digests must be
// bit-identical. Checked here (not just in tests) so every perf-smoke run is
// also a digest-invariance regression.
void CheckPairedDigests(const std::vector<Scenario>& scenarios) {
  const char* suffix = "_telemetry_off";
  for (const Scenario& off : scenarios) {
    const size_t pos = off.name.rfind(suffix);
    if (pos == std::string::npos || pos + std::strlen(suffix) != off.name.size()) {
      continue;
    }
    const std::string on_name = off.name.substr(0, pos);
    for (const Scenario& on : scenarios) {
      if (on.name == on_name && on.digest != off.digest) {
        std::cerr << "digest mismatch: " << on.name << " (" << std::hex << on.digest
                  << ") vs " << off.name << " (" << off.digest << std::dec
                  << ") — telemetry perturbed the schedule\n";
        std::exit(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  monotrace::InstallEnvTelemetrySinkOnce();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simcore.json";
  const char* filter_env = std::getenv("MONO_BENCH_FILTER");
  const std::string filter = filter_env != nullptr ? filter_env : "";
  const auto wanted = [&](const char* name) {
    return filter.empty() || std::string(name).find(filter) != std::string::npos;
  };
  using SharePolicy = monosim::NetworkFabricSim::SharePolicy;
  std::vector<Scenario> scenarios;
  const auto run_schedule_fire_on = [] {
    return BenchScheduleFire(true, "event_queue_schedule_fire");
  };
  const auto run_schedule_fire_off = [] {
    return WithTelemetryOff([] {
      return BenchScheduleFire(false, "event_queue_schedule_fire_telemetry_off");
    });
  };
  {
    const bool want_on = wanted("event_queue_schedule_fire");
    const bool want_off = wanted("event_queue_schedule_fire_telemetry_off");
    if (want_on && want_off) {
      auto [on, off] = BestOfPair(3, run_schedule_fire_on, run_schedule_fire_off);
      scenarios.push_back(std::move(on));
      scenarios.push_back(std::move(off));
    } else if (want_on) {
      scenarios.push_back(BestOf(3, run_schedule_fire_on));
    } else if (want_off) {
      scenarios.push_back(BestOf(3, run_schedule_fire_off));
    }
  }
  if (wanted("cancel_churn_before_compaction")) {
    scenarios.push_back(
        BenchCancelChurn(/*compaction=*/false, "cancel_churn_before_compaction"));
  }
  if (wanted("cancel_churn_after_compaction")) {
    scenarios.push_back(
        BenchCancelChurn(/*compaction=*/true, "cancel_churn_after_compaction"));
  }
  // Fabric scenarios. The pair-gated maxmin on/off twins are measured as an
  // interleaved warmed pair (see BestOfPair); the rest run once (their
  // baseline gates are generous enough for single measurements).
  if (wanted("fabric_churn_legacy_minshare")) {
    scenarios.push_back(BenchFabricChurn(SharePolicy::kMinShareLegacy,
                                         "fabric_churn_legacy_minshare", false));
  }
  if (wanted("fabric_churn_legacy_minshare_audit")) {
    scenarios.push_back(BenchFabricChurn(SharePolicy::kMinShareLegacy,
                                         "fabric_churn_legacy_minshare_audit", true));
  }
  const auto run_maxmin_on = [] {
    return BenchFabricChurn(SharePolicy::kMaxMinFair, "fabric_churn_maxmin", false);
  };
  const auto run_maxmin_off = [] {
    return WithTelemetryOff([] {
      return BenchFabricChurn(SharePolicy::kMaxMinFair,
                              "fabric_churn_maxmin_telemetry_off", false, false);
    });
  };
  {
    const bool want_on = wanted("fabric_churn_maxmin");
    const bool want_off = wanted("fabric_churn_maxmin_telemetry_off");
    std::optional<std::pair<Scenario, Scenario>> pair;
    if (want_on && want_off) {
      pair = BestOfPair(3, run_maxmin_on, run_maxmin_off);
    }
    // Scenario order in the JSON stays: maxmin, maxmin_audit, maxmin_telemetry_off.
    if (pair.has_value()) {
      scenarios.push_back(std::move(pair->first));
    } else if (want_on) {
      scenarios.push_back(BestOf(3, run_maxmin_on));
    }
    if (wanted("fabric_churn_maxmin_audit")) {
      scenarios.push_back(BenchFabricChurn(SharePolicy::kMaxMinFair,
                                           "fabric_churn_maxmin_audit", true));
    }
    if (pair.has_value()) {
      scenarios.push_back(std::move(pair->second));
    } else if (want_off) {
      scenarios.push_back(BestOf(3, run_maxmin_off));
    }
  }
  CheckPairedDigests(scenarios);
  WriteJson(out_path, scenarios);
  for (const Scenario& s : scenarios) {
    std::cout << s.name << ": " << static_cast<uint64_t>(s.events_per_sec)
              << " events/s (" << s.events << " events, max queue " << s.max_queue
              << ")";
    if (s.has_solver_stats) {
      std::cout << " [solves " << s.solver.solves << ", flows touched "
                << s.solver.flows_touched << ", rate changes "
                << s.solver.rate_changes << ", batched " << s.solver.batched_changes
                << ", patched " << s.solver.patched_arrivals << "+"
                << s.solver.patched_departures << "]";
    }
    std::cout << "\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
