// Fig 7: per-stage runtimes of the machine-learning (least-squares) workload on
// 15 machines with 2 SSDs, comparing Spark and MonoSpark.
//
// Paper's result: MonoSpark provides performance on par with Spark for every stage
// of this network-intensive, CPU-optimized, in-memory workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/workloads/ml.h"

int main() {
  std::puts("=== Fig 7: least-squares ML workload, 15 machines x 2 SSD ===");
  std::puts("Paper: MonoSpark on par with Spark in every stage\n");

  const auto cluster = monoload::MlClusterConfig();
  auto make_job = [](monosim::SimEnvironment*) { return monoload::MakeMlJob(); };
  const auto spark = monobench::RunSpark(cluster, make_job);
  const auto mono = monobench::RunMonotasks(cluster, make_job);

  monoutil::TablePrinter table({"stage", "spark", "monospark", "mono/spark"});
  for (size_t s = 0; s < spark.stages.size(); ++s) {
    table.AddRow({spark.stages[s].name, monoutil::FormatSeconds(spark.stages[s].duration()),
                  monoutil::FormatSeconds(mono.stages[s].duration()),
                  monoutil::FormatDouble(mono.stages[s].duration() /
                                             spark.stages[s].duration(),
                                         2)});
  }
  table.AddRow({"total", monoutil::FormatSeconds(spark.duration()),
                monoutil::FormatSeconds(mono.duration()),
                monoutil::FormatDouble(mono.duration() / spark.duration(), 2)});
  table.Print(std::cout);
  return 0;
}
