// Fig 15: the natural Spark-based model — scale runtime by the slot count — cannot
// predict the effect of removing a disk, because Spark's slots track CPU cores, not
// disks.
//
// Paper's result: the slot model predicts *no change* when a disk is removed (slots
// are unchanged), badly underestimating disk-bound queries; scaling slots by the
// disk reduction instead would predict 2x slowdowns that only disk-bound queries
// actually exhibit. One dimension (slots) cannot control multi-dimensional resources.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/spark_models.h"
#include "src/workloads/bdb.h"

int main() {
  std::puts("=== Fig 15: Spark slot-based model for the 2 HDD -> 1 HDD change ===");
  std::puts("Paper: the slot model mispredicts (slots don't change with disks)\n");

  const auto two_disk = monoload::BdbClusterConfig();
  auto one_disk = two_disk;
  one_disk.machine.disks.resize(1);

  monoutil::TablePrinter table({"query", "observed 2-disk", "slot-model 1-disk",
                                "actual 1-disk", "error"});
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    auto make_job = [query](monosim::SimEnvironment* env) {
      return monoload::MakeBdbQueryJob(&env->dfs(), query);
    };
    const auto baseline = monobench::RunSpark(two_disk, make_job);
    // Spark: slots = cores; removing a disk leaves slots (8) unchanged, so the model
    // predicts the runtime is unchanged.
    const monomodel::SlotBasedModel model(baseline, /*baseline_slots_per_machine=*/8);
    const double predicted = model.PredictJobSeconds(/*new_slots_per_machine=*/8);
    const auto actual = monobench::RunSpark(one_disk, make_job);
    table.AddRow({monoload::BdbQueryName(query),
                  monoutil::FormatSeconds(baseline.duration()),
                  monoutil::FormatSeconds(monoutil::Seconds(predicted)),
                  monoutil::FormatSeconds(actual.duration()),
                  monoutil::FormatDouble(
                      100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
                      "%"});
  }
  table.Print(std::cout);
  return 0;
}
