// Fig 11: predicting the runtime on a cluster with twice as many SSDs per worker.
//
// Monotask runtimes from a run on 20 workers x 1 SSD are fed to the model, which
// predicts the runtime with 2 SSDs per worker; we then actually run that cluster.
// Paper's result: error at most 9% (largest for the CPU-bound 10-value workload,
// where the model predicts no change but transient disk-bound periods still shrink),
// and the model correctly captures bottleneck shifts that make the speedup less than
// 2x.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/model/monotasks_model.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Fig 11: predict 1 SSD -> 2 SSDs per worker (600 GB sort) ===");
  std::puts("Paper: prediction error at most 9%\n");

  const auto one_ssd = monoload::SsdClusterConfig(20, 1);
  const auto two_ssd = monoload::SsdClusterConfig(20, 2);

  monoutil::TablePrinter table({"values/key", "observed 1xSSD", "predicted 2xSSD",
                                "actual 2xSSD", "error"});
  for (int values : {10, 20, 50}) {
    monoload::SortParams params;
    params.total_bytes = monoutil::GiB(600);
    params.values_per_key = values;
    params.num_map_tasks = 960;
    params.num_reduce_tasks = 960;
    auto make_job = [&params](monosim::SimEnvironment* env) {
      return monoload::MakeSortJob(&env->dfs(), params);
    };

    const auto baseline = monobench::RunMonotasks(one_ssd, make_job);
    const monomodel::MonotasksModel model(
        baseline, monomodel::HardwareProfile::FromCluster(one_ssd));
    const double predicted =
        model.PredictJobSeconds(model.baseline().WithDisksPerMachine(2));
    const auto actual = monobench::RunMonotasks(two_ssd, make_job);

    table.AddRow({std::to_string(values), monoutil::FormatSeconds(baseline.duration()),
                  monoutil::FormatSeconds(monoutil::Seconds(predicted)),
                  monoutil::FormatSeconds(actual.duration()),
                  monoutil::FormatDouble(
                      100 * monoutil::RelativeError(predicted, actual.duration().seconds()), 1) +
                      "%"});
  }
  table.Print(std::cout);
  return 0;
}
