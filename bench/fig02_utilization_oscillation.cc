// Fig 2: resource utilization during a Spark job oscillates between CPU-bound and
// disk-bound as a result of fine-grained pipelining inside tasks plus OS buffer-cache
// writeback — even though 8 identical tasks are running the whole time.
//
// We run the map stage of a CPU/disk-balanced sort under Spark (the figure's
// setting: 8 concurrent tasks per machine, 2 disks) and print per-second CPU and
// per-disk utilization on one machine over a 30-second window, like the paper's
// time series. The oscillation comes from fine-grained pipeline phase shifts plus
// OS buffer-cache flush bursts contending with reads.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/bdb.h"
#include "src/workloads/sort.h"

int main() {
  std::puts("=== Fig 2: Spark utilization oscillation (8 concurrent tasks, 2 HDDs) ===");
  std::puts("Paper: utilization oscillates between CPU-bound and disk-bound periods\n");

  const auto cluster = monoload::BdbClusterConfig();
  monosim::SimEnvironment env(cluster);
  env.cluster().EnableTrace();
  monosim::SparkConfig spark_config;
  spark_config.chunk_cpu_jitter_cv = 0.6;  // Real tasks see record skew + JVM pauses.
  monosim::SparkExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(),
                                     spark_config);
  env.AttachExecutor(&executor);
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(60);
  params.values_per_key = 20;  // CPU and disk roughly balanced.
  params.num_map_tasks = 480;
  params.num_reduce_tasks = 480;
  const monosim::JobResult result =
      env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));

  // A 30-second window from the middle of the map stage, machine 0.
  const auto& map = result.stages[0];
  const monoutil::SimTime start = map.start + map.duration() * 0.3;
  const monoutil::SimTime end = start + monoutil::Seconds(30.0);
  const auto& machine = env.cluster().machine(0);

  const auto cpu = machine.cpu().rate_trace().SampleWindows(
      start, end, monoutil::Seconds(1.0), static_cast<double>(machine.num_cores()));
  const auto disk0 = machine.disk(0).rate_trace().SampleWindows(
      start, end, monoutil::Seconds(1.0), machine.disk(0).nominal_bandwidth().bps());
  const auto disk1 = machine.disk(1).rate_trace().SampleWindows(
      start, end, monoutil::Seconds(1.0), machine.disk(1).nominal_bandwidth().bps());

  std::puts("  t(s)   cpu%   disk0%  disk1%");
  double cpu_min = 1.0;
  double cpu_max = 0.0;
  for (size_t i = 0; i < cpu.size(); ++i) {
    std::printf("  %4zu   %5.1f  %6.1f  %6.1f\n", i, 100 * cpu[i], 100 * disk0[i],
                100 * disk1[i]);
    cpu_min = std::min(cpu_min, cpu[i]);
    cpu_max = std::max(cpu_max, cpu[i]);
  }
  std::printf("\nCPU utilization swing across the window: %.0f%% .. %.0f%% "
              "(oscillation = bottleneck shifts between CPU and the disks)\n",
              100 * cpu_min, 100 * cpu_max);
  return 0;
}
