#include "src/model/monotasks_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace monomodel {

const char* ResourceName(Resource resource) {
  switch (resource) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kDisk:
      return "disk";
    case Resource::kNetwork:
      return "network";
  }
  return "?";
}

double StageIdealTimes::bottleneck_seconds() const {
  return std::max(cpu, std::max(disk, network));
}

Resource StageIdealTimes::bottleneck() const {
  if (cpu >= disk && cpu >= network) {
    return Resource::kCpu;
  }
  if (disk >= network) {
    return Resource::kDisk;
  }
  return Resource::kNetwork;
}

double StageIdealTimes::MaxExcluding(Resource excluded) const {
  double best = 0.0;
  if (excluded != Resource::kCpu) {
    best = std::max(best, cpu);
  }
  if (excluded != Resource::kDisk) {
    best = std::max(best, disk);
  }
  if (excluded != Resource::kNetwork) {
    best = std::max(best, network);
  }
  return best;
}

namespace {

std::vector<StageModelInput> ExtractInputs(const monosim::JobResult& result) {
  std::vector<StageModelInput> inputs;
  for (const auto& stage : result.stages) {
    StageModelInput input;
    input.name = stage.name;
    // CPU comes from the monotask instrumentation when present (the monotasks
    // executor), falling back to ground-truth totals (identical for an uncontended
    // CPU scheduler, and the right anchor for tests).
    if (stage.monotask_times.compute_count > 0) {
      input.cpu_seconds = stage.monotask_times.compute_seconds;
      input.deser_cpu_seconds = stage.monotask_times.compute_deser_seconds;
      input.decompress_cpu_seconds = stage.monotask_times.compute_decompress_seconds;
    } else {
      input.cpu_seconds = stage.usage.cpu_seconds;
      input.deser_cpu_seconds = stage.usage.deser_cpu_seconds;
      input.decompress_cpu_seconds = stage.usage.decompress_cpu_seconds;
    }
    input.disk_read_bytes = stage.usage.disk_read_bytes;
    input.input_disk_read_bytes = stage.usage.input_disk_read_bytes;
    input.input_uncompressed_bytes = stage.usage.input_uncompressed_bytes;
    input.disk_write_bytes = stage.usage.disk_write_bytes;
    input.network_bytes = stage.usage.network_bytes;
    input.observed_seconds = stage.duration().seconds();
    inputs.push_back(std::move(input));
  }
  return inputs;
}

}  // namespace

MonotasksModel::MonotasksModel(const monosim::JobResult& result, HardwareProfile baseline)
    : MonotasksModel(ExtractInputs(result), baseline) {}

MonotasksModel::MonotasksModel(std::vector<StageModelInput> stages,
                               HardwareProfile baseline)
    : stages_(std::move(stages)), baseline_(baseline) {
  MONO_CHECK(!stages_.empty());
  MONO_CHECK(baseline_.total_cores() > 0);
  MONO_CHECK(baseline_.total_disk_bandwidth() > monoutil::BytesPerSecond(0));
  MONO_CHECK(baseline_.total_nic_bandwidth() > monoutil::BytesPerSecond(0));
}

const StageModelInput& MonotasksModel::stage_input(int stage) const {
  MONO_CHECK(stage >= 0 && stage < num_stages());
  return stages_[static_cast<size_t>(stage)];
}

StageIdealTimes MonotasksModel::IdealTimes(int stage, const HardwareProfile& hardware,
                                           const SoftwareChanges& software) const {
  const StageModelInput& input = stage_input(stage);
  StageIdealTimes ideal;

  double cpu_seconds = input.cpu_seconds;
  monoutil::Bytes read_bytes = input.disk_read_bytes;
  if (software.input_in_memory_deserialized) {
    // §6.3: the input no longer needs to be read from disk, deserialized, or
    // decompressed. This is only knowable because monotasks separate those pieces
    // of the compute monotask's work.
    cpu_seconds -= input.deser_cpu_seconds + input.decompress_cpu_seconds;
    read_bytes -= input.input_disk_read_bytes;
  } else if (software.input_stored_uncompressed) {
    // The intro's "compressed or uncompressed?" question: trade decompression CPU
    // for larger input reads.
    cpu_seconds -= input.decompress_cpu_seconds;
    read_bytes += input.input_uncompressed_bytes - input.input_disk_read_bytes;
  }
  ideal.cpu = cpu_seconds / static_cast<double>(hardware.total_cores());
  ideal.disk = ((read_bytes + input.disk_write_bytes) /
                hardware.total_disk_bandwidth())
                   .seconds();
  // Independent of how the fabric shares bandwidth between flows: max-min fair
  // sharing (work-conserving) moves simulated shuffles *toward* this bound,
  // whereas the old min-of-shares model could strand NIC capacity and sit
  // arbitrarily above it on asymmetric fan-in.
  ideal.network =
      (input.network_bytes / hardware.total_nic_bandwidth()).seconds();
  return ideal;
}

StageIdealTimes MonotasksModel::IdealTimes(int stage) const {
  return IdealTimes(stage, baseline_, SoftwareChanges{});
}

double MonotasksModel::ModeledJobSeconds(const HardwareProfile& hardware,
                                         const SoftwareChanges& software) const {
  double total = 0.0;
  for (int s = 0; s < num_stages(); ++s) {
    total += IdealTimes(s, hardware, software).bottleneck_seconds();
  }
  return total;
}

double MonotasksModel::ModeledJobSeconds() const {
  return ModeledJobSeconds(baseline_, SoftwareChanges{});
}

double MonotasksModel::PredictJobSeconds(const HardwareProfile& hardware,
                                         const SoftwareChanges& software) const {
  // Per-stage observed time, scaled by the modeled change for that stage (§6.2).
  double total = 0.0;
  for (int s = 0; s < num_stages(); ++s) {
    const double modeled_base = IdealTimes(s).bottleneck_seconds();
    const double modeled_new = IdealTimes(s, hardware, software).bottleneck_seconds();
    const double observed = stage_input(s).observed_seconds;
    if (modeled_base <= 0.0) {
      total += observed;
      continue;
    }
    total += observed * (modeled_new / modeled_base);
  }
  return total;
}

double MonotasksModel::PredictWithInfinitelyFast(Resource resource) const {
  double total = 0.0;
  for (int s = 0; s < num_stages(); ++s) {
    const StageIdealTimes ideal = IdealTimes(s);
    const double modeled_base = ideal.bottleneck_seconds();
    const double observed = stage_input(s).observed_seconds;
    if (modeled_base <= 0.0) {
      total += observed;
      continue;
    }
    total += observed * (ideal.MaxExcluding(resource) / modeled_base);
  }
  return total;
}

Resource MonotasksModel::JobBottleneck() const {
  double cpu = 0.0;
  double disk = 0.0;
  double network = 0.0;
  for (int s = 0; s < num_stages(); ++s) {
    const StageIdealTimes ideal = IdealTimes(s);
    cpu += ideal.cpu;
    disk += ideal.disk;
    network += ideal.network;
  }
  StageIdealTimes totals;
  totals.cpu = cpu;
  totals.disk = disk;
  totals.network = network;
  return totals.bottleneck();
}

double MonotasksModel::observed_job_seconds() const {
  double total = 0.0;
  for (const auto& stage : stages_) {
    total += stage.observed_seconds;
  }
  return total;
}

}  // namespace monomodel
