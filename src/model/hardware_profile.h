// HardwareProfile: the cluster parameters the performance model reasons over.
//
// What-if questions are phrased as transformations of this profile (more machines,
// more disks, SSDs instead of HDDs, a faster network) plus optional software changes.
#ifndef MONOTASKS_SRC_MODEL_HARDWARE_PROFILE_H_
#define MONOTASKS_SRC_MODEL_HARDWARE_PROFILE_H_

#include "src/cluster/cluster_config.h"

namespace monomodel {

struct HardwareProfile {
  int num_machines = 0;
  int cores_per_machine = 0;
  int disks_per_machine = 0;
  // Per-disk streaming bandwidth (the rate a well-behaved monotask achieves).
  monoutil::BytesPerSecond disk_bandwidth;
  // Per-machine, per-direction NIC bandwidth.
  monoutil::BytesPerSecond nic_bandwidth;

  int total_cores() const { return num_machines * cores_per_machine; }
  int total_disks() const { return num_machines * disks_per_machine; }
  monoutil::BytesPerSecond total_disk_bandwidth() const {
    return static_cast<double>(total_disks()) * disk_bandwidth;
  }
  monoutil::BytesPerSecond total_nic_bandwidth() const {
    return static_cast<double>(num_machines) * nic_bandwidth;
  }

  static HardwareProfile FromCluster(const monosim::ClusterConfig& config) {
    HardwareProfile profile;
    profile.num_machines = config.num_machines;
    profile.cores_per_machine = config.machine.cores;
    profile.disks_per_machine = static_cast<int>(config.machine.disks.size());
    profile.disk_bandwidth =
        config.machine.disks.empty() ? monoutil::BytesPerSecond()
                                     : config.machine.disks[0].bandwidth;
    profile.nic_bandwidth = config.machine.nic_bandwidth;
    return profile;
  }

  // Convenience transformations for common what-if questions.
  HardwareProfile WithDisksPerMachine(int disks) const {
    HardwareProfile profile = *this;
    profile.disks_per_machine = disks;
    return profile;
  }
  HardwareProfile WithDiskBandwidth(monoutil::BytesPerSecond bandwidth) const {
    HardwareProfile profile = *this;
    profile.disk_bandwidth = bandwidth;
    return profile;
  }
  HardwareProfile WithMachines(int machines) const {
    HardwareProfile profile = *this;
    profile.num_machines = machines;
    return profile;
  }
};

}  // namespace monomodel

#endif  // MONOTASKS_SRC_MODEL_HARDWARE_PROFILE_H_
