// Trace-driven bottleneck reporting (§6 of the paper, driven from the event
// trace instead of the per-stage aggregate counters).
//
// The tracer (src/common/tracing/tracer.h) writes Chrome Trace Event Format
// JSON. This module parses that JSON back (ParseChromeTrace — a purpose-built
// parser for the tracer's output, also used by tests to check well-formedness)
// and aggregates the spans into per-stage, per-resource *blame*:
//
//   busy_seconds   — sum of span durations on the resource, attributed to the
//                    stage by the span's `stage` argument;
//   lanes          — concurrent rows the work occupied (≈ devices/cores used);
//   utilization    — busy / (lanes × stage duration).
//
// The stage's busiest resource by utilization is the trace's bottleneck
// verdict; CrossCheckWithModel compares it against the §6 model's ideal-time
// bottleneck computed from the same run's aggregate metrics. Work that carries
// no stage tag (buffer-cache flushes) is reported separately — it is exactly
// the unattributable time §2.2 blames for today's frameworks' opacity.
#ifndef MONOTASKS_SRC_MODEL_TRACE_REPORT_H_
#define MONOTASKS_SRC_MODEL_TRACE_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "src/model/monotasks_model.h"

namespace monomodel {

// One finished interval from the trace ('X' events, and 'B'/'E' pairs matched
// back into intervals).
struct TraceSpan {
  std::string process;
  std::string track;  // Resolved row name ("cpu#0", "slot#3", ...).
  std::string name;
  std::string category;
  std::string stage;  // Stage-attribution argument; empty = unattributed work.
  double start = 0.0;  // Seconds.
  double end = 0.0;
};

struct TraceCounterSample {
  std::string process;
  std::string series;
  double ts = 0.0;
  double value = 0.0;
};

struct TraceInstant {
  std::string process;
  std::string track;
  std::string name;
  std::string detail;
  double ts = 0.0;
};

struct ParsedTrace {
  std::vector<TraceSpan> spans;
  std::vector<TraceCounterSample> counters;
  std::vector<TraceInstant> instants;
  // Event timestamps appeared in nondecreasing order in the file (the tracer
  // sorts on serialization; tests assert this survives a round trip).
  bool timestamps_monotonic = true;
  // Parse/structure problems: malformed JSON, an 'E' without a 'B', a 'B'
  // never closed, ... Empty means the trace is well-formed.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
};

// Parses Chrome Trace Event Format JSON as produced by Tracer::ToJson().
ParsedTrace ParseChromeTrace(const std::string& json);

// Aggregate blame for one resource category within one stage.
struct ResourceBlame {
  double busy_seconds = 0.0;
  int span_count = 0;
  int lanes = 0;           // Distinct (process, track) rows the spans occupied.
  double utilization = 0.0;  // busy_seconds / (lanes * stage duration).
};

struct StageTraceSummary {
  std::string label;  // "mono:sort-map" — executor-qualified stage name.
  std::string name;   // "sort-map" — the StageSpec name.
  double start = 0.0;
  double end = 0.0;
  // Blame by span category: "cpu", "disk", "network", "cache".
  std::map<std::string, ResourceBlame> blame;
  // Time-weighted mean queue length per scheduler series ("cpu-queue",
  // "disk0-queue", "net-queue"), averaged across machines. Only populated for
  // monotasks stages — the §3.1 contention signal the baseline cannot emit.
  std::map<std::string, double> mean_queue;

  // Trace-ingestion boundary: start/end are parsed from monotrace JSON,
  // which is raw seconds by design.
  // mono_lint: allow(raw-unit-double) -- parsed straight from monotrace JSON.
  double duration() const { return end > start ? end - start : 0.0; }
  // The resource category ("cpu"/"disk"/"network") with the highest
  // utilization; empty when the stage recorded no resource spans.
  std::string busiest() const;
};

struct CrossCheckEntry {
  std::string stage;          // Executor-qualified stage label ("mono:sort-map").
  std::string trace_verdict;  // Busiest resource per the trace.
  std::string model_verdict;  // Bottleneck per the §6 ideal-time model.
  bool agree = false;
};

class TraceReport {
 public:
  // Builds the report from a parsed trace. Stage windows come from the
  // driver's category-"stage" spans; resource spans attach by stage label.
  static TraceReport Build(const ParsedTrace& trace);

  const std::vector<StageTraceSummary>& stages() const { return stages_; }
  const StageTraceSummary* FindStage(const std::string& label) const;

  // Busy seconds carrying no stage tag (buffer-cache writeback): work the
  // framework never issued and a per-task view cannot attribute (§2.2).
  double untagged_busy_seconds() const { return untagged_busy_seconds_; }
  const std::vector<TraceInstant>& audit_violations() const {
    return audit_violations_;
  }

  // Compares each stage's trace verdict against the model's ideal-time
  // bottleneck. Trace stage labels are matched to model stages by StageSpec
  // name; stages only one side knows about are skipped.
  std::vector<CrossCheckEntry> CrossCheckWithModel(const MonotasksModel& model) const;

  std::string ToString() const;

 private:
  std::vector<StageTraceSummary> stages_;
  double untagged_busy_seconds_ = 0.0;
  std::vector<TraceInstant> audit_violations_;
};

}  // namespace monomodel

#endif  // MONOTASKS_SRC_MODEL_TRACE_REPORT_H_
