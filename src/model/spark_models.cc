#include "src/model/spark_models.h"

#include "src/common/check.h"

namespace monomodel {

SlotBasedModel::SlotBasedModel(const monosim::JobResult& result,
                               int baseline_slots_per_machine)
    : baseline_slots_(baseline_slots_per_machine) {
  MONO_CHECK(baseline_slots_per_machine > 0);
  for (const auto& stage : result.stages) {
    stage_observed_.push_back(stage.duration().seconds());
  }
}

double SlotBasedModel::PredictJobSeconds(int new_slots_per_machine) const {
  MONO_CHECK(new_slots_per_machine > 0);
  const double scale = static_cast<double>(baseline_slots_) /
                       static_cast<double>(new_slots_per_machine);
  double total = 0.0;
  for (double observed : stage_observed_) {
    total += observed * scale;
  }
  return total;
}

double SlotBasedModel::observed_job_seconds() const {
  double total = 0.0;
  for (double observed : stage_observed_) {
    total += observed;
  }
  return total;
}

MonotasksModel ModelFromMeasuredUsage(const monosim::JobResult& result,
                                      HardwareProfile baseline) {
  std::vector<StageModelInput> inputs;
  for (const auto& stage : result.stages) {
    StageModelInput input;
    input.name = stage.name;
    input.cpu_seconds = stage.measured.cpu_seconds;
    input.deser_cpu_seconds = 0.0;  // Not measurable in Spark (§6.3).
    input.disk_read_bytes = stage.measured.disk_read_bytes;
    // Indistinguishable from other reads.
    input.input_disk_read_bytes = monoutil::Bytes(0);
    input.disk_write_bytes = stage.measured.disk_write_bytes;
    input.network_bytes = stage.measured.network_bytes;
    input.observed_seconds = stage.duration().seconds();
    inputs.push_back(std::move(input));
  }
  return MonotasksModel(std::move(inputs), baseline);
}

}  // namespace monomodel
