#include "src/model/critical_path.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace monomodel {

namespace {

using monosim::MonoResource;
using monosim::MonoResourceName;
using monosim::MonotaskRecord;

constexpr int kNumResources = 3;

// One boundary in the sweep: at `when`, `service_delta` monotasks of
// `resource` enter/leave service and `queued_delta` enter/leave a queue.
struct SweepEvent {
  monoutil::SimTime when;
  int resource = 0;
  int service_delta = 0;
  int queued_delta = 0;
};

// Interval sweep over one window's records (see critical_path.h). Counts are
// integers and resources are visited in enum order, so the attribution is a
// deterministic function of the record set.
StageCriticalPath Sweep(int stage_index, const std::vector<const MonotaskRecord*>& records) {
  StageCriticalPath out;
  out.stage_index = stage_index;
  if (records.empty()) {
    return out;
  }

  std::vector<SweepEvent> events;
  events.reserve(records.size() * 3);
  out.start = records.front()->ready;
  out.end = records.front()->done;
  for (const MonotaskRecord* rec : records) {
    const int r = static_cast<int>(rec->resource);
    ResourceAttribution& attr = out.resources[MonoResourceName(rec->resource)];
    attr.busy_seconds += rec->service().seconds();
    attr.queue_wait_seconds += rec->queue_wait().seconds();
    ++attr.monotasks;
    out.start = std::min(out.start, rec->ready);
    out.end = std::max(out.end, rec->done);
    events.push_back({rec->ready, r, 0, +1});
    events.push_back({rec->dispatch, r, +1, -1});
    events.push_back({rec->done, r, -1, 0});
  }
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) { return a.when < b.when; });

  std::array<int, kNumResources> in_service{};
  std::array<double, kNumResources> critical{};
  int queued = 0;
  size_t i = 0;
  monoutil::SimTime t = events.front().when;
  while (i < events.size()) {
    // Apply every boundary at time t, then attribute the segment up to the
    // next distinct boundary.
    while (i < events.size() && events[i].when <= t) {
      in_service[static_cast<size_t>(events[i].resource)] += events[i].service_delta;
      queued += events[i].queued_delta;
      ++i;
    }
    if (i >= events.size()) {
      break;
    }
    const double dt = (events[i].when - t).seconds();
    t = events[i].when;
    if (dt <= 0) {
      continue;
    }
    int total = 0;
    for (int r = 0; r < kNumResources; ++r) {
      total += in_service[static_cast<size_t>(r)];
    }
    if (total > 0) {
      for (int r = 0; r < kNumResources; ++r) {
        const int count = in_service[static_cast<size_t>(r)];
        if (count > 0) {
          critical[static_cast<size_t>(r)] +=
              dt * static_cast<double>(count) / static_cast<double>(total);
        }
      }
    } else if (queued > 0) {
      out.blocked_seconds += dt;
    } else {
      out.idle_seconds += dt;
    }
  }
  for (int r = 0; r < kNumResources; ++r) {
    if (critical[static_cast<size_t>(r)] > 0) {
      out.resources[MonoResourceName(static_cast<MonoResource>(r))].critical_seconds =
          critical[static_cast<size_t>(r)];
    }
  }
  return out;
}

}  // namespace

std::string StageCriticalPath::dominant() const {
  std::string best;
  double best_seconds = 0.0;
  for (const auto& [name, attr] : resources) {
    if (attr.critical_seconds > best_seconds) {
      best = name;
      best_seconds = attr.critical_seconds;
    }
  }
  return best;
}

CriticalPathReport CriticalPathReport::Build(const monosim::MonotaskLog& log) {
  CriticalPathReport report;
  report.complete_ = log.dropped() == 0;

  std::map<int, std::vector<const MonotaskRecord*>> by_stage;
  std::vector<const MonotaskRecord*> all;
  all.reserve(log.records().size());
  for (const MonotaskRecord& rec : log.records()) {
    by_stage[rec.stage_index].push_back(&rec);
    all.push_back(&rec);
  }
  for (const auto& [stage_index, records] : by_stage) {
    report.stages_.push_back(Sweep(stage_index, records));
  }
  report.job_ = Sweep(-1, all);
  return report;
}

const StageCriticalPath* CriticalPathReport::FindStage(int stage_index) const {
  for (const StageCriticalPath& stage : stages_) {
    if (stage.stage_index == stage_index) {
      return &stage;
    }
  }
  return nullptr;
}

std::vector<CriticalPathCrossCheck> CriticalPathReport::CrossCheckWithTrace(
    const TraceReport& trace, const std::map<int, std::string>& stage_labels,
    double tolerance) const {
  std::vector<CriticalPathCrossCheck> checks;
  for (const StageCriticalPath& stage : stages_) {
    const auto label_it = stage_labels.find(stage.stage_index);
    if (label_it == stage_labels.end()) {
      continue;
    }
    const StageTraceSummary* traced = trace.FindStage(label_it->second);
    if (traced == nullptr) {
      continue;
    }
    for (int r = 0; r < kNumResources; ++r) {
      const char* name = monosim::MonoResourceName(static_cast<MonoResource>(r));
      double log_busy = 0.0;
      if (const auto it = stage.resources.find(name); it != stage.resources.end()) {
        log_busy = it->second.busy_seconds;
      }
      double trace_busy = 0.0;
      if (const auto it = traced->blame.find(name); it != traced->blame.end()) {
        trace_busy = it->second.busy_seconds;
      }
      if (log_busy == 0.0 && trace_busy == 0.0) {
        continue;
      }
      CriticalPathCrossCheck check;
      check.stage = label_it->second;
      check.resource = name;
      check.log_busy_seconds = log_busy;
      check.trace_busy_seconds = trace_busy;
      check.relative_error =
          trace_busy > 0.0 ? std::abs(log_busy - trace_busy) / trace_busy : 1.0;
      check.agree = check.relative_error <= tolerance;
      checks.push_back(check);
    }
  }
  return checks;
}

std::string CriticalPathReport::ToString() const {
  std::ostringstream out;
  out << "critical-path report (" << (complete_ ? "complete" : "TRUNCATED — log dropped records")
      << ")\n";
  auto print = [&out](const StageCriticalPath& stage, const std::string& title) {
    out << "  " << title << ": " << stage.duration().seconds() << "s wall";
    const std::string dominant = stage.dominant();
    if (!dominant.empty()) {
      out << ", dominant " << dominant;
    }
    out << "\n";
    for (const auto& [name, attr] : stage.resources) {
      out << "    " << name << ": critical " << attr.critical_seconds << "s, busy "
          << attr.busy_seconds << "s, queue-wait " << attr.queue_wait_seconds << "s ("
          << attr.monotasks << " monotask(s))\n";
    }
    if (stage.blocked_seconds > 0) {
      out << "    blocked (queued, nothing running): " << stage.blocked_seconds << "s\n";
    }
    if (stage.idle_seconds > 0) {
      out << "    idle: " << stage.idle_seconds << "s\n";
    }
  };
  print(job_, "job");
  for (const StageCriticalPath& stage : stages_) {
    print(stage, "stage " + std::to_string(stage.stage_index));
  }
  return out.str();
}

}  // namespace monomodel
