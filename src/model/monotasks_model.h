// The monotasks performance model (§6 of the paper).
//
// Because every monotask uses exactly one resource and reports its service time, a
// completed job yields, per stage: total compute monotask seconds (with the
// deserialization portion separated out), and the bytes moved through disk and
// network. From those, the model computes per-resource *ideal completion times*:
//
//   ideal_cpu     = compute monotask seconds / total cores
//   ideal_disk    = (disk read + write bytes) / total disk bandwidth
//   ideal_network = network bytes / total NIC bandwidth
//
// A stage's modeled time is the maximum (the bottleneck); the job's is the sum over
// stages. What-if predictions re-evaluate the ideal times under a transformed
// hardware/software profile and scale the *observed* runtime by the modeled change
// (§6.2), which corrects for the model's idealizations (ramp-up, imperfect
// parallelism).
#ifndef MONOTASKS_SRC_MODEL_MONOTASKS_MODEL_H_
#define MONOTASKS_SRC_MODEL_MONOTASKS_MODEL_H_

#include <string>
#include <vector>

#include "src/framework/metrics.h"
#include "src/model/hardware_profile.h"

namespace monomodel {

enum class Resource {
  kCpu,
  kDisk,
  kNetwork,
};

const char* ResourceName(Resource resource);

// Per-stage model inputs, extracted from a monotasks run (or approximated from a
// Spark run via FromMeasured — see spark_models.h for why that is worse).
struct StageModelInput {
  std::string name;
  double cpu_seconds = 0.0;        // Total compute monotask time.
  double deser_cpu_seconds = 0.0;  // Portion spent deserializing input.
  double decompress_cpu_seconds = 0.0;  // Portion spent decompressing input.
  monoutil::Bytes disk_read_bytes;
  monoutil::Bytes input_disk_read_bytes;  // Part of the reads that fetched input.
  // Size the input reads would have if stored uncompressed.
  monoutil::Bytes input_uncompressed_bytes;
  monoutil::Bytes disk_write_bytes;
  monoutil::Bytes network_bytes;
  double observed_seconds = 0.0;   // The stage's actual duration.
};

// Software-configuration changes the model can evaluate (§6.3 and the intro's
// configuration questions).
struct SoftwareChanges {
  // Input is stored in memory, deserialized: input disk reads and input
  // deserialization (and decompression) CPU time disappear.
  bool input_in_memory_deserialized = false;
  // Input is stored uncompressed on disk: decompression CPU disappears, but the
  // input reads grow to their uncompressed size.
  bool input_stored_uncompressed = false;
};

struct StageIdealTimes {
  double cpu = 0.0;
  double disk = 0.0;
  double network = 0.0;

  double bottleneck_seconds() const;
  Resource bottleneck() const;
  // Modeled stage time if `excluded` were infinitely fast (Fig 14).
  double MaxExcluding(Resource excluded) const;
};

class MonotasksModel {
 public:
  // Builds the model from a completed run's per-stage metrics and the hardware it
  // ran on. Monotask instrumentation (MonotaskTimes) is used for CPU; ground-truth
  // byte counts for I/O.
  MonotasksModel(const monosim::JobResult& result, HardwareProfile baseline);

  // Direct construction from inputs (used by tests and by the Spark-based model).
  MonotasksModel(std::vector<StageModelInput> stages, HardwareProfile baseline);

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const StageModelInput& stage_input(int stage) const;

  // Ideal per-resource times for one stage under a scenario.
  StageIdealTimes IdealTimes(int stage, const HardwareProfile& hardware,
                             const SoftwareChanges& software = {}) const;
  StageIdealTimes IdealTimes(int stage) const;  // Baseline hardware, no changes.

  // Modeled time (sum over stages of the per-stage bottleneck) under a scenario.
  double ModeledJobSeconds(const HardwareProfile& hardware,
                           const SoftwareChanges& software = {}) const;
  double ModeledJobSeconds() const;

  // The headline what-if answer: predicted wall-clock runtime on `hardware` with
  // `software` changes, anchored to the observed runtime (§6.2: per-stage observed
  // time scaled by the modeled change, summed).
  double PredictJobSeconds(const HardwareProfile& hardware,
                           const SoftwareChanges& software = {}) const;

  // Fig 14: predicted runtime if `resource` were infinitely fast (a bound on the
  // benefit of optimizing it). Same observed-anchored scaling.
  double PredictWithInfinitelyFast(Resource resource) const;

  // The job-level bottleneck: resource with the largest total ideal time.
  Resource JobBottleneck() const;

  double observed_job_seconds() const;
  const HardwareProfile& baseline() const { return baseline_; }

 private:
  std::vector<StageModelInput> stages_;
  HardwareProfile baseline_;
};

}  // namespace monomodel

#endif  // MONOTASKS_SRC_MODEL_MONOTASKS_MODEL_H_
