// Critical-path blame from the always-on MonotaskLog (telemetry tentpole).
//
// trace_report answers "which resource was busiest?" from the opt-in Chrome
// trace; this module answers the same question from the bounded MonotaskLog
// that every run records for free — no MONO_TRACE, no JSON round trip. Each
// record is one monotask's lifecycle (ready -> dispatch -> done), and because
// monotasks use exactly one resource each (§3.1), the set of records *is* the
// executed DAG flattened to per-resource intervals: a time sweep over them
// recovers the critical-path structure without needing explicit edges.
//
// Per stage (and for the job as a whole) the sweep splits wall-clock time
// into:
//
//   critical_seconds[r] — slices where >= 1 monotask was in service, shared
//                         among the busy resources in proportion to how many
//                         monotasks each had running (the contended resource
//                         carries the slice);
//   blocked_seconds     — slices where work was queued but nothing ran (a
//                         scheduler gap: all resources idle yet tasks waited);
//   idle_seconds        — slices inside the stage window with neither.
//
// The per-resource busy_seconds (Σ service times) are definitionally equal to
// the durations of the trace's resource spans, which is what CrossCheckWithTrace
// verifies: disagreement beyond tolerance means one of the two pipelines lost
// or double-counted work, not a modeling difference.
#ifndef MONOTASKS_SRC_MODEL_CRITICAL_PATH_H_
#define MONOTASKS_SRC_MODEL_CRITICAL_PATH_H_

#include <map>
#include <string>
#include <vector>

#include "src/framework/monotask_log.h"
#include "src/model/trace_report.h"

namespace monomodel {

// Aggregate attribution for one resource within one stage window.
struct ResourceAttribution {
  double busy_seconds = 0.0;        // Σ service times (= trace span durations).
  double queue_wait_seconds = 0.0;  // Σ (dispatch - ready).
  double critical_seconds = 0.0;    // Sweep share of the wall clock (see above).
  int monotasks = 0;
};

struct StageCriticalPath {
  int stage_index = 0;
  monoutil::SimTime start;  // Earliest `ready` among the stage's records.
  monoutil::SimTime end;    // Latest `done`.
  // Keyed "cpu" / "disk" / "network" (MonoResourceName, = trace categories).
  std::map<std::string, ResourceAttribution> resources;
  double blocked_seconds = 0.0;
  double idle_seconds = 0.0;

  monoutil::SimTime duration() const {
    return end > start ? end - start : monoutil::SimTime();
  }
  // The resource with the largest critical_seconds; empty when no records.
  std::string dominant() const;
};

// One (stage, resource) comparison between log-derived and trace-derived blame.
struct CriticalPathCrossCheck {
  std::string stage;  // Executor-qualified trace label ("mono:sort-map").
  std::string resource;
  double log_busy_seconds = 0.0;
  double trace_busy_seconds = 0.0;
  double relative_error = 0.0;  // |log - trace| / trace (1 when trace is 0).
  bool agree = false;           // relative_error <= tolerance.
};

class CriticalPathReport {
 public:
  // Builds per-stage and whole-job attributions from the log. Records are
  // grouped by stage_index; the job view sweeps every record in one window.
  static CriticalPathReport Build(const monosim::MonotaskLog& log);

  const std::vector<StageCriticalPath>& stages() const { return stages_; }
  const StageCriticalPath* FindStage(int stage_index) const;

  // All records analyzed as one window (stage_index -1).
  const StageCriticalPath& job() const { return job_; }

  // False when the log hit its cap and dropped records: attributions are then
  // lower bounds, not totals.
  bool complete() const { return complete_; }

  // Compares each stage's per-resource busy seconds against the trace report's
  // blame. `stage_labels` maps the log's stage_index to the trace's stage
  // label; stages missing from the map or from the trace are skipped, as are
  // resources idle on both sides.
  std::vector<CriticalPathCrossCheck> CrossCheckWithTrace(
      const TraceReport& trace, const std::map<int, std::string>& stage_labels,
      double tolerance = 0.05) const;

  std::string ToString() const;

 private:
  std::vector<StageCriticalPath> stages_;
  StageCriticalPath job_;
  bool complete_ = true;
};

}  // namespace monomodel

#endif  // MONOTASKS_SRC_MODEL_CRITICAL_PATH_H_
