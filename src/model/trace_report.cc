#include "src/model/trace_report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace monomodel {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser. It accepts general JSON (tests use
// it as a well-formedness check on the tracer's output) but keeps only what
// the report needs.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after the top-level value");
      return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream msg;
      msg << "JSON parse error at byte " << pos_ << ": " << what;
      error_ = msg.str();
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(JsonValue* out) {
    auto match = [this](const char* word) {
      const std::size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    Fail("invalid literal");
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
      return false;
    }
    try {
      out->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      Fail("invalid number");
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      Fail("expected '\"'");
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          if (std::sscanf(text_.substr(pos_, 4).c_str(), "%4x", &code) != 1) {
            Fail("invalid \\u escape");
            return false;
          }
          pos_ += 4;
          // The tracer only emits \u00xx control escapes; keep it simple.
          *out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          Fail("invalid escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return false;
      }
      SkipWhitespace();
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return false;
      }
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return false;
      }
      SkipWhitespace();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

double NumberField(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number : fallback;
}

std::string StringField(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->str : std::string();
}

// Time-weighted mean of a step-function counter over [start, end]. The counter
// holds 0 before its first sample and holds each sample's value until the next.
double StepMean(const std::vector<std::pair<double, double>>& samples, double start,
                double end) {
  if (end <= start) {
    return 0.0;
  }
  double weighted = 0.0;
  double prev_ts = start;
  double prev_value = 0.0;
  for (const auto& [ts, value] : samples) {
    if (ts <= start) {
      prev_value = value;
      continue;
    }
    if (ts >= end) {
      break;
    }
    weighted += prev_value * (ts - prev_ts);
    prev_ts = ts;
    prev_value = value;
  }
  weighted += prev_value * (end - prev_ts);
  return weighted / (end - start);
}

bool IsResourceCategory(const std::string& category) {
  return category == "cpu" || category == "disk" || category == "network" ||
         category == "cache";
}

}  // namespace

ParsedTrace ParseChromeTrace(const std::string& json) {
  ParsedTrace trace;
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root)) {
    trace.errors.push_back(parser.error());
    return trace;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    trace.errors.push_back("top-level value is not an object");
    return trace;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    trace.errors.push_back("missing traceEvents array");
    return trace;
  }

  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> track_names;
  struct OpenSpan {
    std::string name;
    std::string category;
    std::string stage;
    double start = 0.0;
  };
  std::map<std::pair<int, int>, std::vector<OpenSpan>> open;  // B/E stacks per track.
  double last_ts = -1.0;

  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      trace.errors.push_back("traceEvents element is not an object");
      continue;
    }
    const std::string phase = StringField(event, "ph");
    const int pid = static_cast<int>(NumberField(event, "pid", -1));
    const int tid = static_cast<int>(NumberField(event, "tid", -1));
    if (phase == "M") {
      const JsonValue* args = event.Find("args");
      const std::string meta_name = StringField(event, "name");
      if (args != nullptr) {
        if (meta_name == "process_name") {
          process_names[pid] = StringField(*args, "name");
        } else if (meta_name == "thread_name") {
          track_names[{pid, tid}] = StringField(*args, "name");
        }
      }
      continue;
    }

    const double ts = NumberField(event, "ts") / 1e6;  // micros -> seconds
    if (last_ts >= 0.0 && ts < last_ts - 1e-12) {
      trace.timestamps_monotonic = false;
    }
    last_ts = std::max(last_ts, ts);

    auto process_of = [&](int p) {
      auto it = process_names.find(p);
      return it != process_names.end() ? it->second : std::string();
    };
    auto track_of = [&](int p, int t) {
      auto it = track_names.find({p, t});
      return it != track_names.end() ? it->second : std::string();
    };

    if (phase == "X") {
      TraceSpan span;
      span.process = process_of(pid);
      span.track = track_of(pid, tid);
      span.name = StringField(event, "name");
      span.category = StringField(event, "cat");
      span.start = ts;
      span.end = ts + NumberField(event, "dur") / 1e6;
      if (const JsonValue* args = event.Find("args")) {
        span.stage = StringField(*args, "stage");
      }
      trace.spans.push_back(std::move(span));
    } else if (phase == "B") {
      OpenSpan opened;
      opened.name = StringField(event, "name");
      opened.category = StringField(event, "cat");
      opened.start = ts;
      if (const JsonValue* args = event.Find("args")) {
        opened.stage = StringField(*args, "stage");
      }
      open[{pid, tid}].push_back(std::move(opened));
    } else if (phase == "E") {
      auto& stack = open[{pid, tid}];
      if (stack.empty()) {
        std::ostringstream msg;
        msg << "'E' with no open 'B' on pid " << pid << " tid " << tid;
        trace.errors.push_back(msg.str());
        continue;
      }
      OpenSpan opened = std::move(stack.back());
      stack.pop_back();
      TraceSpan span;
      span.process = process_of(pid);
      span.track = track_of(pid, tid);
      span.name = std::move(opened.name);
      span.category = std::move(opened.category);
      span.stage = std::move(opened.stage);
      span.start = opened.start;
      span.end = ts;
      trace.spans.push_back(std::move(span));
    } else if (phase == "C") {
      TraceCounterSample sample;
      sample.process = process_of(pid);
      sample.series = StringField(event, "name");
      sample.ts = ts;
      if (const JsonValue* args = event.Find("args")) {
        sample.value = NumberField(*args, "value");
      }
      trace.counters.push_back(std::move(sample));
    } else if (phase == "i") {
      TraceInstant instant;
      instant.process = process_of(pid);
      instant.track = track_of(pid, tid);
      instant.name = StringField(event, "name");
      instant.ts = ts;
      if (const JsonValue* args = event.Find("args")) {
        instant.detail = StringField(*args, "detail");
      }
      trace.instants.push_back(std::move(instant));
    } else {
      trace.errors.push_back("unknown event phase '" + phase + "'");
    }
  }

  for (const auto& [track, stack] : open) {
    if (!stack.empty()) {
      std::ostringstream msg;
      msg << stack.size() << " unclosed 'B' span(s) on pid " << track.first << " tid "
          << track.second << " (innermost: \"" << stack.back().name << "\")";
      trace.errors.push_back(msg.str());
    }
  }
  return trace;
}

std::string StageTraceSummary::busiest() const {
  std::string best;
  double best_utilization = -1.0;
  for (const auto& [category, resource] : blame) {
    if (category != "cpu" && category != "disk" && category != "network") {
      continue;  // "cache" writes are memory copies, not a device bottleneck.
    }
    if (resource.utilization > best_utilization) {
      best = category;
      best_utilization = resource.utilization;
    }
  }
  return best;
}

TraceReport TraceReport::Build(const ParsedTrace& trace) {
  TraceReport report;

  // Stage windows: the driver's category-"stage" spans, keyed by their stage
  // label (which is also the label every resource span carries).
  for (const TraceSpan& span : trace.spans) {
    if (span.category != "stage" || span.stage.empty()) {
      continue;
    }
    StageTraceSummary summary;
    summary.label = span.stage;
    const auto colon = span.stage.find(':');
    summary.name = colon == std::string::npos ? span.stage : span.stage.substr(colon + 1);
    summary.start = span.start;
    summary.end = span.end;
    report.stages_.push_back(std::move(summary));
  }

  auto find_stage = [&report](const std::string& label) -> StageTraceSummary* {
    for (StageTraceSummary& stage : report.stages_) {
      if (stage.label == label) {
        return &stage;
      }
    }
    return nullptr;
  };

  // Resource blame: spans fold into their stage by label; lane counts come from
  // the distinct rows each category's spans occupied.
  std::map<std::pair<std::string, std::string>, std::set<std::string>> lanes_used;
  for (const TraceSpan& span : trace.spans) {
    if (!IsResourceCategory(span.category)) {
      continue;
    }
    if (span.stage.empty()) {
      report.untagged_busy_seconds_ += span.end - span.start;
      continue;
    }
    StageTraceSummary* stage = find_stage(span.stage);
    if (stage == nullptr) {
      continue;
    }
    ResourceBlame& blame = stage->blame[span.category];
    blame.busy_seconds += span.end - span.start;
    ++blame.span_count;
    lanes_used[{span.stage, span.category}].insert(span.process + "\t" + span.track);
  }
  for (StageTraceSummary& stage : report.stages_) {
    for (auto& [category, blame] : stage.blame) {
      blame.lanes = static_cast<int>(lanes_used[{stage.label, category}].size());
      const double capacity = blame.lanes * stage.duration();
      blame.utilization = capacity > 0.0 ? blame.busy_seconds / capacity : 0.0;
    }
  }

  // §3.1 queue-length contention signal: per-scheduler counter series emitted
  // by the monotasks executor, averaged over each stage's window and across
  // machines. (The Spark baseline has no per-resource queues to report.)
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<double, double>>>
      counter_samples;
  for (const TraceCounterSample& sample : trace.counters) {
    counter_samples[{sample.process, sample.series}].emplace_back(sample.ts, sample.value);
  }
  for (StageTraceSummary& stage : report.stages_) {
    if (stage.label.rfind("mono:", 0) != 0) {
      continue;
    }
    std::map<std::string, std::pair<double, int>> sums;  // series -> (sum, machines)
    for (auto& [key, samples] : counter_samples) {
      const auto& [process, series] = key;
      if (process.rfind("mono:m", 0) != 0 ||
          series.size() < 6 || series.compare(series.size() - 6, 6, "-queue") != 0) {
        continue;
      }
      std::sort(samples.begin(), samples.end());
      auto& [sum, machines] = sums[series];
      sum += StepMean(samples, stage.start, stage.end);
      ++machines;
    }
    for (const auto& [series, sum_and_count] : sums) {
      stage.mean_queue[series] = sum_and_count.first / sum_and_count.second;
    }
  }

  for (const TraceInstant& instant : trace.instants) {
    if (instant.process == "audit") {
      report.audit_violations_.push_back(instant);
    }
  }
  return report;
}

const StageTraceSummary* TraceReport::FindStage(const std::string& label) const {
  for (const StageTraceSummary& stage : stages_) {
    if (stage.label == label) {
      return &stage;
    }
  }
  return nullptr;
}

std::vector<CrossCheckEntry> TraceReport::CrossCheckWithModel(
    const MonotasksModel& model) const {
  std::vector<CrossCheckEntry> entries;
  for (int i = 0; i < model.num_stages(); ++i) {
    const std::string& name = model.stage_input(i).name;
    for (const StageTraceSummary& stage : stages_) {
      if (stage.name != name || stage.blame.empty()) {
        continue;
      }
      CrossCheckEntry entry;
      entry.stage = stage.label;
      entry.trace_verdict = stage.busiest();
      entry.model_verdict = ResourceName(model.IdealTimes(i).bottleneck());
      entry.agree = entry.trace_verdict == entry.model_verdict;
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

std::string TraceReport::ToString() const {
  std::ostringstream out;
  out << "Trace bottleneck report\n";
  out << "=======================\n";
  for (const StageTraceSummary& stage : stages_) {
    out << "stage " << stage.label << "  [" << stage.start << "s .. " << stage.end
        << "s, " << stage.duration() << "s]\n";
    for (const auto& [category, blame] : stage.blame) {
      out << "  " << category << ": busy " << blame.busy_seconds << "s over "
          << blame.lanes << " lane(s), utilization "
          << static_cast<int>(100.0 * blame.utilization + 0.5) << "% ("
          << blame.span_count << " spans)\n";
    }
    for (const auto& [series, mean] : stage.mean_queue) {
      out << "  queue " << series << ": mean length " << mean << "\n";
    }
    const std::string verdict = stage.busiest();
    if (!verdict.empty()) {
      out << "  => busiest resource: " << verdict << "\n";
    }
  }
  if (untagged_busy_seconds_ > 0.0) {
    out << "unattributed busy time (no stage tag, e.g. OS writeback): "
        << untagged_busy_seconds_ << "s\n";
  }
  if (!audit_violations_.empty()) {
    out << audit_violations_.size() << " audit violation instant(s) in trace\n";
  }
  return out.str();
}

}  // namespace monomodel
