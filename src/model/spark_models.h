// The two Spark-based strawman models the paper evaluates (§6.6, Figs 15-17).
//
// Spark has no per-resource instrumentation, so a user modelling it has two options,
// both of which the paper shows to be inadequate:
//
//   1. Slot scaling (Fig 15): the scheduler's only knob is the number of slots, so
//      predict runtime scales with slots. Slots track cores — changing the number of
//      disks does not change the prediction at all.
//   2. Measured device usage (Fig 17): when a job runs *in isolation*, device-level
//      counters over each stage window can stand in for per-stage resource use. But
//      deserialization time cannot be separated (record-level pipelining), buffer-
//      cache writes are partly invisible, and measured rates embed contention.
#ifndef MONOTASKS_SRC_MODEL_SPARK_MODELS_H_
#define MONOTASKS_SRC_MODEL_SPARK_MODELS_H_

#include <vector>

#include "src/framework/metrics.h"
#include "src/model/monotasks_model.h"

namespace monomodel {

// Fig 15: predicted runtime after a configuration change is the observed runtime
// scaled by old_slots / new_slots, per stage.
class SlotBasedModel {
 public:
  SlotBasedModel(const monosim::JobResult& result, int baseline_slots_per_machine);

  double PredictJobSeconds(int new_slots_per_machine) const;
  double observed_job_seconds() const;

 private:
  std::vector<double> stage_observed_;
  int baseline_slots_;
};

// Fig 17: a MonotasksModel whose inputs come from device-level measurement of a Spark
// run instead of monotask instrumentation. `input_bytes_hint` (optional, per stage)
// lets the caller supply the input size so the in-memory what-if is *attemptable*;
// the deserialization CPU share remains unknowable and stays zero.
MonotasksModel ModelFromMeasuredUsage(const monosim::JobResult& result,
                                      HardwareProfile baseline);

}  // namespace monomodel

#endif  // MONOTASKS_SRC_MODEL_SPARK_MODELS_H_
