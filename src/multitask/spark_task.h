// SparkTaskSim: one pipelined multitask (the white boxes in the paper's Fig 1).
//
// The task is a three-lane software pipeline over fixed-size chunks:
//
//   reader  ->  compute  ->  writer
//
// The reader is either a sequential block reader (DFS input, local or remote with the
// flow pipelined behind the remote disk read), an instant source (cached input), or a
// shuffle fetch engine running a bounded number of parallel per-source streams. The
// compute lane consumes one chunk at a time on the machine's CPU pool; the writer
// pushes output chunks into the OS buffer cache (or through to disk when the executor
// is configured write-through). Lanes run concurrently on *different* chunks — the
// fine-grained pipelining that monotasks eliminates.
#ifndef MONOTASKS_SRC_MULTITASK_SPARK_TASK_H_
#define MONOTASKS_SRC_MULTITASK_SPARK_TASK_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/domain.h"
#include "src/framework/task.h"

namespace monosim {

class SparkExecutorSim;

class SparkTaskSim {
 public:
  // Deliberately NOT MONO_SIM_OWNED: the executor destroys the task when it
  // completes, mid-run, so a `this` capture scheduled from here may only reach
  // APIs whose callbacks are guaranteed to fire before MaybeFinish() runs.
  MONO_DOMAIN("machine");

  // `dispatch_id` is the executor-assigned stable identity of this dispatch
  // (the key of the executor's running registry; never a heap address).
  SparkTaskSim(SparkExecutorSim* executor, TaskAssignment assignment,
               uint64_t dispatch_id);

  SparkTaskSim(const SparkTaskSim&) = delete;
  SparkTaskSim& operator=(const SparkTaskSim&) = delete;

  // Begins execution (after the launch overhead has been paid by the executor).
  void Start();

  uint64_t dispatch_id() const { return dispatch_id_; }
  const TaskAssignment& assignment() const { return assignment_; }

  // When the task claimed its slot (set at construction, i.e. dispatch time).
  monoutil::SimTime start_time() const { return start_time_; }

 private:
  // Pipeline drivers: each checks whether its lane can advance and issues the next
  // resource request if so. Called after every completion event.
  void AdvanceReader();
  void AdvanceCompute();
  void AdvanceWriter();
  void Pump();
  void MaybeFinish();

  // Reader backends.
  void IssueBlockRead();   // DFS input, local or remote.
  void StartNextFetch();   // Shuffle fetch engine.
  void OnChunkDelivered(monoutil::Bytes bytes);

  int chunks_ready() const;

  // Records a completed chunk-phase span ending now on `machine`'s lane group
  // `lane_base`, tagged with this task's stage label. One branch when tracing
  // is off.
  void TraceChunkSpan(int machine, const std::string& lane_base, const char* name,
                      const char* category, monoutil::SimTime start);

  SparkExecutorSim* executor_;
  TaskAssignment assignment_;
  uint64_t dispatch_id_;
  monoutil::SimTime start_time_;

  // Chunk geometry.
  int total_chunks_ = 1;
  // Fractional per-chunk amounts (input_bytes / total_chunks): rounding to
  // whole bytes per chunk would drift the pipeline schedule and digests.
  // mono_lint: allow(raw-unit-double) -- fractional per-chunk bytes, see above.
  double chunk_input_bytes_ = 0.0;
  double chunk_cpu_seconds_ = 0.0;
  // mono_lint: allow(raw-unit-double) -- fractional, see above.
  double chunk_write_bytes_ = 0.0;
  bool has_input_io_ = false;
  bool has_output_io_ = false;

  // Reader state.
  int reads_issued_ = 0;       // Block reader: chunks issued.
  int reads_in_flight_ = 0;
  // mono_lint: allow(raw-unit-double) -- accumulates fractional chunks.
  double delivered_bytes_ = 0.0;
  bool reader_done_ = false;
  // Shuffle fetch engine state.
  struct FetchPortion {
    int src_machine = 0;
    monoutil::Bytes bytes;
  };
  std::deque<FetchPortion> fetch_queue_;
  int active_fetches_ = 0;
  bool serve_from_disk_ = false;

  // Compute / writer state.
  bool compute_busy_ = false;
  int chunks_computed_ = 0;
  bool writer_busy_ = false;
  int chunks_written_ = 0;

  bool finished_ = false;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_MULTITASK_SPARK_TASK_H_
