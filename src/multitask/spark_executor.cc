#include "src/multitask/spark_executor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/stage_execution.h"
#include "src/multitask/spark_task.h"

namespace monosim {

SparkExecutorSim::SparkExecutorSim(Simulation* sim, ClusterSim* cluster, TaskPool* pool,
                                   SparkConfig config)
    : sim_(sim), cluster_(cluster), pool_(pool), config_(config),
      machines_(static_cast<size_t>(cluster->num_machines())) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(cluster_ != nullptr);
  MONO_CHECK(pool_ != nullptr);
  MONO_CHECK(config_.chunk_bytes > monoutil::Bytes(0));
  MONO_CHECK(config_.readahead_chunks >= 1);
  MONO_CHECK(config_.max_parallel_fetches >= 1);
  sim_->RegisterAuditable(this);
}

SparkExecutorSim::~SparkExecutorSim() {
  sim_->UnregisterAuditable(this);
}

void SparkExecutorSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = "spark-executor";
  int busy_total = 0;
  for (const MachineState& state : machines_) {
    busy_total += state.busy_slots;
    audit.Expect(state.busy_slots >= 0 && state.active_serve_reads >= 0 &&
                     state.buffered_bytes >= monoutil::Bytes(0),
                 now, source, "machine-bookkeeping",
                 "negative slot, serve-read, or buffered-byte count");
  }
  audit.ExpectLazy(busy_total == static_cast<int>(running_.size()), now, source,
                   "slot-bookkeeping", [&] {
                     std::ostringstream d;
                     d << "busy slots sum to " << busy_total
                       << " but the running registry holds " << running_.size();
                     return d.str();
                   });
  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(running_.empty(), now, source, "drained-tasks", [&] {
      std::ostringstream d;
      d << running_.size() << " task(s) still running after the event queue drained";
      return d.str();
    });
    for (size_t m = 0; m < machines_.size(); ++m) {
      const MachineState& state = machines_[m];
      audit.ExpectLazy(state.active_serve_reads == 0 && state.serve_read_queue.empty(),
                       now, source, "drained-serve-reads", [&] {
                         std::ostringstream d;
                         d << "machine " << m << " has " << state.active_serve_reads
                           << " active and " << state.serve_read_queue.size()
                           << " queued serve read(s) after the event queue drained";
                         return d.str();
                       });
    }
  }
}

int SparkExecutorSim::SlotsFor(int machine) const {
  if (config_.slots_per_machine > 0) {
    return config_.slots_per_machine;
  }
  return cluster_->machine(machine).num_cores();
}

void SparkExecutorSim::OnWorkAvailable() {
  // Sanctioned channel: the driver kicks the executor after activating a stage.
  MONO_DOMAIN_CHANNEL();
  // Fill machines breadth-first (one task per machine per round) so local tasks are
  // claimed by their home machines before anyone starts stealing — the behaviour a
  // real driver gets from per-machine resource offers.
  bool assigned = true;
  while (assigned) {
    assigned = false;
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      if (DispatchOne(m)) {
        assigned = true;
      }
    }
  }
}

bool SparkExecutorSim::DispatchOne(int machine) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  if (state.busy_slots >= SlotsFor(machine)) {
    return false;
  }
  auto assignment = pool_->TakeTask(machine);
  if (!assignment.has_value()) {
    return false;
  }
  ++state.busy_slots;
  assignment->stage->OnTaskStarted(assignment->task_index, sim_->now());
  auto task = std::make_unique<SparkTaskSim>(this, *assignment, next_dispatch_id_++);
  SparkTaskSim* raw = task.get();
  running_.emplace(raw->dispatch_id(), std::move(task));
  // The launch overhead (task deserialization on the executor) occupies the slot
  // before the pipeline starts.
  sim_->ScheduleAfter(config_.task_launch_overhead, [raw] { raw->Start(); });
  return true;
}

void SparkExecutorSim::TryDispatch(int machine) {
  while (DispatchOne(machine)) {
  }
}

void SparkExecutorSim::OnTaskComplete(SparkTaskSim* task) {
  MONO_DOMAIN_MUTATION();
  const TaskAssignment& assignment = task->assignment();
  const int machine = assignment.machine;
  StageExecution* stage = assignment.stage;
  const int task_index = assignment.task_index;
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    // One span per multitask on the machine's slot lanes; spans start when the
    // slot was claimed, so launch overhead is inside the span.
    tracer->CompleteOnLane(TraceProcess(machine), "slot",
                           stage->spec().name + "/t" + std::to_string(task_index),
                           "task", task->start_time().seconds(),
                           sim_->now().seconds(), stage->trace_label());
  }
  static monotrace::MetricCounter* tasks_metric =
      monotrace::MetricsRegistry::Global().Get("spark.tasks_completed");
  tasks_metric->Increment();
  MachineState& state = machines_[static_cast<size_t>(machine)];
  MONO_CHECK(state.busy_slots > 0);
  --state.busy_slots;
  // OnTaskComplete is called from inside the task's own frames, so destruction is
  // deferred to a zero-delay event that runs after the current event unwinds.
  auto it = running_.find(task->dispatch_id());
  MONO_CHECK(it != running_.end());
  // shared_ptr because std::function requires a copyable callable.
  sim_->ScheduleAfter(SimTime(),
                      [owned = std::shared_ptr<SparkTaskSim>(std::move(it->second))] {});
  running_.erase(it);
  stage->OnTaskFinished(task_index, sim_->now());
  TryDispatch(machine);
}

int SparkExecutorSim::PickWriteDisk(int machine) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  const int disk = state.next_write_disk;
  state.next_write_disk = (disk + 1) % cluster_->machine(machine).num_disks();
  return disk;
}

int SparkExecutorSim::PickServeDisk(int machine) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  const int disk = state.next_serve_disk;
  state.next_serve_disk = (disk + 1) % cluster_->machine(machine).num_disks();
  return disk;
}

void SparkExecutorSim::ServeRead(int machine, monoutil::Bytes bytes,
                                 std::function<void()> done) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  const SimTime requested = sim_->now();
  auto start = [this, machine, bytes, requested,
                done = std::move(done)]() mutable {
    // Queue-wait decomposition (telemetry.h): the shuffle service's I/O pool
    // is the Spark baseline's only explicit per-resource queue, so its wait is
    // the comparable number to mono.disk.queue_wait_seconds.
    if (monotrace::TelemetryEnabled()) {
      static monotrace::LatencyHistogram* wait_hist =
          monotrace::MetricsRegistry::Global().Histogram(
              "spark.serve_read.queue_wait_seconds");
      wait_hist->Add((sim_->now() - requested).seconds());
    }
    const SimTime dispatched = sim_->now();
    const int disk = PickServeDisk(machine);
    cluster_->machine(machine).disk(disk).Read(bytes, [this, machine, dispatched,
                                                       done = std::move(done)] {
      if (monotrace::TelemetryEnabled()) {
        static monotrace::LatencyHistogram* service_hist =
            monotrace::MetricsRegistry::Global().Histogram(
                "spark.serve_read.service_seconds");
        service_hist->Add((sim_->now() - dispatched).seconds());
      }
      MachineState& state = machines_[static_cast<size_t>(machine)];
      --state.active_serve_reads;
      if (!state.serve_read_queue.empty()) {
        auto next = std::move(state.serve_read_queue.front());
        state.serve_read_queue.pop_front();
        ++state.active_serve_reads;
        next();
      }
      done();
    });
  };
  if (state.active_serve_reads < config_.serve_read_concurrency) {
    ++state.active_serve_reads;
    start();
  } else {
    state.serve_read_queue.push_back(std::move(start));
  }
}

double SparkExecutorSim::ChunkCpuFactor() {
  if (config_.chunk_cpu_jitter_cv <= 0.0) {
    return 1.0;
  }
  // Lognormal with mean 1: exp(N(-sigma^2/2, sigma)) where sigma ~ cv for small cv.
  const double sigma = config_.chunk_cpu_jitter_cv;
  return std::exp(rng_.Normal(-0.5 * sigma * sigma, sigma));
}

void SparkExecutorSim::AddBuffered(int machine, monoutil::Bytes bytes) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  state.buffered_bytes += bytes;
  peak_buffered_ = std::max(peak_buffered_, state.buffered_bytes);
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Counter(TraceProcess(machine), "buffered-bytes", sim_->now().seconds(),
                    static_cast<double>(state.buffered_bytes.count()));
  }
}

void SparkExecutorSim::RemoveBuffered(int machine, monoutil::Bytes bytes) {
  MachineState& state = machines_[static_cast<size_t>(machine)];
  state.buffered_bytes = std::max(monoutil::Bytes(0), state.buffered_bytes - bytes);
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Counter(TraceProcess(machine), "buffered-bytes", sim_->now().seconds(),
                    static_cast<double>(state.buffered_bytes.count()));
  }
}

}  // namespace monosim
