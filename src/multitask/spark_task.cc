#include "src/multitask/spark_task.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/shuffle_layout.h"
#include "src/framework/stage_execution.h"
#include "src/multitask/spark_executor.h"

namespace monosim {

using monoutil::Bytes;

SparkTaskSim::SparkTaskSim(SparkExecutorSim* executor, TaskAssignment assignment,
                           uint64_t dispatch_id)
    : executor_(executor),
      assignment_(std::move(assignment)),
      dispatch_id_(dispatch_id),
      start_time_(executor->sim_->now()) {
  const StageSpec& spec = assignment_.stage->spec();
  const Bytes chunk = executor_->config().chunk_bytes;

  has_input_io_ = (spec.input == InputSource::kDfs || spec.input == InputSource::kShuffle) &&
                  assignment_.input_bytes > Bytes(0);
  const Bytes write_total = assignment_.shuffle_write_bytes + assignment_.output_bytes;
  const bool shuffle_in_memory =
      spec.output == OutputSink::kShuffle && spec.shuffle_to_memory;
  has_output_io_ = write_total > Bytes(0) && !shuffle_in_memory;

  if (assignment_.input_bytes > Bytes(0)) {
    total_chunks_ = static_cast<int>(
        (assignment_.input_bytes + chunk - Bytes(1)).count() / chunk.count());
  } else if (write_total > Bytes(0)) {
    total_chunks_ =
        static_cast<int>((write_total + chunk - Bytes(1)).count() / chunk.count());
  } else {
    total_chunks_ = 1;
  }
  chunk_input_bytes_ =
      static_cast<double>(assignment_.input_bytes.count()) /
      static_cast<double>(total_chunks_);
  chunk_cpu_seconds_ = assignment_.cpu_seconds / static_cast<double>(total_chunks_);
  chunk_write_bytes_ =
      static_cast<double>(write_total.count()) / static_cast<double>(total_chunks_);
}

void SparkTaskSim::TraceChunkSpan(int machine, const std::string& lane_base,
                                  const char* name, const char* category,
                                  monoutil::SimTime start) {
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->CompleteOnLane(executor_->TraceProcess(machine), lane_base, name, category,
                           start.seconds(), executor_->sim_->now().seconds(),
                           assignment_.stage->trace_label());
  }
}

void SparkTaskSim::Start() {
  StageExecution* stage = assignment_.stage;
  const StageSpec& spec = stage->spec();

  // Ground-truth usage accounting for work whose size is known up front. Shuffle
  // fetch I/O is accounted per portion because its disk/network split depends on
  // where the data lives.
  auto& usage = stage->result().usage;
  if (spec.input == InputSource::kDfs) {
    usage.disk_read_bytes += assignment_.input_bytes;
    usage.input_disk_read_bytes += assignment_.input_bytes;
    usage.input_uncompressed_bytes +=
        assignment_.input_bytes * spec.input_compression_ratio;
    if (!assignment_.input_local) {
      usage.network_bytes += assignment_.input_bytes;
    }
  }
  const Bytes write_total = assignment_.shuffle_write_bytes + assignment_.output_bytes;
  if (has_output_io_) {
    usage.disk_write_bytes += write_total;
  }
  if (spec.output == OutputSink::kShuffle) {
    // Recorded up front: the reduce stage only begins after every map task is done,
    // so the per-machine totals are complete by the time they are consumed.
    stage->RecordShuffleWrite(assignment_.machine, assignment_.shuffle_write_bytes);
  }

  // Set up the reader.
  if (!has_input_io_) {
    reader_done_ = true;
    delivered_bytes_ = static_cast<double>(assignment_.input_bytes.count());
  } else if (spec.input == InputSource::kShuffle) {
    for (const ShufflePortion& portion : ComputeShufflePortions(assignment_)) {
      fetch_queue_.push_back(FetchPortion{portion.src_machine, portion.bytes});
    }
    serve_from_disk_ = !stage->prev()->spec().shuffle_to_memory;
  }
  Pump();
}

int SparkTaskSim::chunks_ready() const {
  if (!has_input_io_) {
    return total_chunks_;
  }
  if (reader_done_ && fetch_queue_.empty() && active_fetches_ == 0 &&
      reads_in_flight_ == 0) {
    return total_chunks_;
  }
  // Small epsilon absorbs floating-point drift in per-chunk byte accounting.
  return std::min(total_chunks_,
                  static_cast<int>((delivered_bytes_ + 1e-3) / chunk_input_bytes_));
}

void SparkTaskSim::Pump() {
  if (finished_) {
    return;
  }
  AdvanceReader();
  AdvanceCompute();
  AdvanceWriter();
  MaybeFinish();
}

void SparkTaskSim::AdvanceReader() {
  const StageSpec& spec = assignment_.stage->spec();
  if (!has_input_io_ || reader_done_) {
    return;
  }
  if (spec.input == InputSource::kDfs) {
    IssueBlockRead();
  } else {
    StartNextFetch();
  }
}

void SparkTaskSim::IssueBlockRead() {
  // Sequential stream with bounded read-ahead: at most `readahead_chunks` chunks may
  // be issued beyond what compute has consumed, and the stream keeps a limited number
  // of requests in flight (two when a network hop is pipelined behind the disk).
  const int consumed = chunks_computed_ + (compute_busy_ ? 1 : 0);
  const int readahead = executor_->config().readahead_chunks;
  const int max_in_flight = assignment_.input_local ? 1 : 2;
  while (reads_issued_ < total_chunks_ && reads_in_flight_ < max_in_flight &&
         reads_issued_ - consumed < readahead) {
    ++reads_issued_;
    ++reads_in_flight_;
    const double bytes = chunk_input_bytes_;
    const SimTime read_start = executor_->sim_->now();
    DiskSim& disk =
        executor_->cluster_->machine(assignment_.input_machine).disk(assignment_.input_disk);
    if (assignment_.input_local) {
      // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
      disk.Read(Bytes(static_cast<int64_t>(bytes)), [this, bytes, read_start] {
        TraceChunkSpan(assignment_.input_machine,
                       "disk" + std::to_string(assignment_.input_disk), "block-read",
                       "disk", read_start);
        --reads_in_flight_;
        if (reads_issued_ == total_chunks_ && reads_in_flight_ == 0) {
          reader_done_ = true;
        }
        OnChunkDelivered(Bytes(static_cast<int64_t>(bytes)));
      });
    } else {
      // Remote block: disk read on the block's home machine, then a network flow.
      // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
      disk.Read(Bytes(static_cast<int64_t>(bytes)), [this, bytes, read_start] {
        TraceChunkSpan(assignment_.input_machine,
                       "disk" + std::to_string(assignment_.input_disk), "block-read",
                       "disk", read_start);
        const SimTime flow_start = executor_->sim_->now();
        executor_->cluster_->fabric().StartFlow(
            assignment_.input_machine, assignment_.machine, Bytes(static_cast<int64_t>(bytes)),
            // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
            [this, bytes, flow_start] {
              TraceChunkSpan(assignment_.machine, "net-in", "block-flow", "network",
                             flow_start);
              --reads_in_flight_;
              if (reads_issued_ == total_chunks_ && reads_in_flight_ == 0) {
                reader_done_ = true;
              }
              OnChunkDelivered(Bytes(static_cast<int64_t>(bytes)));
            });
      });
    }
  }
}

void SparkTaskSim::StartNextFetch() {
  auto& usage = assignment_.stage->result().usage;
  while (active_fetches_ < executor_->config().max_parallel_fetches &&
         !fetch_queue_.empty()) {
    const FetchPortion portion = fetch_queue_.front();
    fetch_queue_.pop_front();
    ++active_fetches_;

    auto delivered = [this, portion] {
      --active_fetches_;
      if (fetch_queue_.empty() && active_fetches_ == 0) {
        reader_done_ = true;
      }
      OnChunkDelivered(portion.bytes);
    };

    if (portion.src_machine == assignment_.machine) {
      // Local shuffle data: read from the local disk, or straight from the page
      // cache when the shuffle fits in memory.
      if (serve_from_disk_) {
        usage.disk_read_bytes += portion.bytes;
        const int disk = executor_->PickServeDisk(assignment_.machine);
        const SimTime read_start = executor_->sim_->now();
        executor_->cluster_->machine(assignment_.machine).disk(disk).Read(
            // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
            portion.bytes, [this, disk, read_start, delivered = std::move(delivered)] {
              TraceChunkSpan(assignment_.machine, "disk" + std::to_string(disk),
                             "shuffle-read", "disk", read_start);
              delivered();
            });
      } else {
        executor_->sim_->ScheduleAfter(SimTime(), std::move(delivered));
      }
      continue;
    }
    usage.network_bytes += portion.bytes;
    if (serve_from_disk_) {
      usage.disk_read_bytes += portion.bytes;
    }
    // Remote portion: request message, then (optionally) a disk read on the serving
    // machine through the shuffle service's bounded I/O pool, then the bulk flow back.
    executor_->cluster_->fabric().SendControl(
        // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
        assignment_.machine, portion.src_machine, [this, portion, delivered] {
          // The serve-read span starts when the request reaches the serving
          // machine, so shuffle-service queueing is visible inside it.
          const SimTime serve_start = executor_->sim_->now();
          // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
          auto send = [this, portion, delivered, serve_start] {
            if (serve_from_disk_) {
              TraceChunkSpan(portion.src_machine, "serve", "serve-read", "disk",
                             serve_start);
            }
            const SimTime flow_start = executor_->sim_->now();
            executor_->cluster_->fabric().StartFlow(
                portion.src_machine, assignment_.machine, portion.bytes,
                // mono_lint: allow(escaping-capture) -- pipeline callback, fires before MaybeFinish().
                [this, delivered, flow_start] {
                  TraceChunkSpan(assignment_.machine, "net-in", "shuffle-fetch",
                                 "network", flow_start);
                  delivered();
                });
          };
          if (serve_from_disk_) {
            executor_->ServeRead(portion.src_machine, portion.bytes, std::move(send));
          } else {
            send();
          }
        });
  }
}

void SparkTaskSim::OnChunkDelivered(Bytes bytes) {
  delivered_bytes_ += static_cast<double>(bytes.count());
  executor_->AddBuffered(assignment_.machine, bytes);
  Pump();
}

void SparkTaskSim::AdvanceCompute() {
  if (compute_busy_ || chunks_computed_ >= total_chunks_) {
    return;
  }
  // Backpressure: the writer buffer is bounded, so compute stalls if writing falls
  // too far behind (e.g. the buffer cache is throttling).
  const int write_backlog = chunks_computed_ - chunks_written_;
  if (has_output_io_ && write_backlog > executor_->config().readahead_chunks) {
    return;
  }
  if (chunks_ready() <= chunks_computed_) {
    return;
  }
  compute_busy_ = true;
  const SimTime compute_start = executor_->sim_->now();
  executor_->cluster_->machine(assignment_.machine)
      .RunCompute(chunk_cpu_seconds_ * executor_->ChunkCpuFactor(),
                  [this, compute_start] {
        // Span covers submission to completion, so CPU-pool contention (which
        // Spark cannot separate from compute) is inside it.
        TraceChunkSpan(assignment_.machine, "compute", "chunk-compute", "cpu",
                       compute_start);
        compute_busy_ = false;
        ++chunks_computed_;
        if (has_input_io_) {
          executor_->RemoveBuffered(assignment_.machine,
                                    Bytes(static_cast<int64_t>(chunk_input_bytes_)));
        }
        Pump();
      });
}

void SparkTaskSim::AdvanceWriter() {
  if (!has_output_io_) {
    chunks_written_ = chunks_computed_;
    return;
  }
  if (writer_busy_ || chunks_written_ >= chunks_computed_) {
    return;
  }
  writer_busy_ = true;
  const Bytes bytes = Bytes(static_cast<int64_t>(chunk_write_bytes_));
  const int disk = executor_->PickWriteDisk(assignment_.machine);
  const SimTime write_start = executor_->sim_->now();
  auto done = [this, write_start] {
    // Category "cache", not "disk": the write completes into the buffer cache
    // at memory speed; the disk work appears later as an untagged flush span.
    TraceChunkSpan(assignment_.machine, "write", "chunk-write", "cache", write_start);
    writer_busy_ = false;
    ++chunks_written_;
    Pump();
  };
  MachineSim& machine = executor_->cluster_->machine(assignment_.machine);
  if (executor_->config().write_through) {
    // Forced durability still flows through the cache's flusher so writes stay
    // elevator-batched; the task just can't proceed until its bytes are on disk.
    machine.buffer_cache().WriteSync(disk, bytes, std::move(done));
  } else {
    machine.buffer_cache().Write(disk, bytes, std::move(done));
  }
}

void SparkTaskSim::MaybeFinish() {
  if (finished_) {
    return;
  }
  const bool compute_done = chunks_computed_ == total_chunks_;
  const bool writes_done = !has_output_io_ || chunks_written_ == total_chunks_;
  if (compute_done && writes_done) {
    finished_ = true;
    executor_->OnTaskComplete(this);
  }
}

}  // namespace monosim
