// SparkExecutorSim: the baseline architecture — today's multi-resource tasks.
//
// Reproduces the execution model the paper describes in §2.1: each multitask runs in a
// slot (slots per machine = cores by default, configurable as in Fig 18), and uses a
// single thread that pipelines resource use at fine granularity. Input is read
// chunk-by-chunk with OS readahead, computation streams over chunks, and output is
// written to the OS buffer cache, which flushes asynchronously (the write_through
// option forces synchronous flushing, the "Spark with sync-to-disk" bars in Fig 5).
// Shuffle data is fetched with a bounded number of parallel streams per task and is
// served from the remote machine's page cache when the shuffle fits in memory.
//
// The resulting behaviour exhibits exactly the three clarity problems of §2.2:
// per-task resource use oscillates (Fig 2), concurrent tasks contend on the devices,
// and the buffer cache causes disk work the framework never issued.
#ifndef MONOTASKS_SRC_MULTITASK_SPARK_EXECUTOR_H_
#define MONOTASKS_SRC_MULTITASK_SPARK_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/machine.h"
#include "src/common/domain.h"
#include "src/common/rng.h"
#include "src/framework/executor.h"
#include "src/framework/task.h"
#include "src/framework/task_pool.h"
#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace monosim {

class SparkTaskSim;

struct SparkConfig {
  // Concurrent tasks per machine; 0 means "number of cores" (Spark's default).
  int slots_per_machine = 0;
  // Pipelining granularity: how much data moves between resources at once.
  monoutil::Bytes chunk_bytes = monoutil::MiB(4);
  // Read-ahead depth: chunks that may be read but not yet consumed by compute.
  int readahead_chunks = 2;
  // Concurrent shuffle fetch streams per reduce task.
  int max_parallel_fetches = 5;
  // Synchronously flush writes to disk instead of leaving them in the buffer cache.
  bool write_through = false;
  // Concurrent shuffle-serve disk reads per machine (the shuffle service's I/O
  // thread pool). Unlike the monotask disk scheduler this does not coordinate with
  // the tasks' own reads and writes, so contention remains.
  int serve_read_concurrency = 4;
  // Fixed cost of launching a task in its slot (task deserialization etc.).
  monoutil::SimTime task_launch_overhead = monoutil::Millis(5);
  // Coefficient of variation of per-chunk CPU time (0 = deterministic). Real tasks
  // see per-record skew and JVM pauses; enabling this reproduces the fine-grained
  // bottleneck oscillation of Fig 2 without changing mean runtimes.
  double chunk_cpu_jitter_cv = 0.0;
};

class SparkExecutorSim : public ExecutorSim, public Auditable {
 public:
  // Machine-side execution; outlives the simulation run (tests/benches keep it
  // alive past Run()), so `this` captures into completion plumbing cannot
  // dangle.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  SparkExecutorSim(Simulation* sim, ClusterSim* cluster, TaskPool* pool,
                   SparkConfig config = {});
  ~SparkExecutorSim() override;

  void OnWorkAvailable() override;
  monoutil::Bytes peak_buffered_bytes() const override { return peak_buffered_; }
  const char* trace_name() const override { return "spark"; }

  const SparkConfig& config() const { return config_; }

  // Invariant auditing (audit.h): per-machine busy-slot counts match the running
  // registry; at drain no task, serve read, or queued serve request is left.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  friend class SparkTaskSim;

  struct MachineState {
    int busy_slots = 0;
    int next_write_disk = 0;
    int next_serve_disk = 0;
    monoutil::Bytes buffered_bytes;
    int active_serve_reads = 0;
    std::deque<std::function<void()>> serve_read_queue;
  };

  void TryDispatch(int machine);
  bool DispatchOne(int machine);
  void OnTaskComplete(SparkTaskSim* task);
  int SlotsFor(int machine) const;
  int PickWriteDisk(int machine);
  int PickServeDisk(int machine);
  // Reads shuffle data on `machine` on behalf of a remote fetch, bounded by the
  // shuffle service's I/O concurrency.
  void ServeRead(int machine, monoutil::Bytes bytes, std::function<void()> done);
  void AddBuffered(int machine, monoutil::Bytes bytes);
  void RemoveBuffered(int machine, monoutil::Bytes bytes);
  // Trace process group for a machine's work under this executor.
  std::string TraceProcess(int machine) const {
    return "spark:m" + std::to_string(machine);
  }
  // Multiplicative factor applied to one chunk's CPU time (mean 1; see
  // chunk_cpu_jitter_cv).
  double ChunkCpuFactor();

  Simulation* sim_;
  ClusterSim* cluster_;
  TaskPool* pool_;
  SparkConfig config_;

  std::vector<MachineState> machines_;
  // Running registry keyed by the executor-assigned dispatch id, not the
  // task's address: no schedule decision may depend on heap layout
  // (determinism contract, DESIGN §10).
  std::unordered_map<uint64_t, std::unique_ptr<SparkTaskSim>> running_;
  uint64_t next_dispatch_id_ = 0;
  monoutil::Bytes peak_buffered_;
  monoutil::Rng rng_{20171028};  // Drives chunk jitter only.
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_MULTITASK_SPARK_EXECUTOR_H_
