// DiskSim: one physical disk (HDD or SSD) on a simulated machine.
//
// Reads and writes share the device's FluidServer, so concurrent requests contend
// exactly as the capacity model dictates (HDD seek degradation, SSD channels). Write
// requests may instead be routed through the machine's BufferCacheSim (Spark's
// behaviour); DiskSim itself is always write-through, which is what the paper's disk
// monotasks require (§3.1: "disk monotasks flush all writes to disk").
#ifndef MONOTASKS_SRC_CLUSTER_DISK_H_
#define MONOTASKS_SRC_CLUSTER_DISK_H_

#include <functional>
#include <string>

#include "src/cluster/cluster_config.h"
#include "src/simcore/audit.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"

namespace monosim {

class DiskSim : public Auditable {
 public:
  DiskSim(Simulation* sim, std::string name, const DiskConfig& config);
  ~DiskSim() override;

  DiskSim(const DiskSim&) = delete;
  DiskSim& operator=(const DiskSim&) = delete;

  // Starts a read of `bytes`; `done` fires when the data is in memory.
  void Read(monoutil::Bytes bytes, std::function<void()> done);

  // Starts a write-through of `bytes`; `done` fires when the data is durable.
  void Write(monoutil::Bytes bytes, std::function<void()> done);

  // Number of requests currently being served by the device.
  int active_requests() const { return server_.active(); }

  monoutil::Bytes bytes_read() const { return bytes_read_; }
  monoutil::Bytes bytes_written() const { return bytes_written_; }

  const DiskConfig& config() const { return config_; }

  // Device bandwidth for a single streaming request (the utilization denominator).
  double nominal_bandwidth() const { return server_.nominal_capacity(); }

  // Always-on utilization/saturation integrals (see FluidServer): virtual
  // seconds with any request in service, and the subset at full capacity.
  double busy_seconds() const { return server_.busy_seconds(); }
  double saturated_seconds() const { return server_.saturated_seconds(); }

  void EnableTrace() { server_.EnableTrace(); }
  const RateTrace& rate_trace() const { return server_.rate_trace(); }
  double MeanUtilization(SimTime from, SimTime to) const {
    return server_.MeanUtilization(from, to);
  }

  const std::string& name() const { return server_.name(); }

  // Invariant auditing (audit.h): read bookkeeping consistent with the device's
  // active set; no reads left in flight when the simulation drains. The underlying
  // FluidServer audits its own rate and conservation invariants.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  Simulation* sim_;
  DiskConfig config_;
  FluidServer server_;
  monoutil::Bytes bytes_read_ = 0;
  monoutil::Bytes bytes_written_ = 0;
  int active_reads_ = 0;  // Drives the mixed-vs-solo write contention weight.
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_DISK_H_
