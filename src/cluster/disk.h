// DiskSim: one physical disk (HDD or SSD) on a simulated machine.
//
// Reads and writes share the device's FluidServer, so concurrent requests contend
// exactly as the capacity model dictates (HDD seek degradation, SSD channels). Write
// requests may instead be routed through the machine's BufferCacheSim (Spark's
// behaviour); DiskSim itself is always write-through, which is what the paper's disk
// monotasks require (§3.1: "disk monotasks flush all writes to disk").
#ifndef MONOTASKS_SRC_CLUSTER_DISK_H_
#define MONOTASKS_SRC_CLUSTER_DISK_H_

#include <string>
#include <type_traits>
#include <utility>

#include "src/cluster/cluster_config.h"
#include "src/common/domain.h"
#include "src/simcore/audit.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"

namespace monosim {

class DiskSim : public Auditable {
 public:
  // Owned by its MachineSim, which outlives the simulation run, so `this`
  // captures into its completion plumbing cannot dangle.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  DiskSim(Simulation* sim, std::string name, const DiskConfig& config);
  ~DiskSim() override;

  DiskSim(const DiskSim&) = delete;
  DiskSim& operator=(const DiskSim&) = delete;

  // Starts a read of `bytes`; `done` (any void() callable; oversize captures
  // draw pooled storage from the owning simulation's arena) fires when the
  // data is in memory.
  template <typename F>
  void Read(monoutil::Bytes bytes, F&& done) {
    ReadImpl(bytes, WrapCallback(std::forward<F>(done)));
  }

  // Starts a write-through of `bytes`; `done` fires when the data is durable.
  template <typename F>
  void Write(monoutil::Bytes bytes, F&& done) {
    WriteImpl(bytes, WrapCallback(std::forward<F>(done)));
  }

  // Number of requests currently being served by the device.
  int active_requests() const { return server_.active(); }

  monoutil::Bytes bytes_read() const { return bytes_read_; }
  monoutil::Bytes bytes_written() const { return bytes_written_; }

  const DiskConfig& config() const { return config_; }

  // Device bandwidth for a single streaming request (the utilization denominator).
  monoutil::BytesPerSecond nominal_bandwidth() const {
    return monoutil::BytesPerSecond(server_.nominal_capacity());
  }

  // Always-on utilization/saturation integrals (see FluidServer): virtual
  // time with any request in service, and the subset at full capacity.
  monoutil::SimTime busy_seconds() const { return server_.busy_seconds(); }
  monoutil::SimTime saturated_seconds() const { return server_.saturated_seconds(); }

  void EnableTrace() { server_.EnableTrace(); }
  const RateTrace& rate_trace() const { return server_.rate_trace(); }
  double MeanUtilization(SimTime from, SimTime to) const {
    return server_.MeanUtilization(from, to);
  }

  const std::string& name() const { return server_.name(); }

  // Invariant auditing (audit.h): read bookkeeping consistent with the device's
  // active set; no reads left in flight when the simulation drains. The underlying
  // FluidServer audits its own rate and conservation invariants.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  // Wraps a caller's callback against the owning simulation's arena; a
  // ready-made InlineCallback passes through.
  template <typename F>
  InlineCallback WrapCallback(F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      return std::forward<F>(fn);
    } else {
      return InlineCallback(std::forward<F>(fn), sim_->callback_arena());
    }
  }

  void ReadImpl(monoutil::Bytes bytes, InlineCallback&& done);
  void WriteImpl(monoutil::Bytes bytes, InlineCallback&& done);

  Simulation* sim_;
  DiskConfig config_;
  FluidServer server_;
  monoutil::Bytes bytes_read_;
  monoutil::Bytes bytes_written_;
  int active_reads_ = 0;  // Drives the mixed-vs-solo write contention weight.
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_DISK_H_
