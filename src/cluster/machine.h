// MachineSim and ClusterSim: the simulated worker machines.
//
// A machine owns a CPU core pool (a FluidServer in CPU-seconds, one core max per
// request), its disks, and an OS buffer cache. The cluster owns the machines and the
// network fabric. Executors (the Spark-baseline multitask executor and the monotask
// executor) drive these devices; nothing here imposes a scheduling policy.
#ifndef MONOTASKS_SRC_CLUSTER_MACHINE_H_
#define MONOTASKS_SRC_CLUSTER_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/buffer_cache.h"
#include "src/cluster/cluster_config.h"
#include "src/cluster/disk.h"
#include "src/cluster/network.h"
#include "src/common/domain.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"

namespace monosim {

class MachineSim {
 public:
  MONO_DOMAIN("machine");

  MachineSim(Simulation* sim, int machine_id, const MachineConfig& config);

  MachineSim(const MachineSim&) = delete;
  MachineSim& operator=(const MachineSim&) = delete;

  int id() const { return id_; }
  int num_cores() const { return config_.cores; }
  int num_disks() const { return static_cast<int>(disks_.size()); }
  const MachineConfig& config() const { return config_; }

  // CPU pool: submit `cpu_seconds` of single-threaded compute. CPU work is a
  // FluidServer *work amount* (it stretches under contention), not a span of
  // the simulated clock, so it is deliberately not a SimTime.
  void RunCompute(double cpu_seconds,  // CPU work units, not a SimTime span.
                  std::function<void()> done);
  int active_compute() const { return cpu_.active(); }

  DiskSim& disk(int index) { return *disks_[static_cast<size_t>(index)]; }
  const DiskSim& disk(int index) const { return *disks_[static_cast<size_t>(index)]; }
  BufferCacheSim& buffer_cache() { return *buffer_cache_; }

  // Enables rate tracing on the CPU pool and all disks.
  void EnableTrace();

  const FluidServer& cpu() const { return cpu_; }
  FluidServer& cpu() { return cpu_; }

 private:
  int id_;
  MachineConfig config_;
  FluidServer cpu_;
  std::vector<std::unique_ptr<DiskSim>> disks_;
  std::unique_ptr<BufferCacheSim> buffer_cache_;
};

class ClusterSim {
 public:
  // The cluster object is central wiring owned by the driver-side environment;
  // its machine()/fabric() accessors are pass-throughs into other domains.
  MONO_DOMAIN("driver");

  ClusterSim(Simulation* sim, const ClusterConfig& config);

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  int num_machines() const { return static_cast<int>(machines_.size()); }
  MachineSim& machine(int index) { return *machines_[static_cast<size_t>(index)]; }
  const MachineSim& machine(int index) const { return *machines_[static_cast<size_t>(index)]; }
  NetworkFabricSim& fabric() { return *fabric_; }
  const ClusterConfig& config() const { return config_; }
  Simulation& sim() { return *sim_; }

  // Total cores / disks across the cluster (used by the performance model).
  int total_cores() const;
  int total_disks() const;

  // Enables rate tracing cluster-wide (CPU, disks, NIC ingress).
  void EnableTrace();

  // Whether EnableTrace() ran — lets consumers of StageUtilization distinguish
  // "measured 0% utilization" from "utilization was never measured".
  bool trace_enabled() const { return trace_enabled_; }

  // Cumulative cluster-wide device counters; subtract two snapshots to get what an
  // external observer would measure over a window.
  struct UsageCounters {
    double cpu_seconds = 0.0;  // CPU work units, not a SimTime span.
    monoutil::Bytes disk_read_bytes;
    monoutil::Bytes disk_write_bytes;
    monoutil::Bytes network_bytes;
  };
  UsageCounters SnapshotUsage() const;

 private:
  Simulation* sim_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<MachineSim>> machines_;
  std::unique_ptr<NetworkFabricSim> fabric_;
  bool trace_enabled_ = false;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_MACHINE_H_
