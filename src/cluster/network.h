// NetworkFabricSim: a full-bisection fabric connecting the machines' NICs.
//
// Each machine has a full-duplex NIC whose ingress and egress sides are separate
// bandwidth constraints. Flow rates are the max-min fair allocation over those
// constraints, computed by progressive filling (water-filling): all flows' rates
// rise together until some NIC side saturates, the flows crossing it freeze at
// their fair share, and the remaining flows keep rising through the residual
// capacity until every flow is bottlenecked at some saturated NIC. The allocation
// is therefore work-conserving: capacity one flow cannot use (because it is
// bottlenecked elsewhere) is redistributed to the flows that can.
//
// The previous model gave each flow min(egress share at src, ingress share at dst)
// with each NIC splitting equally among the flows it carries. That is exact for
// symmetric all-to-all shuffles but strands capacity under asymmetric fan-in/out —
// with flows m0→m1, m0→m1, m0→m2, m4→m2 it gave the fourth flow bw/2 where max-min
// gives 2bw/3 — distorting exactly the asymmetric shuffle-fetch patterns that
// distinguish Spark's many-concurrent-fetch behaviour from the monotasks
// receiver-driven scheduler (§3.4). It is kept, test-only, as
// SharePolicy::kMinShareLegacy so the audit layer can demonstrate catching it.
//
// Incremental solving is organised around three mechanisms (DESIGN §4):
//
//  * Epoch batching. All flow arrivals and departures carrying one simulation
//    timestamp are coalesced into a single progressive-filling pass, run from the
//    Simulation's end-of-epoch hook (Simulation::AtEpochEnd) just before the
//    clock advances — one solve per timestamp instead of one per event. Rate
//    queries (flow_rate, ActiveFlows, the audit) flush pending work first, so
//    callers never observe the transient mid-epoch state.
//  * Sorted share indexes. Every NIC side keeps its flows ordered by current
//    share (rate-keyed with flow-id tie-breaks), giving O(log n) access to a
//    side's rate sum, maximum and runner-up share.
//  * Bottleneck-set pruning. A single arrival or departure whose delta provably
//    cannot change the saturated-side structure is absorbed by an O(log n) local
//    patch instead of any re-solve: an arrival that fits the free capacity of
//    both its sides without out-ranking any flow on a side it saturates, or a
//    departure whose rate strictly out-ranks every remaining flow on each of its
//    saturated sides (so nobody was bottlenecked behind it). When a re-solve is
//    needed it is still pruned to the *affected set*, not the whole connected
//    component: the flows on the changed sides are re-solved as a sub-problem in
//    which every other flow is fixed consumption, and the boundary is then
//    checked against the max-min certification — any fixed flow that the new
//    levels prove mis-ranked (it out-ranks a saturated side's new level, or no
//    side certifies its rate any more) joins the set and the sub-solve repeats.
//    The fixpoint is exactly the audit's bottleneck certification, so pruned
//    solutions are certified by construction — see DESIGN §4 and §8. If the set
//    keeps growing the solver falls back to the full closure (every flow
//    transitively sharing a NIC side with a changed endpoint — rates outside
//    that component cannot change, so the fallback is always sufficient).
//
// Completion events go through a fabric-owned index rather than the simulation
// queue: each flow's predicted completion time lives in a sorted (time, id)
// vector and a single "next completion" event tracks the minimum. A rate change
// then re-keys two doubles in that index instead of cancelling and rescheduling
// a per-flow simulation event — the dominant cost of churn once solving itself
// is pruned, since a max-min cascade re-times many completions per delta. Rates
// are solved and applied in ascending flow-id order, and the index orders by
// (time, id), so the event schedule (and the run digest) never depends on
// traversal order.
#ifndef MONOTASKS_SRC_CLUSTER_NETWORK_H_
#define MONOTASKS_SRC_CLUSTER_NETWORK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/domain.h"
#include "src/simcore/audit.h"
#include "src/simcore/rate_trace.h"
#include "src/simcore/simulation.h"

namespace monosim {

class NetworkFabricSim : public Auditable {
 public:
  // The fabric is its own ownership domain: flows and control messages are the
  // sanctioned channel between machines. Owned by ClusterSim, which outlives
  // the simulation run, so `this` captures into its own schedule sites cannot
  // dangle (the alive_ guard additionally covers mid-run teardown).
  MONO_DOMAIN("fabric");
  MONO_SIM_OWNED;

  // All NICs share one bandwidth (each direction). `request_latency` is the one-way
  // delay for small control messages (shuffle data requests).
  NetworkFabricSim(Simulation* sim, int num_machines, monoutil::BytesPerSecond nic_bandwidth,
                   monoutil::SimTime request_latency = monoutil::Millis(1));
  ~NetworkFabricSim() override;

  NetworkFabricSim(const NetworkFabricSim&) = delete;
  NetworkFabricSim& operator=(const NetworkFabricSim&) = delete;

  using FlowId = uint64_t;

  // How NIC bandwidth is divided among flows. kMaxMinFair is the model;
  // kMinShareLegacy reinstates the historical min-of-equal-shares shortcut (which
  // strands capacity under asymmetric fan-in) so tests can demonstrate that the
  // max-min-bottleneck audit detects it. The legacy policy re-solves eagerly per
  // change (no batching or pruning), preserving the historical cost profile the
  // benches compare against.
  enum class SharePolicy {
    kMaxMinFair,
    kMinShareLegacy,
  };
  void set_share_policy_for_test(SharePolicy policy) { share_policy_ = policy; }

  // Starts a bulk data flow of `bytes` from machine `src` to machine `dst` (src !=
  // dst); `done` (any void() callable; oversize captures draw pooled storage
  // from the owning simulation's arena) fires when the last byte arrives.
  template <typename F>
  FlowId StartFlow(int src, int dst, monoutil::Bytes bytes, F&& done) {
    return StartFlowImpl(src, dst, bytes, WrapCallback(std::forward<F>(done)));
  }

  // Delivers a small control message from `src` to `dst` after the request latency.
  template <typename F>
  void SendControl(int src, int dst, F&& deliver) {
    SendControlImpl(src, dst, WrapCallback(std::forward<F>(deliver)));
  }

  int num_machines() const { return static_cast<int>(ingress_count_.size()); }
  monoutil::BytesPerSecond nic_bandwidth() const { return nic_bandwidth_; }
  monoutil::SimTime request_latency() const { return request_latency_; }

  // Number of flows currently arriving at / departing from `machine`.
  int ingress_flows(int machine) const;
  int egress_flows(int machine) const;

  // Current rate of an active flow. Flushes pending epoch work.
  monoutil::BytesPerSecond flow_rate(FlowId id) const;

  // Snapshot of the active flow set, for the property tests that compare the
  // incremental allocation against a reference max-min solver. Flushes pending
  // epoch work.
  struct FlowInfo {
    FlowId id;
    int src;
    int dst;
    monoutil::BytesPerSecond rate;
  };
  std::vector<FlowInfo> ActiveFlows() const;

  monoutil::Bytes total_bytes_transferred() const { return total_bytes_; }

  // Solver instrumentation, reset-free counters for the benches: how often the
  // progressive-filling solver actually ran, how many flows it touched, and how
  // much work the batching/pruning layers absorbed. `flows_touched` counts flows
  // per solve, so touched/solves is the mean re-solved component size.
  struct SolverStats {
    uint64_t solves = 0;             // Progressive-filling passes run.
    uint64_t flows_touched = 0;      // Σ component sizes across those passes.
    uint64_t rate_changes = 0;       // Rate installs that actually changed a rate.
    uint64_t epochs_flushed = 0;     // End-of-epoch flushes that found dirty state.
    uint64_t batched_changes = 0;    // Arrivals/departures coalesced into flushes.
    uint64_t patched_arrivals = 0;   // Arrivals absorbed by the local patch.
    uint64_t patched_departures = 0; // Departures absorbed by the local patch.
  };
  const SolverStats& solver_stats() const { return stats_; }

  // Always-on utilization/saturation integrals over NIC sides (two per machine:
  // egress and ingress), the fabric analogue of FluidServer::busy_seconds():
  // the sum over sides of virtual seconds carrying at least one flow, and the
  // subset during which the side's allocated rate sum consumed the full NIC
  // bandwidth (the side was a max-min bottleneck). Dividing by 2*num_machines
  // gives mean per-side utilization; saturated/busy is the fraction of carried
  // time with no headroom. Both integrate up to now and need no tracing.
  monoutil::SimTime busy_side_seconds() const;
  monoutil::SimTime saturated_side_seconds() const;

  // Per-machine ingress rate trace (enabled for all machines by EnableTrace).
  void EnableTrace();
  const RateTrace& ingress_trace(int machine) const;
  double MeanIngressUtilization(int machine, SimTime from, SimTime to) const;

  // Invariant auditing (audit.h): flow counts consistent with the per-machine flow
  // lists (both directions), the sorted share indexes consistent with the flow
  // lists, per-NIC ingress/egress rate sums within the NIC bandwidth, flow rates
  // non-negative, every flow's rate certified max-min fair (it touches at least
  // one saturated NIC side where no flow has a larger share), and no flows left
  // when the simulation drains. Pending epoch work is flushed first, so the audit
  // always certifies the batched solution, never the mid-epoch transient.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  struct Flow {
    FlowId id;
    int src;
    int dst;
    // Bytes still to move, fractional: fluid-model progress under a rate leaves
    // sub-byte residues mid-transfer, so this is not an exact monoutil::Bytes.
    double remaining;
    monoutil::BytesPerSecond rate;
    SimTime last_update;
    InlineCallback done;
    // Absolute predicted completion time, mirrored in the completion index;
    // negative while the flow has not been assigned a rate yet.
    SimTime predicted_done{-1.0};
    uint64_t visit_stamp = 0;  // Affected-set membership stamp (one stamp per flush).
  };

  // One NIC side's persistent share index: the flows crossing the side ordered by
  // current rate, ties broken by flow id so the order never depends on addresses.
  // Maintained by ApplyRate and flow add/remove; gives the pruning patches (and
  // consistency audits) the side's rate sum and top shares in O(log n). Kept as a
  // sorted vector rather than a tree: a NIC side carries few flows, so a binary
  // search plus a short memmove beats node allocation on every re-key. Sides are
  // keyed 2m (egress of machine m) / 2m+1 (ingress of m).
  struct SideIndex {
    monoutil::BytesPerSecond rate_sum;
    // Ascending (rate, id). Entries are keyed by the flow's exact stored rate —
    // bit-identical, not merely close — which the strong key type now enforces
    // at every call site (a recomputed double cannot sneak in unconverted).
    std::vector<std::pair<monoutil::BytesPerSecond, FlowId>> shares;

    monoutil::BytesPerSecond max_share() const {
      return shares.empty() ? monoutil::BytesPerSecond() : shares.back().first;
    }
    void Insert(monoutil::BytesPerSecond rate, FlowId id) {
      shares.insert(std::upper_bound(shares.begin(), shares.end(),
                                     std::make_pair(rate, id)),
                    {rate, id});
      rate_sum += rate;
    }
    void Erase(monoutil::BytesPerSecond rate, FlowId id);  // The entry must exist.
    // Re-keys an existing entry in place: one rotate over the span between the
    // old and new positions instead of an erase+insert pair of memmoves.
    void Move(monoutil::BytesPerSecond old_rate, monoutil::BytesPerSecond new_rate,
              FlowId id);
    bool Contains(monoutil::BytesPerSecond rate, FlowId id) const {
      const auto entry = std::make_pair(rate, id);
      if (shares.size() <= 16) {
        // A NIC side usually carries a handful of flows: a predictable linear
        // scan beats a binary search's data-dependent branches.
        for (const auto& e : shares) {
          if (e == entry) {
            return true;
          }
        }
        return false;
      }
      return std::binary_search(shares.begin(), shares.end(), entry);
    }
  };

  static int EgressKey(int machine) { return 2 * machine; }
  static int IngressKey(int machine) { return 2 * machine + 1; }

  // Marks both endpoint sides of a change dirty and registers the end-of-epoch
  // flush with the simulation (once per open epoch).
  void MarkDirty(int src, int dst);
  void MarkSideDirty(int side_key);

  // Runs the deferred epoch work, if any: seeds the affected set from the dirty
  // sides, sub-solves it (unaffected flows held as fixed consumption), expands
  // the set through the certification boundary check until it reaches a
  // fixpoint (or falls back to the full closure), applies the rates in
  // ascending flow-id order, and records the touched ingress traces.
  // Idempotent; no-op when clean.
  void FlushPending();
  // Const-context flush for the rate queries and the audit: pending epoch work is
  // deferred evaluation of state the caller is about to read, not a logical
  // mutation, so flushing from const observers is sound.
  void FlushPendingConst() const { const_cast<NetworkFabricSim*>(this)->FlushPending(); }

  // Local absorption of a single change while the fabric is clean (no dirty
  // sides). TryPatchArrival gives the new flow min(free egress, free ingress)
  // when that cannot disturb the existing bottleneck structure; returns false if
  // a full re-solve is needed. CanPatchDeparture says whether removing `flow`
  // provably leaves every remaining rate unchanged.
  bool TryPatchArrival(Flow* flow);
  bool CanPatchDeparture(const Flow& flow) const;

  // Re-derives the rate of every flow in the connected component(s) of the
  // flow-sharing graph touching `src`'s egress or `dst`'s ingress side, eagerly.
  // Legacy-policy path only; the max-min policy batches via MarkDirty/FlushPending.
  void RecomputeAffected(int src, int dst);

  // All flows transitively sharing a NIC side with the seed sides, appended to
  // `component` (which is cleared first).
  void CollectFromSides(const std::vector<int>& seed_sides, std::vector<Flow*>* component);

  // The flows crossing one NIC side (egress list for even keys, ingress for odd).
  const std::vector<Flow*>& SideFlows(int key) const {
    return (key % 2 == 0) ? egress_flows_[static_cast<size_t>(key / 2)]
                          : ingress_flows_[static_cast<size_t>(key / 2)];
  }

  // Reorders `flows` into ascending flow-id order (the canonical order rates are
  // solved and applied in). Sorting (id, ptr) pairs keeps the comparisons out of
  // the flows' cache lines.
  void SortByFlowId(std::vector<Flow*>* flows);

  // Progressive-filling max-min rates for `component`, written into `new_rates`
  // (parallel to `component`). Flows *not* in `component` (those not carrying
  // the current visit stamp) are held at their existing rates: each slot's
  // capacity is reduced by their consumption, which is what lets FlushPending
  // solve a pruned affected set instead of the whole closure. A full-closure
  // component has no such flows on any of its sides, so its base reductions are
  // exactly zero and the solve is identical to a from-scratch pass. The next
  // bottleneck side is found through an ordered frontier of (saturation level,
  // side) candidates, re-keyed in O(log n) as flows freeze, rather than
  // rescanning the component per round. Non-const: the slot table and frontier
  // live in persistent scratch members so the per-epoch solve does not pay a
  // fresh round of allocations; the per-slot levels, totals and maxima are left
  // behind for the boundary expansion check. With `identity_slots` the caller
  // vouches that `component` spans every live flow; slots are then the side
  // keys themselves and the stamped side->slot map is skipped entirely.
  void SolveMaxMin(const std::vector<Flow*>& component, std::vector<double>* new_rates,
                   bool identity_slots = false);

  // Fills slot_total_ / slot_max_affected_ from the last solve's rates, for the
  // boundary expansion check. Split out of SolveMaxMin so fallback solves —
  // which have no boundary to check — skip it.
  void RecordSlotTotals(const std::vector<double>& new_rates);

  // After a sub-solve: true if some side of `flow` still certifies its (fixed)
  // rate — saturated, with `flow` holding a maximal share. Sides in the solve
  // are read from the solver's per-slot results, untouched sides from their
  // share index (which the solve cannot have changed).
  bool CertifiedAfterSolve(const Flow& flow, double eps) const;

  // Advances `flow`'s progress under its old rate, then installs `new_rate`,
  // updates the share indexes, and re-keys the flow in the completion index.
  // Skips flows whose rate is unchanged, so symmetric recomputes cost nothing.
  void ApplyRate(Flow* flow, monoutil::BytesPerSecond new_rate);

  // Completion index maintenance: the sorted (time, id) entries, the single
  // simulation event tracking their minimum, and the handler that completes
  // every flow due at the fired timestamp.
  void InsertCompletion(SimTime at, FlowId id);
  void EraseCompletion(SimTime at, FlowId id);
  // Re-keys an indexed completion in place: one rotate over the span between
  // the old and new positions, instead of an erase (memmove to the end) plus an
  // insert (another). Rate perturbations move a completion a short distance, so
  // the rotated span is usually a handful of entries.
  void MoveCompletion(SimTime from, SimTime to, FlowId id);
  void UpdateCompletionTimer();
  void OnNextCompletion();

  // Records the ingress rate trace and tracer counters for `machines` (deduped
  // by the caller where it matters; harmless when repeated).
  void RecordIngressTouched(const std::vector<int>& machines);

  void OnFlowComplete(FlowId id);

  // Wraps a caller's callback against the owning simulation's arena; a
  // ready-made InlineCallback passes through. Shared by the StartFlow and
  // SendControl templates.
  template <typename F>
  InlineCallback WrapCallback(F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      return std::forward<F>(fn);
    } else {
      return InlineCallback(std::forward<F>(fn), sim_->callback_arena());
    }
  }

  // Out-of-line implementations behind the StartFlow/SendControl templates.
  FlowId StartFlowImpl(int src, int dst, monoutil::Bytes bytes, InlineCallback&& done);
  void SendControlImpl(int src, int dst, InlineCallback&& deliver);

  // Arena allocation: pop the free list (growing it by a block when empty) and
  // reset the recycled struct's solver-visible fields; completed flows go back
  // on the list. The live flow with `id`, found by binary search on the
  // id-ordered registry; nullptr when absent.
  Flow* AllocFlow();
  void FreeFlow(Flow* flow) { free_flows_.push_back(flow); }
  Flow* FindFlow(FlowId id) const;

  monoutil::BytesPerSecond LegacyMinShare(const Flow& flow) const;
  void RecordIngressRates(const std::vector<int>& machines);

  // Advances the side-time integrals to `now` under the current busy/saturated
  // side counts (both constant since the last accumulation). Called before any
  // mutation that changes a side's flow count or rate sum; the mutations in a
  // same-timestamp batch contribute zero dt, and only the final counts survive
  // into the next non-zero interval. Const (with mutable integrals) so the
  // read accessors can bring the totals up to now.
  void AccumulateSideTime(SimTime now) const;
  bool SideSaturated(int side_key) const {
    const double bw = nic_bandwidth_.bps();
    return sides_[static_cast<size_t>(side_key)].rate_sum.bps() >=
           bw - 1e-9 * std::max(1.0, bw);
  }

  Simulation* sim_;
  monoutil::BytesPerSecond nic_bandwidth_;
  monoutil::SimTime request_latency_;

  // Flow registry: every live flow in ascending id order — the canonical solve
  // order. Ids are assigned monotonically, so arrival is a push_back; departure
  // (and lookup) is a binary search. Full-component solves (the common case in
  // a loaded fabric) take this list verbatim instead of re-sorting the
  // collected set. The structs themselves come from a pooled arena below.
  std::vector<Flow*> flows_by_id_;
  // Flow arena: fixed-size blocks and a LIFO free list. Pooling keeps the
  // structs clustered in a few pages, so the solver's and audit's walks don't
  // chase one heap allocation per flow; recycling makes steady-state churn
  // allocation-free. Only flows_by_id_ decides identity and order — pointers
  // never do (recycled addresses would otherwise leak into the schedule).
  std::vector<std::unique_ptr<Flow[]>> flow_blocks_;
  std::vector<Flow*> free_flows_;
  std::vector<int> ingress_count_;
  std::vector<int> egress_count_;
  std::vector<std::vector<Flow*>> ingress_flows_;
  std::vector<std::vector<Flow*>> egress_flows_;
  std::vector<SideIndex> sides_;  // Indexed by EgressKey/IngressKey.
  // Predicted completion times, sorted *descending* by (time, id): the earliest
  // completion sits at the back, so firing it is a pop_back and re-keying an
  // imminent completion moves little memory. One simulation event tracks the
  // minimum; per-flow events would pay a queue cancel+reschedule for every rate
  // change a cascade re-times.
  std::vector<std::pair<SimTime, FlowId>> completions_;
  EventHandle next_completion_;
  SimTime next_completion_time_{-1.0};
  FlowId next_id_ = 1;
  monoutil::Bytes total_bytes_;
  SharePolicy share_policy_ = SharePolicy::kMaxMinFair;

  // Closure-collection scratch (CollectFromSides), reused across calls: flows and
  // sides are marked visited by stamp so nothing needs clearing between runs.
  uint64_t visit_stamp_ = 0;
  std::vector<uint64_t> side_visit_stamp_;
  std::vector<int> pending_sides_;

  // Solver scratch (SolveMaxMin): the side-key -> slot map is stamped per solve,
  // per-slot state keeps its capacity across solves, and the bottleneck frontier
  // is a binary min-heap with lazy invalidation (an entry is stale once its
  // slot's version moved on). All persistent so the steady-state solve allocates
  // nothing.
  uint64_t solve_stamp_ = 0;
  std::vector<uint64_t> slot_stamp_;  // Side key -> last solve that used it.
  std::vector<int> slot_of_;          // Side key -> slot within that solve.
  std::vector<double> slot_consumed_;
  std::vector<int> slot_unfrozen_;
  std::vector<double> slot_cap_;  // Fill level at which the slot saturates.
  // Slot -> component-flow-index adjacency, CSR layout (slot_cursor_ is the
  // fill pass's write cursor).
  std::vector<int> slot_adj_offset_;
  std::vector<int> slot_adj_;
  std::vector<int> slot_cursor_;
  // Per-slot sub-solve results, read by the boundary expansion check: the side
  // key behind the slot, the fixed consumption of unaffected flows (and their
  // top share, filled by the expansion pre-pass), the level the side froze its
  // flows at (infinity if it never became the bottleneck), and the side's
  // post-solve total and top affected share.
  std::vector<int> slot_keys_;
  std::vector<double> slot_base_;
  std::vector<double> slot_unaffected_max_;
  std::vector<double> slot_level_;
  std::vector<double> slot_total_;
  std::vector<double> slot_max_affected_;
  std::vector<int> egress_slot_;
  std::vector<int> ingress_slot_;
  std::vector<char> frozen_;

  // Flush scratch (FlushPending), reused across epochs. `affected_sides_` is the
  // NIC sides crossed by the current affected set (plus the emptied dirty ones).
  std::vector<Flow*> component_scratch_;
  std::vector<std::pair<FlowId, Flow*>> sort_scratch_;
  std::vector<double> rates_scratch_;
  std::vector<int> touched_scratch_;
  std::vector<int> affected_sides_;
  // Fallback flushes left that may take the full flow list without re-walking
  // the closure (armed when a collected closure spans every live flow).
  int spanning_revalidate_ = 0;

  // Epoch-batching state: the NIC sides touched by changes since the last flush,
  // deduplicated by stamp, plus whether the end-of-epoch flush is registered.
  std::vector<int> dirty_sides_;
  std::vector<uint64_t> side_dirty_stamp_;
  uint64_t dirty_stamp_ = 1;
  bool flush_registered_ = false;
  // Lets a registered-but-unfired end-of-epoch flush outlive the fabric safely:
  // the callback holds a copy and no-ops once the flag is cleared.
  std::shared_ptr<bool> alive_;

  SolverStats stats_;

  // Utilization-telemetry state (AccumulateSideTime): the integrals, the time
  // they are advanced to, and the side counts they advance under. busy = sides
  // carrying >= 1 flow; saturated = sides whose rate sum consumes the NIC
  // bandwidth, maintained incrementally at every share-index mutation.
  mutable SimTime busy_side_seconds_;
  mutable SimTime saturated_side_seconds_;
  mutable SimTime side_accum_at_;
  int busy_side_count_ = 0;
  int saturated_side_count_ = 0;

  bool trace_enabled_ = false;
  std::vector<RateTrace> ingress_traces_;

  // Audit scratch: per-machine ground-truth sums/maxima recomputed by every
  // epoch-boundary sweep. Mutable because AuditInvariants is const — the sweep
  // reuses the buffers, it does not change observable fabric state.
  mutable std::vector<double> audit_ingress_sum_;
  mutable std::vector<double> audit_ingress_max_;
  mutable std::vector<double> audit_egress_sum_;
  mutable std::vector<double> audit_egress_max_;
  // Ground-truth multiset fingerprint per NIC side (commutative sum of mixed
  // (rate, id) entries), rebuilt by every sweep and compared against the same
  // sum over the incrementally-maintained share indexes.
  mutable std::vector<uint64_t> audit_side_fp_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_NETWORK_H_
