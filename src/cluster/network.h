// NetworkFabricSim: a full-bisection fabric connecting the machines' NICs.
//
// Each machine has a full-duplex NIC whose ingress and egress sides are separate
// bandwidth constraints. Flow rates are the max-min fair allocation over those
// constraints, computed by progressive filling (water-filling): all flows' rates
// rise together until some NIC side saturates, the flows crossing it freeze at
// their fair share, and the remaining flows keep rising through the residual
// capacity until every flow is bottlenecked at some saturated NIC. The allocation
// is therefore work-conserving: capacity one flow cannot use (because it is
// bottlenecked elsewhere) is redistributed to the flows that can.
//
// The previous model gave each flow min(egress share at src, ingress share at dst)
// with each NIC splitting equally among the flows it carries. That is exact for
// symmetric all-to-all shuffles but strands capacity under asymmetric fan-in/out —
// with flows m0→m1, m0→m1, m0→m2, m4→m2 it gave the fourth flow bw/2 where max-min
// gives 2bw/3 — distorting exactly the asymmetric shuffle-fetch patterns that
// distinguish Spark's many-concurrent-fetch behaviour from the monotasks
// receiver-driven scheduler (§3.4). It is kept, test-only, as
// SharePolicy::kMinShareLegacy so the audit layer can demonstrate catching it.
//
// Rates are recomputed when a flow starts or completes, over the affected closure:
// every flow transitively sharing a NIC side with the changed endpoints (rates
// outside that connected component cannot change). Each recompute cancels and
// reschedules completion events, which the Simulation's tombstone compaction keeps
// cheap.
#ifndef MONOTASKS_SRC_CLUSTER_NETWORK_H_
#define MONOTASKS_SRC_CLUSTER_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/simcore/audit.h"
#include "src/simcore/rate_trace.h"
#include "src/simcore/simulation.h"

namespace monosim {

class NetworkFabricSim : public Auditable {
 public:
  // All NICs share one bandwidth (each direction). `request_latency` is the one-way
  // delay for small control messages (shuffle data requests).
  NetworkFabricSim(Simulation* sim, int num_machines, monoutil::BytesPerSecond nic_bandwidth,
                   monoutil::SimTime request_latency = monoutil::Millis(1));
  ~NetworkFabricSim() override;

  NetworkFabricSim(const NetworkFabricSim&) = delete;
  NetworkFabricSim& operator=(const NetworkFabricSim&) = delete;

  using FlowId = uint64_t;

  // How NIC bandwidth is divided among flows. kMaxMinFair is the model;
  // kMinShareLegacy reinstates the historical min-of-equal-shares shortcut (which
  // strands capacity under asymmetric fan-in) so tests can demonstrate that the
  // max-min-bottleneck audit detects it.
  enum class SharePolicy {
    kMaxMinFair,
    kMinShareLegacy,
  };
  void set_share_policy_for_test(SharePolicy policy) { share_policy_ = policy; }

  // Starts a bulk data flow of `bytes` from machine `src` to machine `dst` (src !=
  // dst); `done` fires when the last byte arrives.
  FlowId StartFlow(int src, int dst, monoutil::Bytes bytes, std::function<void()> done);

  // Delivers a small control message from `src` to `dst` after the request latency.
  void SendControl(int src, int dst, std::function<void()> deliver);

  int num_machines() const { return static_cast<int>(ingress_count_.size()); }
  monoutil::BytesPerSecond nic_bandwidth() const { return nic_bandwidth_; }
  monoutil::SimTime request_latency() const { return request_latency_; }

  // Number of flows currently arriving at / departing from `machine`.
  int ingress_flows(int machine) const;
  int egress_flows(int machine) const;

  // Current rate of an active flow (bytes/second).
  double flow_rate(FlowId id) const;

  // Snapshot of the active flow set, for the property tests that compare the
  // incremental allocation against a reference max-min solver.
  struct FlowInfo {
    FlowId id;
    int src;
    int dst;
    double rate;
  };
  std::vector<FlowInfo> ActiveFlows() const;

  monoutil::Bytes total_bytes_transferred() const { return total_bytes_; }

  // Per-machine ingress rate trace (enabled for all machines by EnableTrace).
  void EnableTrace();
  const RateTrace& ingress_trace(int machine) const;
  double MeanIngressUtilization(int machine, SimTime from, SimTime to) const;

  // Invariant auditing (audit.h): flow counts consistent with the per-machine flow
  // lists (both directions), per-NIC ingress/egress rate sums within the NIC
  // bandwidth, flow rates non-negative, every flow's rate certified max-min fair
  // (it touches at least one saturated NIC side where no flow has a larger share),
  // and no flows left when the simulation drains.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  struct Flow {
    FlowId id;
    int src;
    int dst;
    double remaining;
    double rate = 0.0;
    SimTime last_update;
    std::function<void()> done;
    EventHandle completion;
    uint64_t visit_epoch = 0;  // Closure-collection stamp (RecomputeAffected).
  };

  // Re-derives the rate of every flow in the connected component(s) of the
  // flow-sharing graph touching `src`'s egress or `dst`'s ingress side (after a
  // flow set change at those machines), updating progress and completion events.
  void RecomputeAffected(int src, int dst);

  // All flows transitively sharing a NIC side with the two seed sides.
  std::vector<Flow*> CollectComponent(int src, int dst);

  // Progressive-filling max-min rates for `component`, written into `new_rates`
  // (parallel to `component`).
  void SolveMaxMin(const std::vector<Flow*>& component, std::vector<double>* new_rates) const;

  // Advances `flow`'s progress under its old rate, then installs `new_rate` and
  // reschedules its completion event. Skips flows whose rate is unchanged, so
  // symmetric recomputes do not churn the event queue.
  void ApplyRate(Flow* flow, double new_rate);

  void OnFlowComplete(FlowId id);
  double LegacyMinShare(const Flow& flow) const;
  void RecordIngressRates(const std::vector<int>& machines);

  Simulation* sim_;
  monoutil::BytesPerSecond nic_bandwidth_;
  monoutil::SimTime request_latency_;

  std::unordered_map<FlowId, std::unique_ptr<Flow>> flows_;
  std::vector<int> ingress_count_;
  std::vector<int> egress_count_;
  std::vector<std::vector<Flow*>> ingress_flows_;
  std::vector<std::vector<Flow*>> egress_flows_;
  FlowId next_id_ = 1;
  monoutil::Bytes total_bytes_ = 0;
  SharePolicy share_policy_ = SharePolicy::kMaxMinFair;
  uint64_t visit_epoch_ = 0;

  bool trace_enabled_ = false;
  std::vector<RateTrace> ingress_traces_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_NETWORK_H_
