// NetworkFabricSim: a full-bisection fabric connecting the machines' NICs.
//
// Each machine has a full-duplex NIC; a flow from src to dst receives
// min(egress share at src, ingress share at dst), with each NIC splitting its
// bandwidth equally among the flows it carries. This equal-split model is exact for
// the symmetric all-to-all shuffles the paper's network-heavy workloads produce, and
// errs (conservatively) toward under-utilization in asymmetric cases; it avoids the
// cost of full max-min water-filling while preserving the receiver-side bottleneck
// behaviour that the monotasks network scheduler is designed around (§3.3).
#ifndef MONOTASKS_SRC_CLUSTER_NETWORK_H_
#define MONOTASKS_SRC_CLUSTER_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/simcore/audit.h"
#include "src/simcore/rate_trace.h"
#include "src/simcore/simulation.h"

namespace monosim {

class NetworkFabricSim : public Auditable {
 public:
  // All NICs share one bandwidth (each direction). `request_latency` is the one-way
  // delay for small control messages (shuffle data requests).
  NetworkFabricSim(Simulation* sim, int num_machines, monoutil::BytesPerSecond nic_bandwidth,
                   monoutil::SimTime request_latency = monoutil::Millis(1));
  ~NetworkFabricSim() override;

  NetworkFabricSim(const NetworkFabricSim&) = delete;
  NetworkFabricSim& operator=(const NetworkFabricSim&) = delete;

  using FlowId = uint64_t;

  // Starts a bulk data flow of `bytes` from machine `src` to machine `dst` (src !=
  // dst); `done` fires when the last byte arrives.
  FlowId StartFlow(int src, int dst, monoutil::Bytes bytes, std::function<void()> done);

  // Delivers a small control message from `src` to `dst` after the request latency.
  void SendControl(int src, int dst, std::function<void()> deliver);

  int num_machines() const { return static_cast<int>(ingress_count_.size()); }
  monoutil::BytesPerSecond nic_bandwidth() const { return nic_bandwidth_; }
  monoutil::SimTime request_latency() const { return request_latency_; }

  // Number of flows currently arriving at / departing from `machine`.
  int ingress_flows(int machine) const;
  int egress_flows(int machine) const;

  monoutil::Bytes total_bytes_transferred() const { return total_bytes_; }

  // Per-machine ingress rate trace (enabled for all machines by EnableTrace).
  void EnableTrace();
  const RateTrace& ingress_trace(int machine) const;
  double MeanIngressUtilization(int machine, SimTime from, SimTime to) const;

  // Invariant auditing (audit.h): flow counts consistent with the per-machine flow
  // lists, per-NIC ingress/egress rate sums within the NIC bandwidth, flow rates
  // non-negative, and no flows left when the simulation drains.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  struct Flow {
    FlowId id;
    int src;
    int dst;
    double remaining;
    double rate = 0.0;
    SimTime last_update;
    std::function<void()> done;
    EventHandle completion;
  };

  // Re-derives the rate of every flow touching `src` or `dst` (after a flow set
  // change at those machines), updating progress and completion events.
  void RecomputeAround(int src, int dst);
  void UpdateFlowRate(Flow* flow);
  void OnFlowComplete(FlowId id);
  double ShareFor(const Flow& flow) const;
  void RecordIngressRates(const std::vector<int>& machines);

  Simulation* sim_;
  monoutil::BytesPerSecond nic_bandwidth_;
  monoutil::SimTime request_latency_;

  std::unordered_map<FlowId, std::unique_ptr<Flow>> flows_;
  std::vector<int> ingress_count_;
  std::vector<int> egress_count_;
  std::vector<std::vector<Flow*>> ingress_flows_;
  std::vector<std::vector<Flow*>> egress_flows_;
  FlowId next_id_ = 1;
  monoutil::Bytes total_bytes_ = 0;

  bool trace_enabled_ = false;
  std::vector<RateTrace> ingress_traces_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_NETWORK_H_
