// Hardware configuration for the simulated cluster.
//
// Presets mirror the instance types used in the paper's evaluation (§5.1): machines
// with 8 vCPUs, ~60 GB of memory, and two HDDs (m2.4xlarge-like) or one/two SSDs
// (i2.2xlarge-like). Absolute device speeds are calibration parameters, not claims;
// the experiments depend on ratios (CPU work per byte vs. device bandwidth).
#ifndef MONOTASKS_SRC_CLUSTER_CLUSTER_CONFIG_H_
#define MONOTASKS_SRC_CLUSTER_CLUSTER_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace monosim {

enum class DiskType {
  kHdd,
  kSsd,
};

struct DiskConfig {
  DiskType type = DiskType::kHdd;
  // Sequential bandwidth for a single streaming request.
  monoutil::BytesPerSecond bandwidth = monoutil::MiBps(90);
  // HDD only: aggregate throughput degrades as 1 / (1 + alpha * (w - 1)) where w is
  // the total contention weight of the in-service requests (see the weights below).
  // Weights encode what actually costs head movement on a disk: concurrent
  // *sequential readers* are nearly free (OS readahead amortizes the seeks), writes
  // alone are nearly free (the elevator batches them), but writes interleaved with
  // reads thrash. Calibrated jointly against §5.2's sort (Spark/MonoSpark = 1.54x,
  // from mixed read+flush traffic) and Fig 8's read-only job (Spark ~flat).
  double seek_alpha = 0.2;
  // SSD only: number of requests needed to reach peak bandwidth (paper §3.3 found 4),
  // and the fraction of peak available to a single stream.
  int ssd_channels = 4;
  double ssd_single_stream_fraction = 0.55;
  // Contention weight of a sequential read stream (readahead absorbs most seeks).
  double read_contention_weight = 0.25;
  // Contention weight of a write when no reads are in service (elevator-batched,
  // mostly appends) and when interleaved with reads (head thrashes between the read
  // and write regions).
  double write_contention_weight_solo = 0.3;
  double write_contention_weight_mixed = 6.0;

  static DiskConfig Hdd() { return DiskConfig{}; }
  static DiskConfig Ssd() {
    DiskConfig config;
    config.type = DiskType::kSsd;
    config.bandwidth = monoutil::MiBps(450);
    return config;
  }
};

struct BufferCacheConfig {
  // Dirty bytes the OS tolerates before throttling writers into the disk (Linux's
  // dirty_ratio applied to the ~60 GB workers of §5.1).
  monoutil::Bytes dirty_limit = monoutil::GiB(8);
  // Delay before background writeback begins flushing dirty data.
  monoutil::SimTime writeback_delay = monoutil::Seconds(30);
  // Size of each background flush request issued to a disk.
  monoutil::Bytes flush_chunk = monoutil::MiB(16);
  // Memory copy bandwidth governing how fast a cached write "completes".
  monoutil::BytesPerSecond memory_bandwidth = monoutil::GiBps(3);
};

struct MachineConfig {
  int cores = 8;
  std::vector<DiskConfig> disks = {DiskConfig::Hdd(), DiskConfig::Hdd()};
  // Full-duplex NIC bandwidth (each direction).
  monoutil::BytesPerSecond nic_bandwidth = monoutil::Gbps(1);
  monoutil::Bytes memory = monoutil::GiB(60);
  BufferCacheConfig buffer_cache;

  // 8 vCPU, 2 HDD, 1 Gbps: the m2.4xlarge-like workers from §5.1.
  static MachineConfig HddWorker(int num_disks = 2);
  // 8 vCPU, n SSD, 1 Gbps: the i2.2xlarge-like workers from §5.1.
  static MachineConfig SsdWorker(int num_disks = 2);
};

struct ClusterConfig {
  int num_machines = 5;
  MachineConfig machine;
  uint64_t seed = 42;
  // Optional per-machine overrides (keyed by machine index). Used to model
  // heterogeneous or degraded hardware — e.g. one machine with a failing disk —
  // which is one of the performance questions the paper's introduction poses.
  std::vector<std::pair<int, MachineConfig>> overrides;

  static ClusterConfig Of(int num_machines, MachineConfig machine, uint64_t seed = 42) {
    ClusterConfig config;
    config.num_machines = num_machines;
    config.machine = machine;
    config.seed = seed;
    return config;
  }

  // The configuration machine `index` should use.
  const MachineConfig& MachineAt(int index) const {
    for (const auto& [machine_index, config] : overrides) {
      if (machine_index == index) {
        return config;
      }
    }
    return machine;
  }
};

inline MachineConfig MachineConfig::HddWorker(int num_disks) {
  MachineConfig config;
  config.disks.assign(static_cast<size_t>(num_disks), DiskConfig::Hdd());
  return config;
}

inline MachineConfig MachineConfig::SsdWorker(int num_disks) {
  MachineConfig config;
  config.disks.assign(static_cast<size_t>(num_disks), DiskConfig::Ssd());
  return config;
}

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_CLUSTER_CONFIG_H_
