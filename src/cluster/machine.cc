#include "src/cluster/machine.h"

#include <utility>

#include "src/common/check.h"

namespace monosim {

MachineSim::MachineSim(Simulation* sim, int machine_id, const MachineConfig& config)
    : id_(machine_id),
      config_(config),
      cpu_(sim, "machine" + std::to_string(machine_id) + ".cpu",
           ConstantCapacity(static_cast<double>(config.cores)), /*per_request_cap=*/1.0) {
  MONO_CHECK(config.cores >= 1);
  MONO_CHECK(!config.disks.empty());
  cpu_.set_nominal_capacity(static_cast<double>(config.cores));
  std::vector<DiskSim*> raw_disks;
  for (size_t d = 0; d < config.disks.size(); ++d) {
    disks_.push_back(std::make_unique<DiskSim>(
        sim, "machine" + std::to_string(machine_id) + ".disk" + std::to_string(d),
        config.disks[d]));
    raw_disks.push_back(disks_.back().get());
  }
  buffer_cache_ = std::make_unique<BufferCacheSim>(sim, config.buffer_cache, raw_disks);
}

void MachineSim::RunCompute(double cpu_seconds, std::function<void()> done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(cpu_seconds >= 0);
  cpu_.Submit(cpu_seconds, std::move(done));
}

void MachineSim::EnableTrace() {
  cpu_.EnableTrace();
  for (auto& disk : disks_) {
    disk->EnableTrace();
  }
}

ClusterSim::ClusterSim(Simulation* sim, const ClusterConfig& config)
    : sim_(sim), config_(config) {
  MONO_CHECK(config.num_machines >= 1);
  for (int m = 0; m < config.num_machines; ++m) {
    machines_.push_back(std::make_unique<MachineSim>(sim, m, config.MachineAt(m)));
  }
  fabric_ = std::make_unique<NetworkFabricSim>(sim, config.num_machines,
                                               config.machine.nic_bandwidth);
}

int ClusterSim::total_cores() const {
  return num_machines() * config_.machine.cores;
}

int ClusterSim::total_disks() const {
  return num_machines() * static_cast<int>(config_.machine.disks.size());
}

ClusterSim::UsageCounters ClusterSim::SnapshotUsage() const {
  UsageCounters counters;
  for (const auto& machine : machines_) {
    counters.cpu_seconds += machine->cpu().total_served();
    for (int d = 0; d < machine->num_disks(); ++d) {
      counters.disk_read_bytes += machine->disk(d).bytes_read();
      counters.disk_write_bytes += machine->disk(d).bytes_written();
    }
  }
  counters.network_bytes = fabric_->total_bytes_transferred();
  return counters;
}

void ClusterSim::EnableTrace() {
  trace_enabled_ = true;
  for (auto& machine : machines_) {
    machine->EnableTrace();
  }
  // mono_lint: allow(domain-ownership) -- config-time fan-out: tracing is enabled before the simulation runs.
  fabric_->EnableTrace();
}

}  // namespace monosim
