#include "src/cluster/disk.h"

#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace monosim {
namespace {

CapacityFn MakeCapacity(const DiskConfig& config) {
  switch (config.type) {
    case DiskType::kHdd:
      return HddCapacity(config.bandwidth.bps(), config.seek_alpha);
    case DiskType::kSsd:
      return SsdCapacity(config.bandwidth.bps(), config.ssd_channels,
                         config.ssd_single_stream_fraction);
  }
  MONO_CHECK_MSG(false, "unknown disk type");
  return nullptr;
}

double NominalBandwidth(const DiskConfig& config) {
  // Utilization is measured against peak bandwidth, which for an SSD is only reached
  // with several outstanding requests. (FluidServer capacity is in generic work
  // units per second; for a disk the work unit is one byte.)
  return config.bandwidth.bps();
}

}  // namespace

DiskSim::DiskSim(Simulation* sim, std::string name, const DiskConfig& config)
    : sim_(sim), config_(config), server_(sim, std::move(name), MakeCapacity(config)) {
  server_.set_nominal_capacity(NominalBandwidth(config));
  sim_->RegisterAuditable(this);
}

DiskSim::~DiskSim() {
  sim_->UnregisterAuditable(this);
}

void DiskSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = server_.name().c_str();
  audit.Expect(bytes_read_ >= monoutil::Bytes(0) && bytes_written_ >= monoutil::Bytes(0),
               now, source,
               "byte-counters-non-negative", "cumulative read/write bytes went negative");
  audit.ExpectLazy(active_reads_ >= 0 && active_reads_ <= server_.active(), now, source,
                   "active-read-bookkeeping", [&] {
                     std::ostringstream d;
                     d << "active_reads " << active_reads_ << " outside [0, "
                       << server_.active() << "]";
                     return d.str();
                   });
  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(active_reads_ == 0, now, source, "drained", [&] {
      std::ostringstream d;
      d << active_reads_ << " read(s) still in flight after the event queue drained";
      return d.str();
    });
  }
}

void DiskSim::ReadImpl(monoutil::Bytes bytes, InlineCallback&& done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(bytes >= monoutil::Bytes(0));
  bytes_read_ += bytes;
  ++active_reads_;
  server_.Submit(
      static_cast<double>(bytes.count()),
      [this, done = std::move(done)]() mutable {
        --active_reads_;
        done();
      },
      config_.read_contention_weight, /*share_weight=*/1.0);
}

void DiskSim::WriteImpl(monoutil::Bytes bytes, InlineCallback&& done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(bytes >= monoutil::Bytes(0));
  bytes_written_ += bytes;
  // A write interleaved with reads thrashes the head; writes alone are batched by
  // the elevator and close to free. The weight is fixed at submission, which is a
  // fair approximation because writes are issued in bounded chunks.
  //
  // The contention weights model what a request *costs* the device, not how the
  // elevator prioritizes it — a mixed write destroys sequential bandwidth but does
  // not get served 24x faster than a read. All disk requests therefore carry share
  // weight 1 (equal bandwidth split), which is also what the contention weights
  // were calibrated against.
  const double weight = active_reads_ > 0 ? config_.write_contention_weight_mixed
                                          : config_.write_contention_weight_solo;
  server_.Submit(static_cast<double>(bytes.count()), std::move(done), weight,
                 /*share_weight=*/1.0);
}

}  // namespace monosim
