#include "src/cluster/disk.h"

#include <utility>

#include "src/common/check.h"

namespace monosim {
namespace {

CapacityFn MakeCapacity(const DiskConfig& config) {
  switch (config.type) {
    case DiskType::kHdd:
      return HddCapacity(config.bandwidth, config.seek_alpha);
    case DiskType::kSsd:
      return SsdCapacity(config.bandwidth, config.ssd_channels,
                         config.ssd_single_stream_fraction);
  }
  MONO_CHECK_MSG(false, "unknown disk type");
  return nullptr;
}

double NominalBandwidth(const DiskConfig& config) {
  // Utilization is measured against peak bandwidth, which for an SSD is only reached
  // with several outstanding requests.
  return config.bandwidth;
}

}  // namespace

DiskSim::DiskSim(Simulation* sim, std::string name, const DiskConfig& config)
    : config_(config), server_(sim, std::move(name), MakeCapacity(config)) {
  server_.set_nominal_capacity(NominalBandwidth(config));
}

void DiskSim::Read(monoutil::Bytes bytes, std::function<void()> done) {
  MONO_CHECK(bytes >= 0);
  bytes_read_ += bytes;
  ++active_reads_;
  server_.Submit(
      static_cast<double>(bytes),
      [this, done = std::move(done)] {
        --active_reads_;
        done();
      },
      config_.read_contention_weight);
}

void DiskSim::Write(monoutil::Bytes bytes, std::function<void()> done) {
  MONO_CHECK(bytes >= 0);
  bytes_written_ += bytes;
  // A write interleaved with reads thrashes the head; writes alone are batched by
  // the elevator and close to free. The weight is fixed at submission, which is a
  // fair approximation because writes are issued in bounded chunks.
  const double weight = active_reads_ > 0 ? config_.write_contention_weight_mixed
                                          : config_.write_contention_weight_solo;
  server_.Submit(static_cast<double>(bytes), std::move(done), weight);
}

}  // namespace monosim
