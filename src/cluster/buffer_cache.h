// BufferCacheSim: the OS page cache's write-back behaviour, per machine.
//
// This models the paper's third clarity challenge (§2.2): "resource use occurs outside
// the control of the analytics framework". Spark's disk writes complete into the cache
// at memory speed; the OS later flushes dirty pages through the disk, contending with
// the framework's own reads and writes. Small outputs may never touch the disk during
// the job at all (the query 1c effect in §5.3), while large outputs exceed the dirty
// limit and throttle writers to disk speed.
//
// Model:
//   * A cached write of n bytes completes after n / memory_bandwidth, provided the
//     dirty total stays under `dirty_limit`; otherwise the writer waits (FIFO) until
//     flushing frees headroom.
//   * Background writeback starts `writeback_delay` seconds after the cache first
//     becomes dirty (re-armed whenever it drains), or immediately under pressure, and
//     issues `flush_chunk`-sized writes to the dirtiest disk, one outstanding flush
//     per disk, through the same DiskSim the framework uses — so flushes contend.
#ifndef MONOTASKS_SRC_CLUSTER_BUFFER_CACHE_H_
#define MONOTASKS_SRC_CLUSTER_BUFFER_CACHE_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster_config.h"
#include "src/cluster/disk.h"
#include "src/common/domain.h"
#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace monotrace {
class TimeWeightedGauge;
}  // namespace monotrace

namespace monosim {

class BufferCacheSim : public Auditable {
 public:
  // Owned by its MachineSim, which outlives the simulation run, so `this`
  // captures into the writeback timer and flush completions cannot dangle.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  // `disks` must outlive the cache. One flusher state is kept per disk.
  BufferCacheSim(Simulation* sim, const BufferCacheConfig& config,
                 std::vector<DiskSim*> disks);
  ~BufferCacheSim() override;

  BufferCacheSim(const BufferCacheSim&) = delete;
  BufferCacheSim& operator=(const BufferCacheSim&) = delete;

  // Writes `bytes` destined for `disk_index` through the cache; `done` fires when the
  // write has been absorbed (memory-speed unless the cache is over its dirty limit).
  void Write(int disk_index, monoutil::Bytes bytes, std::function<void()> done);

  // Like Write, but `done` fires only once the bytes are durable on the disk ("OS
  // configured to force writes to disk", §5.3). Data still flows through the cache's
  // flusher, so writes remain elevator-batched rather than issued per caller.
  void WriteSync(int disk_index, monoutil::Bytes bytes, std::function<void()> done);

  // Dirty bytes not yet flushed to any disk.
  monoutil::Bytes total_dirty() const { return total_dirty_; }

  // Bytes flushed to disks so far by background writeback.
  monoutil::Bytes total_flushed() const { return total_flushed_; }

  // True if background writeback is actively issuing disk writes.
  bool flushing() const { return active_flushes_ > 0; }

  // Always-on saturation integral (telemetry tentpole): virtual time the
  // cache spent at or over its dirty limit — the window where writers run at
  // disk speed instead of memory speed (§2.2's invisible contention). The
  // companion per-writer stall distribution is the
  // "cache.blocked_write_wait_seconds" histogram in the metrics registry.
  monoutil::SimTime over_limit_seconds() const;

  // Invariant auditing (audit.h): byte conservation (per disk, submitted ==
  // flushed + dirty; total_dirty == Σ per-disk dirty), flusher bookkeeping
  // consistent, sync-waiter thresholds ascending and not yet reached, and no
  // dirty bytes, blocked writers, or sync waiters left when the simulation drains.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  struct PendingWrite {
    int disk_index;
    monoutil::Bytes bytes;
    std::function<void()> done;
    bool sync = false;
    SimTime blocked_at;  // When the writer hit the dirty limit.
  };
  struct SyncWaiter {
    monoutil::Bytes flushed_threshold;
    std::function<void()> done;
  };

  void AdmitWrite(int disk_index, monoutil::Bytes bytes, std::function<void()> done,
                  bool sync);
  void MaybeStartWriteback(bool pressure);
  void PumpFlusher();
  void OnFlushDone(int disk_index, monoutil::Bytes bytes);
  void TraceDirtyBytes() const;

  // Folds the current over-limit span into the integral on limit-crossing
  // transitions; called after every total_dirty_ change.
  void UpdateOverLimit();

  Simulation* sim_;
  BufferCacheConfig config_;
  std::vector<DiskSim*> disks_;
  // Machine prefix for trace series ("machine3", from the disks' names).
  std::string trace_prefix_;

  std::vector<monoutil::Bytes> dirty_per_disk_;
  std::vector<monoutil::Bytes> submitted_per_disk_;
  std::vector<monoutil::Bytes> flushed_per_disk_;
  std::vector<std::deque<SyncWaiter>> sync_waiters_;  // Per disk, thresholds ascending.
  std::vector<bool> flush_in_flight_;
  monoutil::Bytes total_dirty_;
  monoutil::Bytes total_flushed_;
  int active_flushes_ = 0;
  bool writeback_armed_ = false;   // A delayed start is scheduled.
  bool writeback_running_ = false; // Writeback keeps pumping until the cache drains.
  EventHandle writeback_timer_;
  std::deque<PendingWrite> blocked_writes_;

  // Over-dirty-limit time (UpdateOverLimit / over_limit_seconds()).
  SimTime over_limit_seconds_;
  SimTime over_limit_since_;
  bool over_limit_ = false;

  // Registry handles resolved once at construction (per-machine gauge name).
  monotrace::TimeWeightedGauge* dirty_gauge_ = nullptr;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_CLUSTER_BUFFER_CACHE_H_
