#include "src/cluster/buffer_cache.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"

namespace monosim {

using monoutil::Bytes;

BufferCacheSim::BufferCacheSim(Simulation* sim, const BufferCacheConfig& config,
                               std::vector<DiskSim*> disks)
    : sim_(sim),
      config_(config),
      disks_(std::move(disks)),
      dirty_per_disk_(disks_.size(), Bytes()),
      submitted_per_disk_(disks_.size(), Bytes()),
      flushed_per_disk_(disks_.size(), Bytes()),
      sync_waiters_(disks_.size()),
      flush_in_flight_(disks_.size(), false) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(!disks_.empty());
  MONO_CHECK(config_.dirty_limit > Bytes(0));
  MONO_CHECK(config_.memory_bandwidth > monoutil::BytesPerSecond(0));
  // Disk names look like "machine3.disk0"; the machine part keys our traces.
  trace_prefix_ = disks_[0]->name().substr(0, disks_[0]->name().find('.'));
  if (monotrace::TelemetryEnabled()) {
    dirty_gauge_ = monotrace::MetricsRegistry::Global().Gauge(
        "cache." + trace_prefix_ + ".dirty_bytes");
    dirty_gauge_->Set(static_cast<double>(total_dirty_.count()), sim_->now().seconds());
  }
  sim_->RegisterAuditable(this);
}

void BufferCacheSim::TraceDirtyBytes() const {
  if (dirty_gauge_ != nullptr && monotrace::TelemetryEnabled()) {
    dirty_gauge_->Set(static_cast<double>(total_dirty_.count()), sim_->now().seconds());
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Counter("os-cache", trace_prefix_ + ".dirty-bytes", sim_->now().seconds(),
                    static_cast<double>(total_dirty_.count()));
  }
}

void BufferCacheSim::UpdateOverLimit() {
  const bool over = total_dirty_ >= config_.dirty_limit;
  if (over == over_limit_) {
    return;
  }
  const SimTime now = sim_->now();
  if (over_limit_) {
    over_limit_seconds_ += now - over_limit_since_;
  } else {
    over_limit_since_ = now;
  }
  over_limit_ = over;
}

SimTime BufferCacheSim::over_limit_seconds() const {
  SimTime total = over_limit_seconds_;
  if (over_limit_) {
    total += sim_->now() - over_limit_since_;
  }
  return total;
}

BufferCacheSim::~BufferCacheSim() {
  sim_->UnregisterAuditable(this);
}

void BufferCacheSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = "buffer-cache";

  Bytes dirty_sum;
  Bytes flushed_sum;
  int flushes_in_flight = 0;
  for (size_t d = 0; d < disks_.size(); ++d) {
    dirty_sum += dirty_per_disk_[d];
    flushed_sum += flushed_per_disk_[d];
    if (flush_in_flight_[d]) {
      ++flushes_in_flight;
    }
    audit.ExpectLazy(dirty_per_disk_[d] >= Bytes(0), now, source, "dirty-non-negative", [&] {
      std::ostringstream out;
      out << "disk " << d << " dirty " << dirty_per_disk_[d];
      return out.str();
    });
    // Conservation: every byte ever submitted for this disk is either still dirty
    // in the cache or has been flushed through the disk.
    audit.ExpectLazy(
        submitted_per_disk_[d] == flushed_per_disk_[d] + dirty_per_disk_[d], now,
        source, "byte-conservation", [&] {
          std::ostringstream out;
          out << "disk " << d << ": submitted " << submitted_per_disk_[d]
              << " != flushed " << flushed_per_disk_[d] << " + dirty "
              << dirty_per_disk_[d];
          return out.str();
        });
    // Sync waiters are queued in submission order, so their durability thresholds
    // must ascend, and a waiter whose threshold has been reached must already have
    // been released.
    Bytes previous_threshold = flushed_per_disk_[d];
    for (const SyncWaiter& waiter : sync_waiters_[d]) {
      audit.ExpectLazy(waiter.flushed_threshold > flushed_per_disk_[d], now, source,
                       "sync-waiter-released", [&] {
                         std::ostringstream out;
                         out << "disk " << d << " waiter threshold "
                             << waiter.flushed_threshold << " already flushed ("
                             << flushed_per_disk_[d] << ") but not released";
                         return out.str();
                       });
      audit.ExpectLazy(waiter.flushed_threshold >= previous_threshold, now, source,
                       "sync-waiter-order", [&] {
                         std::ostringstream out;
                         out << "disk " << d << " waiter thresholds out of order: "
                             << waiter.flushed_threshold << " after "
                             << previous_threshold;
                         return out.str();
                       });
      previous_threshold = waiter.flushed_threshold;
    }
  }
  audit.ExpectLazy(total_dirty_ == dirty_sum, now, source, "dirty-total", [&] {
    std::ostringstream out;
    out << "total_dirty " << total_dirty_ << " != per-disk sum " << dirty_sum;
    return out.str();
  });
  audit.ExpectLazy(total_flushed_ == flushed_sum, now, source, "flushed-total", [&] {
    std::ostringstream out;
    out << "total_flushed " << total_flushed_ << " != per-disk sum " << flushed_sum;
    return out.str();
  });
  audit.ExpectLazy(active_flushes_ == flushes_in_flight, now, source,
                   "flusher-bookkeeping", [&] {
                     std::ostringstream out;
                     out << "active_flushes " << active_flushes_ << " != in-flight "
                         << flushes_in_flight;
                     return out.str();
                   });

  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(total_dirty_ == Bytes(0), now, source, "drained-dirty", [&] {
      std::ostringstream out;
      out << total_dirty_ << " dirty byte(s) left after the event queue drained";
      return out.str();
    });
    audit.ExpectLazy(blocked_writes_.empty(), now, source, "drained-blocked-writers",
                     [&] {
                       std::ostringstream out;
                       out << blocked_writes_.size()
                           << " blocked writer(s) left after the event queue drained";
                       return out.str();
                     });
    size_t waiters = 0;
    for (const auto& queue : sync_waiters_) {
      waiters += queue.size();
    }
    audit.ExpectLazy(waiters == 0, now, source, "drained-sync-waiters", [&] {
      std::ostringstream out;
      out << waiters << " sync waiter(s) left after the event queue drained";
      return out.str();
    });
  }
}

void BufferCacheSim::Write(int disk_index, Bytes bytes, std::function<void()> done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(disk_index >= 0 && static_cast<size_t>(disk_index) < disks_.size());
  MONO_CHECK(bytes >= Bytes(0));
  if (total_dirty_ + bytes > config_.dirty_limit && total_dirty_ > Bytes(0)) {
    // Over the dirty limit: throttle the writer until flushing frees headroom, and
    // make sure flushing is actually running.
    blocked_writes_.push_back(
        PendingWrite{disk_index, bytes, std::move(done), false, sim_->now()});
    MaybeStartWriteback(/*pressure=*/true);
    return;
  }
  AdmitWrite(disk_index, bytes, std::move(done), /*sync=*/false);
}

void BufferCacheSim::WriteSync(int disk_index, Bytes bytes, std::function<void()> done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(disk_index >= 0 && static_cast<size_t>(disk_index) < disks_.size());
  MONO_CHECK(bytes >= Bytes(0));
  if (total_dirty_ + bytes > config_.dirty_limit && total_dirty_ > Bytes(0)) {
    blocked_writes_.push_back(
        PendingWrite{disk_index, bytes, std::move(done), true, sim_->now()});
    MaybeStartWriteback(/*pressure=*/true);
    return;
  }
  AdmitWrite(disk_index, bytes, std::move(done), /*sync=*/true);
}

void BufferCacheSim::AdmitWrite(int disk_index, Bytes bytes, std::function<void()> done,
                                bool sync) {
  const auto d = static_cast<size_t>(disk_index);
  dirty_per_disk_[d] += bytes;
  submitted_per_disk_[d] += bytes;
  total_dirty_ += bytes;
  UpdateOverLimit();
  TraceDirtyBytes();
  if (sync) {
    // Completion is deferred until everything submitted to this disk so far —
    // including these bytes — has been flushed. Flushing is FIFO per disk, so
    // thresholds are reached in order.
    sync_waiters_[d].push_back(SyncWaiter{submitted_per_disk_[d], std::move(done)});
    MaybeStartWriteback(/*pressure=*/true);
    return;
  }
  const SimTime copy_time = bytes / config_.memory_bandwidth;
  sim_->ScheduleAfter(copy_time, std::move(done), "cache-copy");
  MaybeStartWriteback(/*pressure=*/total_dirty_ >= config_.dirty_limit);
}

void BufferCacheSim::MaybeStartWriteback(bool pressure) {
  if (writeback_running_ || total_dirty_ == Bytes(0)) {
    return;
  }
  if (pressure) {
    writeback_timer_.Cancel();
    writeback_armed_ = false;
    writeback_running_ = true;
    PumpFlusher();
    return;
  }
  if (!writeback_armed_) {
    writeback_armed_ = true;
    writeback_timer_ = sim_->ScheduleAfter(
        config_.writeback_delay,
        [this] {
          writeback_armed_ = false;
          if (total_dirty_ > Bytes(0)) {
            writeback_running_ = true;
            PumpFlusher();
          }
        },
        "cache-writeback");
  }
}

void BufferCacheSim::PumpFlusher() {
  if (!writeback_running_) {
    return;
  }
  if (total_dirty_ == Bytes(0) && active_flushes_ == 0) {
    // Cache fully drained; future writes re-arm the delayed writeback timer.
    writeback_running_ = false;
    return;
  }
  // Issue one flush per idle disk, dirtiest disk's data first.
  for (size_t d = 0; d < disks_.size(); ++d) {
    if (flush_in_flight_[d] || dirty_per_disk_[d] == Bytes(0)) {
      continue;
    }
    const Bytes chunk = std::min(dirty_per_disk_[d], config_.flush_chunk);
    flush_in_flight_[d] = true;
    ++active_flushes_;
    const int disk_index = static_cast<int>(d);
    const SimTime flush_start = sim_->now();
    disks_[d]->Write(chunk, [this, disk_index, chunk, flush_start] {
      // Deliberately stage-untagged: writeback is the "resource use outside the
      // framework's control" of §2.2 — the trace report surfaces it as
      // unattributed disk time.
      if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
        tracer->CompleteOnLane("os-cache",
                               disks_[static_cast<size_t>(disk_index)]->name() + ".flush",
                               "writeback-flush", "disk", flush_start.seconds(),
                               sim_->now().seconds());
      }
      OnFlushDone(disk_index, chunk);
    });
  }
}

void BufferCacheSim::OnFlushDone(int disk_index, Bytes bytes) {
  const auto d = static_cast<size_t>(disk_index);
  MONO_CHECK(flush_in_flight_[d]);
  flush_in_flight_[d] = false;
  --active_flushes_;
  dirty_per_disk_[d] -= bytes;
  flushed_per_disk_[d] += bytes;
  total_dirty_ -= bytes;
  total_flushed_ += bytes;
  MONO_CHECK(dirty_per_disk_[d] >= Bytes(0));
  UpdateOverLimit();
  TraceDirtyBytes();
  static monotrace::MetricCounter* flushed_metric =
      monotrace::MetricsRegistry::Global().Get("cache.bytes_flushed");
  flushed_metric->Add(static_cast<double>(bytes.count()));

  // Release sync writers whose bytes are now durable.
  while (!sync_waiters_[d].empty() &&
         sync_waiters_[d].front().flushed_threshold <= flushed_per_disk_[d]) {
    auto done = std::move(sync_waiters_[d].front().done);
    sync_waiters_[d].pop_front();
    done();
  }

  // Admit throttled writers that now fit under the limit. A write larger than the
  // limit itself is admitted once the cache is empty (it then flushes under pressure).
  while (!blocked_writes_.empty() &&
         (total_dirty_ == Bytes(0) ||
          total_dirty_ + blocked_writes_.front().bytes <= config_.dirty_limit)) {
    PendingWrite write = std::move(blocked_writes_.front());
    blocked_writes_.pop_front();
    if (monotrace::TelemetryEnabled()) {
      static monotrace::LatencyHistogram* wait_hist =
          monotrace::MetricsRegistry::Global().Histogram(
              "cache.blocked_write_wait_seconds");
      wait_hist->Add((sim_->now() - write.blocked_at).seconds());
    }
    AdmitWrite(write.disk_index, write.bytes, std::move(write.done), write.sync);
  }
  PumpFlusher();
}

}  // namespace monosim
