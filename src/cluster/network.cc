#include "src/cluster/network.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"

namespace monosim {
namespace {

constexpr double kCompletionEpsilonSeconds = 1e-9;

// After this many boundary-expansion rounds the affected-set solve gives up and
// re-solves the full closure: each round is a fresh sub-solve, so a cascade that
// keeps pulling flows in costs more re-solved than collected outright. One
// round means "try the seed set once": in a saturated fabric an expansion
// almost always cascades through the whole component, so iterating sub-solves
// loses to cutting straight to the full closure.
constexpr int kMaxExpandRounds = 1;

// How many fallback flushes may reuse a spanning closure before it is
// re-collected (see FlushPending): long enough to amortize the walk away,
// short enough that a fabric that splits into components soon stops paying
// for full-width solves.
constexpr int kSpanningRevalidateInterval = 63;

}  // namespace

void NetworkFabricSim::SideIndex::Erase(monoutil::BytesPerSecond rate, FlowId id) {
  const auto entry = std::make_pair(rate, id);
  auto it = std::lower_bound(shares.begin(), shares.end(), entry);
  MONO_CHECK(it != shares.end() && *it == entry);
  shares.erase(it);
  rate_sum -= rate;
}

void NetworkFabricSim::SideIndex::Move(monoutil::BytesPerSecond old_rate,
                                       monoutil::BytesPerSecond new_rate, FlowId id) {
  const auto old_entry = std::make_pair(old_rate, id);
  const auto new_entry = std::make_pair(new_rate, id);
  const auto it = std::lower_bound(shares.begin(), shares.end(), old_entry);
  MONO_CHECK(it != shares.end() && *it == old_entry);
  // Linear destination scan plus a one-slot shift: the shift pays O(span)
  // regardless, most re-keys move an entry past only a neighbor or two, and a
  // plain move_backward/move compiles to a memmove where the general-purpose
  // std::rotate would run its cycle-chasing loop.
  if (new_entry < old_entry) {
    auto dest = it;
    while (dest != shares.begin() && *(dest - 1) > new_entry) {
      --dest;
    }
    std::move_backward(dest, it, it + 1);
    *dest = new_entry;
  } else {
    auto dest = it + 1;
    while (dest != shares.end() && *dest < new_entry) {
      ++dest;
    }
    std::move(it + 1, dest, it);
    *(dest - 1) = new_entry;
  }
  // Same two operations Erase+Insert performed, so the incrementally-held sum
  // stays bit-identical with the historical maintenance.
  rate_sum -= old_rate;
  rate_sum += new_rate;
}

NetworkFabricSim::NetworkFabricSim(Simulation* sim, int num_machines,
                                   monoutil::BytesPerSecond nic_bandwidth,
                                   monoutil::SimTime request_latency)
    : sim_(sim),
      nic_bandwidth_(nic_bandwidth),
      request_latency_(request_latency),
      ingress_count_(static_cast<size_t>(num_machines), 0),
      egress_count_(static_cast<size_t>(num_machines), 0),
      ingress_flows_(static_cast<size_t>(num_machines)),
      egress_flows_(static_cast<size_t>(num_machines)),
      sides_(static_cast<size_t>(2 * num_machines)),
      side_visit_stamp_(static_cast<size_t>(2 * num_machines), 0),
      slot_stamp_(static_cast<size_t>(2 * num_machines), 0),
      slot_of_(static_cast<size_t>(2 * num_machines), 0),
      side_dirty_stamp_(static_cast<size_t>(2 * num_machines), 0),
      alive_(std::make_shared<bool>(true)),
      ingress_traces_(static_cast<size_t>(num_machines)) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(num_machines >= 1);
  MONO_CHECK(nic_bandwidth > monoutil::BytesPerSecond(0));
  side_accum_at_ = sim_->now();
  sim_->RegisterAuditable(this);
}

NetworkFabricSim::~NetworkFabricSim() {
  // A still-registered end-of-epoch flush holds `this`; the shared flag turns it
  // into a no-op if the simulation outlives the fabric.
  *alive_ = false;
  sim_->UnregisterAuditable(this);
}

void NetworkFabricSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  // Certify the batched solution, never the mid-epoch transient: any still-pending
  // arrivals/departures are solved first (no-op when the fabric is clean, which is
  // always the case when the simulation's end-of-epoch sweep gets here).
  FlushPendingConst();
  const SimTime now = sim_->now();
  const char* source = "network-fabric";
  const double bw = nic_bandwidth_.bps();
  const double eps = 1e-9 * std::max(1.0, bw);

  // Per-NIC-side rate sums and maxima, reused below by the bandwidth checks and
  // the max-min bottleneck certification. Recomputed from the flow lists — the
  // audit cross-checks the incrementally-maintained share indexes against this
  // ground truth, so it must not read them. The sweep runs every epoch; the
  // scratch members are persistent so it costs a fill, not four allocations.
  const size_t machines = static_cast<size_t>(num_machines());
  std::vector<double>& ingress_sum = audit_ingress_sum_;
  std::vector<double>& ingress_max = audit_ingress_max_;
  std::vector<double>& egress_sum = audit_egress_sum_;
  std::vector<double>& egress_max = audit_egress_max_;
  ingress_sum.resize(machines);
  ingress_max.resize(machines);
  egress_sum.resize(machines);
  egress_max.resize(machines);
  std::fill(ingress_sum.begin(), ingress_sum.end(), 0.0);
  std::fill(ingress_max.begin(), ingress_max.end(), 0.0);
  std::fill(egress_sum.begin(), egress_sum.end(), 0.0);
  std::fill(egress_max.begin(), egress_max.end(), 0.0);

  // One contiguous walk over the id-ordered flow list recomputes every
  // per-side aggregate and evaluates the per-flow predicates; each flow is
  // dereferenced once. The predicates are folded into one boolean per
  // invariant, reported through a single ExpectLazy whose detail lambda
  // re-walks to name an offender — the sweep runs every epoch, so the passing
  // path must stay a tight loop, while the failing path can afford a second
  // pass. The per-machine bookkeeping checks below compare against these
  // ground truths without walking the per-machine lists again.
  // 64-bit multiset fingerprint of the (rate, id) entries each NIC side should
  // be indexing: commutative sum of a splitmix64-mixed encoding, so it can be
  // accumulated in flow order during the single ground-truth walk and compared
  // against the same sum taken over the sorted share index. Exact equality of
  // the multisets is what the check is after; a collision needs two different
  // entry multisets whose mixed sums match — with a full-avalanche mixer that
  // is a 2^-64 accident, far below any plausible failure rate of the exact
  // size/sum/order checks that accompany it. The failure path re-walks with
  // exact membership probes to name an offender.
  const auto entry_fp = [](double rate, FlowId id) {
    uint64_t x;
    std::memcpy(&x, &rate, sizeof(x));
    x ^= id * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  };
  audit_side_fp_.resize(sides_.size());
  std::fill(audit_side_fp_.begin(), audit_side_fp_.end(), 0ULL);
  size_t listed_ingress = 0;
  size_t listed_egress = 0;
  bool ids_ordered = true;
  bool rates_nonneg = true;
  FlowId last_id = 0;
  for (const Flow* flow : flows_by_id_) {
    ids_ordered = ids_ordered && flow->id > last_id;
    last_id = flow->id;
    const size_t src = static_cast<size_t>(flow->src);
    const size_t dst = static_cast<size_t>(flow->dst);
    const double rate = flow->rate.bps();
    egress_sum[src] += rate;
    egress_max[src] = std::max(egress_max[src], rate);
    ingress_sum[dst] += rate;
    ingress_max[dst] = std::max(ingress_max[dst], rate);
    rates_nonneg = rates_nonneg && rate >= 0.0;
    // The share indexes — which the pruning patches and the incremental solver
    // take their decisions from — must hold exactly this flow's (rate, id)
    // entry on both its sides: fold it into both sides' expected fingerprints
    // (the entry is identical on both, so it is mixed once).
    const uint64_t fp = entry_fp(rate, flow->id);
    audit_side_fp_[static_cast<size_t>(EgressKey(flow->src))] += fp;
    audit_side_fp_[static_cast<size_t>(IngressKey(flow->dst))] += fp;
  }
  // Compare each side's actual index against the expected fingerprint, and
  // fold in strict (rate, id) ordering — the solver's base derivation and the
  // patches' maximal-share probes both read the indexes positionally.
  bool indexed_everywhere = true;
  for (size_t k = 0; k < sides_.size(); ++k) {
    const auto& shares = sides_[k].shares;
    uint64_t acc = 0;
    bool sorted = true;
    for (size_t i = 0; i < shares.size(); ++i) {
      acc += entry_fp(shares[i].first.bps(), shares[i].second);
      sorted = sorted && (i == 0 || shares[i - 1] < shares[i]);
    }
    indexed_everywhere =
        indexed_everywhere && sorted && acc == audit_side_fp_[k];
  }
  audit.ExpectLazy(rates_nonneg, now, source, "flow-rate-non-negative", [&] {
    std::ostringstream d;
    for (const Flow* flow : flows_by_id_) {
      if (flow->rate < monoutil::BytesPerSecond(0)) {
        d << "flow " << flow->id << " has rate " << flow->rate;
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(indexed_everywhere, now, source, "share-index-consistent", [&] {
    std::ostringstream d;
    for (const Flow* flow : flows_by_id_) {
      if (!sides_[static_cast<size_t>(EgressKey(flow->src))].Contains(flow->rate,
                                                                      flow->id) ||
          !sides_[static_cast<size_t>(IngressKey(flow->dst))].Contains(flow->rate,
                                                                       flow->id)) {
        d << "flow " << flow->id << " (" << flow->src << "->" << flow->dst
          << ") rate " << flow->rate << " is missing from a side's share index";
        return d.str();
      }
    }
    for (size_t k = 0; k < sides_.size(); ++k) {
      const auto& shares = sides_[k].shares;
      if (!std::is_sorted(shares.begin(), shares.end())) {
        d << (k % 2 == 0 ? "egress" : "ingress") << " share index of machine "
          << k / 2 << " is out of (rate, id) order";
        return d.str();
      }
    }
    d << "a share index holds an entry for no active flow (fingerprint mismatch)";
    return d.str();
  });
  audit.ExpectLazy(ids_ordered, now, source, "flow-list-ordered", [&] {
    std::ostringstream d;
    d << "flow registry (" << flows_by_id_.size()
      << " entries) is not in strictly ascending id order";
    return d.str();
  });
  bool counts_ok = true;
  bool ingress_within = true;
  bool egress_within = true;
  bool index_sizes_ok = true;
  bool index_sums_ok = true;
  for (int m = 0; m < num_machines(); ++m) {
    const auto mu = static_cast<size_t>(m);
    const auto& ingress = ingress_flows_[mu];
    const auto& egress = egress_flows_[mu];
    listed_ingress += ingress.size();
    listed_egress += egress.size();
    counts_ok = counts_ok && ingress_count_[mu] == static_cast<int>(ingress.size()) &&
                egress_count_[mu] == static_cast<int>(egress.size());
    // Each NIC is full duplex: the flows it carries in each direction cannot
    // together exceed its bandwidth.
    ingress_within = ingress_within && ingress_sum[mu] <= bw + eps;
    egress_within = egress_within && egress_sum[mu] <= bw + eps;
    const SideIndex& egress_side = sides_[static_cast<size_t>(EgressKey(m))];
    const SideIndex& ingress_side = sides_[static_cast<size_t>(IngressKey(m))];
    // Entry count plus per-flow membership (above) pins the indexes' contents;
    // the incrementally-maintained rate sums must also match the recomputed
    // ground truth, or the solver's bases and the patches' decisions drift.
    index_sizes_ok = index_sizes_ok && egress_side.shares.size() == egress.size() &&
                     ingress_side.shares.size() == ingress.size();
    index_sums_ok = index_sums_ok &&
                    std::abs(egress_side.rate_sum.bps() - egress_sum[mu]) <= eps &&
                    std::abs(ingress_side.rate_sum.bps() - ingress_sum[mu]) <= eps;
  }
  audit.ExpectLazy(counts_ok, now, source, "flow-count-bookkeeping", [&] {
    std::ostringstream d;
    for (int m = 0; m < num_machines(); ++m) {
      const auto mu = static_cast<size_t>(m);
      if (ingress_count_[mu] != static_cast<int>(ingress_flows_[mu].size()) ||
          egress_count_[mu] != static_cast<int>(egress_flows_[mu].size())) {
        d << "machine " << m << ": counts (" << ingress_count_[mu] << ", "
          << egress_count_[mu] << ") != list sizes (" << ingress_flows_[mu].size()
          << ", " << egress_flows_[mu].size() << ")";
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(ingress_within, now, source, "ingress-within-bandwidth", [&] {
    std::ostringstream d;
    for (int m = 0; m < num_machines(); ++m) {
      if (ingress_sum[static_cast<size_t>(m)] > bw + eps) {
        d << "machine " << m << " ingress rate " << ingress_sum[static_cast<size_t>(m)]
          << " exceeds NIC bandwidth " << nic_bandwidth_;
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(egress_within, now, source, "egress-within-bandwidth", [&] {
    std::ostringstream d;
    for (int m = 0; m < num_machines(); ++m) {
      if (egress_sum[static_cast<size_t>(m)] > bw + eps) {
        d << "machine " << m << " egress rate " << egress_sum[static_cast<size_t>(m)]
          << " exceeds NIC bandwidth " << nic_bandwidth_;
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(index_sizes_ok, now, source, "share-index-size", [&] {
    std::ostringstream d;
    for (int m = 0; m < num_machines(); ++m) {
      const SideIndex& egress_side = sides_[static_cast<size_t>(EgressKey(m))];
      const SideIndex& ingress_side = sides_[static_cast<size_t>(IngressKey(m))];
      if (egress_side.shares.size() != egress_flows_[static_cast<size_t>(m)].size() ||
          ingress_side.shares.size() != ingress_flows_[static_cast<size_t>(m)].size()) {
        d << "machine " << m << ": share index (" << egress_side.shares.size()
          << " egress, " << ingress_side.shares.size()
          << " ingress entries) does not mirror the flow lists ("
          << egress_flows_[static_cast<size_t>(m)].size() << ", "
          << ingress_flows_[static_cast<size_t>(m)].size() << ")";
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(index_sums_ok, now, source, "share-index-rate-sum", [&] {
    std::ostringstream d;
    for (int m = 0; m < num_machines(); ++m) {
      const auto mu = static_cast<size_t>(m);
      const SideIndex& egress_side = sides_[static_cast<size_t>(EgressKey(m))];
      const SideIndex& ingress_side = sides_[static_cast<size_t>(IngressKey(m))];
      if (std::abs(egress_side.rate_sum.bps() - egress_sum[mu]) > eps ||
          std::abs(ingress_side.rate_sum.bps() - ingress_sum[mu]) > eps) {
        d << "machine " << m << ": indexed rate sums (" << egress_side.rate_sum
          << " egress, " << ingress_side.rate_sum << " ingress) drifted from totals ("
          << egress_sum[mu] << ", " << ingress_sum[mu] << ")";
        break;
      }
    }
    return d.str();
  });
  audit.ExpectLazy(listed_ingress == flows_by_id_.size(), now, source, "flow-registry", [&] {
    std::ostringstream d;
    d << "per-machine ingress lists hold " << listed_ingress << " flows, registry holds "
      << flows_by_id_.size();
    return d.str();
  });
  audit.ExpectLazy(listed_egress == flows_by_id_.size(), now, source, "flow-registry-egress", [&] {
    std::ostringstream d;
    d << "per-machine egress lists hold " << listed_egress << " flows, registry holds "
      << flows_by_id_.size();
    return d.str();
  });

  // Max-min certification: an allocation is max-min fair iff every flow crosses at
  // least one saturated NIC side on which it has a maximal share. This bounds the
  // rates from *below* — the bandwidth checks above only bound them from above, so
  // a work-conservation bug (stranded capacity) passes them silently. Batched and
  // patched solutions alike must pass: a patch is only taken when it provably
  // leaves every flow pinned to a saturated side (see TryPatchArrival /
  // CanPatchDeparture), so this certification is what pins the pruning logic.
  const auto certified = [&](const Flow& flow) {
    const size_t src = static_cast<size_t>(flow.src);
    const size_t dst = static_cast<size_t>(flow.dst);
    return (egress_sum[src] >= bw - eps &&
            flow.rate.bps() >= egress_max[src] - eps) ||
           (ingress_sum[dst] >= bw - eps &&
            flow.rate.bps() >= ingress_max[dst] - eps);
  };
  bool all_certified = true;
  for (const Flow* flow : flows_by_id_) {
    all_certified = all_certified && certified(*flow);
  }
  audit.ExpectLazy(all_certified, now, source, "max-min-bottleneck", [&] {
    std::ostringstream d;
    for (const Flow* flow : flows_by_id_) {
      if (!certified(*flow)) {
        const size_t src = static_cast<size_t>(flow->src);
        const size_t dst = static_cast<size_t>(flow->dst);
        d << "flow " << flow->id << " (" << flow->src << "->" << flow->dst
          << ") rate " << flow->rate
          << " is not bottlenecked at a saturated NIC (egress sum "
          << egress_sum[src] << " max " << egress_max[src] << ", ingress sum "
          << ingress_sum[dst] << " max " << ingress_max[dst] << ", bandwidth "
          << nic_bandwidth_ << "): capacity is stranded";
        break;
      }
    }
    return d.str();
  });

  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(flows_by_id_.empty(), now, source, "drained", [&] {
      std::ostringstream d;
      d << flows_by_id_.size() << " flow(s) still active after the event queue drained";
      return d.str();
    });
  }
}

NetworkFabricSim::Flow* NetworkFabricSim::AllocFlow() {
  if (free_flows_.empty()) {
    constexpr size_t kFlowsPerBlock = 128;
    flow_blocks_.push_back(std::make_unique<Flow[]>(kFlowsPerBlock));
    Flow* block = flow_blocks_.back().get();
    // Pushed back-to-front so the LIFO free list hands them out in address
    // order within the block (pure locality; no ordering depends on it).
    for (size_t i = kFlowsPerBlock; i > 0; --i) {
      free_flows_.push_back(&block[i - 1]);
    }
  }
  Flow* flow = free_flows_.back();
  free_flows_.pop_back();
  // Reset what recycling could leak into solver decisions: the stamp (so a
  // stale membership mark can never alias a live flush), the completion key
  // (negative = not yet indexed), and the rate the progress math starts from.
  flow->rate = monoutil::BytesPerSecond();
  flow->predicted_done = SimTime(-1.0);
  flow->visit_stamp = 0;
  return flow;
}

NetworkFabricSim::Flow* NetworkFabricSim::FindFlow(FlowId id) const {
  const auto it = std::lower_bound(flows_by_id_.begin(), flows_by_id_.end(), id,
                                   [](const Flow* f, FlowId v) { return f->id < v; });
  return (it != flows_by_id_.end() && (*it)->id == id) ? *it : nullptr;
}

monoutil::BytesPerSecond NetworkFabricSim::LegacyMinShare(const Flow& flow) const {
  const monoutil::BytesPerSecond egress_share =
      nic_bandwidth_ / static_cast<double>(egress_count_[static_cast<size_t>(flow.src)]);
  const monoutil::BytesPerSecond ingress_share =
      nic_bandwidth_ / static_cast<double>(ingress_count_[static_cast<size_t>(flow.dst)]);
  return std::min(egress_share, ingress_share);
}

NetworkFabricSim::FlowId NetworkFabricSim::StartFlowImpl(int src, int dst,
                                                         monoutil::Bytes bytes,
                                                         InlineCallback&& done) {
  // Starting a flow is a sanctioned cross-domain channel: machine-domain code
  // (executors moving shuffle data) enters the fabric here by design.
  MONO_DOMAIN_CHANNEL();
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  MONO_CHECK_MSG(src != dst, "local transfers must not traverse the fabric");
  MONO_CHECK(bytes >= monoutil::Bytes(0));
  MONO_CHECK(static_cast<bool>(done));

  const FlowId id = next_id_++;
  Flow* raw = AllocFlow();
  raw->id = id;
  raw->src = src;
  raw->dst = dst;
  raw->remaining = static_cast<double>(bytes.count());
  raw->last_update = sim_->now();
  raw->done = std::move(done);
  flows_by_id_.push_back(raw);  // Ids are monotonic: the back keeps the order.

  // Close out the interval ending now before the busy-side set grows. The new
  // flow enters its share indexes at rate 0, so saturation is untouched here.
  AccumulateSideTime(sim_->now());
  if (egress_count_[static_cast<size_t>(src)] == 0) {
    ++busy_side_count_;
  }
  if (ingress_count_[static_cast<size_t>(dst)] == 0) {
    ++busy_side_count_;
  }
  ++egress_count_[static_cast<size_t>(src)];
  ++ingress_count_[static_cast<size_t>(dst)];
  egress_flows_[static_cast<size_t>(src)].push_back(raw);
  ingress_flows_[static_cast<size_t>(dst)].push_back(raw);
  sides_[static_cast<size_t>(EgressKey(src))].Insert(monoutil::BytesPerSecond(), id);
  sides_[static_cast<size_t>(IngressKey(dst))].Insert(monoutil::BytesPerSecond(), id);
  total_bytes_ += bytes;

  if (share_policy_ == SharePolicy::kMinShareLegacy) {
    RecomputeAffected(src, dst);
  } else if (TryPatchArrival(raw)) {
    ++stats_.patched_arrivals;
  } else {
    ++stats_.batched_changes;
    MarkDirty(src, dst);
  }
  return id;
}

void NetworkFabricSim::SendControlImpl(int src, int dst, InlineCallback&& deliver) {
  // Control messages are a sanctioned cross-domain channel (see StartFlowImpl).
  MONO_DOMAIN_CHANNEL();
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  sim_->ScheduleAfter(request_latency_, std::move(deliver), "net-request");
}

void NetworkFabricSim::MarkDirty(int src, int dst) {
  MarkSideDirty(EgressKey(src));
  MarkSideDirty(IngressKey(dst));
  if (!flush_registered_) {
    flush_registered_ = true;
    sim_->AtEpochEnd([this, alive = alive_] {
      if (!*alive) {
        return;
      }
      flush_registered_ = false;
      FlushPending();
    });
  }
}

void NetworkFabricSim::MarkSideDirty(int side_key) {
  if (side_dirty_stamp_[static_cast<size_t>(side_key)] != dirty_stamp_) {
    side_dirty_stamp_[static_cast<size_t>(side_key)] = dirty_stamp_;
    dirty_sides_.push_back(side_key);
  }
}

bool NetworkFabricSim::TryPatchArrival(Flow* flow) {
  if (!dirty_sides_.empty()) {
    return false;  // Rates are stale mid-epoch; local reasoning would be unsound.
  }
  const SideIndex& egress = sides_[static_cast<size_t>(EgressKey(flow->src))];
  const SideIndex& ingress = sides_[static_cast<size_t>(IngressKey(flow->dst))];
  const double bw = nic_bandwidth_.bps();
  const double eps = 1e-9 * std::max(1.0, bw);
  const double free_egress = bw - egress.rate_sum.bps();
  const double free_ingress = bw - ingress.rate_sum.bps();
  const double rate = std::min(free_egress, free_ingress);
  if (rate <= eps) {
    return false;  // A side is already saturated: its flows would re-level.
  }
  // The new flow saturates each side whose free capacity it consumes entirely; on
  // such a side it must not be out-ranked, or max-min would shrink the larger
  // flow in its favor (and cascade through that flow's other side). A side left
  // unsaturated carried no bottlenecked flow (it had free capacity), so raising
  // its sum constrains nobody. The patched flow itself ends at the top of a
  // saturated side, exactly what the max-min-bottleneck audit certifies.
  if (free_egress <= rate + eps && egress.max_share().bps() > rate + eps) {
    return false;
  }
  if (free_ingress <= rate + eps && ingress.max_share().bps() > rate + eps) {
    return false;
  }
  ApplyRate(flow, monoutil::BytesPerSecond(rate));
  UpdateCompletionTimer();
  RecordIngressTouched({flow->dst});
  return true;
}

bool NetworkFabricSim::CanPatchDeparture(const Flow& flow) const {
  if (!dirty_sides_.empty()) {
    return false;  // Rates are stale mid-epoch; local reasoning would be unsound.
  }
  const double bw = nic_bandwidth_.bps();
  const double eps = 1e-9 * std::max(1.0, bw);
  for (const int key : {EgressKey(flow.src), IngressKey(flow.dst)}) {
    const SideIndex& side = sides_[static_cast<size_t>(key)];
    if (side.rate_sum.bps() < bw - eps) {
      continue;  // Unsaturated side: nobody is pinned here, freeing more changes nothing.
    }
    // Saturated side: the departure is invisible only if every remaining flow has
    // a strictly smaller share — each is then bottlenecked (maximal) at its
    // *other*, still-saturated side and cannot rise into the freed capacity.
    size_t top = side.shares.size() - 1;
    if (side.shares[top] == std::make_pair(flow.rate, flow.id)) {
      if (top == 0) {
        continue;  // The departing flow was alone on the side.
      }
      --top;  // The departing flow holds the top share; examine the runner-up.
    }
    if (side.shares[top].first.bps() >= flow.rate.bps() - eps) {
      return false;
    }
  }
  return true;
}

void NetworkFabricSim::CollectFromSides(const std::vector<int>& seed_sides,
                                        std::vector<Flow*>* component) {
  ++visit_stamp_;
  component->clear();
  // A flow links its source's egress side to its destination's ingress side; the
  // component is the transitive closure over those links, seeded from every dirty
  // side. Stamps (not per-call bitmaps) keep repeat collections allocation-light.
  pending_sides_.clear();
  auto push_side = [&](int key) {
    if (side_visit_stamp_[static_cast<size_t>(key)] != visit_stamp_) {
      side_visit_stamp_[static_cast<size_t>(key)] = visit_stamp_;
      pending_sides_.push_back(key);
    }
  };
  for (const int key : seed_sides) {
    push_side(key);
  }
  while (!pending_sides_.empty()) {
    const int key = pending_sides_.back();
    pending_sides_.pop_back();
    for (Flow* flow : SideFlows(key)) {
      if (flow->visit_stamp == visit_stamp_) {
        continue;
      }
      flow->visit_stamp = visit_stamp_;
      component->push_back(flow);
      push_side(EgressKey(flow->src));
      push_side(IngressKey(flow->dst));
    }
  }
}

void NetworkFabricSim::SolveMaxMin(const std::vector<Flow*>& component,
                                   std::vector<double>* new_rates,
                                   bool identity_slots) {
  const size_t n = component.size();
  new_rates->resize(n);
  std::fill(new_rates->begin(), new_rates->end(), 0.0);
  if (n == 0) {
    return;
  }
  // Dense table of just the NIC sides this component touches, slots numbered in
  // first-seen component order. The side-key -> slot map is stamped per solve and
  // each slot's flow list keeps its capacity, so repeat solves allocate nothing.
  ++solve_stamp_;
  int num_slots = 0;
  egress_slot_.resize(n);
  ingress_slot_.resize(n);
  const auto grow_slot_arrays = [&](size_t needed) {
    if (needed > slot_consumed_.size()) {
      slot_consumed_.resize(needed);
      slot_unfrozen_.resize(needed);
      slot_cap_.resize(needed);
      slot_base_.resize(needed);
      slot_unaffected_max_.resize(needed);
      slot_level_.resize(needed);
      slot_total_.resize(needed);
      slot_max_affected_.resize(needed);
      slot_keys_.resize(needed);
    }
  };
  if (identity_slots) {
    // Spanning solve over the whole fabric (the caller vouches `component`
    // holds every live flow): each NIC side is its own slot, slot == side key,
    // so the stamped side->slot map and both per-flow lookups drop out in
    // favor of straight key arithmetic. Sides with no flows cost nothing
    // beyond their array entry: a zero degree parks their cap at +inf
    // ((bandwidth - 0) / 0 in IEEE terms), so the bottleneck scan skips them
    // the same way it skips exhausted slots.
    num_slots = static_cast<int>(sides_.size());
    const auto ns = static_cast<size_t>(num_slots);
    grow_slot_arrays(ns);
    std::fill(slot_unfrozen_.begin(), slot_unfrozen_.begin() + num_slots, 0);
    std::fill(slot_base_.begin(), slot_base_.begin() + num_slots, 0.0);
    std::iota(slot_keys_.begin(), slot_keys_.begin() + num_slots, 0);
    for (size_t i = 0; i < n; ++i) {
      const auto e = static_cast<size_t>(EgressKey(component[i]->src));
      const auto g = static_cast<size_t>(IngressKey(component[i]->dst));
      egress_slot_[i] = static_cast<int>(e);
      ingress_slot_[i] = static_cast<int>(g);
      const double rate = component[i]->rate.bps();
      ++slot_unfrozen_[e];
      slot_base_[e] += rate;
      ++slot_unfrozen_[g];
      slot_base_[g] += rate;
    }
  } else {
    auto slot = [&](int key) {
      const auto k = static_cast<size_t>(key);
      if (slot_stamp_[k] != solve_stamp_) {
        slot_stamp_[k] = solve_stamp_;
        const int s = num_slots++;
        slot_of_[k] = s;
        grow_slot_arrays(static_cast<size_t>(num_slots));
        slot_unfrozen_[static_cast<size_t>(s)] = 0;
        slot_base_[static_cast<size_t>(s)] = 0.0;  // Affected-rate sum until the base pass below.
        slot_level_[static_cast<size_t>(s)] = std::numeric_limits<double>::infinity();
        slot_keys_[static_cast<size_t>(s)] = key;
      }
      return slot_of_[k];
    };
    for (size_t i = 0; i < n; ++i) {
      egress_slot_[i] = slot(EgressKey(component[i]->src));
      ingress_slot_[i] = slot(IngressKey(component[i]->dst));
      for (const int s : {egress_slot_[i], ingress_slot_[i]}) {
        ++slot_unfrozen_[static_cast<size_t>(s)];
        slot_base_[static_cast<size_t>(s)] += component[i]->rate.bps();
      }
    }
  }
  // Slot -> flow-index adjacency in CSR form (offsets plus one flat array) —
  // the freeze loop below walks it side by side, and a flat span beats a
  // vector-of-vectors walk. Built with a counting pass already done above
  // (slot_unfrozen_ holds the degrees), a prefix sum, and a fill pass that
  // re-derives each flow's slots from the per-flow arrays.
  slot_adj_offset_.resize(static_cast<size_t>(num_slots) + 1);
  slot_adj_offset_[0] = 0;
  for (int s = 0; s < num_slots; ++s) {
    slot_adj_offset_[static_cast<size_t>(s) + 1] =
        slot_adj_offset_[static_cast<size_t>(s)] + slot_unfrozen_[static_cast<size_t>(s)];
  }
  slot_adj_.resize(2 * n);
  slot_cursor_.assign(slot_adj_offset_.begin(), slot_adj_offset_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    slot_adj_[static_cast<size_t>(slot_cursor_[static_cast<size_t>(egress_slot_[i])]++)] =
        static_cast<int>(i);
    slot_adj_[static_cast<size_t>(slot_cursor_[static_cast<size_t>(ingress_slot_[i])]++)] =
        static_cast<int>(i);
  }
  // Flows outside the component keep their current rates: they reduce the
  // capacity the progressive fill distributes through their side. Their sum is
  // derived from the side's incrementally-maintained rate sum minus the
  // component flows' (still-old) rates, so no flow outside the component is
  // ever dereferenced here. A side the component covers completely gets a base
  // of exactly 0.0 — not the FP residue of the subtraction — so a full-closure
  // solve reproduces a from-scratch pass bit for bit (and ApplyRate's
  // skip-unchanged test keeps working across re-solves).
  for (int s = 0; s < num_slots; ++s) {
    const auto su = static_cast<size_t>(s);
    const SideIndex& side = sides_[static_cast<size_t>(slot_keys_[su])];
    const double base =
        side.shares.size() ==
                static_cast<size_t>(slot_adj_offset_[su + 1] - slot_adj_offset_[su])
            ? 0.0
            : std::max(0.0, side.rate_sum.bps() - slot_base_[su]);
    slot_base_[su] = base;
    slot_consumed_[su] = base;
  }

  // Progressive filling: each side carries the common fill level at which it
  // would saturate, cached in slot_cap_ and re-derived only when a frozen flow
  // changes its consumption. Each round scans the flat cap array for the
  // minimum (cap, slot) — the next bottleneck — and freezes that side's
  // remaining flows at the running level. With dozens of sides the scan is a
  // handful of cache lines, and it selects exactly what an ordered frontier
  // would pop, so the freeze order (and every FP result) is as deterministic.
  // Exhausted slots park their cap at infinity, keeping the scan a bare
  // load-and-compare.
  const double bw = nic_bandwidth_.bps();
  for (int s = 0; s < num_slots; ++s) {
    slot_cap_[static_cast<size_t>(s)] =
        (bw - slot_consumed_[static_cast<size_t>(s)]) /
        slot_unfrozen_[static_cast<size_t>(s)];
  }
  frozen_.resize(n);
  std::fill(frozen_.begin(), frozen_.end(), 0);
  size_t remaining = n;
  double level = 0.0;
  while (remaining > 0) {
    // Two-stride argmin: each stride keeps its own first strict minimum, so
    // the two chains run independently of each other's comparison results;
    // the merge picks the lower cap and breaks ties toward the smaller slot,
    // which is exactly the single-pass first-strict-min this replaces.
    int s0 = -1;
    int s1 = -1;
    double best0 = std::numeric_limits<double>::infinity();
    double best1 = std::numeric_limits<double>::infinity();
    for (int c = 0; c + 1 < num_slots; c += 2) {
      if (slot_cap_[static_cast<size_t>(c)] < best0) {
        best0 = slot_cap_[static_cast<size_t>(c)];
        s0 = c;
      }
      if (slot_cap_[static_cast<size_t>(c) + 1] < best1) {
        best1 = slot_cap_[static_cast<size_t>(c) + 1];
        s1 = c + 1;
      }
    }
    if ((num_slots & 1) != 0 &&
        slot_cap_[static_cast<size_t>(num_slots) - 1] < best0) {
      best0 = slot_cap_[static_cast<size_t>(num_slots) - 1];
      s0 = num_slots - 1;
    }
    const bool take1 = best1 < best0 || (best1 == best0 && s1 >= 0 && s1 < s0);
    const int s = take1 ? s1 : s0;
    const double best = take1 ? best1 : best0;
    MONO_CHECK_MSG(s >= 0, "progressive filling stalled");
    // Caps are non-decreasing as flows freeze elsewhere, so the chosen side
    // saturates at cap >= level; the max() only guards FP rounding.
    level = std::max(level, best);
    slot_level_[static_cast<size_t>(s)] = level;
    for (int a = slot_adj_offset_[static_cast<size_t>(s)];
         a < slot_adj_offset_[static_cast<size_t>(s) + 1]; ++a) {
      const int idx = slot_adj_[static_cast<size_t>(a)];
      if (frozen_[static_cast<size_t>(idx)]) {
        continue;
      }
      frozen_[static_cast<size_t>(idx)] = 1;
      (*new_rates)[static_cast<size_t>(idx)] = level;
      --remaining;
      // The frozen flow now consumes `level` of its other side for good; that
      // side saturates later (or empties), so re-derive its cached cap.
      const int other =
          (egress_slot_[static_cast<size_t>(idx)] == s) ? ingress_slot_[static_cast<size_t>(idx)]
                                                        : egress_slot_[static_cast<size_t>(idx)];
      const auto o = static_cast<size_t>(other);
      slot_consumed_[o] += level;
      --slot_unfrozen_[o];
      slot_cap_[o] = slot_unfrozen_[o] > 0
                         ? (bw - slot_consumed_[o]) / slot_unfrozen_[o]
                         : std::numeric_limits<double>::infinity();
    }
    slot_unfrozen_[static_cast<size_t>(s)] = 0;
    slot_cap_[static_cast<size_t>(s)] = std::numeric_limits<double>::infinity();
  }
}

void NetworkFabricSim::RecordSlotTotals(const std::vector<double>& new_rates) {
  // Leave each side's post-solve totals behind for the boundary expansion
  // check: base consumption plus the freshly solved rates, and the top solved
  // share. Only the affected-set path pays for this — fallback solves have no
  // boundary to check. Slots are numbered densely in first-seen order, so the
  // solve's slot count is the max slot index any flow carries, plus one.
  const size_t n = new_rates.size();
  int num_slots = 0;
  for (size_t i = 0; i < n; ++i) {
    num_slots = std::max({num_slots, egress_slot_[i] + 1, ingress_slot_[i] + 1});
  }
  for (int s = 0; s < num_slots; ++s) {
    slot_total_[static_cast<size_t>(s)] = slot_base_[static_cast<size_t>(s)];
    slot_max_affected_[static_cast<size_t>(s)] = 0.0;
  }
  for (size_t i = 0; i < n; ++i) {
    const double rate = new_rates[i];
    for (const int s : {egress_slot_[i], ingress_slot_[i]}) {
      slot_total_[static_cast<size_t>(s)] += rate;
      slot_max_affected_[static_cast<size_t>(s)] =
          std::max(slot_max_affected_[static_cast<size_t>(s)], rate);
    }
  }
}

bool NetworkFabricSim::CertifiedAfterSolve(const Flow& flow, double eps) const {
  for (const int key : {EgressKey(flow.src), IngressKey(flow.dst)}) {
    const auto k = static_cast<size_t>(key);
    double sum;
    double top;
    if (slot_stamp_[k] == solve_stamp_) {
      const auto s = static_cast<size_t>(slot_of_[k]);
      sum = slot_total_[s];
      top = std::max(slot_max_affected_[s], slot_unaffected_max_[s]);
    } else {
      const SideIndex& side = sides_[k];
      sum = side.rate_sum.bps();
      top = side.max_share().bps();
    }
    if (sum >= nic_bandwidth_.bps() - eps && flow.rate.bps() >= top - eps) {
      return true;
    }
  }
  return false;
}

void NetworkFabricSim::SortByFlowId(std::vector<Flow*>* flows) {
  sort_scratch_.clear();
  for (Flow* flow : *flows) {
    sort_scratch_.emplace_back(flow->id, flow);
  }
  std::sort(sort_scratch_.begin(), sort_scratch_.end());
  for (size_t i = 0; i < flows->size(); ++i) {
    (*flows)[i] = sort_scratch_[i].second;
  }
}

void NetworkFabricSim::ApplyRate(Flow* flow, monoutil::BytesPerSecond new_rate) {
  MONO_CHECK(new_rate > monoutil::BytesPerSecond(0));
  if (new_rate == flow->rate && flow->predicted_done >= SimTime()) {
    // Unchanged rate: progress stays linear and the indexed completion time is
    // still exact, so leave the flow untouched.
    return;
  }
  // Advance progress under the old rate, then apply the new share.
  const SimTime now = sim_->now();
  const SimTime dt = now - flow->last_update;
  if (dt > SimTime()) {
    flow->remaining = std::max(0.0, flow->remaining - flow->rate.bps() * dt.seconds());
  }
  flow->last_update = now;
  if (new_rate != flow->rate) {
    ++stats_.rate_changes;
    AccumulateSideTime(now);
    // Re-key the flow in both sides' share indexes, tracking each side's
    // saturation transition as its rate sum moves.
    for (const int key : {EgressKey(flow->src), IngressKey(flow->dst)}) {
      const bool was_saturated = SideSaturated(key);
      sides_[static_cast<size_t>(key)].Move(flow->rate, new_rate, flow->id);
      if (SideSaturated(key) != was_saturated) {
        saturated_side_count_ += was_saturated ? -1 : 1;
      }
    }
    flow->rate = new_rate;
  }

  // Re-key the predicted completion; the caller refreshes the single timer
  // event once its batch of rate changes is applied.
  const SimTime done_at = now + SimTime(flow->remaining / flow->rate.bps());
  if (flow->predicted_done >= SimTime()) {
    MoveCompletion(flow->predicted_done, done_at, flow->id);
  } else {
    InsertCompletion(done_at, flow->id);
  }
  flow->predicted_done = done_at;
}

void NetworkFabricSim::InsertCompletion(SimTime at, FlowId id) {
  const auto entry = std::make_pair(at, id);
  completions_.insert(std::upper_bound(completions_.begin(), completions_.end(),
                                       entry, std::greater<>()),
                      entry);
}

void NetworkFabricSim::EraseCompletion(SimTime at, FlowId id) {
  const auto entry = std::make_pair(at, id);
  auto it = std::lower_bound(completions_.begin(), completions_.end(), entry,
                             std::greater<>());
  MONO_CHECK(it != completions_.end() && *it == entry);
  completions_.erase(it);
}

void NetworkFabricSim::MoveCompletion(SimTime from, SimTime to, FlowId id) {
  const auto old_entry = std::make_pair(from, id);
  const auto new_entry = std::make_pair(to, id);
  const auto it = std::lower_bound(completions_.begin(), completions_.end(),
                                   old_entry, std::greater<>());
  MONO_CHECK(it != completions_.end() && *it == old_entry);
  // Descending order: larger keys live nearer the front. One shift moves only
  // the entries *between* the old and new positions, where erase+insert would
  // move everything from the smaller position to the end twice. The destination
  // is found by scanning linearly from the old position: the shift already
  // pays O(span), so the scan adds nothing asymptotically, and a re-levelled
  // flow's completion usually lands within a couple of neighbors — a span far
  // shorter than a binary search over the whole index.
  if (new_entry > old_entry) {
    auto dest = it;
    while (dest != completions_.begin() && *(dest - 1) < new_entry) {
      --dest;
    }
    std::move_backward(dest, it, it + 1);
    *dest = new_entry;
  } else {
    auto dest = it + 1;
    while (dest != completions_.end() && *dest > new_entry) {
      ++dest;
    }
    std::move(it + 1, dest, it);
    *(dest - 1) = new_entry;
  }
}

void NetworkFabricSim::UpdateCompletionTimer() {
  const SimTime want = completions_.empty() ? SimTime(-1.0) : completions_.back().first;
  if (want == next_completion_time_ && (want < SimTime() || next_completion_.pending())) {
    return;  // The timer already points at the minimum.
  }
  next_completion_.Cancel();
  next_completion_time_ = want;
  if (want >= SimTime()) {
    next_completion_ = sim_->ScheduleAt(
        want,
        [this, alive = alive_] {
          if (*alive) {
            OnNextCompletion();
          }
        },
        "flow-complete");
  }
}

void NetworkFabricSim::OnNextCompletion() {
  // Complete every flow due now, earliest (time, id) first. Completion callbacks
  // may start replacement flows whose patches insert new entries mid-loop, so
  // the minimum is re-read from the index each iteration.
  const SimTime now = sim_->now();
  while (!completions_.empty() && completions_.back().first <= now) {
    const FlowId id = completions_.back().second;
    completions_.pop_back();
    OnFlowComplete(id);
  }
  UpdateCompletionTimer();
}

void NetworkFabricSim::FlushPending() {
  if (dirty_sides_.empty()) {
    return;
  }
  ++stats_.epochs_flushed;
  touched_scratch_.clear();
  for (const int key : dirty_sides_) {
    if (key % 2 == 1) {
      touched_scratch_.push_back(key / 2);  // Recorded even if the side is now empty.
    }
  }

  const double bw = nic_bandwidth_.bps();
  const double eps = 1e-9 * std::max(1.0, bw);
  // Cascade gate, checked before any seeding work: when a changed side is
  // saturated, the batched arrivals and departures re-level it, every flow
  // crossing it adjusts, and the adjustment propagates through those flows'
  // other sides — in a loaded fabric the whole component re-solves and the
  // affected-set attempt is a wasted round. Only genuinely local changes
  // (every dirty side running below capacity, so existing shares can stand)
  // pay for seeding an affected set; saturated-side churn goes straight to
  // the full-closure solve without stamping a single flow. A dirty side's
  // *neighbors* may still be saturated — the sub-solve handles that (flows
  // pinned there hold their level) and the boundary check keeps it honest.
  bool try_local = true;
  for (const int key : dirty_sides_) {
    if (sides_[static_cast<size_t>(key)].rate_sum.bps() >= bw - eps) {
      try_local = false;
      break;
    }
  }

  std::vector<Flow*>& affected = component_scratch_;
  affected.clear();
  bool solved = false;
  if (try_local) {
    // Seed the affected set with every flow on a changed side: those are the
    // only flows a batched arrival or departure constrains directly. Everything
    // else is presumed to keep its rate until the boundary check below proves
    // otherwise. Membership is tracked by one visit stamp per flush, shared
    // between flows and sides, so joining is O(1) and nothing needs clearing.
    ++visit_stamp_;
    affected_sides_.clear();
    auto add_side = [&](int key) {
      if (side_visit_stamp_[static_cast<size_t>(key)] != visit_stamp_) {
        side_visit_stamp_[static_cast<size_t>(key)] = visit_stamp_;
        affected_sides_.push_back(key);
      }
    };
    auto add_flow = [&](Flow* flow) {
      if (flow->visit_stamp != visit_stamp_) {
        flow->visit_stamp = visit_stamp_;
        affected.push_back(flow);
        add_side(EgressKey(flow->src));
        add_side(IngressKey(flow->dst));
      }
    };
    for (const int key : dirty_sides_) {
      add_side(key);
      for (Flow* flow : SideFlows(key)) {
        add_flow(flow);
      }
    }
    // Second gate, over the seeded flows' *other* sides: a saturated neighbor
    // pins the seeded flows at its level, and re-leveling it drags its own
    // flows along — the sub-solve would expand and fall back anyway, so skip
    // straight there rather than paying a doomed round.
    for (const int key : affected_sides_) {
      if (sides_[static_cast<size_t>(key)].rate_sum.bps() >= bw - eps) {
        try_local = false;
        break;
      }
    }
    for (int round = 0; try_local && round < kMaxExpandRounds &&
                        2 * affected.size() <= flows_by_id_.size();
         ++round) {
      // Canonical order: rates are solved — and below, applied and their
      // completion events rescheduled — in ascending flow id, so the event
      // schedule (and the run digest) depends only on the flow set, never on
      // the traversal order that discovered it. Sorting the solve input also
      // canonicalizes the solver's floating-point evaluation order, which is
      // what lets a re-solve of an unchanged sub-structure reproduce rates
      // bit-for-bit (and ApplyRate skip them).
      SortByFlowId(&affected);
      SolveMaxMin(affected, &rates_scratch_);
      RecordSlotTotals(rates_scratch_);
      ++stats_.solves;
      stats_.flows_touched += affected.size();

      // Boundary expansion: the sub-solve is the true max-min allocation only
      // if every fixed flow stays certified. A fixed flow must join the set
      // when it out-ranks the new level of a side that froze flows (the solve
      // wrongly treated its over-sized share as immovable), or when no side
      // certifies its rate any more (capacity it should claim was freed, or
      // the side whose level pinned it moved). Joined flows make their sides
      // affected too; the next round re-solves the grown set. No join means
      // the allocation passes exactly the certification the audit sweep
      // checks, so the fixpoint is sound by the same iff-characterization of
      // max-min fairness.
      //
      // Both passes walk the sides' contiguous (rate, id) share indexes and
      // classify entries against the id-sorted solve input (sort_scratch_), so
      // fixed flows that stay certified — the common case — are never
      // dereferenced. Affected flows' index entries still carry their
      // pre-solve rates; only the entries classified as fixed are read.
      const auto is_affected = [&](FlowId id) {
        const auto it = std::lower_bound(
            sort_scratch_.begin(), sort_scratch_.end(), id,
            [](const std::pair<FlowId, Flow*>& e, FlowId v) { return e.first < v; });
        return it != sort_scratch_.end() && it->first == id;
      };
      const size_t sides_at_solve = affected_sides_.size();
      for (size_t si = 0; si < sides_at_solve; ++si) {
        const int key = affected_sides_[si];
        if (slot_stamp_[static_cast<size_t>(key)] != solve_stamp_) {
          continue;  // A changed side no flow crosses any more (e.g. emptied by a departure).
        }
        const auto s = static_cast<size_t>(slot_of_[static_cast<size_t>(key)]);
        double unaffected_max = 0.0;
        for (const auto& [rate, id] : sides_[static_cast<size_t>(key)].shares) {
          if (!is_affected(id)) {
            unaffected_max = std::max(unaffected_max, rate.bps());
          }
        }
        slot_unaffected_max_[s] = unaffected_max;
      }
      bool expanded = false;
      for (size_t si = 0; si < sides_at_solve; ++si) {
        const int key = affected_sides_[si];
        if (slot_stamp_[static_cast<size_t>(key)] != solve_stamp_) {
          continue;
        }
        const auto s = static_cast<size_t>(slot_of_[static_cast<size_t>(key)]);
        const double level = slot_level_[s];
        const bool saturated = slot_total_[s] >= bw - eps;
        const double top = std::max(slot_max_affected_[s], slot_unaffected_max_[s]);
        for (const auto& [share, id] : sides_[static_cast<size_t>(key)].shares) {
          const double rate = share.bps();
          if (is_affected(id)) {
            continue;
          }
          if (rate <= level + eps && saturated && rate >= top - eps) {
            continue;  // Certified at this side without touching the flow.
          }
          Flow* flow = FindFlow(id);
          if (flow->visit_stamp == visit_stamp_) {
            continue;  // Joined through another side this round.
          }
          if (rate > level + eps || !CertifiedAfterSolve(*flow, eps)) {
            add_flow(flow);
            expanded = true;
          }
        }
      }
      if (!expanded) {
        solved = true;
        break;
      }
    }
  }
  if (!solved) {
    // The affected set cascaded (or the gate said it would): one full-closure
    // solve costs less than further expansion rounds, and is always sufficient
    // (rates outside the connected component of the changed sides cannot
    // move — and the closure from the dirty sides equals the closure from any
    // expanded side set, since joined sides are reached through shared flows).
    // When the last collected closure spanned every live flow — a loaded
    // fabric is usually one connected component — later fallbacks skip the
    // collection walk and solve the full flow list directly: a superset solve
    // is always correct (disjoint components fill independently under the
    // global-min bottleneck selection, and unchanged rates are skipped on
    // apply), it is just wasted width if the fabric has since split, so the
    // closure is re-collected every few dozen flushes to revalidate.
    bool spanning = false;
    if (spanning_revalidate_ > 0) {
      --spanning_revalidate_;
      affected.assign(flows_by_id_.begin(), flows_by_id_.end());
      spanning = true;
    } else {
      CollectFromSides(dirty_sides_, &affected);
      if (affected.size() == flows_by_id_.size()) {
        spanning_revalidate_ = kSpanningRevalidateInterval;
        affected.assign(flows_by_id_.begin(), flows_by_id_.end());
        spanning = true;
      } else {
        SortByFlowId(&affected);
      }
    }
    SolveMaxMin(affected, &rates_scratch_, /*identity_slots=*/spanning);
    ++stats_.solves;
    stats_.flows_touched += affected.size();
  }
  dirty_sides_.clear();
  ++dirty_stamp_;

  for (size_t i = 0; i < affected.size(); ++i) {
    Flow* flow = affected[i];
    // Same skip ApplyRate makes, hoisted: most of a re-solved component keeps
    // its rates bit-for-bit, so the call itself is the cost worth dodging.
    if (monoutil::BytesPerSecond(rates_scratch_[i]) == flow->rate &&
        flow->predicted_done >= SimTime()) {
      continue;
    }
    ApplyRate(flow, monoutil::BytesPerSecond(rates_scratch_[i]));
  }
  UpdateCompletionTimer();
  if (trace_enabled_ || monotrace::Tracer::current() != nullptr) {
    for (const Flow* flow : affected) {
      touched_scratch_.push_back(flow->dst);
    }
    RecordIngressTouched(touched_scratch_);
  }
}

void NetworkFabricSim::RecomputeAffected(int src, int dst) {
  // Eager legacy-policy path: rates can only change inside the connected
  // component(s) of the flow-sharing graph that touch the changed endpoints.
  std::vector<Flow*> component;
  CollectFromSides({EgressKey(src), IngressKey(dst)}, &component);
  for (Flow* flow : component) {
    ApplyRate(flow, LegacyMinShare(*flow));
  }
  UpdateCompletionTimer();
  std::vector<int> touched_ingress;
  touched_ingress.push_back(dst);  // Record even when the last flow just departed.
  for (const Flow* flow : component) {
    touched_ingress.push_back(flow->dst);
  }
  RecordIngressTouched(touched_ingress);
  // Audit eagerly, as the eager path historically did: the allocations this
  // policy strands exist *between* a change and the next epoch boundary (the
  // epoch-boundary sweep only sees the state after in-flight departures).
  if (SimAudit* audit = SimAudit::current()) {
    AuditInvariants(*audit, AuditPhase::kEventBoundary);
  }
}

void NetworkFabricSim::RecordIngressTouched(const std::vector<int>& machines) {
  if (trace_enabled_) {
    RecordIngressRates(machines);
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    for (const int machine : machines) {
      double total = 0.0;
      for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
        total += flow->rate.bps();
      }
      tracer->Counter("devices", "machine" + std::to_string(machine) + ".nic-in",
                      sim_->now().seconds(), total / nic_bandwidth_.bps());
    }
  }
}

void NetworkFabricSim::OnFlowComplete(FlowId id) {
  const auto by_id = std::lower_bound(
      flows_by_id_.begin(), flows_by_id_.end(), id,
      [](const Flow* f, FlowId v) { return f->id < v; });
  MONO_CHECK(by_id != flows_by_id_.end() && (*by_id)->id == id);
  Flow* flow = *by_id;

  // Guard against firing while a rate change left residual bytes.
  const SimTime now = sim_->now();
  const SimTime dt = now - flow->last_update;
  flow->remaining = std::max(0.0, flow->remaining - flow->rate.bps() * dt.seconds());
  flow->last_update = now;
  MONO_CHECK_MSG(
      flow->remaining <= std::max(flow->rate.bps(), 1.0) * kCompletionEpsilonSeconds,
      "flow completion fired early");

  const int src = flow->src;
  const int dst = flow->dst;
  const monoutil::BytesPerSecond rate = flow->rate;
  InlineCallback done = std::move(flow->done);
  // Decide on the local patch while the departing flow's index entries still
  // exist (the decision reads its sides' sums and top shares).
  const bool patched =
      share_policy_ == SharePolicy::kMaxMinFair && CanPatchDeparture(*flow);

  auto erase_from = [](std::vector<Flow*>& list, Flow* target) {
    list.erase(std::remove(list.begin(), list.end(), target), list.end());
  };
  erase_from(egress_flows_[static_cast<size_t>(src)], flow);
  erase_from(ingress_flows_[static_cast<size_t>(dst)], flow);
  AccumulateSideTime(now);
  --egress_count_[static_cast<size_t>(src)];
  --ingress_count_[static_cast<size_t>(dst)];
  if (egress_count_[static_cast<size_t>(src)] == 0) {
    --busy_side_count_;
  }
  if (ingress_count_[static_cast<size_t>(dst)] == 0) {
    --busy_side_count_;
  }
  for (const int key : {EgressKey(src), IngressKey(dst)}) {
    const bool was_saturated = SideSaturated(key);
    sides_[static_cast<size_t>(key)].Erase(rate, id);
    if (SideSaturated(key) != was_saturated) {
      saturated_side_count_ += was_saturated ? -1 : 1;
    }
  }
  flows_by_id_.erase(by_id);
  // Recycle before `done()` runs: the callback may start a replacement flow,
  // which is welcome to reuse this very slot (everything it needs was copied
  // into locals above).
  FreeFlow(flow);

  if (share_policy_ == SharePolicy::kMinShareLegacy) {
    RecomputeAffected(src, dst);
  } else if (patched) {
    ++stats_.patched_departures;
    RecordIngressTouched({dst});
  } else {
    ++stats_.batched_changes;
    MarkDirty(src, dst);
  }
  static monotrace::MetricCounter* flows_metric =
      monotrace::MetricsRegistry::Global().Get("fabric.flows_completed");
  flows_metric->Increment();
  done();
}

int NetworkFabricSim::ingress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return ingress_count_[static_cast<size_t>(machine)];
}

int NetworkFabricSim::egress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return egress_count_[static_cast<size_t>(machine)];
}

void NetworkFabricSim::AccumulateSideTime(SimTime now) const {
  const SimTime dt = now - side_accum_at_;
  if (dt > SimTime()) {
    busy_side_seconds_ += dt * static_cast<double>(busy_side_count_);
    saturated_side_seconds_ += dt * static_cast<double>(saturated_side_count_);
  }
  side_accum_at_ = now;
}

monoutil::SimTime NetworkFabricSim::busy_side_seconds() const {
  AccumulateSideTime(sim_->now());
  return busy_side_seconds_;
}

monoutil::SimTime NetworkFabricSim::saturated_side_seconds() const {
  AccumulateSideTime(sim_->now());
  return saturated_side_seconds_;
}

monoutil::BytesPerSecond NetworkFabricSim::flow_rate(FlowId id) const {
  FlushPendingConst();
  const Flow* flow = FindFlow(id);
  MONO_CHECK_MSG(flow != nullptr, "flow_rate: unknown or completed flow");
  return flow->rate;
}

std::vector<NetworkFabricSim::FlowInfo> NetworkFabricSim::ActiveFlows() const {
  FlushPendingConst();
  std::vector<FlowInfo> infos;
  infos.reserve(flows_by_id_.size());
  // The registry is already in ascending id order — the snapshot inherits it.
  for (const Flow* flow : flows_by_id_) {
    infos.push_back(FlowInfo{flow->id, flow->src, flow->dst, flow->rate});
  }
  return infos;
}

void NetworkFabricSim::EnableTrace() {
  trace_enabled_ = true;
  for (size_t m = 0; m < ingress_traces_.size(); ++m) {
    if (ingress_traces_[m].empty()) {
      ingress_traces_[m].Record(sim_->now(), 0.0);
    }
  }
}

void NetworkFabricSim::RecordIngressRates(const std::vector<int>& machines) {
  for (int machine : machines) {
    double total = 0.0;
    for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
      total += flow->rate.bps();
    }
    ingress_traces_[static_cast<size_t>(machine)].Record(sim_->now(), total);
  }
}

const RateTrace& NetworkFabricSim::ingress_trace(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  FlushPendingConst();
  return ingress_traces_[static_cast<size_t>(machine)];
}

double NetworkFabricSim::MeanIngressUtilization(int machine, SimTime from, SimTime to) const {
  MONO_CHECK(trace_enabled_);
  return ingress_trace(machine).MeanUtilization(from, to, nic_bandwidth_.bps());
}

}  // namespace monosim
