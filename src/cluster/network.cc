#include "src/cluster/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"

namespace monosim {
namespace {

constexpr double kCompletionEpsilonSeconds = 1e-9;

}  // namespace

NetworkFabricSim::NetworkFabricSim(Simulation* sim, int num_machines,
                                   monoutil::BytesPerSecond nic_bandwidth,
                                   monoutil::SimTime request_latency)
    : sim_(sim),
      nic_bandwidth_(nic_bandwidth),
      request_latency_(request_latency),
      ingress_count_(static_cast<size_t>(num_machines), 0),
      egress_count_(static_cast<size_t>(num_machines), 0),
      ingress_flows_(static_cast<size_t>(num_machines)),
      egress_flows_(static_cast<size_t>(num_machines)),
      ingress_traces_(static_cast<size_t>(num_machines)) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(num_machines >= 1);
  MONO_CHECK(nic_bandwidth > 0);
  sim_->RegisterAuditable(this);
}

NetworkFabricSim::~NetworkFabricSim() {
  sim_->UnregisterAuditable(this);
}

void NetworkFabricSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = "network-fabric";
  const double eps = 1e-9 * std::max(1.0, nic_bandwidth_);

  // Per-NIC-side rate sums and maxima, reused below by the bandwidth checks and
  // the max-min bottleneck certification.
  const size_t machines = static_cast<size_t>(num_machines());
  std::vector<double> ingress_sum(machines, 0.0), ingress_max(machines, 0.0);
  std::vector<double> egress_sum(machines, 0.0), egress_max(machines, 0.0);

  size_t listed_ingress = 0;
  size_t listed_egress = 0;
  for (int m = 0; m < num_machines(); ++m) {
    const auto& ingress = ingress_flows_[static_cast<size_t>(m)];
    const auto& egress = egress_flows_[static_cast<size_t>(m)];
    listed_ingress += ingress.size();
    listed_egress += egress.size();
    audit.ExpectLazy(ingress_count_[static_cast<size_t>(m)] ==
                             static_cast<int>(ingress.size()) &&
                         egress_count_[static_cast<size_t>(m)] ==
                             static_cast<int>(egress.size()),
                     now, source, "flow-count-bookkeeping", [&] {
                       std::ostringstream d;
                       d << "machine " << m << ": counts (" << ingress_count_[static_cast<size_t>(m)]
                         << ", " << egress_count_[static_cast<size_t>(m)]
                         << ") != list sizes (" << ingress.size() << ", "
                         << egress.size() << ")";
                       return d.str();
                     });
    for (const Flow* flow : ingress) {
      ingress_sum[static_cast<size_t>(m)] += flow->rate;
      ingress_max[static_cast<size_t>(m)] = std::max(ingress_max[static_cast<size_t>(m)], flow->rate);
      audit.ExpectLazy(flow->rate >= 0.0, now, source, "flow-rate-non-negative", [&] {
        std::ostringstream d;
        d << "flow " << flow->id << " has rate " << flow->rate;
        return d.str();
      });
    }
    for (const Flow* flow : egress) {
      egress_sum[static_cast<size_t>(m)] += flow->rate;
      egress_max[static_cast<size_t>(m)] = std::max(egress_max[static_cast<size_t>(m)], flow->rate);
    }
    // Each NIC is full duplex: the flows it carries in each direction cannot
    // together exceed its bandwidth.
    audit.ExpectLazy(ingress_sum[static_cast<size_t>(m)] <= nic_bandwidth_ + eps, now, source,
                     "ingress-within-bandwidth", [&] {
                       std::ostringstream d;
                       d << "machine " << m << " ingress rate " << ingress_sum[static_cast<size_t>(m)]
                         << " exceeds NIC bandwidth " << nic_bandwidth_;
                       return d.str();
                     });
    audit.ExpectLazy(egress_sum[static_cast<size_t>(m)] <= nic_bandwidth_ + eps, now, source,
                     "egress-within-bandwidth", [&] {
                       std::ostringstream d;
                       d << "machine " << m << " egress rate " << egress_sum[static_cast<size_t>(m)]
                         << " exceeds NIC bandwidth " << nic_bandwidth_;
                       return d.str();
                     });
  }
  audit.ExpectLazy(listed_ingress == flows_.size(), now, source, "flow-registry", [&] {
    std::ostringstream d;
    d << "per-machine ingress lists hold " << listed_ingress << " flows, registry holds "
      << flows_.size();
    return d.str();
  });
  audit.ExpectLazy(listed_egress == flows_.size(), now, source, "flow-registry-egress", [&] {
    std::ostringstream d;
    d << "per-machine egress lists hold " << listed_egress << " flows, registry holds "
      << flows_.size();
    return d.str();
  });

  // Max-min certification: an allocation is max-min fair iff every flow crosses at
  // least one saturated NIC side on which it has a maximal share. This bounds the
  // rates from *below* — the bandwidth checks above only bound them from above, so
  // a work-conservation bug (stranded capacity) passes them silently.
  for (const auto& [id, flow] : flows_) {
    const size_t src = static_cast<size_t>(flow->src);
    const size_t dst = static_cast<size_t>(flow->dst);
    const bool egress_bottleneck = egress_sum[src] >= nic_bandwidth_ - eps &&
                                   flow->rate >= egress_max[src] - eps;
    const bool ingress_bottleneck = ingress_sum[dst] >= nic_bandwidth_ - eps &&
                                    flow->rate >= ingress_max[dst] - eps;
    audit.ExpectLazy(egress_bottleneck || ingress_bottleneck, now, source,
                     "max-min-bottleneck", [&, id = id] {
                       std::ostringstream d;
                       d << "flow " << id << " (" << flow->src << "->" << flow->dst
                         << ") rate " << flow->rate
                         << " is not bottlenecked at a saturated NIC (egress sum "
                         << egress_sum[src] << " max " << egress_max[src]
                         << ", ingress sum " << ingress_sum[dst] << " max "
                         << ingress_max[dst] << ", bandwidth " << nic_bandwidth_
                         << "): capacity is stranded";
                       return d.str();
                     });
  }

  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(flows_.empty(), now, source, "drained", [&] {
      std::ostringstream d;
      d << flows_.size() << " flow(s) still active after the event queue drained";
      return d.str();
    });
  }
}

double NetworkFabricSim::LegacyMinShare(const Flow& flow) const {
  const double egress_share =
      nic_bandwidth_ / static_cast<double>(egress_count_[static_cast<size_t>(flow.src)]);
  const double ingress_share =
      nic_bandwidth_ / static_cast<double>(ingress_count_[static_cast<size_t>(flow.dst)]);
  return std::min(egress_share, ingress_share);
}

NetworkFabricSim::FlowId NetworkFabricSim::StartFlow(int src, int dst, monoutil::Bytes bytes,
                                                     std::function<void()> done) {
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  MONO_CHECK_MSG(src != dst, "local transfers must not traverse the fabric");
  MONO_CHECK(bytes >= 0);
  MONO_CHECK(done != nullptr);

  const FlowId id = next_id_++;
  auto flow = std::make_unique<Flow>();
  flow->id = id;
  flow->src = src;
  flow->dst = dst;
  flow->remaining = static_cast<double>(bytes);
  flow->last_update = sim_->now();
  flow->done = std::move(done);
  Flow* raw = flow.get();
  flows_.emplace(id, std::move(flow));

  ++egress_count_[static_cast<size_t>(src)];
  ++ingress_count_[static_cast<size_t>(dst)];
  egress_flows_[static_cast<size_t>(src)].push_back(raw);
  ingress_flows_[static_cast<size_t>(dst)].push_back(raw);
  total_bytes_ += bytes;

  RecomputeAffected(src, dst);
  return id;
}

void NetworkFabricSim::SendControl(int src, int dst, std::function<void()> deliver) {
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  sim_->ScheduleAfter(request_latency_, std::move(deliver), "net-request");
}

std::vector<NetworkFabricSim::Flow*> NetworkFabricSim::CollectComponent(int src, int dst) {
  ++visit_epoch_;
  std::vector<Flow*> component;
  // NIC sides encoded 2m (egress of machine m) / 2m+1 (ingress of m). A flow links
  // its source's egress side to its destination's ingress side; the component is
  // the transitive closure over those links.
  std::vector<char> side_seen(static_cast<size_t>(2 * num_machines()), 0);
  std::vector<int> pending_sides;
  auto push_side = [&](int key) {
    if (!side_seen[static_cast<size_t>(key)]) {
      side_seen[static_cast<size_t>(key)] = 1;
      pending_sides.push_back(key);
    }
  };
  push_side(2 * src);
  push_side(2 * dst + 1);
  while (!pending_sides.empty()) {
    const int key = pending_sides.back();
    pending_sides.pop_back();
    const auto& list = (key % 2 == 0) ? egress_flows_[static_cast<size_t>(key / 2)]
                                      : ingress_flows_[static_cast<size_t>(key / 2)];
    for (Flow* flow : list) {
      if (flow->visit_epoch == visit_epoch_) {
        continue;
      }
      flow->visit_epoch = visit_epoch_;
      component.push_back(flow);
      push_side(2 * flow->src);
      push_side(2 * flow->dst + 1);
    }
  }
  return component;
}

void NetworkFabricSim::SolveMaxMin(const std::vector<Flow*>& component,
                                   std::vector<double>* new_rates) const {
  const size_t n = component.size();
  new_rates->assign(n, 0.0);
  if (n == 0) {
    return;
  }
  // Dense table of just the NIC sides this component touches. Progressive filling:
  // raise all unfrozen flows' common level until the most-constrained side
  // saturates, freeze that side's flows at the level reached, redistribute the
  // rest. Every round saturates at least one side, so it terminates in at most
  // #sides rounds.
  struct Side {
    double residual;
    int unfrozen;
  };
  std::vector<Side> sides;
  std::unordered_map<int, int> slot_of;
  std::vector<int> egress_slot(n), ingress_slot(n);
  auto slot = [&](int key) {
    auto [it, inserted] = slot_of.emplace(key, static_cast<int>(sides.size()));
    if (inserted) {
      sides.push_back(Side{nic_bandwidth_, 0});
    }
    return it->second;
  };
  for (size_t i = 0; i < n; ++i) {
    egress_slot[i] = slot(2 * component[i]->src);
    ingress_slot[i] = slot(2 * component[i]->dst + 1);
    ++sides[static_cast<size_t>(egress_slot[i])].unfrozen;
    ++sides[static_cast<size_t>(ingress_slot[i])].unfrozen;
  }

  const double eps = 1e-12 * nic_bandwidth_;
  std::vector<char> frozen(n, 0);
  size_t remaining = n;
  double level = 0.0;
  while (remaining > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (const Side& side : sides) {
      if (side.unfrozen > 0) {
        delta = std::min(delta, side.residual / side.unfrozen);
      }
    }
    MONO_CHECK_MSG(std::isfinite(delta) && delta > 0.0, "progressive filling stalled");
    level += delta;
    for (Side& side : sides) {
      if (side.unfrozen > 0) {
        side.residual -= delta * side.unfrozen;
      }
    }
    size_t froze = 0;
    for (size_t i = 0; i < n; ++i) {
      if (frozen[i]) {
        continue;
      }
      if (sides[static_cast<size_t>(egress_slot[i])].residual <= eps ||
          sides[static_cast<size_t>(ingress_slot[i])].residual <= eps) {
        frozen[i] = 1;
        (*new_rates)[i] = level;
        --sides[static_cast<size_t>(egress_slot[i])].unfrozen;
        --sides[static_cast<size_t>(ingress_slot[i])].unfrozen;
        ++froze;
      }
    }
    MONO_CHECK_MSG(froze > 0, "progressive filling made no progress");
    remaining -= froze;
  }
}

void NetworkFabricSim::ApplyRate(Flow* flow, double new_rate) {
  MONO_CHECK(new_rate > 0);
  if (new_rate == flow->rate && flow->completion.pending()) {
    // Unchanged rate: progress stays linear and the pending completion event is
    // still exact, so leave the flow untouched (no event-queue churn).
    return;
  }
  // Advance progress under the old rate, then apply the new share.
  const SimTime now = sim_->now();
  const double dt = now - flow->last_update;
  if (dt > 0) {
    flow->remaining = std::max(0.0, flow->remaining - flow->rate * dt);
  }
  flow->last_update = now;
  flow->rate = new_rate;

  flow->completion.Cancel();
  const SimTime finish_in = flow->remaining / flow->rate;
  const FlowId id = flow->id;
  flow->completion =
      sim_->ScheduleAfter(finish_in, [this, id] { OnFlowComplete(id); }, "flow-complete");
}

void NetworkFabricSim::RecomputeAffected(int src, int dst) {
  // Rates can only change inside the connected component(s) of the flow-sharing
  // graph that touch the changed endpoints; everything else keeps its allocation.
  std::vector<Flow*> component = CollectComponent(src, dst);
  if (share_policy_ == SharePolicy::kMinShareLegacy) {
    for (Flow* flow : component) {
      ApplyRate(flow, LegacyMinShare(*flow));
    }
  } else {
    std::vector<double> rates;
    SolveMaxMin(component, &rates);
    for (size_t i = 0; i < component.size(); ++i) {
      ApplyRate(component[i], rates[i]);
    }
  }

  std::vector<int> touched_ingress;
  touched_ingress.push_back(dst);  // Record even when the last flow just departed.
  for (const Flow* flow : component) {
    touched_ingress.push_back(flow->dst);
  }
  if (trace_enabled_) {
    RecordIngressRates(touched_ingress);
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    for (int machine : touched_ingress) {
      double total = 0.0;
      for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
        total += flow->rate;
      }
      tracer->Counter("devices", "machine" + std::to_string(machine) + ".nic-in",
                      sim_->now(), total / nic_bandwidth_);
    }
  }
  // The allocations visible between events (where stranded-capacity bugs live)
  // can only be checked here, not from the simulation's event-boundary sweep.
  if (SimAudit* audit = SimAudit::current()) {
    AuditInvariants(*audit, AuditPhase::kEventBoundary);
  }
}

void NetworkFabricSim::OnFlowComplete(FlowId id) {
  auto it = flows_.find(id);
  MONO_CHECK(it != flows_.end());
  Flow* flow = it->second.get();

  // Guard against firing while a rate change left residual bytes.
  const SimTime now = sim_->now();
  const double dt = now - flow->last_update;
  flow->remaining = std::max(0.0, flow->remaining - flow->rate * dt);
  flow->last_update = now;
  MONO_CHECK_MSG(flow->remaining <= std::max(flow->rate, 1.0) * kCompletionEpsilonSeconds,
                 "flow completion fired early");

  const int src = flow->src;
  const int dst = flow->dst;
  std::function<void()> done = std::move(flow->done);

  auto erase_from = [](std::vector<Flow*>& list, Flow* target) {
    list.erase(std::remove(list.begin(), list.end(), target), list.end());
  };
  erase_from(egress_flows_[static_cast<size_t>(src)], flow);
  erase_from(ingress_flows_[static_cast<size_t>(dst)], flow);
  --egress_count_[static_cast<size_t>(src)];
  --ingress_count_[static_cast<size_t>(dst)];
  flows_.erase(it);

  RecomputeAffected(src, dst);
  static monotrace::MetricCounter* flows_metric =
      monotrace::MetricsRegistry::Global().Get("fabric.flows_completed");
  flows_metric->Increment();
  done();
}

int NetworkFabricSim::ingress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return ingress_count_[static_cast<size_t>(machine)];
}

int NetworkFabricSim::egress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return egress_count_[static_cast<size_t>(machine)];
}

double NetworkFabricSim::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  MONO_CHECK_MSG(it != flows_.end(), "flow_rate: unknown or completed flow");
  return it->second->rate;
}

std::vector<NetworkFabricSim::FlowInfo> NetworkFabricSim::ActiveFlows() const {
  std::vector<FlowInfo> infos;
  infos.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) {
    infos.push_back(FlowInfo{id, flow->src, flow->dst, flow->rate});
  }
  std::sort(infos.begin(), infos.end(),
            [](const FlowInfo& a, const FlowInfo& b) { return a.id < b.id; });
  return infos;
}

void NetworkFabricSim::EnableTrace() {
  trace_enabled_ = true;
  for (size_t m = 0; m < ingress_traces_.size(); ++m) {
    if (ingress_traces_[m].empty()) {
      ingress_traces_[m].Record(sim_->now(), 0.0);
    }
  }
}

void NetworkFabricSim::RecordIngressRates(const std::vector<int>& machines) {
  for (int machine : machines) {
    double total = 0.0;
    for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
      total += flow->rate;
    }
    ingress_traces_[static_cast<size_t>(machine)].Record(sim_->now(), total);
  }
}

const RateTrace& NetworkFabricSim::ingress_trace(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return ingress_traces_[static_cast<size_t>(machine)];
}

double NetworkFabricSim::MeanIngressUtilization(int machine, SimTime from, SimTime to) const {
  MONO_CHECK(trace_enabled_);
  return ingress_trace(machine).MeanUtilization(from, to, nic_bandwidth_);
}

}  // namespace monosim
