#include "src/cluster/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"

namespace monosim {
namespace {

constexpr double kCompletionEpsilonSeconds = 1e-9;

}  // namespace

NetworkFabricSim::NetworkFabricSim(Simulation* sim, int num_machines,
                                   monoutil::BytesPerSecond nic_bandwidth,
                                   monoutil::SimTime request_latency)
    : sim_(sim),
      nic_bandwidth_(nic_bandwidth),
      request_latency_(request_latency),
      ingress_count_(static_cast<size_t>(num_machines), 0),
      egress_count_(static_cast<size_t>(num_machines), 0),
      ingress_flows_(static_cast<size_t>(num_machines)),
      egress_flows_(static_cast<size_t>(num_machines)),
      ingress_traces_(static_cast<size_t>(num_machines)) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(num_machines >= 1);
  MONO_CHECK(nic_bandwidth > 0);
  sim_->RegisterAuditable(this);
}

NetworkFabricSim::~NetworkFabricSim() {
  sim_->UnregisterAuditable(this);
}

void NetworkFabricSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = "network-fabric";
  const double eps = 1e-9 * std::max(1.0, nic_bandwidth_);

  size_t listed_ingress = 0;
  for (int m = 0; m < num_machines(); ++m) {
    const auto& ingress = ingress_flows_[static_cast<size_t>(m)];
    const auto& egress = egress_flows_[static_cast<size_t>(m)];
    listed_ingress += ingress.size();
    audit.ExpectLazy(ingress_count_[static_cast<size_t>(m)] ==
                             static_cast<int>(ingress.size()) &&
                         egress_count_[static_cast<size_t>(m)] ==
                             static_cast<int>(egress.size()),
                     now, source, "flow-count-bookkeeping", [&] {
                       std::ostringstream d;
                       d << "machine " << m << ": counts (" << ingress_count_[static_cast<size_t>(m)]
                         << ", " << egress_count_[static_cast<size_t>(m)]
                         << ") != list sizes (" << ingress.size() << ", "
                         << egress.size() << ")";
                       return d.str();
                     });
    double ingress_rate = 0.0;
    for (const Flow* flow : ingress) {
      ingress_rate += flow->rate;
      audit.ExpectLazy(flow->rate >= 0.0, now, source, "flow-rate-non-negative", [&] {
        std::ostringstream d;
        d << "flow " << flow->id << " has rate " << flow->rate;
        return d.str();
      });
    }
    double egress_rate = 0.0;
    for (const Flow* flow : egress) {
      egress_rate += flow->rate;
    }
    // Each NIC is full duplex: the flows it carries in each direction cannot
    // together exceed its bandwidth.
    audit.ExpectLazy(ingress_rate <= nic_bandwidth_ + eps, now, source,
                     "ingress-within-bandwidth", [&] {
                       std::ostringstream d;
                       d << "machine " << m << " ingress rate " << ingress_rate
                         << " exceeds NIC bandwidth " << nic_bandwidth_;
                       return d.str();
                     });
    audit.ExpectLazy(egress_rate <= nic_bandwidth_ + eps, now, source,
                     "egress-within-bandwidth", [&] {
                       std::ostringstream d;
                       d << "machine " << m << " egress rate " << egress_rate
                         << " exceeds NIC bandwidth " << nic_bandwidth_;
                       return d.str();
                     });
  }
  audit.ExpectLazy(listed_ingress == flows_.size(), now, source, "flow-registry", [&] {
    std::ostringstream d;
    d << "per-machine ingress lists hold " << listed_ingress << " flows, registry holds "
      << flows_.size();
    return d.str();
  });

  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(flows_.empty(), now, source, "drained", [&] {
      std::ostringstream d;
      d << flows_.size() << " flow(s) still active after the event queue drained";
      return d.str();
    });
  }
}

double NetworkFabricSim::ShareFor(const Flow& flow) const {
  const double egress_share =
      nic_bandwidth_ / static_cast<double>(egress_count_[static_cast<size_t>(flow.src)]);
  const double ingress_share =
      nic_bandwidth_ / static_cast<double>(ingress_count_[static_cast<size_t>(flow.dst)]);
  return std::min(egress_share, ingress_share);
}

NetworkFabricSim::FlowId NetworkFabricSim::StartFlow(int src, int dst, monoutil::Bytes bytes,
                                                     std::function<void()> done) {
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  MONO_CHECK_MSG(src != dst, "local transfers must not traverse the fabric");
  MONO_CHECK(bytes >= 0);
  MONO_CHECK(done != nullptr);

  const FlowId id = next_id_++;
  auto flow = std::make_unique<Flow>();
  flow->id = id;
  flow->src = src;
  flow->dst = dst;
  flow->remaining = static_cast<double>(bytes);
  flow->last_update = sim_->now();
  flow->done = std::move(done);
  Flow* raw = flow.get();
  flows_.emplace(id, std::move(flow));

  ++egress_count_[static_cast<size_t>(src)];
  ++ingress_count_[static_cast<size_t>(dst)];
  egress_flows_[static_cast<size_t>(src)].push_back(raw);
  ingress_flows_[static_cast<size_t>(dst)].push_back(raw);
  total_bytes_ += bytes;

  RecomputeAround(src, dst);
  return id;
}

void NetworkFabricSim::SendControl(int src, int dst, std::function<void()> deliver) {
  MONO_CHECK(src >= 0 && src < num_machines());
  MONO_CHECK(dst >= 0 && dst < num_machines());
  sim_->ScheduleAfter(request_latency_, std::move(deliver));
}

void NetworkFabricSim::UpdateFlowRate(Flow* flow) {
  // Advance progress under the old rate, then apply the new share.
  const SimTime now = sim_->now();
  const double dt = now - flow->last_update;
  if (dt > 0) {
    flow->remaining = std::max(0.0, flow->remaining - flow->rate * dt);
  }
  flow->last_update = now;
  flow->rate = ShareFor(*flow);

  flow->completion.Cancel();
  MONO_CHECK(flow->rate > 0);
  const SimTime finish_in = flow->remaining / flow->rate;
  const FlowId id = flow->id;
  flow->completion = sim_->ScheduleAfter(finish_in, [this, id] { OnFlowComplete(id); });
}

void NetworkFabricSim::RecomputeAround(int src, int dst) {
  // Flows touching either endpoint may have a new share. Collect unique flows (a flow
  // can appear in both lists) and the machines whose ingress rate changes.
  std::vector<Flow*> affected;
  for (Flow* flow : egress_flows_[static_cast<size_t>(src)]) {
    affected.push_back(flow);
  }
  for (Flow* flow : ingress_flows_[static_cast<size_t>(dst)]) {
    if (flow->src != src) {
      affected.push_back(flow);
    }
  }
  std::vector<int> touched_ingress;
  touched_ingress.push_back(dst);  // Record even when the last flow just departed.
  for (Flow* flow : affected) {
    UpdateFlowRate(flow);
    touched_ingress.push_back(flow->dst);
  }
  if (trace_enabled_) {
    RecordIngressRates(touched_ingress);
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    for (int machine : touched_ingress) {
      double total = 0.0;
      for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
        total += flow->rate;
      }
      tracer->Counter("devices", "machine" + std::to_string(machine) + ".nic-in",
                      sim_->now(), total / nic_bandwidth_);
    }
  }
}

void NetworkFabricSim::OnFlowComplete(FlowId id) {
  auto it = flows_.find(id);
  MONO_CHECK(it != flows_.end());
  Flow* flow = it->second.get();

  // Guard against firing while a rate change left residual bytes.
  const SimTime now = sim_->now();
  const double dt = now - flow->last_update;
  flow->remaining = std::max(0.0, flow->remaining - flow->rate * dt);
  flow->last_update = now;
  MONO_CHECK_MSG(flow->remaining <= std::max(flow->rate, 1.0) * kCompletionEpsilonSeconds,
                 "flow completion fired early");

  const int src = flow->src;
  const int dst = flow->dst;
  std::function<void()> done = std::move(flow->done);

  auto erase_from = [](std::vector<Flow*>& list, Flow* target) {
    list.erase(std::remove(list.begin(), list.end(), target), list.end());
  };
  erase_from(egress_flows_[static_cast<size_t>(src)], flow);
  erase_from(ingress_flows_[static_cast<size_t>(dst)], flow);
  --egress_count_[static_cast<size_t>(src)];
  --ingress_count_[static_cast<size_t>(dst)];
  flows_.erase(it);

  RecomputeAround(src, dst);
  static monotrace::MetricCounter* flows_metric =
      monotrace::MetricsRegistry::Global().Get("fabric.flows_completed");
  flows_metric->Increment();
  done();
}

int NetworkFabricSim::ingress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return ingress_count_[static_cast<size_t>(machine)];
}

int NetworkFabricSim::egress_flows(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return egress_count_[static_cast<size_t>(machine)];
}

void NetworkFabricSim::EnableTrace() {
  trace_enabled_ = true;
  for (size_t m = 0; m < ingress_traces_.size(); ++m) {
    if (ingress_traces_[m].empty()) {
      ingress_traces_[m].Record(sim_->now(), 0.0);
    }
  }
}

void NetworkFabricSim::RecordIngressRates(const std::vector<int>& machines) {
  for (int machine : machines) {
    double total = 0.0;
    for (const Flow* flow : ingress_flows_[static_cast<size_t>(machine)]) {
      total += flow->rate;
    }
    ingress_traces_[static_cast<size_t>(machine)].Record(sim_->now(), total);
  }
}

const RateTrace& NetworkFabricSim::ingress_trace(int machine) const {
  MONO_CHECK(machine >= 0 && machine < num_machines());
  return ingress_traces_[static_cast<size_t>(machine)];
}

double NetworkFabricSim::MeanIngressUtilization(int machine, SimTime from, SimTime to) const {
  MONO_CHECK(trace_enabled_);
  return ingress_trace(machine).MeanUtilization(from, to, nic_bandwidth_);
}

}  // namespace monosim
