// The machine-learning workload (§5.2 "Machine Learning", Fig 7).
//
// A least-squares solve via block coordinate descent: a series of matrix-multiply
// stages over a 1M x 4096 matrix of doubles. Three properties distinguish it from the
// other workloads, all from the paper: the CPU path is optimized (arrays of doubles,
// native BLAS — low CPU cost per byte), a large volume of data crosses the network
// between stages, and shuffle data stays in memory, so the disks are idle.
#ifndef MONOTASKS_SRC_WORKLOADS_ML_H_
#define MONOTASKS_SRC_WORKLOADS_ML_H_

#include "src/cluster/cluster_config.h"
#include "src/framework/job_spec.h"

namespace monoload {

struct MlParams {
  // Matrix block rows per task and the stage count (one per coordinate-descent pass).
  int num_stages = 6;
  int tasks_per_stage = 480;  // Four waves over 15 machines x 8 cores.
  // Bytes of matrix data processed per stage (1M rows x 4096 cols x 8 B = 32.8 GB;
  // scaled to the block the pass touches).
  monoutil::Bytes stage_bytes = monoutil::GiB(24);
  // Fraction of the stage's data exchanged over the network between stages.
  double shuffle_fraction = 0.5;
  // Optimized native compute: CPU-nanoseconds per byte (an order of magnitude below
  // the JVM-heavy workloads).
  double cpu_ns_per_byte = 9.0;
  uint64_t seed = 13;
};

// The paper ran this on 15 machines with 2 SSDs each (unused: shuffle is in-memory).
monosim::ClusterConfig MlClusterConfig();

monosim::JobSpec MakeMlJob(const MlParams& params = {});

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_ML_H_
