#include "src/workloads/sort.h"

#include "src/common/check.h"

namespace monoload {

using monosim::InputSource;
using monosim::JobSpec;
using monosim::OutputSink;
using monosim::StageSpec;
using monoutil::Bytes;
using monoutil::MiB;

Bytes SortRecordBytes(int values_per_key) {
  MONO_CHECK(values_per_key >= 1);
  return Bytes(8 + 8 * static_cast<int64_t>(values_per_key));
}

double SortCpuSeconds(Bytes bytes, int values_per_key) {
  const double record =
      static_cast<double>(SortRecordBytes(values_per_key).count());
  const double ns_per_byte = kSortCpuPerRecordNs / record + kSortCpuPerByteNs;
  return static_cast<double>(bytes.count()) * ns_per_byte * 1e-9;
}

JobSpec MakeSortJob(monosim::DfsSim* dfs, const SortParams& params) {
  MONO_CHECK(dfs != nullptr);
  MONO_CHECK(params.total_bytes > Bytes(0));

  int map_tasks = params.num_map_tasks;
  if (map_tasks == 0) {
    map_tasks = static_cast<int>((params.total_bytes + MiB(128) - Bytes(1)).count() /
                                 MiB(128).count());
  }
  const int reduce_tasks =
      params.num_reduce_tasks > 0 ? params.num_reduce_tasks : map_tasks;

  const std::string input_file = params.name_prefix + ".input";
  if (!params.input_in_memory) {
    dfs->CreateFileWithBlocks(input_file, params.total_bytes, map_tasks);
  }

  const double map_cpu_total = SortCpuSeconds(params.total_bytes, params.values_per_key);
  const double reduce_cpu_total = map_cpu_total * kSortReduceCpuFactor;

  JobSpec job;
  job.name = params.name_prefix;
  job.seed = params.seed;

  StageSpec map;
  map.name = params.name_prefix + ".map";
  map.num_tasks = map_tasks;
  if (params.input_in_memory) {
    map.input = InputSource::kMemory;
    map.input_bytes = params.total_bytes;
    // Input is cached deserialized: the map stage skips input deserialization.
    map.cpu_seconds_per_task =
        map_cpu_total * (1.0 - kSortDeserFraction) / static_cast<double>(map_tasks);
    map.deser_fraction = 0.0;
  } else {
    map.input = InputSource::kDfs;
    map.input_file = input_file;
    map.cpu_seconds_per_task = map_cpu_total / static_cast<double>(map_tasks);
    map.deser_fraction = kSortDeserFraction;
  }
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = params.total_bytes;

  StageSpec reduce;
  reduce.name = params.name_prefix + ".reduce";
  reduce.num_tasks = reduce_tasks;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = params.total_bytes;
  reduce.cpu_seconds_per_task = reduce_cpu_total / static_cast<double>(reduce_tasks);
  reduce.deser_fraction = kSortDeserFraction * 0.8;  // Shuffle data is re-deserialized.
  reduce.output = OutputSink::kDfs;
  reduce.output_bytes = params.total_bytes;

  job.stages = {map, reduce};
  return job;
}

}  // namespace monoload
