// An iterative PageRank-style workload for the cluster simulator.
//
// Each iteration joins the rank vector against the (cached, in-memory) adjacency
// structure, shuffles contributions by destination vertex, and aggregates new ranks.
// Iterative graph workloads are the canonical stress test for stage-barrier engines:
// many dependent stages, a shuffle per iteration, and CPU dominated by
// (de)serialization — which is why they feature in the performance-clarity debate the
// paper cites ([22, 23]: "the impact of fast networks on graph analytics").
#ifndef MONOTASKS_SRC_WORKLOADS_PAGERANK_H_
#define MONOTASKS_SRC_WORKLOADS_PAGERANK_H_

#include "src/cluster/cluster_config.h"
#include "src/framework/job_spec.h"
#include "src/storage/dfs.h"

namespace monoload {

struct PageRankParams {
  // Graph size: edges dominate the data volume (16 B per edge: src, dst).
  int64_t num_vertices = 50'000'000;
  int64_t num_edges = 1'000'000'000;
  int iterations = 5;
  int tasks_per_stage = 320;
  // CPU cost of generating/applying rank contributions, per edge byte.
  double cpu_ns_per_byte = 55.0;
  // If false, the adjacency lists are re-read from the DFS every iteration (the
  // uncached configuration users ask the "is caching worth it?" question about).
  bool edges_in_memory = true;
  uint64_t seed = 23;
};

// One contributions+aggregate stage pair per iteration.
monosim::JobSpec MakePageRankJob(monosim::DfsSim* dfs, const PageRankParams& params);

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_PAGERANK_H_
