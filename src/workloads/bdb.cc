#include "src/workloads/bdb.h"

#include "src/common/check.h"

namespace monoload {

using monosim::ClusterConfig;
using monosim::InputSource;
using monosim::JobSpec;
using monosim::MachineConfig;
using monosim::OutputSink;
using monosim::StageSpec;
using monoutil::Bytes;
using monoutil::GiB;
using monoutil::MiB;

namespace {

// Table sizes at scale factor 5 (calibration constants; see header).
constexpr Bytes kRankingsBytes = GiB(8);
constexpr Bytes kUservisitsBytes = GiB(40);
// One map task per 128 MiB block.
constexpr int kRankingsBlocks = 128;
constexpr int kUservisitsBlocks = 480;
// Q3's first stage scans both tables.
constexpr Bytes kJoinScanBytes = kRankingsBytes + kUservisitsBytes;
constexpr int kJoinScanBlocks = kRankingsBlocks + kUservisitsBlocks;

// CPU costs in nanoseconds per byte, chosen so that most queries are CPU-bound on
// the 5x(8-core, 2-HDD) cluster, matching Fig 14's bottleneck analysis.
constexpr double kScanCpuNsPerByte = 110.0;        // Q1 filter + (de)serialization.
constexpr double kAggMapCpuNsPerByte = 105.0;      // Q2 map: parse + partial aggregate.
constexpr double kAggReduceCpuNsPerByte = 100.0;  // Q2 reduce: merge groups.
constexpr double kJoinScanCpuNsPerByte = 100.0;    // Q3 scan: project join columns.
constexpr double kJoinCpuNsPerByte = 50.0;        // Q3 join stage (per shuffle byte).
constexpr double kJoinAggCpuNsPerByte = 80.0;     // Q3 final aggregation.
constexpr double kPythonCpuNsPerByte = 150.0;     // Q4 external-script map.
constexpr double kDeserFraction = 0.25;

double CpuSeconds(Bytes bytes, double ns_per_byte) {
  return static_cast<double>(bytes.count()) * ns_per_byte * 1e-9;
}

void EnsureFile(monosim::DfsSim* dfs, const std::string& name, Bytes bytes, int blocks) {
  if (!dfs->HasFile(name)) {
    dfs->CreateFileWithBlocks(name, bytes, blocks);
  }
}

// Fig 5's inputs are "compressed sequence files": on-disk bytes are the compressed
// size, and part of each scan's CPU work is decompression. Metadata only — the
// calibrated stage costs already include it.
constexpr double kInputCompressionRatio = 2.5;
constexpr double kDecompressFraction = 0.12;

StageSpec ScanStage(const std::string& name, const std::string& file, Bytes bytes,
                    int tasks, double cpu_ns_per_byte) {
  StageSpec stage;
  stage.name = name;
  stage.num_tasks = tasks;
  stage.input = InputSource::kDfs;
  stage.input_file = file;
  stage.cpu_seconds_per_task = CpuSeconds(bytes, cpu_ns_per_byte) / tasks;
  stage.deser_fraction = kDeserFraction;
  stage.input_compression_ratio = kInputCompressionRatio;
  stage.decompress_fraction = kDecompressFraction;
  return stage;
}

// Q1: scan + filter of rankings; the a/b/c variants only differ in how much output
// they materialize (the BI -> ETL spectrum described in §5.2).
JobSpec MakeQ1(monosim::DfsSim* dfs, Bytes output_bytes, const std::string& name) {
  EnsureFile(dfs, "bdb.rankings", kRankingsBytes, kRankingsBlocks);
  JobSpec job;
  job.name = name;
  StageSpec scan = ScanStage(name + ".scan", "bdb.rankings", kRankingsBytes,
                             kRankingsBlocks, kScanCpuNsPerByte);
  scan.output = OutputSink::kDfs;
  scan.output_bytes = output_bytes;
  job.stages = {scan};
  return job;
}

// Q2: group-by aggregation of uservisits; variants differ in the number of groups
// and hence the shuffle and result sizes.
JobSpec MakeQ2(monosim::DfsSim* dfs, Bytes shuffle_bytes, const std::string& name) {
  EnsureFile(dfs, "bdb.uservisits", kUservisitsBytes, kUservisitsBlocks);
  JobSpec job;
  job.name = name;
  StageSpec map = ScanStage(name + ".map", "bdb.uservisits", kUservisitsBytes,
                            kUservisitsBlocks, kAggMapCpuNsPerByte);
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = shuffle_bytes;

  StageSpec reduce;
  reduce.name = name + ".reduce";
  reduce.num_tasks = 80;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = shuffle_bytes;
  reduce.cpu_seconds_per_task =
      CpuSeconds(shuffle_bytes, kAggReduceCpuNsPerByte) / reduce.num_tasks;
  reduce.deser_fraction = kDeserFraction;
  reduce.output = OutputSink::kDfs;
  reduce.output_bytes = shuffle_bytes / 2;
  job.stages = {map, reduce};
  return job;
}

// Q3: join of uservisits and rankings, modeled as scan -> join -> aggregate. The
// variants scale the join's shuffle volume; 3c's shuffle stage exercises CPU, disk,
// and network about equally on the 2-HDD cluster (the §6.2 worst case).
JobSpec MakeQ3(monosim::DfsSim* dfs, Bytes shuffle_bytes, const std::string& name) {
  EnsureFile(dfs, "bdb.joinscan", kJoinScanBytes, kJoinScanBlocks);
  JobSpec job;
  job.name = name;
  StageSpec scan = ScanStage(name + ".scan", "bdb.joinscan", kJoinScanBytes,
                             kJoinScanBlocks, kJoinScanCpuNsPerByte);
  scan.output = OutputSink::kShuffle;
  scan.shuffle_bytes = shuffle_bytes;

  StageSpec join;
  join.name = name + ".join";
  join.num_tasks = 80;
  join.input = InputSource::kShuffle;
  join.input_bytes = shuffle_bytes;
  join.cpu_seconds_per_task =
      CpuSeconds(shuffle_bytes, kJoinCpuNsPerByte) / join.num_tasks;
  join.deser_fraction = kDeserFraction;
  join.output = OutputSink::kShuffle;
  join.shuffle_bytes = shuffle_bytes * 0.3;

  StageSpec agg;
  agg.name = name + ".agg";
  agg.num_tasks = 40;
  agg.input = InputSource::kShuffle;
  agg.input_bytes = join.shuffle_bytes;
  agg.cpu_seconds_per_task =
      CpuSeconds(join.shuffle_bytes, kJoinAggCpuNsPerByte) / agg.num_tasks;
  agg.deser_fraction = kDeserFraction;
  agg.output = OutputSink::kDfs;
  agg.output_bytes = join.shuffle_bytes / 5;
  job.stages = {scan, join, agg};
  return job;
}

// Q4: the page-rank-like query that shells out to a Python script (CPU-heavy map).
JobSpec MakeQ4(monosim::DfsSim* dfs) {
  EnsureFile(dfs, "bdb.uservisits", kUservisitsBytes, kUservisitsBlocks);
  JobSpec job;
  job.name = "bdb.4";
  StageSpec map = ScanStage("bdb.4.map", "bdb.uservisits", kUservisitsBytes,
                            kUservisitsBlocks, kPythonCpuNsPerByte);
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = GiB(5);

  StageSpec reduce;
  reduce.name = "bdb.4.reduce";
  reduce.num_tasks = 80;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = GiB(5);
  reduce.cpu_seconds_per_task = CpuSeconds(GiB(5), kAggReduceCpuNsPerByte) / 80;
  reduce.deser_fraction = kDeserFraction;
  reduce.output = OutputSink::kDfs;
  reduce.output_bytes = GiB(5);
  job.stages = {map, reduce};
  return job;
}

}  // namespace

const std::vector<BdbQuery>& AllBdbQueries() {
  static const std::vector<BdbQuery> kAll = {
      BdbQuery::k1a, BdbQuery::k1b, BdbQuery::k1c, BdbQuery::k2a, BdbQuery::k2b,
      BdbQuery::k2c, BdbQuery::k3a, BdbQuery::k3b, BdbQuery::k3c, BdbQuery::k4};
  return kAll;
}

std::string BdbQueryName(BdbQuery query) {
  switch (query) {
    case BdbQuery::k1a:
      return "1a";
    case BdbQuery::k1b:
      return "1b";
    case BdbQuery::k1c:
      return "1c";
    case BdbQuery::k2a:
      return "2a";
    case BdbQuery::k2b:
      return "2b";
    case BdbQuery::k2c:
      return "2c";
    case BdbQuery::k3a:
      return "3a";
    case BdbQuery::k3b:
      return "3b";
    case BdbQuery::k3c:
      return "3c";
    case BdbQuery::k4:
      return "4";
  }
  MONO_CHECK_MSG(false, "unknown query");
  return "";
}

JobSpec MakeBdbQueryJob(monosim::DfsSim* dfs, BdbQuery query, uint64_t seed) {
  MONO_CHECK(dfs != nullptr);
  JobSpec job;
  switch (query) {
    case BdbQuery::k1a:
      job = MakeQ1(dfs, MiB(32), "bdb.1a");
      break;
    case BdbQuery::k1b:
      job = MakeQ1(dfs, MiB(512), "bdb.1b");
      break;
    case BdbQuery::k1c:
      // The ETL-sized variant: the output dwarfs what the buffer cache will flush
      // during the job, producing the §5.3 write-visibility gap.
      job = MakeQ1(dfs, GiB(24), "bdb.1c");
      break;
    case BdbQuery::k2a:
      job = MakeQ2(dfs, GiB(1), "bdb.2a");
      break;
    case BdbQuery::k2b:
      job = MakeQ2(dfs, GiB(4), "bdb.2b");
      break;
    case BdbQuery::k2c:
      job = MakeQ2(dfs, GiB(12), "bdb.2c");
      break;
    case BdbQuery::k3a:
      job = MakeQ3(dfs, GiB(2), "bdb.3a");
      break;
    case BdbQuery::k3b:
      job = MakeQ3(dfs, GiB(6), "bdb.3b");
      break;
    case BdbQuery::k3c:
      job = MakeQ3(dfs, GiB(20), "bdb.3c");
      break;
    case BdbQuery::k4:
      job = MakeQ4(dfs);
      break;
  }
  job.seed = seed;
  return job;
}

ClusterConfig BdbClusterConfig(bool ssd) {
  MachineConfig machine =
      ssd ? MachineConfig::SsdWorker(2) : MachineConfig::HddWorker(2);
  return ClusterConfig::Of(5, machine);
}

}  // namespace monoload
