// The sort workload family (§5.2 "Sort", §6.2, §7).
//
// Sorts key-value pairs read from the DFS: a map stage partitions the data (read
// input, partition + serialize, write shuffle) and a reduce stage sorts each
// partition (fetch shuffle, sort + serialize, write output). The workload knob is the
// number of longs in each value: with the total data size fixed, smaller values mean
// more records and therefore more CPU work per byte, letting the paper (and us) sweep
// the CPU:disk balance (10 values ~ CPU-bound, 20 ~ balanced, 50+ ~ disk-bound).
#ifndef MONOTASKS_SRC_WORKLOADS_SORT_H_
#define MONOTASKS_SRC_WORKLOADS_SORT_H_

#include <string>

#include "src/framework/job_spec.h"
#include "src/storage/dfs.h"

namespace monoload {

struct SortParams {
  monoutil::Bytes total_bytes = monoutil::GiB(100);
  // Longs per value; the record is an 8-byte key plus 8 * values_per_key bytes.
  int values_per_key = 20;
  // Map tasks (= input blocks) and reduce tasks.
  int num_map_tasks = 0;   // 0: one task per 128 MiB block.
  int num_reduce_tasks = 0;  // 0: same as map tasks.
  // Input location: on-disk (default) or cached in memory, deserialized (§6.3).
  bool input_in_memory = false;
  // Distinct jobs in one simulation need distinct file names and seeds.
  std::string name_prefix = "sort";
  uint64_t seed = 7;
};

// Per-byte CPU cost of sort-style processing, in CPU-nanoseconds per byte. Records
// cost a fixed amount each (deserialization, hashing, comparisons), so smaller
// records mean more CPU per byte:
//
//   ns_per_byte = kSortCpuPerRecordNs / record_size + kSortCpuPerByteNs
//
// Calibrated so that on the 2-HDD workers of §5.1 the workload is CPU-bound at 10
// values per key, roughly balanced at ~20, and disk-bound at 50.
inline constexpr double kSortCpuPerRecordNs = 7400.0;
inline constexpr double kSortCpuPerByteNs = 37.0;
// The reduce side additionally sorts, costing a constant factor more CPU.
inline constexpr double kSortReduceCpuFactor = 1.1;
// Fraction of map CPU work that is input deserialization (separable only with
// monotasks; drives the §6.3 what-if).
inline constexpr double kSortDeserFraction = 0.35;

// Record size in bytes for a given values-per-key.
monoutil::Bytes SortRecordBytes(int values_per_key);

// CPU-seconds needed to process `bytes` of sort data with the given record size.
double SortCpuSeconds(monoutil::Bytes bytes, int values_per_key);

// Builds the job and (unless input_in_memory) creates its DFS input file. `dfs` must
// be the environment's DFS. Map and reduce stages move the full dataset.
monosim::JobSpec MakeSortJob(monosim::DfsSim* dfs, const SortParams& params);

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_SORT_H_
