// The read-then-compute microbenchmark used by Fig 8 (task-granularity sensitivity).
//
// A single stage that reads input from disk and computes on it. With one wave of
// tasks, monotasks cannot pipeline the disk read with compute (the read and compute
// monotasks of a multitask are strictly ordered), so MonoSpark loses to Spark's
// fine-grained pipelining; with three or more waves, cross-multitask pipelining
// recovers the loss — the crossover the figure shows.
#ifndef MONOTASKS_SRC_WORKLOADS_READ_COMPUTE_H_
#define MONOTASKS_SRC_WORKLOADS_READ_COMPUTE_H_

#include "src/framework/job_spec.h"
#include "src/storage/dfs.h"

namespace monoload {

struct ReadComputeParams {
  monoutil::Bytes total_bytes = monoutil::GiB(80);
  int num_tasks = 160;
  // CPU work per byte read; the default makes compute and disk roughly equal so
  // pipelining matters.
  double cpu_ns_per_byte = 45.0;
  std::string name_prefix = "readcompute";
  uint64_t seed = 17;
};

monosim::JobSpec MakeReadComputeJob(monosim::DfsSim* dfs,
                                    const ReadComputeParams& params);

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_READ_COMPUTE_H_
