#include "src/workloads/read_compute.h"

#include "src/common/check.h"

namespace monoload {

using monosim::InputSource;
using monosim::JobSpec;
using monosim::StageSpec;

JobSpec MakeReadComputeJob(monosim::DfsSim* dfs, const ReadComputeParams& params) {
  MONO_CHECK(dfs != nullptr);
  MONO_CHECK(params.num_tasks >= 1);
  const std::string input_file = params.name_prefix + ".input";
  dfs->CreateFileWithBlocks(input_file, params.total_bytes, params.num_tasks);

  JobSpec job;
  job.name = params.name_prefix;
  job.seed = params.seed;
  StageSpec stage;
  stage.name = params.name_prefix + ".stage";
  stage.num_tasks = params.num_tasks;
  stage.input = InputSource::kDfs;
  stage.input_file = input_file;
  stage.cpu_seconds_per_task = static_cast<double>(params.total_bytes.count()) *
                               params.cpu_ns_per_byte * 1e-9 /
                               static_cast<double>(params.num_tasks);
  stage.deser_fraction = 0.3;
  job.stages = {stage};
  return job;
}

}  // namespace monoload
