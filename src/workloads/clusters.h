// Cluster presets matching the evaluation setups in §5.1 and §6.
#ifndef MONOTASKS_SRC_WORKLOADS_CLUSTERS_H_
#define MONOTASKS_SRC_WORKLOADS_CLUSTERS_H_

#include "src/cluster/cluster_config.h"

namespace monoload {

// 20 workers with 2 HDDs: the §5.2 sort cluster.
inline monosim::ClusterConfig SortClusterConfig() {
  return monosim::ClusterConfig::Of(20, monosim::MachineConfig::HddWorker(2));
}

// 20 workers with n SSDs: the Fig 11 prediction experiment (1 SSD -> 2 SSDs).
inline monosim::ClusterConfig SsdClusterConfig(int num_machines, int ssds_per_machine) {
  return monosim::ClusterConfig::Of(num_machines,
                                    monosim::MachineConfig::SsdWorker(ssds_per_machine));
}

// 5 workers with 2 HDDs: the small cluster of Fig 13's "before" configuration.
inline monosim::ClusterConfig SmallHddClusterConfig() {
  return monosim::ClusterConfig::Of(5, monosim::MachineConfig::HddWorker(2));
}

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_CLUSTERS_H_
