#include "src/workloads/ml.h"

#include "src/common/check.h"

namespace monoload {

using monosim::ClusterConfig;
using monosim::InputSource;
using monosim::JobSpec;
using monosim::MachineConfig;
using monosim::OutputSink;
using monosim::StageSpec;
using monoutil::Bytes;

ClusterConfig MlClusterConfig() {
  MachineConfig machine = MachineConfig::SsdWorker(2);
  return ClusterConfig::Of(15, machine);
}

JobSpec MakeMlJob(const MlParams& params) {
  MONO_CHECK(params.num_stages >= 1);
  MONO_CHECK(params.tasks_per_stage >= 1);
  JobSpec job;
  job.name = "ml.least-squares";
  job.seed = params.seed;

  const double stage_cpu =
      static_cast<double>(params.stage_bytes.count()) * params.cpu_ns_per_byte * 1e-9;
  const Bytes shuffle = params.stage_bytes * params.shuffle_fraction;

  for (int s = 0; s < params.num_stages; ++s) {
    StageSpec stage;
    stage.name = "ml.stage" + std::to_string(s);
    stage.num_tasks = params.tasks_per_stage;
    if (s == 0) {
      // The matrix is cached in memory (deserialized arrays of doubles).
      stage.input = InputSource::kMemory;
      stage.input_bytes = params.stage_bytes;
    } else {
      stage.input = InputSource::kShuffle;
      stage.input_bytes = shuffle;
    }
    stage.cpu_seconds_per_task = stage_cpu / params.tasks_per_stage;
    stage.deser_fraction = 0.05;  // Fast array serialization.
    if (s + 1 < params.num_stages) {
      stage.output = OutputSink::kShuffle;
      stage.shuffle_bytes = shuffle;
      stage.shuffle_to_memory = true;  // §5.2: shuffle data is stored in-memory.
    }
    job.stages.push_back(stage);
  }
  return job;
}

}  // namespace monoload
