#include "src/workloads/pagerank.h"

#include "src/common/check.h"

namespace monoload {

using monosim::InputSource;
using monosim::JobSpec;
using monosim::OutputSink;
using monosim::StageSpec;
using monoutil::Bytes;

JobSpec MakePageRankJob(monosim::DfsSim* dfs, const PageRankParams& params) {
  MONO_CHECK(dfs != nullptr);
  MONO_CHECK(params.iterations >= 1);
  const Bytes edge_bytes = Bytes(16 * params.num_edges);
  const Bytes rank_bytes = Bytes(12 * params.num_vertices);  // vertex id + rank.

  const std::string edges_file = "pagerank.edges";
  if (!params.edges_in_memory && !dfs->HasFile(edges_file)) {
    dfs->CreateFileWithBlocks(edges_file, edge_bytes, params.tasks_per_stage);
  }

  JobSpec job;
  job.name = "pagerank";
  job.seed = params.seed;
  const double contrib_cpu =
      static_cast<double>(edge_bytes.count()) * params.cpu_ns_per_byte * 1e-9;
  const double agg_cpu =
      static_cast<double>(rank_bytes.count()) * params.cpu_ns_per_byte * 2e-9;

  for (int i = 0; i < params.iterations; ++i) {
    // Contributions: scan the adjacency structure, emit a contribution per edge,
    // shuffled by destination vertex.
    StageSpec contrib;
    contrib.name = "pagerank.iter" + std::to_string(i) + ".contrib";
    contrib.num_tasks = params.tasks_per_stage;
    if (i == 0 && !params.edges_in_memory) {
      contrib.input = InputSource::kDfs;
      contrib.input_file = edges_file;
    } else if (i == 0) {
      contrib.input = InputSource::kMemory;
      contrib.input_bytes = edge_bytes;
    } else {
      // Later iterations consume the previous aggregate's rank shuffle. The
      // adjacency structure is re-streamed from memory as part of the compute.
      contrib.input = InputSource::kShuffle;
      contrib.input_bytes = rank_bytes;
    }
    contrib.cpu_seconds_per_task = contrib_cpu / params.tasks_per_stage;
    contrib.deser_fraction = 0.4;  // Graph workloads are serialization-heavy.
    contrib.output = OutputSink::kShuffle;
    contrib.shuffle_bytes = rank_bytes;
    contrib.shuffle_to_memory = true;  // Contributions live in memory, like GraphX.

    // Aggregate: combine contributions into the next rank vector.
    StageSpec agg;
    agg.name = "pagerank.iter" + std::to_string(i) + ".agg";
    agg.num_tasks = params.tasks_per_stage;
    agg.input = InputSource::kShuffle;
    agg.input_bytes = rank_bytes;
    agg.cpu_seconds_per_task = agg_cpu / params.tasks_per_stage;
    agg.deser_fraction = 0.4;
    if (i + 1 < params.iterations) {
      agg.output = OutputSink::kShuffle;
      agg.shuffle_bytes = rank_bytes;
      agg.shuffle_to_memory = true;
    } else {
      agg.output = OutputSink::kDfs;
      agg.output_bytes = rank_bytes;
    }
    job.stages.push_back(contrib);
    job.stages.push_back(agg);
  }
  return job;
}

}  // namespace monoload
