// The Big Data Benchmark workload (§5.2), derived from the AMPLab benchmark [31].
//
// Ten queries over two synthetic web tables:
//   * rankings   (pageURL, pageRank, avgDuration)     — ~8 GiB at scale factor 5
//   * uservisits (sourceIP, destURL, visitDate, ...)  — ~40 GiB at scale factor 5
//
// Query families, each with a/b/c variants whose *result* size grows from
// business-intelligence-sized (fits on one screen) to ETL-sized (needs a cluster):
//   Q1: exploratory scan of rankings with a selectivity knob (map-only).
//   Q2: aggregation of uservisits grouped by a source-IP prefix (map + reduce).
//   Q3: join of uservisits with rankings (scan+shuffle, join, aggregate: 3 stages).
//   Q4: a page-rank-like transformation implemented as an external script (CPU-heavy
//       map + reduce that materializes its output).
//
// Table sizes and per-query CPU/byte costs are calibration constants chosen to
// reproduce the paper's qualitative results: most queries CPU-bound (Fig 14), 1c
// write-bound (the buffer-cache discussion of §5.3), and 3c's large shuffle stage
// using all three resources about equally (§6.2's 28% worst-case model error).
#ifndef MONOTASKS_SRC_WORKLOADS_BDB_H_
#define MONOTASKS_SRC_WORKLOADS_BDB_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_config.h"
#include "src/framework/job_spec.h"
#include "src/storage/dfs.h"

namespace monoload {

enum class BdbQuery {
  k1a,
  k1b,
  k1c,
  k2a,
  k2b,
  k2c,
  k3a,
  k3b,
  k3c,
  k4,
};

// All ten queries, in the order the paper's figures list them.
const std::vector<BdbQuery>& AllBdbQueries();

// "1a", "2c", "4", ...
std::string BdbQueryName(BdbQuery query);

// Creates the input table file(s) for `query` if not already present, and returns
// the job. Queries share the table files, so one DfsSim can serve the whole suite.
monosim::JobSpec MakeBdbQueryJob(monosim::DfsSim* dfs, BdbQuery query,
                                 uint64_t seed = 11);

// The 5-worker cluster the paper ran the benchmark on (§5.1); `ssd` selects the
// 2-SSD variant used for the SSD comparison at the end of §5.2.
monosim::ClusterConfig BdbClusterConfig(bool ssd = false);

}  // namespace monoload

#endif  // MONOTASKS_SRC_WORKLOADS_BDB_H_
