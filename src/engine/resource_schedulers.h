// Threaded per-resource schedulers for the execution engine (§3.3, real threads).
//
// Each scheduler owns exactly as many worker threads as monotasks that may use its
// resource concurrently — one per core for the CPU scheduler, one per HDD (or the
// flash outstanding count per SSD) for the disk scheduler — and queues everything
// else. Queue lengths are observable, which is how the architecture makes contention
// visible. Completion callbacks run on the scheduler thread that executed the
// monotask; callers (the LocalDagScheduler) must be thread-safe.
#ifndef MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_
#define MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/domain.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/engine/monotask.h"

namespace monotasks {

// Fires when a monotask finishes running; receives the task and its service time.
using CompletionCallback = std::function<void(Monotask*, double service_seconds)>;

// A fixed pool of threads draining a FIFO of monotasks: the CPU scheduler runs one
// monotask per core.
class CpuScheduler {
 public:
  // Machine side of the threaded engine; applies to all three schedulers in
  // this header. Static annotation only — cross-thread discipline is enforced
  // by thread_annotations.h, not the runtime domain tracker.
  MONO_DOMAIN("machine");

  CpuScheduler(int num_threads, CompletionCallback on_complete);
  ~CpuScheduler();

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  void Submit(Monotask* task) EXCLUDES(mutex_);

  // Stops and joins the worker threads; idempotent, but must only be called by
  // the owning thread. The destructor calls it; Worker::Shutdown calls it
  // earlier so every scheduler's threads are joined before any scheduler is
  // destroyed (a completion callback on one scheduler's thread may still be
  // inside Submit()/notify on another).
  void Shutdown() EXCLUDES(mutex_);

  int queue_length() const EXCLUDES(mutex_);
  int running() const EXCLUDES(mutex_);
  int max_concurrency() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  CompletionCallback on_complete_;
  mutable monoutil::Mutex mutex_;
  monoutil::CondVar cv_;
  std::deque<Monotask*> queue_ GUARDED_BY(mutex_);
  int running_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  // Immutable after construction (joined in Shutdown only).
  std::vector<std::thread> threads_;
};

// One scheduler per disk: `max_outstanding` threads (1 for an HDD) drain three
// phase queues (read / write / serve) in round-robin order.
class DiskScheduler {
 public:
  MONO_DOMAIN("machine");

  DiskScheduler(int max_outstanding, CompletionCallback on_complete);
  ~DiskScheduler();

  DiskScheduler(const DiskScheduler&) = delete;
  DiskScheduler& operator=(const DiskScheduler&) = delete;

  // Uses task->disk_queue to pick the phase queue.
  void Submit(Monotask* task) EXCLUDES(mutex_);

  // Stops and joins the worker threads; idempotent (see CpuScheduler::Shutdown).
  void Shutdown() EXCLUDES(mutex_);

  int queue_length() const EXCLUDES(mutex_);
  int queued_writes() const EXCLUDES(mutex_);
  int running() const EXCLUDES(mutex_);
  int max_concurrency() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();
  Monotask* PopNextLocked() REQUIRES(mutex_);
  bool AnyQueuedLocked() const REQUIRES(mutex_);

  CompletionCallback on_complete_;
  mutable monoutil::Mutex mutex_;
  monoutil::CondVar cv_;
  std::array<std::deque<Monotask*>, 3> queues_ GUARDED_BY(mutex_);
  int rr_cursor_ GUARDED_BY(mutex_) = 0;
  int running_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  // Immutable after construction (joined in Shutdown only).
  std::vector<std::thread> threads_;
};

// Receiver-side network admission (§3.3): at most `multitask_limit` multitasks may
// have shuffle fetches outstanding. Fetch work itself runs on a small thread pool
// (the flows are rate-limited by the fabric, so threads mostly sleep in limiters).
class NetworkScheduler {
 public:
  MONO_DOMAIN("machine");

  NetworkScheduler(int multitask_limit, int num_threads, CompletionCallback on_complete);
  ~NetworkScheduler();

  NetworkScheduler(const NetworkScheduler&) = delete;
  NetworkScheduler& operator=(const NetworkScheduler&) = delete;

  // Submits the network monotask of one multitask (it performs that multitask's
  // whole fetch set). Admission is gated by the multitask limit.
  void Submit(Monotask* task) EXCLUDES(mutex_);

  // Stops and joins the worker threads; idempotent (see CpuScheduler::Shutdown).
  void Shutdown() EXCLUDES(mutex_);

  int queue_length() const EXCLUDES(mutex_);
  int active() const EXCLUDES(mutex_);
  int max_concurrency() const { return limit_; }

 private:
  void WorkerLoop();

  CompletionCallback on_complete_;
  const int limit_;
  mutable monoutil::Mutex mutex_;
  monoutil::CondVar cv_;
  std::deque<Monotask*> queue_ GUARDED_BY(mutex_);
  int running_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  // Immutable after construction (joined in Shutdown only).
  std::vector<std::thread> threads_;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_
