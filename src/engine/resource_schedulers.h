// Threaded per-resource schedulers for the execution engine (§3.3, real threads).
//
// Each scheduler owns exactly as many worker threads as monotasks that may use its
// resource concurrently — one per core for the CPU scheduler, one per HDD (or the
// flash outstanding count per SSD) for the disk scheduler — and queues everything
// else. Queue lengths are observable, which is how the architecture makes contention
// visible. Completion callbacks run on the scheduler thread that executed the
// monotask; callers (the LocalDagScheduler) must be thread-safe.
#ifndef MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_
#define MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_

#include <array>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/monotask.h"

namespace monotasks {

// Fires when a monotask finishes running; receives the task and its service time.
using CompletionCallback = std::function<void(Monotask*, double service_seconds)>;

// A fixed pool of threads draining a FIFO of monotasks: the CPU scheduler runs one
// monotask per core.
class CpuScheduler {
 public:
  CpuScheduler(int num_threads, CompletionCallback on_complete);
  ~CpuScheduler();

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  void Submit(Monotask* task);

  int queue_length() const;
  int running() const { return running_; }
  int max_concurrency() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  CompletionCallback on_complete_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Monotask*> queue_;
  int running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// One scheduler per disk: `max_outstanding` threads (1 for an HDD) drain three
// phase queues (read / write / serve) in round-robin order.
class DiskScheduler {
 public:
  DiskScheduler(int max_outstanding, CompletionCallback on_complete);
  ~DiskScheduler();

  DiskScheduler(const DiskScheduler&) = delete;
  DiskScheduler& operator=(const DiskScheduler&) = delete;

  void Submit(Monotask* task);  // Uses task->disk_queue to pick the phase queue.

  int queue_length() const;
  int queued_writes() const;
  int running() const { return running_; }
  int max_concurrency() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();
  Monotask* PopNextLocked();

  CompletionCallback on_complete_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::array<std::deque<Monotask*>, 3> queues_;
  int rr_cursor_ = 0;
  int running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Receiver-side network admission (§3.3): at most `multitask_limit` multitasks may
// have shuffle fetches outstanding. Fetch work itself runs on a small thread pool
// (the flows are rate-limited by the fabric, so threads mostly sleep in limiters).
class NetworkScheduler {
 public:
  NetworkScheduler(int multitask_limit, int num_threads, CompletionCallback on_complete);
  ~NetworkScheduler();

  NetworkScheduler(const NetworkScheduler&) = delete;
  NetworkScheduler& operator=(const NetworkScheduler&) = delete;

  // Submits the network monotask of one multitask (it performs that multitask's
  // whole fetch set). Admission is gated by the multitask limit.
  void Submit(Monotask* task);

  int queue_length() const;
  int active() const { return running_; }
  int max_concurrency() const { return limit_; }

 private:
  void WorkerLoop();

  CompletionCallback on_complete_;
  int limit_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Monotask*> queue_;
  int running_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_RESOURCE_SCHEDULERS_H_
