#include "src/engine/resource_schedulers.h"

#include <chrono>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"

namespace monotasks {

using monoutil::MutexLock;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Lifecycle decomposition (telemetry tentpole): the same queue-wait vs. service
// split the simulated schedulers record under mono.{cpu,disk}.*, measured here
// with real clocks on the engine's worker threads. The histograms are lock-free,
// so recording from every worker concurrently is safe and cheap.
void StampSubmit(Monotask* task) {
  if (monotrace::TelemetryEnabled()) {
    task->submitted_at = std::chrono::steady_clock::now();
  }
}

// Records the wait into `wait_hist` and returns it (0 when the submit stamp is
// missing, i.e. telemetry was off at submit time).
double RecordPickup(Monotask* task, monotrace::LatencyHistogram* wait_hist,
                    std::chrono::steady_clock::time_point pickup) {
  if (!monotrace::TelemetryEnabled() ||
      task->submitted_at == std::chrono::steady_clock::time_point{}) {
    return 0.0;
  }
  const double wait = std::chrono::duration<double>(pickup - task->submitted_at).count();
  wait_hist->Add(wait);
  return wait;
}

}  // namespace

CpuScheduler::CpuScheduler(int num_threads, CompletionCallback on_complete)
    : on_complete_(std::move(on_complete)) {
  MONO_CHECK(num_threads >= 1);
  MONO_CHECK(on_complete_ != nullptr);
  for (int t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

CpuScheduler::~CpuScheduler() { Shutdown(); }

void CpuScheduler::Shutdown() {
  {
    const MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void CpuScheduler::Submit(Monotask* task) {
  MONO_CHECK(task != nullptr);
  MONO_CHECK(task->resource() == ResourceType::kCpu);
  StampSubmit(task);
  {
    const MutexLock lock(mutex_);
    queue_.push_back(task);
  }
  cv_.NotifyOne();
}

int CpuScheduler::queue_length() const {
  const MutexLock lock(mutex_);
  return static_cast<int>(queue_.size());
}

int CpuScheduler::running() const {
  const MutexLock lock(mutex_);
  return running_;
}

void CpuScheduler::WorkerLoop() {
  while (true) {
    Monotask* task = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) {
        cv_.Wait(mutex_);
      }
      if (shutdown_) {
        return;
      }
      task = queue_.front();
      queue_.pop_front();
      ++running_;
    }
    const auto start = std::chrono::steady_clock::now();
    static monotrace::LatencyHistogram* wait_hist =
        monotrace::MetricsRegistry::Global().Histogram("engine.cpu.queue_wait_seconds");
    task->set_queue_wait_seconds(RecordPickup(task, wait_hist, start));
    task->Run();
    const double service = SecondsSince(start);
    task->set_service_seconds(service);
    if (monotrace::TelemetryEnabled()) {
      static monotrace::LatencyHistogram* service_hist =
          monotrace::MetricsRegistry::Global().Histogram("engine.cpu.service_seconds");
      service_hist->Add(service);
    }
    {
      const MutexLock lock(mutex_);
      --running_;
    }
    on_complete_(task, service);
  }
}

DiskScheduler::DiskScheduler(int max_outstanding, CompletionCallback on_complete)
    : on_complete_(std::move(on_complete)) {
  MONO_CHECK(max_outstanding >= 1);
  MONO_CHECK(on_complete_ != nullptr);
  for (int t = 0; t < max_outstanding; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

DiskScheduler::~DiskScheduler() { Shutdown(); }

void DiskScheduler::Shutdown() {
  {
    const MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void DiskScheduler::Submit(Monotask* task) {
  MONO_CHECK(task != nullptr);
  MONO_CHECK(task->resource() == ResourceType::kDisk);
  StampSubmit(task);
  {
    const MutexLock lock(mutex_);
    queues_[static_cast<size_t>(task->disk_queue)].push_back(task);
  }
  cv_.NotifyOne();
}

int DiskScheduler::queue_length() const {
  const MutexLock lock(mutex_);
  int total = 0;
  for (const auto& queue : queues_) {
    total += static_cast<int>(queue.size());
  }
  return total;
}

int DiskScheduler::queued_writes() const {
  const MutexLock lock(mutex_);
  return static_cast<int>(queues_[static_cast<size_t>(DiskQueue::kWrite)].size());
}

int DiskScheduler::running() const {
  const MutexLock lock(mutex_);
  return running_;
}

bool DiskScheduler::AnyQueuedLocked() const {
  for (const auto& queue : queues_) {
    if (!queue.empty()) {
      return true;
    }
  }
  return false;
}

Monotask* DiskScheduler::PopNextLocked() {
  // Round-robin across non-empty phase queues, continuing after the last served
  // phase, so a backlog of writes cannot starve reads (§3.3).
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int phase = (rr_cursor_ + attempt) % 3;
    auto& queue = queues_[static_cast<size_t>(phase)];
    if (!queue.empty()) {
      Monotask* task = queue.front();
      queue.pop_front();
      rr_cursor_ = (phase + 1) % 3;
      return task;
    }
  }
  return nullptr;
}

void DiskScheduler::WorkerLoop() {
  while (true) {
    Monotask* task = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && !AnyQueuedLocked()) {
        cv_.Wait(mutex_);
      }
      if (shutdown_) {
        return;
      }
      task = PopNextLocked();
      if (task == nullptr) {
        continue;
      }
      ++running_;
    }
    const auto start = std::chrono::steady_clock::now();
    static monotrace::LatencyHistogram* wait_hist =
        monotrace::MetricsRegistry::Global().Histogram("engine.disk.queue_wait_seconds");
    task->set_queue_wait_seconds(RecordPickup(task, wait_hist, start));
    task->Run();
    const double service = SecondsSince(start);
    task->set_service_seconds(service);
    if (monotrace::TelemetryEnabled()) {
      static monotrace::LatencyHistogram* service_hist =
          monotrace::MetricsRegistry::Global().Histogram("engine.disk.service_seconds");
      service_hist->Add(service);
    }
    {
      const MutexLock lock(mutex_);
      --running_;
    }
    on_complete_(task, service);
  }
}

NetworkScheduler::NetworkScheduler(int multitask_limit, int num_threads,
                                   CompletionCallback on_complete)
    : on_complete_(std::move(on_complete)), limit_(multitask_limit) {
  MONO_CHECK(multitask_limit >= 1);
  MONO_CHECK(num_threads >= multitask_limit);
  MONO_CHECK(on_complete_ != nullptr);
  for (int t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

NetworkScheduler::~NetworkScheduler() { Shutdown(); }

void NetworkScheduler::Shutdown() {
  {
    const MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void NetworkScheduler::Submit(Monotask* task) {
  MONO_CHECK(task != nullptr);
  MONO_CHECK(task->resource() == ResourceType::kNetwork);
  StampSubmit(task);
  {
    const MutexLock lock(mutex_);
    queue_.push_back(task);
  }
  cv_.NotifyOne();
}

int NetworkScheduler::queue_length() const {
  const MutexLock lock(mutex_);
  return static_cast<int>(queue_.size());
}

int NetworkScheduler::active() const {
  const MutexLock lock(mutex_);
  return running_;
}

void NetworkScheduler::WorkerLoop() {
  while (true) {
    Monotask* task = nullptr;
    {
      MutexLock lock(mutex_);
      // Admission: at most `limit_` fetch sets outstanding at once.
      while (!shutdown_ && (queue_.empty() || running_ >= limit_)) {
        cv_.Wait(mutex_);
      }
      if (shutdown_) {
        return;
      }
      task = queue_.front();
      queue_.pop_front();
      ++running_;
    }
    const auto start = std::chrono::steady_clock::now();
    // For the network scheduler the wait includes admission-gating time (the
    // multitask limit), the engine analogue of mono.net.acquire_wait_seconds.
    static monotrace::LatencyHistogram* wait_hist =
        monotrace::MetricsRegistry::Global().Histogram("engine.net.queue_wait_seconds");
    task->set_queue_wait_seconds(RecordPickup(task, wait_hist, start));
    task->Run();
    const double service = SecondsSince(start);
    task->set_service_seconds(service);
    if (monotrace::TelemetryEnabled()) {
      static monotrace::LatencyHistogram* service_hist =
          monotrace::MetricsRegistry::Global().Histogram("engine.net.service_seconds");
      service_hist->Add(service);
    }
    {
      const MutexLock lock(mutex_);
      --running_;
    }
    cv_.NotifyOne();  // A slot freed; admit the next waiter.
    on_complete_(task, service);
  }
}

}  // namespace monotasks
