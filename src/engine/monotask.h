// Monotask: the engine's unit of scheduling — work that uses exactly one resource.
//
// A monotask is a blocking Run() executed on a thread owned by the matching
// per-resource scheduler. Dependencies are tracked by the LocalDagScheduler: a
// monotask is submitted to its scheduler only when its dependency count reaches
// zero, so it never blocks on another monotask while holding the resource (§3.1
// "monotasks execute in isolation").
#ifndef MONOTASKS_SRC_ENGINE_MONOTASK_H_
#define MONOTASKS_SRC_ENGINE_MONOTASK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace monotasks {

enum class ResourceType {
  kCpu,
  kDisk,
  kNetwork,
};

// Which DAG phase a disk monotask belongs to; the disk scheduler round-robins
// across phases to avoid the convoy effect (§3.3).
enum class DiskQueue {
  kRead = 0,
  kWrite = 1,
  kServe = 2,
};

class Monotask {
 public:
  using Id = uint64_t;

  Monotask(ResourceType resource, std::string label);
  virtual ~Monotask() = default;

  Monotask(const Monotask&) = delete;
  Monotask& operator=(const Monotask&) = delete;

  // Executes the work on the resource's thread. Blocking; must use only this
  // monotask's resource.
  virtual void Run() = 0;

  Id id() const { return id_; }
  ResourceType resource() const { return resource_; }
  const std::string& label() const { return label_; }

  // Service time in seconds, valid after completion.
  double service_seconds() const { return service_seconds_; }
  void set_service_seconds(double seconds) { service_seconds_ = seconds; }

  // Time spent queued in the resource scheduler (submit -> worker pickup),
  // valid after the task starts running.
  double queue_wait_seconds() const { return queue_wait_seconds_; }
  void set_queue_wait_seconds(double seconds) { queue_wait_seconds_ = seconds; }

  // Lifecycle stamps (engine telemetry; only stamped while telemetry is on):
  // when the DAG scheduler registered the task and when it was handed to its
  // resource scheduler. registered -> submitted is dependency-blocked time,
  // submitted -> pickup is queue wait, pickup -> done is service. A
  // default-constructed (epoch) stamp means "not recorded".
  std::chrono::steady_clock::time_point registered_at{};
  std::chrono::steady_clock::time_point submitted_at{};

  // Disk monotasks: which disk and which phase queue. Set by the creator.
  int disk_index = 0;
  DiskQueue disk_queue = DiskQueue::kRead;

 private:
  static std::atomic<Id>& Counter();

  Id id_;
  ResourceType resource_;
  std::string label_;
  double service_seconds_ = 0.0;
  double queue_wait_seconds_ = 0.0;
};

// A monotask wrapping a closure; the common case. The closure runs on the resource
// scheduler's thread.
class FunctionMonotask : public Monotask {
 public:
  FunctionMonotask(ResourceType resource, std::string label, std::function<void()> fn)
      : Monotask(resource, std::move(label)), fn_(std::move(fn)) {}

  void Run() override { fn_(); }

 private:
  std::function<void()> fn_;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_MONOTASK_H_
