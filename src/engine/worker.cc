#include "src/engine/worker.h"

#include "src/common/check.h"
#include "src/common/tracing/tracer.h"

namespace monotasks {
namespace {

// std::atomic<double> has no fetch_add until C++20's on floating types is spotty in
// practice; a CAS loop keeps the accounting portable.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

Worker::Worker(int id, const EngineConfig& config, InProcessFabric* fabric)
    : id_(id), config_(config), fabric_(fabric) {
  MONO_CHECK(fabric_ != nullptr);
  MONO_CHECK(config.cores_per_worker >= 1);
  MONO_CHECK(config.disks_per_worker >= 1);

  for (int d = 0; d < config.disks_per_worker; ++d) {
    disks_.push_back(std::make_unique<SimulatedBlockDevice>(
        "worker" + std::to_string(id) + ".disk" + std::to_string(d),
        config.disk_bandwidth, config.time_scale, config.disk_seek_alpha));
  }
  auto on_complete = [this](Monotask* task, double service) {
    OnComplete(task, service);
  };
  cpu_ = std::make_unique<CpuScheduler>(config.cores_per_worker, on_complete);
  for (int d = 0; d < config.disks_per_worker; ++d) {
    disk_schedulers_.push_back(
        std::make_unique<DiskScheduler>(config.disk_outstanding, on_complete));
  }
  network_ = std::make_unique<NetworkScheduler>(config.network_multitask_limit,
                                                config.network_multitask_limit,
                                                on_complete);
  dag_ = std::make_unique<LocalDagScheduler>([this](Monotask* task) { Route(task); });
}

Worker::~Worker() { Shutdown(); }

void Worker::Shutdown() {
  // Join the CPU threads first — their completion callbacks are the ones most
  // often still inside Submit()/notify on the disk and network schedulers —
  // then the rest. After this, no thread of this worker can touch any
  // scheduler, so the member destructors run against quiescent objects.
  cpu_->Shutdown();
  network_->Shutdown();
  for (auto& disk : disk_schedulers_) {
    disk->Shutdown();
  }
}

void Worker::Route(Monotask* task) {
  switch (task->resource()) {
    case ResourceType::kCpu:
      cpu_->Submit(task);
      return;
    case ResourceType::kDisk:
      MONO_CHECK(task->disk_index >= 0 && task->disk_index < num_disks());
      disk_schedulers_[static_cast<size_t>(task->disk_index)]->Submit(task);
      return;
    case ResourceType::kNetwork:
      network_->Submit(task);
      return;
  }
  MONO_CHECK_MSG(false, "unknown resource type");
}

void Worker::OnComplete(Monotask* task, double service_seconds) {
  const char* category = "cpu";
  std::string lane = "cpu";
  switch (task->resource()) {
    case ResourceType::kCpu:
      AtomicAdd(&counters_.cpu_seconds, service_seconds);
      ++counters_.cpu_count;
      break;
    case ResourceType::kDisk:
      AtomicAdd(&counters_.disk_seconds, service_seconds);
      ++counters_.disk_count;
      category = "disk";
      lane = "disk" + std::to_string(task->disk_index);
      break;
    case ResourceType::kNetwork:
      AtomicAdd(&counters_.network_seconds, service_seconds);
      ++counters_.network_count;
      category = "network";
      lane = "net";
      break;
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    // Threaded engine: spans use the tracer's wall clock (seconds since tracer
    // creation), so they land on the same timeline as any other engine events.
    const double end = tracer->WallNow();
    tracer->CompleteOnLane("worker" + std::to_string(id_), lane, task->label(),
                           category, end - service_seconds, end);
  }
  dag_->OnMonotaskComplete(task);
}

void Worker::SubmitDetached(std::unique_ptr<Monotask> task, std::function<void()> done) {
  std::vector<std::unique_ptr<Monotask>> tasks;
  tasks.push_back(std::move(task));
  dag_->SubmitDag(std::move(tasks), {}, std::move(done));
}

int Worker::MultitaskLimit() const {
  int limit = config_.cores_per_worker;
  limit += config_.disks_per_worker * config_.disk_outstanding;
  limit += config_.network_multitask_limit;
  return limit + 1;
}

int Worker::PickWriteDisk() {
  return next_write_disk_.fetch_add(1) % num_disks();
}

int Worker::PickServeDisk() {
  return next_serve_disk_.fetch_add(1) % num_disks();
}

int Worker::DiskWithBlock(const std::string& block_id) const {
  for (size_t d = 0; d < disks_.size(); ++d) {
    if (disks_[d]->HasBlock(block_id)) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

}  // namespace monotasks
