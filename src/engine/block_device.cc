#include "src/engine/block_device.h"

#include <utility>

#include "src/common/check.h"

namespace monotasks {

SimulatedBlockDevice::SimulatedBlockDevice(std::string name,
                                           monoutil::BytesPerSecond bandwidth,
                                           double time_scale, double seek_alpha)
    : name_(std::move(name)), limiter_(bandwidth), seek_alpha_(seek_alpha) {
  MONO_CHECK(seek_alpha >= 0);
  limiter_.set_time_scale(time_scale);
}

void SimulatedBlockDevice::ConsumeWithContention(monoutil::Bytes bytes) {
  const int concurrent = active_ops_.fetch_add(1) + 1;
  const double penalty = 1.0 + seek_alpha_ * static_cast<double>(concurrent - 1);
  const monoutil::Bytes charged = bytes * penalty;
  charged_bytes_ += charged.count();
  limiter_.Consume(charged);
  active_ops_.fetch_sub(1);
}

void SimulatedBlockDevice::Write(const std::string& block_id, Buffer data) {
  const monoutil::Bytes bytes(static_cast<int64_t>(data.size()));
  ConsumeWithContention(bytes);  // Pay the transfer time before the data is durable.
  bytes_written_ += bytes.count();
  const monoutil::MutexLock lock(mutex_);
  blocks_[block_id] = std::move(data);
}

Buffer SimulatedBlockDevice::Read(const std::string& block_id) {
  Buffer data;
  {
    const monoutil::MutexLock lock(mutex_);
    auto it = blocks_.find(block_id);
    MONO_CHECK_MSG(it != blocks_.end(), "read of missing block");
    data = it->second;
  }
  const monoutil::Bytes bytes(static_cast<int64_t>(data.size()));
  ConsumeWithContention(bytes);
  bytes_read_ += bytes.count();
  return data;
}

Buffer SimulatedBlockDevice::ReadRange(const std::string& block_id, size_t offset,
                                       size_t length) {
  Buffer data;
  {
    const monoutil::MutexLock lock(mutex_);
    auto it = blocks_.find(block_id);
    MONO_CHECK_MSG(it != blocks_.end(), "read of missing block");
    MONO_CHECK_MSG(offset + length <= it->second.size(), "read range out of bounds");
    data.assign(it->second.begin() + static_cast<ptrdiff_t>(offset),
                it->second.begin() + static_cast<ptrdiff_t>(offset + length));
  }
  const monoutil::Bytes bytes(static_cast<int64_t>(data.size()));
  ConsumeWithContention(bytes);
  bytes_read_ += bytes.count();
  return data;
}

bool SimulatedBlockDevice::HasBlock(const std::string& block_id) const {
  const monoutil::MutexLock lock(mutex_);
  return blocks_.find(block_id) != blocks_.end();
}

size_t SimulatedBlockDevice::BlockSize(const std::string& block_id) const {
  const monoutil::MutexLock lock(mutex_);
  auto it = blocks_.find(block_id);
  MONO_CHECK_MSG(it != blocks_.end(), "BlockSize of missing block");
  return it->second.size();
}

void SimulatedBlockDevice::DeleteBlock(const std::string& block_id) {
  const monoutil::MutexLock lock(mutex_);
  blocks_.erase(block_id);
}

}  // namespace monotasks
