// LocalDagScheduler: the worker-side top-level scheduler of §3.3.
//
// Tracks dependencies among the monotasks of every multitask assigned to this worker
// and submits a monotask to its per-resource scheduler only when all of its
// dependencies have completed, so monotasks never block holding a resource.
// Completion callbacks arrive on resource-scheduler threads; all state is guarded by
// one mutex.
#ifndef MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_
#define MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/engine/monotask.h"

namespace monotasks {

class Worker;

class LocalDagScheduler {
 public:
  // `submit` routes a ready monotask to the right per-resource scheduler.
  explicit LocalDagScheduler(std::function<void(Monotask*)> submit);

  LocalDagScheduler(const LocalDagScheduler&) = delete;
  LocalDagScheduler& operator=(const LocalDagScheduler&) = delete;

  // Registers a DAG: `tasks` with `edges` as (from, to) dependency pairs (to runs
  // after from). `on_all_done` fires (on a resource thread) when every task in this
  // DAG has completed. Takes ownership of the monotasks.
  void SubmitDag(std::vector<std::unique_ptr<Monotask>> tasks,
                 const std::vector<std::pair<Monotask*, Monotask*>>& edges,
                 std::function<void()> on_all_done);

  // Called by the worker when a resource scheduler reports completion.
  void OnMonotaskComplete(Monotask* task);

  // Monotasks registered but not yet completed (diagnostic).
  int pending() const;

 private:
  struct DagState {
    int remaining = 0;
    std::function<void()> on_all_done;
    std::vector<std::unique_ptr<Monotask>> tasks;
  };
  struct TaskState {
    int unmet_dependencies = 0;
    std::vector<Monotask*> dependents;
    DagState* dag = nullptr;
  };

  std::function<void(Monotask*)> submit_;
  mutable std::mutex mutex_;
  std::unordered_map<Monotask*, TaskState> task_states_;
  std::vector<std::unique_ptr<DagState>> dags_;
  int pending_ = 0;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_
