// LocalDagScheduler: the worker-side top-level scheduler of §3.3.
//
// Tracks dependencies among the monotasks of every multitask assigned to this worker
// and submits a monotask to its per-resource scheduler only when all of its
// dependencies have completed, so monotasks never block holding a resource.
// Completion callbacks arrive on resource-scheduler threads; all state is guarded by
// one mutex.
#ifndef MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_
#define MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/domain.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/engine/monotask.h"

namespace monotasks {

class Worker;

class LocalDagScheduler {
 public:
  // Machine side of the threaded engine. Static annotation only — cross-thread
  // discipline is enforced by thread_annotations.h, not the runtime tracker.
  MONO_DOMAIN("machine");

  // `submit` routes a ready monotask to the right per-resource scheduler.
  explicit LocalDagScheduler(std::function<void(Monotask*)> submit);

  LocalDagScheduler(const LocalDagScheduler&) = delete;
  LocalDagScheduler& operator=(const LocalDagScheduler&) = delete;

  // Registers a DAG: `tasks` with `edges` as (from, to) dependency pairs (to runs
  // after from). `on_all_done` fires (on a resource thread) when every task in this
  // DAG has completed. Takes ownership of the monotasks.
  void SubmitDag(std::vector<std::unique_ptr<Monotask>> tasks,
                 const std::vector<std::pair<Monotask*, Monotask*>>& edges,
                 std::function<void()> on_all_done);

  // Called by the worker when a resource scheduler reports completion.
  void OnMonotaskComplete(Monotask* task) EXCLUDES(mutex_);

  // Monotasks registered but not yet completed (diagnostic).
  int pending() const EXCLUDES(mutex_);

 private:
  struct DagState {
    int remaining = 0;
    std::function<void()> on_all_done;
    std::vector<std::unique_ptr<Monotask>> tasks;
  };
  struct TaskState {
    int unmet_dependencies = 0;
    std::vector<Monotask*> dependents;
    DagState* dag = nullptr;
  };

  std::function<void(Monotask*)> submit_;
  mutable monoutil::Mutex mutex_;
  // Keyed by the monotask's stable id, not its address: no scheduling decision
  // may depend on where the heap placed a task (determinism contract, DESIGN §10).
  std::unordered_map<Monotask::Id, TaskState> task_states_ GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<DagState>> dags_ GUARDED_BY(mutex_);
  int pending_ GUARDED_BY(mutex_) = 0;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_DAG_SCHEDULER_H_
