#include "src/engine/monotask.h"

namespace monotasks {

std::atomic<Monotask::Id>& Monotask::Counter() {
  static std::atomic<Id> counter{1};
  return counter;
}

Monotask::Monotask(ResourceType resource, std::string label)
    : id_(Counter().fetch_add(1)), resource_(resource), label_(std::move(label)) {}

}  // namespace monotasks
