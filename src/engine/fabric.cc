#include "src/engine/fabric.h"

#include "src/common/check.h"

namespace monotasks {

InProcessFabric::InProcessFabric(int num_workers, monoutil::BytesPerSecond nic_bandwidth,
                                 double time_scale) {
  MONO_CHECK(num_workers >= 1);
  for (int w = 0; w < num_workers; ++w) {
    egress_.push_back(std::make_unique<monoutil::RateLimiter>(nic_bandwidth));
    ingress_.push_back(std::make_unique<monoutil::RateLimiter>(nic_bandwidth));
    egress_.back()->set_time_scale(time_scale);
    ingress_.back()->set_time_scale(time_scale);
  }
}

void InProcessFabric::Transfer(int src, int dst, monoutil::Bytes bytes) {
  MONO_CHECK(src >= 0 && src < num_workers());
  MONO_CHECK(dst >= 0 && dst < num_workers());
  if (src == dst || bytes == monoutil::Bytes(0)) {
    return;
  }
  // Consume the sender's egress first, then the receiver's ingress. Serializing the
  // two halves is a coarse model of store-and-forward through the fabric; it halves
  // neither side's accounted bandwidth because each limiter only charges its own
  // direction.
  egress_[static_cast<size_t>(src)]->Consume(bytes);
  ingress_[static_cast<size_t>(dst)]->Consume(bytes);
  total_bytes_ += bytes.count();
}

}  // namespace monotasks
