#include "src/engine/dag_scheduler.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"

namespace monotasks {

namespace {

// Dependency-blocked time (telemetry tentpole): registration -> submission to
// the resource scheduler, the third leg of the lifecycle decomposition next to
// queue wait and service (resource_schedulers.cc). DAG roots submit
// immediately, so they contribute (near-)zeros that anchor the distribution.
void RecordDepBlocked(Monotask* task) {
  if (!monotrace::TelemetryEnabled() ||
      task->registered_at == std::chrono::steady_clock::time_point{}) {
    return;
  }
  static monotrace::LatencyHistogram* blocked_hist =
      monotrace::MetricsRegistry::Global().Histogram("engine.dag.dep_blocked_seconds");
  blocked_hist->Add(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                  task->registered_at)
                        .count());
}

}  // namespace

LocalDagScheduler::LocalDagScheduler(std::function<void(Monotask*)> submit)
    : submit_(std::move(submit)) {
  MONO_CHECK(submit_ != nullptr);
}

void LocalDagScheduler::SubmitDag(std::vector<std::unique_ptr<Monotask>> tasks,
                                  const std::vector<std::pair<Monotask*, Monotask*>>& edges,
                                  std::function<void()> on_all_done) {
  MONO_CHECK(!tasks.empty());
  std::vector<Monotask*> ready;
  {
    const monoutil::MutexLock lock(mutex_);
    auto dag = std::make_unique<DagState>();
    dag->remaining = static_cast<int>(tasks.size());
    dag->on_all_done = std::move(on_all_done);
    DagState* dag_ptr = dag.get();

    const bool telemetry = monotrace::TelemetryEnabled();
    const auto registered = telemetry ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
    for (const auto& task : tasks) {
      if (telemetry) {
        task->registered_at = registered;
      }
      TaskState state;
      state.dag = dag_ptr;
      auto [it, inserted] = task_states_.emplace(task->id(), std::move(state));
      MONO_CHECK_MSG(inserted, "monotask registered twice");
    }
    for (const auto& [from, to] : edges) {
      auto from_it = task_states_.find(from->id());
      auto to_it = task_states_.find(to->id());
      MONO_CHECK_MSG(from_it != task_states_.end() && to_it != task_states_.end(),
                     "dependency edge references a task outside the DAG");
      from_it->second.dependents.push_back(to);
      ++to_it->second.unmet_dependencies;
    }
    for (const auto& task : tasks) {
      if (task_states_[task->id()].unmet_dependencies == 0) {
        ready.push_back(task.get());
      }
    }
    MONO_CHECK_MSG(!ready.empty(), "DAG has no root (dependency cycle)");
    pending_ += static_cast<int>(tasks.size());
    dag->tasks = std::move(tasks);
    dags_.push_back(std::move(dag));
  }
  for (Monotask* task : ready) {
    RecordDepBlocked(task);
    submit_(task);
  }
}

void LocalDagScheduler::OnMonotaskComplete(Monotask* task) {
  std::vector<Monotask*> newly_ready;
  std::function<void()> dag_done;
  std::vector<std::unique_ptr<Monotask>> to_destroy;
  {
    const monoutil::MutexLock lock(mutex_);
    auto it = task_states_.find(task->id());
    MONO_CHECK_MSG(it != task_states_.end(), "completion for unknown monotask");
    TaskState state = std::move(it->second);
    task_states_.erase(it);
    --pending_;

    for (Monotask* dependent : state.dependents) {
      auto dep_it = task_states_.find(dependent->id());
      MONO_CHECK(dep_it != task_states_.end());
      if (--dep_it->second.unmet_dependencies == 0) {
        newly_ready.push_back(dependent);
      }
    }
    if (--state.dag->remaining == 0) {
      dag_done = std::move(state.dag->on_all_done);
      // Defer destruction of the DAG's monotasks until after the lock is released
      // (the completed task itself is among them and is still on the caller's stack;
      // the objects are kept alive until `to_destroy` dies at the end of scope —
      // after the final callback below).
      for (auto dag_it = dags_.begin(); dag_it != dags_.end(); ++dag_it) {
        if (dag_it->get() == state.dag) {
          to_destroy = std::move((*dag_it)->tasks);
          dags_.erase(dag_it);
          break;
        }
      }
    }
  }
  for (Monotask* ready : newly_ready) {
    RecordDepBlocked(ready);
    submit_(ready);
  }
  if (dag_done) {
    dag_done();
  }
}

int LocalDagScheduler::pending() const {
  const monoutil::MutexLock lock(mutex_);
  return pending_;
}

}  // namespace monotasks
