// Worker: one machine of the threaded execution engine.
//
// Owns the simulated devices (block-store disks, a share of the fabric), the
// per-resource schedulers, and the Local DAG Scheduler that feeds them. The driver
// (api/context.h) decomposes multitasks into monotask DAGs and hands them to
// workers; everything below that line runs on the schedulers' threads.
#ifndef MONOTASKS_SRC_ENGINE_WORKER_H_
#define MONOTASKS_SRC_ENGINE_WORKER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/domain.h"
#include "src/engine/block_device.h"
#include "src/engine/dag_scheduler.h"
#include "src/engine/fabric.h"
#include "src/engine/resource_schedulers.h"

namespace monotasks {

// How the engine executes a stage's multitasks.
enum class ExecutionMode {
  // The paper's architecture: each multitask is decomposed into single-resource
  // monotasks scheduled by the per-resource schedulers.
  kMonotasks,
  // The baseline architecture: each multitask runs whole on one slot thread (slots =
  // cores), performing its own reads, compute, and writes — so concurrent tasks
  // contend on the devices unscheduled, exactly like today's frameworks.
  kTaskThreads,
};

struct EngineConfig {
  int num_workers = 2;
  int cores_per_worker = 2;
  int disks_per_worker = 1;
  ExecutionMode mode = ExecutionMode::kMonotasks;
  monoutil::BytesPerSecond disk_bandwidth = monoutil::MiBps(90);
  monoutil::BytesPerSecond nic_bandwidth = monoutil::Gbps(1);
  // Disk head-contention factor: an operation overlapping n-1 others is charged
  // (1 + alpha*(n-1))x its bytes. The monotasks disk scheduler serializes operations
  // and so never pays it; task threads do.
  double disk_seek_alpha = 0.35;
  // Outstanding monotasks per disk (1 = HDD; flash reaches peak with ~4).
  int disk_outstanding = 1;
  // Receiver-side limit on multitasks with outstanding fetches (§3.3).
  int network_multitask_limit = 4;
  // Wall-clock acceleration of the simulated devices: with time_scale = 50, one
  // "device second" takes 20 ms of real time. Relative timing is preserved.
  double time_scale = 50.0;
};

// Aggregate per-resource accounting for one worker — the engine-level counterpart
// of the paper's built-in instrumentation.
struct WorkerCounters {
  std::atomic<double> cpu_seconds{0};
  std::atomic<double> disk_seconds{0};
  std::atomic<double> network_seconds{0};
  std::atomic<int> cpu_count{0};
  std::atomic<int> disk_count{0};
  std::atomic<int> network_count{0};
};

class Worker {
 public:
  // Machine side of the threaded engine. Static annotation only: the engine's
  // cross-thread discipline is enforced by thread_annotations.h, not the
  // single-threaded runtime domain tracker.
  MONO_DOMAIN("machine");

  Worker(int id, const EngineConfig& config, InProcessFabric* fabric);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Joins every scheduler's threads (idempotent). Called by the destructor, but
  // a multi-worker owner must call it on ALL workers before destroying ANY of
  // them: a completion callback running on one worker's scheduler thread can
  // still be inside Submit()/notify on another worker's scheduler (shuffle
  // serves), and pthread_cond_signal racing pthread_cond_destroy is undefined.
  void Shutdown();

  int id() const { return id_; }
  const EngineConfig& config() const { return config_; }

  LocalDagScheduler& dag_scheduler() { return *dag_; }
  SimulatedBlockDevice& disk(int index) { return *disks_[static_cast<size_t>(index)]; }
  int num_disks() const { return static_cast<int>(disks_.size()); }
  InProcessFabric& fabric() { return *fabric_; }

  CpuScheduler& cpu_scheduler() { return *cpu_; }
  DiskScheduler& disk_scheduler(int index) {
    return *disk_schedulers_[static_cast<size_t>(index)];
  }
  NetworkScheduler& network_scheduler() { return *network_; }

  // §3.4: multitasks assigned concurrently = sum of per-resource concurrency + 1.
  int MultitaskLimit() const;

  // Submits a standalone monotask (a one-node DAG); `done` fires on a scheduler
  // thread when it completes. Used for cross-worker work such as shuffle-serve
  // reads issued on behalf of a remote multitask.
  void SubmitDetached(std::unique_ptr<Monotask> task, std::function<void()> done);

  // Round-robin placement for write / shuffle-serve monotasks.
  int PickWriteDisk();
  int PickServeDisk();
  // Finds the disk holding `block_id`, or -1.
  int DiskWithBlock(const std::string& block_id) const;

  const WorkerCounters& counters() const { return counters_; }

 private:
  void Route(Monotask* task);
  void OnComplete(Monotask* task, double service_seconds);

  // Thread safety: everything below is either immutable after construction or
  // atomic; all mutex-protected state lives inside the owned schedulers,
  // devices, and the DAG scheduler (annotated in their own headers).
  int id_;
  EngineConfig config_;
  InProcessFabric* fabric_;
  std::vector<std::unique_ptr<SimulatedBlockDevice>> disks_;
  std::unique_ptr<CpuScheduler> cpu_;
  std::vector<std::unique_ptr<DiskScheduler>> disk_schedulers_;
  std::unique_ptr<NetworkScheduler> network_;
  std::unique_ptr<LocalDagScheduler> dag_;
  std::atomic<int> next_write_disk_{0};
  std::atomic<int> next_serve_disk_{0};
  WorkerCounters counters_;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_WORKER_H_
