// SimulatedBlockDevice: a rate-limited, in-memory block store standing in for one
// physical disk in the threaded execution engine.
//
// Blocks are named byte buffers. Read and Write block the *calling thread* for as
// long as the transfer would take at the device's configured bandwidth, which is how
// the engine's per-disk scheduler threads experience realistic device timing without
// touching real disks. Bandwidth can be time-scaled so tests run "ten seconds of
// disk" in milliseconds while preserving relative timing.
#ifndef MONOTASKS_SRC_ENGINE_BLOCK_DEVICE_H_
#define MONOTASKS_SRC_ENGINE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/domain.h"
#include "src/common/mutex.h"
#include "src/common/rate_limiter.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace monotasks {

using Buffer = std::vector<uint8_t>;

class SimulatedBlockDevice {
 public:
  // Machine-side device of the threaded engine. Static annotation only — see
  // worker.h: engine discipline comes from thread_annotations.h.
  MONO_DOMAIN("machine");

  // `bandwidth` applies to both reads and writes. `time_scale` > 1 makes the device
  // proportionally faster in wall-clock terms (for tests). It has no default on
  // purpose: EngineConfig defaults to 50.0, so a device built with a silent 1.0
  // here would run 50x slower than its siblings and skew the §6 model bridge by
  // the same factor — every construction must state its scale. `seek_alpha`
  // models head contention: an operation that overlaps n-1 others is charged
  // (1 + seek_alpha * (n - 1)) times its bytes, so interleaved accessors lose
  // aggregate throughput exactly as on a real HDD — and a scheduler that runs one
  // operation at a time (the monotasks disk scheduler) never pays it.
  SimulatedBlockDevice(std::string name, monoutil::BytesPerSecond bandwidth,
                       double time_scale, double seek_alpha = 0.0);

  SimulatedBlockDevice(const SimulatedBlockDevice&) = delete;
  SimulatedBlockDevice& operator=(const SimulatedBlockDevice&) = delete;

  // Durably stores `data` under `block_id`, blocking for the transfer time.
  // Overwrites any existing block of the same id.
  void Write(const std::string& block_id, Buffer data);

  // Reads a whole block, blocking for the transfer time. Aborts if missing.
  Buffer Read(const std::string& block_id);

  // Reads `length` bytes at `offset` of a block (used to serve shuffle segments).
  Buffer ReadRange(const std::string& block_id, size_t offset, size_t length);

  bool HasBlock(const std::string& block_id) const;
  // Size of a stored block; aborts if missing.
  size_t BlockSize(const std::string& block_id) const;
  void DeleteBlock(const std::string& block_id);

  monoutil::Bytes bytes_read() const { return monoutil::Bytes(bytes_read_.load()); }
  monoutil::Bytes bytes_written() const {
    return monoutil::Bytes(bytes_written_.load());
  }
  // Bytes actually charged against the device's bandwidth, including the seek
  // surcharge for overlapping operations (>= bytes_read + bytes_written).
  monoutil::Bytes charged_bytes() const {
    return monoutil::Bytes(charged_bytes_.load());
  }
  // Operations currently in service.
  int active_ops() const { return active_ops_.load(); }
  const std::string& name() const { return name_; }

 private:
  // Charges the limiter for `bytes` plus the contention surcharge.
  void ConsumeWithContention(monoutil::Bytes bytes);

  std::string name_;
  monoutil::RateLimiter limiter_;
  double seek_alpha_;
  std::atomic<int> active_ops_{0};
  mutable monoutil::Mutex mutex_;
  std::unordered_map<std::string, Buffer> blocks_ GUARDED_BY(mutex_);
  // Atomic counters hold raw int64 byte counts (std::atomic<Bytes> would need
  // the wrapper to be an atomic-friendly scalar); accessors re-wrap them.
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> charged_bytes_{0};
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_BLOCK_DEVICE_H_
