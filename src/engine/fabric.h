// InProcessFabric: the network connecting the engine's workers, all in one process.
//
// Each worker has a full-duplex NIC modeled as a pair of rate limiters. A transfer
// consumes bandwidth at both the sender's egress and the receiver's ingress, blocking
// the calling thread for the transfer time, so concurrent transfers into one worker
// share its ingress exactly the way real flows share a NIC.
#ifndef MONOTASKS_SRC_ENGINE_FABRIC_H_
#define MONOTASKS_SRC_ENGINE_FABRIC_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/domain.h"
#include "src/common/rate_limiter.h"
#include "src/common/units.h"

namespace monotasks {

class InProcessFabric {
 public:
  // The engine's shared network. Static annotation only — see worker.h.
  MONO_DOMAIN("fabric");

  // `time_scale` deliberately has no default — see SimulatedBlockDevice: the
  // engine's config default (50.0) and a silent component default would mix
  // wall-clock scales within one run.
  InProcessFabric(int num_workers, monoutil::BytesPerSecond nic_bandwidth,
                  double time_scale);

  InProcessFabric(const InProcessFabric&) = delete;
  InProcessFabric& operator=(const InProcessFabric&) = delete;

  // Accounts a transfer of `bytes` from `src` to `dst`, blocking the calling thread
  // for the transfer time. Local transfers (src == dst) are free.
  void Transfer(int src, int dst, monoutil::Bytes bytes);

  int num_workers() const { return static_cast<int>(egress_.size()); }
  monoutil::Bytes total_bytes() const { return monoutil::Bytes(total_bytes_.load()); }

 private:
  // Thread safety: the limiter vectors are immutable after construction (each
  // RateLimiter locks internally, see rate_limiter.h); the only mutable state
  // here is atomic.
  std::vector<std::unique_ptr<monoutil::RateLimiter>> egress_;
  std::vector<std::unique_ptr<monoutil::RateLimiter>> ingress_;
  std::atomic<int64_t> total_bytes_{0};  // Raw count: atomics need a scalar.
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_ENGINE_FABRIC_H_
