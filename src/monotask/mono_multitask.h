// MonoMultitaskSim: one multitask decomposed into its monotask DAG (§3.2, Fig 4).
//
// The DAG for a map-like multitask:
//
//   disk-read(input block) -> compute -> disk-write(shuffle | output)
//
// and for a reduce-like multitask:
//
//   { per remote machine: request -> serve disk-read (remote) -> network flow }  \
//   { local shuffle portion: disk-read                                        }  -> compute -> disk-write
//
// This class plays the role of the paper's Local DAG Scheduler for its multitask: it
// submits each monotask to the right per-resource scheduler only when the monotask's
// dependencies have completed, and accumulates per-monotask service times into the
// stage's metrics.
#ifndef MONOTASKS_SRC_MONOTASK_MONO_MULTITASK_H_
#define MONOTASKS_SRC_MONOTASK_MONO_MULTITASK_H_

#include <string>

#include "src/common/domain.h"
#include "src/framework/monotask_log.h"
#include "src/framework/task.h"

namespace monosim {

class MonotasksExecutorSim;

class MonoMultitaskSim {
 public:
  // Deliberately NOT MONO_SIM_OWNED: the executor destroys the multitask when
  // it completes, mid-run, so a `this` capture scheduled from here may only
  // reach APIs whose callbacks are guaranteed to fire before Finish() runs.
  MONO_DOMAIN("machine");

  // `dispatch_id` is the executor-assigned stable identity of this dispatch
  // (the key of the executor's running registry; never a heap address).
  MonoMultitaskSim(MonotasksExecutorSim* executor, TaskAssignment assignment,
                   uint64_t dispatch_id);

  MonoMultitaskSim(const MonoMultitaskSim&) = delete;
  MonoMultitaskSim& operator=(const MonoMultitaskSim&) = delete;

  // Begins execution: enqueues the input-phase monotasks.
  void Start();

  uint64_t dispatch_id() const { return dispatch_id_; }
  const TaskAssignment& assignment() const { return assignment_; }

  // When the multitask was dispatched (set at construction).
  monoutil::SimTime start_time() const { return start_time_; }

 private:
  void StartInputPhase();
  void OnInputPieceDone();
  void StartComputePhase();
  void StartWritePhase();
  void Finish();

  // Records a completed monotask span ending now on `machine`'s lane group
  // `lane_base`, tagged with this multitask's stage label. One branch when
  // tracing is off.
  void TraceSpan(int machine, const std::string& lane_base, const char* name,
                 const char* category, monoutil::SimTime start);

  // Appends one lifecycle record (monotask_log.h) for a monotask of `phase`
  // that finished now on `machine` after `service` seconds of resource use and
  // `wait` seconds in the scheduler queue. No-op without an attached log.
  void LogMonotask(MonoResource resource, const char* phase, int machine,
                   double service, double wait);

  MonotasksExecutorSim* executor_;
  TaskAssignment assignment_;
  uint64_t dispatch_id_;
  monoutil::SimTime start_time_;

  int pending_input_pieces_ = 0;
  bool network_slot_held_ = false;
  monoutil::Bytes write_total_;
  bool write_is_io_ = false;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_MONOTASK_MONO_MULTITASK_H_
