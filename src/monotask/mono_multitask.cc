#include "src/monotask/mono_multitask.h"

#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/telemetry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/shuffle_layout.h"
#include "src/framework/stage_execution.h"
#include "src/monotask/mono_executor.h"

namespace monosim {

using monoutil::Bytes;

namespace {

// Attributes one disk monotask's service to the machine whose disk performed it.
void RecordDiskService(monosim::MonotaskTimes* times, int machine, double service,
                       monoutil::Bytes bytes) {
  times->disk_seconds_per_machine[static_cast<size_t>(machine)] += service;
  times->disk_bytes_per_machine[static_cast<size_t>(machine)] += bytes;
}

}  // namespace

MonoMultitaskSim::MonoMultitaskSim(MonotasksExecutorSim* executor,
                                   TaskAssignment assignment, uint64_t dispatch_id)
    : executor_(executor), assignment_(std::move(assignment)),
      dispatch_id_(dispatch_id), start_time_(executor->sim_->now()) {
  const StageSpec& spec = assignment_.stage->spec();
  write_total_ = assignment_.shuffle_write_bytes + assignment_.output_bytes;
  const bool shuffle_in_memory =
      spec.output == OutputSink::kShuffle && spec.shuffle_to_memory;
  write_is_io_ = write_total_ > Bytes(0) && !shuffle_in_memory;
}

void MonoMultitaskSim::TraceSpan(int machine, const std::string& lane_base,
                                 const char* name, const char* category,
                                 monoutil::SimTime start) {
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->CompleteOnLane(executor_->TraceProcess(machine), lane_base, name,
                           category, start.seconds(), executor_->sim_->now().seconds(),
                           assignment_.stage->trace_label());
  }
}

void MonoMultitaskSim::LogMonotask(MonoResource resource, const char* phase,
                                   int machine, double service, double wait) {
  MonotaskLog* log = executor_->monotask_log();
  if (log == nullptr) {
    return;
  }
  const monoutil::SimTime done = executor_->sim_->now();
  log->Record(MonotaskRecord{dispatch_id_,
                             assignment_.stage->result().stage_index, machine,
                             resource, phase,
                             done - monoutil::Seconds(service) -
                                 monoutil::Seconds(wait),
                             done - monoutil::Seconds(service), done});
}

void MonoMultitaskSim::Start() {
  StageExecution* stage = assignment_.stage;
  const StageSpec& spec = stage->spec();

  // Ground-truth usage for work whose size is known up front (shuffle fetch I/O is
  // accounted per portion below, when its disk/network split is known).
  auto& usage = stage->result().usage;
  if (spec.input == InputSource::kDfs) {
    usage.disk_read_bytes += assignment_.input_bytes;
    usage.input_disk_read_bytes += assignment_.input_bytes;
    usage.input_uncompressed_bytes +=
        assignment_.input_bytes * spec.input_compression_ratio;
    if (!assignment_.input_local) {
      usage.network_bytes += assignment_.input_bytes;
    }
  }
  if (write_is_io_) {
    usage.disk_write_bytes += write_total_;
  }
  if (spec.output == OutputSink::kShuffle) {
    stage->RecordShuffleWrite(assignment_.machine, assignment_.shuffle_write_bytes);
  }

  // The entire input is buffered in memory before compute starts (§3.5).
  executor_->AddBuffered(assignment_.machine, assignment_.input_bytes);
  StartInputPhase();
}

void MonoMultitaskSim::StartInputPhase() {
  StageExecution* stage = assignment_.stage;
  const StageSpec& spec = stage->spec();
  // Captured by value into every monotask callback: the stage (and with it
  // this result struct) outlives the multitask, while a by-reference capture
  // of a local alias would not survive this frame.
  MonotaskTimes* times = &stage->result().monotask_times;

  const bool has_input_io =
      (spec.input == InputSource::kDfs || spec.input == InputSource::kShuffle) &&
      assignment_.input_bytes > Bytes(0);
  if (!has_input_io) {
    StartComputePhase();
    return;
  }

  if (spec.input == InputSource::kDfs) {
    pending_input_pieces_ = 1;
    if (assignment_.input_local) {
      executor_->disk_scheduler(assignment_.machine, assignment_.input_disk)
          .EnqueueRead(DiskPhase::kRead, assignment_.input_bytes,
                       // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                       [this, times](double service, double wait) {
                         times->disk_read_seconds += service;
                         times->disk_queue_wait_seconds += wait;
                         ++times->disk_count;
                         RecordDiskService(times, assignment_.machine, service,
                                           assignment_.input_bytes);
                         LogMonotask(MonoResource::kDisk, "disk-read",
                                     assignment_.machine, service, wait);
                         TraceSpan(assignment_.machine,
                                   "disk" + std::to_string(assignment_.input_disk),
                                   "disk-read", "disk",
                                   executor_->sim_->now() - monoutil::Seconds(service));
                         OnInputPieceDone();
                       });
    } else {
      // Remote block: gated by the network scheduler like a one-portion fetch set.
      network_slot_held_ = true;
      executor_->network_scheduler(assignment_.machine)
          // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
          .Acquire([this, times](double acquire_wait) {
        times->network_acquire_wait_seconds += acquire_wait;
        // Value-captured below: the fabric belongs to the cluster and outlives
        // every flow; the spelled-out type keeps the pointee lintable.
        NetworkFabricSim* fabric = &executor_->cluster_->fabric();
        fabric->SendControl(
            assignment_.machine, assignment_.input_machine,
            // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
            [this, times, fabric] {
              executor_->disk_scheduler(assignment_.input_machine, assignment_.input_disk)
                  .EnqueueRead(
                      DiskPhase::kServe, assignment_.input_bytes,
                      // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                      [this, times, fabric](double service, double wait) {
                        times->disk_read_seconds += service;
                        times->disk_queue_wait_seconds += wait;
                        ++times->disk_count;
                        RecordDiskService(times, assignment_.input_machine, service,
                                          assignment_.input_bytes);
                        LogMonotask(MonoResource::kDisk, "serve-read",
                                    assignment_.input_machine, service, wait);
                        TraceSpan(assignment_.input_machine,
                                  "disk" + std::to_string(assignment_.input_disk),
                                  "serve-read", "disk",
                                  executor_->sim_->now() - monoutil::Seconds(service));
                        const SimTime flow_start = executor_->sim_->now();
                        fabric->StartFlow(assignment_.input_machine, assignment_.machine,
                                          assignment_.input_bytes,
                                          // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                                          [this, times, flow_start] {
                                            times->network_seconds +=
                                                (executor_->sim_->now() - flow_start)
                                                    .seconds();
                                            ++times->network_count;
                                            LogMonotask(
                                                MonoResource::kNetwork, "block-flow",
                                                assignment_.machine,
                                                (executor_->sim_->now() - flow_start)
                                                    .seconds(),
                                                0.0);
                                            TraceSpan(assignment_.machine, "net-in",
                                                      "block-flow", "network", flow_start);
                                            executor_->network_scheduler(assignment_.machine)
                                                .Release();
                                            network_slot_held_ = false;
                                            OnInputPieceDone();
                                          });
                      });
            });
      });
    }
    return;
  }

  // Shuffle input: local portion via the disk scheduler, remote portions as one
  // receiver-admitted fetch set.
  const bool serve_from_disk = !stage->prev()->spec().shuffle_to_memory;
  std::vector<ShufflePortion> remote;
  Bytes local_bytes;
  for (const ShufflePortion& portion : ComputeShufflePortions(assignment_)) {
    if (portion.src_machine == assignment_.machine) {
      local_bytes += portion.bytes;
    } else {
      remote.push_back(portion);
    }
  }
  auto& usage = stage->result().usage;
  pending_input_pieces_ = (local_bytes > Bytes(0) ? 1 : 0) + static_cast<int>(remote.size());
  if (pending_input_pieces_ == 0) {
    StartComputePhase();
    return;
  }

  if (local_bytes > Bytes(0)) {
    if (serve_from_disk) {
      usage.disk_read_bytes += local_bytes;
      const int disk = executor_->PickServeDisk(assignment_.machine);
      executor_->disk_scheduler(assignment_.machine, disk)
          .EnqueueRead(DiskPhase::kRead, local_bytes,
                       // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                       [this, times, local_bytes, disk](double service,
                                                        double wait) {
            times->disk_read_seconds += service;
            times->disk_queue_wait_seconds += wait;
            ++times->disk_count;
            RecordDiskService(times, assignment_.machine, service, local_bytes);
            LogMonotask(MonoResource::kDisk, "shuffle-read", assignment_.machine,
                        service, wait);
            TraceSpan(assignment_.machine, "disk" + std::to_string(disk),
                      "shuffle-read", "disk", executor_->sim_->now() - monoutil::Seconds(service));
            OnInputPieceDone();
          });
    } else {
      // mono_lint: allow(escaping-capture) -- zero-delay self-schedule, fires before Finish().
      executor_->sim_->ScheduleAfter(SimTime(), [this] { OnInputPieceDone(); });
    }
  }

  if (!remote.empty()) {
    for (const ShufflePortion& portion : remote) {
      usage.network_bytes += portion.bytes;
      if (serve_from_disk) {
        usage.disk_read_bytes += portion.bytes;
      }
    }
    network_slot_held_ = true;
    // One network slot covers the whole fetch set: all of this multitask's requests
    // go out together, so its data arrives before later multitasks' data (§3.3).
    executor_->network_scheduler(assignment_.machine)
        // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
        .Acquire([this, remote = std::move(remote), serve_from_disk,
                  times](double acquire_wait) {
          times->network_acquire_wait_seconds += acquire_wait;
          auto remaining = std::make_shared<int>(static_cast<int>(remote.size()));
          for (const ShufflePortion& portion : remote) {
            // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
            auto piece_done = [this, remaining, times] {
              if (--*remaining == 0) {
                executor_->network_scheduler(assignment_.machine).Release();
                network_slot_held_ = false;
              }
              OnInputPieceDone();
            };
            NetworkFabricSim* fabric = &executor_->cluster_->fabric();
            fabric->SendControl(
                assignment_.machine, portion.src_machine,
                // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                [this, portion, serve_from_disk, piece_done, times, fabric] {
                  // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                  auto send_back = [this, portion, piece_done, times, fabric] {
                    const SimTime flow_start = executor_->sim_->now();
                    fabric->StartFlow(portion.src_machine, assignment_.machine,
                                     portion.bytes,
                                     // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                                     [piece_done, flow_start, times, this] {
                                       times->network_seconds +=
                                           (executor_->sim_->now() - flow_start)
                                               .seconds();
                                       ++times->network_count;
                                       LogMonotask(
                                           MonoResource::kNetwork, "shuffle-fetch",
                                           assignment_.machine,
                                           (executor_->sim_->now() - flow_start)
                                               .seconds(),
                                           0.0);
                                       TraceSpan(assignment_.machine, "net-in",
                                                 "shuffle-fetch", "network", flow_start);
                                       piece_done();
                                     });
                  };
                  if (serve_from_disk) {
                    const int disk = executor_->PickServeDisk(portion.src_machine);
                    executor_->disk_scheduler(portion.src_machine, disk)
                        .EnqueueRead(DiskPhase::kServe, portion.bytes,
                                     // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
                                     [this, send_back, times, portion,
                                      disk](double service, double wait) {
                                       times->disk_read_seconds += service;
                                       times->disk_queue_wait_seconds += wait;
                                       ++times->disk_count;
                                       RecordDiskService(times, portion.src_machine,
                                                         service, portion.bytes);
                                       LogMonotask(MonoResource::kDisk, "serve-read",
                                                   portion.src_machine, service, wait);
                                       TraceSpan(portion.src_machine,
                                                 "disk" + std::to_string(disk),
                                                 "serve-read", "disk",
                                                 executor_->sim_->now() - monoutil::Seconds(service));
                                       send_back();
                                     });
                  } else {
                    send_back();
                  }
                });
          }
        });
  }
}

void MonoMultitaskSim::OnInputPieceDone() {
  MONO_CHECK(pending_input_pieces_ > 0);
  if (--pending_input_pieces_ == 0) {
    StartComputePhase();
  }
}

void MonoMultitaskSim::StartComputePhase() {
  MonotaskTimes* times = &assignment_.stage->result().monotask_times;
  // Blocked-on-dependency: the compute monotask only became ready now, after
  // the whole input phase; everything since dispatch was spent waiting on the
  // DAG rather than in any resource queue.
  if (monotrace::TelemetryEnabled()) {
    static monotrace::LatencyHistogram* dep_blocked =
        monotrace::MetricsRegistry::Global().Histogram(
            "mono.compute.dep_blocked_seconds");
    dep_blocked->Add((executor_->sim_->now() - start_time_).seconds());
  }
  executor_->cpu_scheduler(assignment_.machine)
      // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
      .Enqueue(assignment_.cpu_seconds, [this, times](double service,
                                                      double wait) {
        times->compute_seconds += service;
        times->compute_queue_wait_seconds += wait;
        times->compute_deser_seconds += assignment_.deser_cpu_seconds;
        times->compute_decompress_seconds += assignment_.decompress_cpu_seconds;
        ++times->compute_count;
        LogMonotask(MonoResource::kCpu, "compute", assignment_.machine, service,
                    wait);
        TraceSpan(assignment_.machine, "cpu", "compute", "cpu",
                  executor_->sim_->now() - monoutil::Seconds(service));
        // Input buffers are released once compute has transformed them; the output
        // buffer exists until the write monotask retires it.
        executor_->RemoveBuffered(assignment_.machine, assignment_.input_bytes);
        executor_->AddBuffered(assignment_.machine, write_total_);
        StartWritePhase();
      });
}

void MonoMultitaskSim::StartWritePhase() {
  if (!write_is_io_) {
    executor_->RemoveBuffered(assignment_.machine, write_total_);
    Finish();
    return;
  }
  MonotaskTimes* times = &assignment_.stage->result().monotask_times;
  const int disk = executor_->PickWriteDisk(assignment_.machine);
  executor_->disk_scheduler(assignment_.machine, disk)
      // mono_lint: allow(escaping-capture) -- DAG callback, fires before Finish().
      .EnqueueWrite(write_total_, [this, times, disk](double service,
                                                      double wait) {
        times->disk_write_seconds += service;
        times->disk_queue_wait_seconds += wait;
        ++times->disk_count;
        RecordDiskService(times, assignment_.machine, service, write_total_);
        LogMonotask(MonoResource::kDisk, "disk-write", assignment_.machine,
                    service, wait);
        TraceSpan(assignment_.machine, "disk" + std::to_string(disk),
                  "disk-write", "disk", executor_->sim_->now() - monoutil::Seconds(service));
        executor_->RemoveBuffered(assignment_.machine, write_total_);
        Finish();
      });
}

void MonoMultitaskSim::Finish() {
  executor_->OnMultitaskComplete(this);
}

}  // namespace monosim
