#include "src/monotask/mono_executor.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/stage_execution.h"
#include "src/monotask/mono_multitask.h"

namespace monosim {

MonotasksExecutorSim::MonotasksExecutorSim(Simulation* sim, ClusterSim* cluster,
                                           TaskPool* pool, MonoConfig config)
    : sim_(sim), cluster_(cluster), pool_(pool), config_(config) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(cluster_ != nullptr);
  MONO_CHECK(pool_ != nullptr);
  MONO_CHECK(config_.hdd_outstanding >= 1);
  MONO_CHECK(config_.ssd_outstanding >= 1);
  MONO_CHECK(config_.network_multitask_limit >= 1);

  workers_.resize(static_cast<size_t>(cluster_->num_machines()));
  for (int m = 0; m < cluster_->num_machines(); ++m) {
    WorkerState& worker = workers_[static_cast<size_t>(m)];
    MachineSim& machine = cluster_->machine(m);
    worker.cpu = std::make_unique<CpuSchedulerSim>(sim_, &machine);
    worker.cpu->SetTraceSeries(TraceProcess(m), "cpu-queue");
    for (int d = 0; d < machine.num_disks(); ++d) {
      const int outstanding = machine.disk(d).config().type == DiskType::kHdd
                                  ? config_.hdd_outstanding
                                  : config_.ssd_outstanding;
      worker.disks.push_back(std::make_unique<DiskSchedulerSim>(
          sim_, &machine.disk(d), outstanding, config_.fifo_disk_queues));
      worker.disks.back()->SetTraceSeries(TraceProcess(m),
                                          "disk" + std::to_string(d) + "-queue");
      if (config_.memory_pressure_threshold > monoutil::Bytes(0)) {
        WorkerState* state = &worker;
        const monoutil::Bytes threshold = config_.memory_pressure_threshold;
        worker.disks.back()->set_memory_pressure_fn(
            [state, threshold] { return state->buffered_bytes > threshold; });
      }
    }
    worker.network =
        std::make_unique<NetworkSchedulerSim>(config_.network_multitask_limit, sim_);
    worker.network->SetTraceSeries(TraceProcess(m), "net-queue");
  }
  sim_->RegisterAuditable(this);
}

MonotasksExecutorSim::~MonotasksExecutorSim() {
  sim_->UnregisterAuditable(this);
}

void MonotasksExecutorSim::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = "mono-executor";
  int active_total = 0;
  for (const WorkerState& worker : workers_) {
    active_total += worker.active_multitasks;
    audit.Expect(worker.active_multitasks >= 0 &&
                     worker.buffered_bytes >= monoutil::Bytes(0), now,
                 source, "worker-bookkeeping",
                 "negative active multitask count or buffered bytes");
  }
  audit.ExpectLazy(active_total == static_cast<int>(running_.size()), now, source,
                   "multitask-bookkeeping", [&] {
                     std::ostringstream d;
                     d << "per-machine active multitasks sum to " << active_total
                       << " but the running registry holds " << running_.size();
                     return d.str();
                   });
  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(running_.empty(), now, source, "drained-multitasks", [&] {
      std::ostringstream d;
      d << running_.size() << " multitask(s) still running after the event queue drained";
      return d.str();
    });
    for (size_t m = 0; m < workers_.size(); ++m) {
      const WorkerState& worker = workers_[m];
      const bool idle =
          worker.cpu->queue_length() == 0 && worker.cpu->running() == 0 &&
          worker.network->queue_length() == 0 && worker.network->active() == 0;
      bool disks_idle = true;
      for (const auto& disk : worker.disks) {
        disks_idle = disks_idle && disk->queue_length() == 0 && disk->running() == 0;
      }
      audit.ExpectLazy(idle && disks_idle, now, source, "drained-schedulers", [&] {
        std::ostringstream d;
        d << "machine " << m
          << " has queued or running monotasks after the event queue drained";
        return d.str();
      });
    }
  }
}

int MonotasksExecutorSim::MultitaskLimit(int machine) const {
  // §3.4: enough multitasks for every resource scheduler to be at its concurrency
  // limit, plus one extra so round-robin queues never run dry.
  const WorkerState& worker = workers_[static_cast<size_t>(machine)];
  int limit = worker.cpu->max_concurrency();
  for (const auto& disk : worker.disks) {
    limit += disk->max_concurrency();
  }
  limit += worker.network->max_concurrency();
  return limit + config_.extra_multitasks;
}

CpuSchedulerSim& MonotasksExecutorSim::cpu_scheduler(int machine) {
  return *workers_[static_cast<size_t>(machine)].cpu;
}

DiskSchedulerSim& MonotasksExecutorSim::disk_scheduler(int machine, int disk) {
  return *workers_[static_cast<size_t>(machine)].disks[static_cast<size_t>(disk)];
}

NetworkSchedulerSim& MonotasksExecutorSim::network_scheduler(int machine) {
  return *workers_[static_cast<size_t>(machine)].network;
}

int MonotasksExecutorSim::num_disks(int machine) const {
  return static_cast<int>(workers_[static_cast<size_t>(machine)].disks.size());
}

void MonotasksExecutorSim::OnWorkAvailable() {
  // Sanctioned channel: the driver kicks the executor after activating a stage.
  MONO_DOMAIN_CHANNEL();
  // Breadth-first fill (one multitask per machine per round) so machines claim their
  // local blocks before any stealing happens.
  bool assigned = true;
  while (assigned) {
    assigned = false;
    for (int m = 0; m < cluster_->num_machines(); ++m) {
      if (DispatchOne(m)) {
        assigned = true;
      }
    }
  }
}

bool MonotasksExecutorSim::DispatchOne(int machine) {
  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  if (worker.active_multitasks >= MultitaskLimit(machine)) {
    return false;
  }
  auto assignment = pool_->TakeTask(machine);
  if (!assignment.has_value()) {
    return false;
  }
  ++worker.active_multitasks;
  assignment->stage->OnTaskStarted(assignment->task_index, sim_->now());
  auto multitask =
      std::make_unique<MonoMultitaskSim>(this, *assignment, next_dispatch_id_++);
  MonoMultitaskSim* raw = multitask.get();
  running_.emplace(raw->dispatch_id(), std::move(multitask));
  // The leading compute monotask that deserializes the task description and builds
  // the DAG (Fig 4 caption) is modeled as a fixed launch delay.
  sim_->ScheduleAfter(config_.task_launch_overhead, [raw] { raw->Start(); });
  return true;
}

void MonotasksExecutorSim::TryDispatch(int machine) {
  while (DispatchOne(machine)) {
  }
}

void MonotasksExecutorSim::OnMultitaskComplete(MonoMultitaskSim* multitask) {
  MONO_DOMAIN_MUTATION();
  const TaskAssignment& assignment = multitask->assignment();
  const int machine = assignment.machine;
  StageExecution* stage = assignment.stage;
  const int task_index = assignment.task_index;
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->CompleteOnLane(TraceProcess(machine), "multitask",
                           stage->spec().name + "/t" + std::to_string(task_index),
                           "task", multitask->start_time().seconds(),
                           sim_->now().seconds(),
                           stage->trace_label());
  }
  static monotrace::MetricCounter* tasks_metric =
      monotrace::MetricsRegistry::Global().Get("mono.multitasks_completed");
  tasks_metric->Increment();

  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  MONO_CHECK(worker.active_multitasks > 0);
  --worker.active_multitasks;

  auto it = running_.find(multitask->dispatch_id());
  MONO_CHECK(it != running_.end());
  // Deferred destruction: this is called from inside the multitask's own frames.
  sim_->ScheduleAfter(SimTime(),
                      [owned = std::shared_ptr<MonoMultitaskSim>(std::move(it->second))] {});
  running_.erase(it);

  stage->OnTaskFinished(task_index, sim_->now());
  TryDispatch(machine);
}

int MonotasksExecutorSim::PickWriteDisk(int machine) {
  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  if (config_.load_aware_disk_writes) {
    // §8 extension: route the write to the disk with the shortest write queue.
    int best = 0;
    int best_depth = worker.disks[0]->queued_writes() + worker.disks[0]->running();
    for (int d = 1; d < static_cast<int>(worker.disks.size()); ++d) {
      const int depth = worker.disks[static_cast<size_t>(d)]->queued_writes() +
                        worker.disks[static_cast<size_t>(d)]->running();
      if (depth < best_depth) {
        best = d;
        best_depth = depth;
      }
    }
    return best;
  }
  const int disk = worker.next_write_disk;
  worker.next_write_disk = (disk + 1) % static_cast<int>(worker.disks.size());
  return disk;
}

int MonotasksExecutorSim::PickServeDisk(int machine) {
  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  const int disk = worker.next_serve_disk;
  worker.next_serve_disk = (disk + 1) % static_cast<int>(worker.disks.size());
  return disk;
}

void MonotasksExecutorSim::EnableQueueTraces() {
  for (auto& worker : workers_) {
    worker.cpu->EnableQueueTrace();
    for (auto& disk : worker.disks) {
      disk->EnableQueueTrace();
    }
  }
}

void MonotasksExecutorSim::AddBuffered(int machine, monoutil::Bytes bytes) {
  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  worker.buffered_bytes += bytes;
  peak_buffered_ = std::max(peak_buffered_, worker.buffered_bytes);
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Counter(TraceProcess(machine), "buffered-bytes", sim_->now().seconds(),
                    static_cast<double>(worker.buffered_bytes.count()));
  }
}

void MonotasksExecutorSim::RemoveBuffered(int machine, monoutil::Bytes bytes) {
  WorkerState& worker = workers_[static_cast<size_t>(machine)];
  worker.buffered_bytes =
      std::max(monoutil::Bytes(0), worker.buffered_bytes - bytes);
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Counter(TraceProcess(machine), "buffered-bytes", sim_->now().seconds(),
                    static_cast<double>(worker.buffered_bytes.count()));
  }
}

}  // namespace monosim
