// Per-resource monotask schedulers (§3.3 of the paper).
//
// Each worker machine has one scheduler per resource. Schedulers run the minimum
// number of monotasks needed to keep the resource busy and queue the rest, which makes
// contention visible as queue length and lets every monotask use the device at full
// efficiency:
//
//   * CpuSchedulerSim      — one compute monotask per core.
//   * DiskSchedulerSim     — one monotask per HDD (several for flash), with
//                            round-robin across DAG phases (read / write / shuffle-
//                            serve) to avoid the convoy effect §3.3 describes.
//   * NetworkSchedulerSim  — receiver-side admission: fetch sets from at most N
//                            multitasks outstanding (N = 4 in the paper).
//
// Every completion callback receives the monotask's *service* time (queueing
// excluded) and its *queue wait* (ready-to-dispatch): this is the built-in
// instrumentation that feeds the §6 model and the always-on telemetry layer.
// Each scheduler also records both segments into the process-global
// mono.{cpu,disk}.{queue_wait,service}_seconds histograms (telemetry.h), so
// every run carries per-resource latency distributions without tracing.
#ifndef MONOTASKS_SRC_MONOTASK_RESOURCE_SCHEDULERS_H_
#define MONOTASKS_SRC_MONOTASK_RESOURCE_SCHEDULERS_H_

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/cluster/disk.h"
#include "src/cluster/machine.h"
#include "src/common/domain.h"
#include "src/common/tracing/tracer.h"
#include "src/simcore/rate_trace.h"
#include "src/simcore/simulation.h"

namespace monosim {

// Called when a monotask finishes; `service_seconds` is time spent actually
// using the resource (dispatch to completion), `queue_wait_seconds` the time
// it sat in the scheduler's queue beforehand (enqueue to dispatch).
using MonotaskDone =
    std::function<void(double service_seconds, double queue_wait_seconds)>;

class CpuSchedulerSim {
 public:
  // Per-machine schedulers are owned by the executor's worker state, which
  // outlives the simulation run; `this` captures into device completion
  // callbacks cannot dangle. Applies to all three schedulers in this header.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  CpuSchedulerSim(Simulation* sim, MachineSim* machine);

  CpuSchedulerSim(const CpuSchedulerSim&) = delete;
  CpuSchedulerSim& operator=(const CpuSchedulerSim&) = delete;

  // Queues a compute monotask of `cpu_seconds` of single-threaded work.
  void Enqueue(double cpu_seconds, MonotaskDone done);

  int running() const { return running_; }
  int queue_length() const { return static_cast<int>(queue_.size()); }
  int max_concurrency() const { return cores_; }

  // §3.1: "this design makes resource contention visible as the queue length for
  // each resource". Tracing records the queue-length step function over time.
  void EnableQueueTrace() { queue_trace_.Record(sim_->now(), 0.0); trace_on_ = true; }
  const RateTrace& queue_trace() const { return queue_trace_; }

  // Names the queue-length counter track this scheduler emits into the event
  // tracer (§3.1's contention signal rendered in Perfetto).
  void SetTraceSeries(std::string process, std::string series) {
    trace_process_ = std::move(process);
    trace_series_ = std::move(series);
  }

 private:
  struct Item {
    double cpu_seconds;
    SimTime enqueued;
    MonotaskDone done;
  };
  void Dispatch();
  void RecordQueue() {
    if (trace_on_) {
      queue_trace_.Record(sim_->now(), static_cast<double>(queue_.size()));
    }
    if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
      if (!trace_series_.empty()) {
        tracer->Counter(trace_process_, trace_series_, sim_->now().seconds(),
                        static_cast<double>(queue_.size()));
      }
    }
  }
  bool trace_on_ = false;
  RateTrace queue_trace_;
  std::string trace_process_;
  std::string trace_series_;

  Simulation* sim_;
  MachineSim* machine_;
  int cores_;
  int running_ = 0;
  std::deque<Item> queue_;
};

// DAG phase a disk monotask belongs to; the scheduler round-robins across phases so
// a backlog of writes cannot starve the reads that feed the CPU (§3.3 "Queueing
// monotasks").
enum class DiskPhase {
  kRead = 0,   // Reading input (DFS block or local shuffle data).
  kWrite = 1,  // Writing shuffle or output data.
  kServe = 2,  // Reading shuffle data on behalf of a remote reduce multitask.
};

class DiskSchedulerSim {
 public:
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  // `max_outstanding` is 1 for HDDs; flash uses the configured outstanding count.
  // `fifo` disables the per-phase round-robin (ablation of §3.3's queueing design):
  // all monotasks share one FIFO queue.
  DiskSchedulerSim(Simulation* sim, DiskSim* disk, int max_outstanding, bool fifo = false);

  DiskSchedulerSim(const DiskSchedulerSim&) = delete;
  DiskSchedulerSim& operator=(const DiskSchedulerSim&) = delete;

  void EnqueueRead(DiskPhase phase, monoutil::Bytes bytes, MonotaskDone done);
  void EnqueueWrite(monoutil::Bytes bytes, MonotaskDone done);

  // §3.5: when `under_pressure` returns true, the scheduler serves the write queue
  // first (clearing buffered output out of memory) instead of round-robin. Optional.
  void set_memory_pressure_fn(std::function<bool()> under_pressure) {
    under_pressure_ = std::move(under_pressure);
  }

  int running() const { return running_; }
  int queue_length() const;
  // Queued monotasks in the write phase (used by load-aware write placement).
  int queued_writes() const { return static_cast<int>(queues_[1].size()); }
  int max_concurrency() const { return max_outstanding_; }

  // Queue-length visibility (§3.1); see CpuSchedulerSim::EnableQueueTrace.
  void EnableQueueTrace() { queue_trace_.Record(sim_->now(), 0.0); trace_on_ = true; }
  const RateTrace& queue_trace() const { return queue_trace_; }

  // See CpuSchedulerSim::SetTraceSeries.
  void SetTraceSeries(std::string process, std::string series) {
    trace_process_ = std::move(process);
    trace_series_ = std::move(series);
  }

 private:
  struct Item {
    bool is_read;
    monoutil::Bytes bytes;
    SimTime enqueued;
    MonotaskDone done;
  };
  void Dispatch();
  void RecordQueue() {
    if (trace_on_) {
      queue_trace_.Record(sim_->now(), static_cast<double>(queue_length()));
    }
    if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
      if (!trace_series_.empty()) {
        tracer->Counter(trace_process_, trace_series_, sim_->now().seconds(),
                        static_cast<double>(queue_length()));
      }
    }
  }
  bool trace_on_ = false;
  RateTrace queue_trace_;
  std::string trace_process_;
  std::string trace_series_;

  Simulation* sim_;
  DiskSim* disk_;
  int max_outstanding_;
  bool fifo_;
  std::function<bool()> under_pressure_;
  int running_ = 0;
  std::array<std::deque<Item>, 3> queues_;  // Indexed by DiskPhase (FIFO: queue 0 only).
  int rr_cursor_ = 0;
};

// Receiver-side network admission control: at most `multitask_limit` multitasks may
// have their shuffle requests outstanding at once (§3.3 chose 4 to balance link
// utilization against pipelining with compute monotasks).
class NetworkSchedulerSim {
 public:
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  // `sim` is only needed for queue-length trace timestamps; pass nullptr when the
  // scheduler is used standalone (tests) and no counter track is named.
  explicit NetworkSchedulerSim(int multitask_limit, Simulation* sim = nullptr);

  NetworkSchedulerSim(const NetworkSchedulerSim&) = delete;
  NetworkSchedulerSim& operator=(const NetworkSchedulerSim&) = delete;

  // Requests a fetch slot; `granted` runs (possibly immediately) when one is
  // free, receiving the time spent waiting for admission (0 when granted
  // immediately, and always 0 when constructed without a `sim`). The wait is
  // also recorded into the mono.net.acquire_wait_seconds histogram.
  void Acquire(std::function<void(double wait_seconds)> granted);
  // Releases a slot previously granted; admits the next waiter.
  void Release();

  int active() const { return active_; }
  int queue_length() const { return static_cast<int>(waiting_.size()); }
  int max_concurrency() const { return limit_; }

  // See CpuSchedulerSim::SetTraceSeries. Requires a non-null `sim`.
  void SetTraceSeries(std::string process, std::string series) {
    trace_process_ = std::move(process);
    trace_series_ = std::move(series);
  }

 private:
  void RecordQueue() {
    if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
      if (sim_ != nullptr && !trace_series_.empty()) {
        tracer->Counter(trace_process_, trace_series_, sim_->now().seconds(),
                        static_cast<double>(waiting_.size()));
      }
    }
  }

  struct Waiter {
    SimTime enqueued;
    std::function<void(double)> granted;
  };

  int limit_;
  Simulation* sim_;
  int active_ = 0;
  std::deque<Waiter> waiting_;
  std::string trace_process_;
  std::string trace_series_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_MONOTASK_RESOURCE_SCHEDULERS_H_
