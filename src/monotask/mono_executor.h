// MonotasksExecutorSim: the paper's architecture (§3).
//
// Multitasks arriving on a worker are decomposed into a DAG of monotasks that each use
// exactly one resource. A Local DAG Scheduler (here: the per-multitask MonoMultitaskSim
// state machine) tracks dependencies and submits each monotask to the machine's
// per-resource scheduler once its dependencies complete. The job scheduler assigns
// each machine enough multitasks to saturate every resource: the sum of each
// scheduler's maximum concurrency, plus one (§3.4).
//
// Key behavioural differences from the Spark baseline, all from the paper:
//   * no fine-grained pipelining inside a multitask — input is fully buffered in
//     memory before compute begins, output fully buffered before the write begins;
//   * disk writes are flushed (never left in the OS buffer cache), so disk monotask
//     times are meaningful (§3.1);
//   * one monotask per HDD at a time -> no seek thrash; the flash scheduler allows a
//     configurable number of outstanding monotasks;
//   * shuffle fetches are admitted receiver-side, at most four multitasks' worth at a
//     time, and shuffle data is always read back from disk on the serving machine.
#ifndef MONOTASKS_SRC_MONOTASK_MONO_EXECUTOR_H_
#define MONOTASKS_SRC_MONOTASK_MONO_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/machine.h"
#include "src/common/domain.h"
#include "src/framework/executor.h"
#include "src/framework/task.h"
#include "src/framework/task_pool.h"
#include "src/monotask/resource_schedulers.h"
#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace monosim {

class MonoMultitaskSim;

struct MonoConfig {
  // Outstanding monotasks per disk. HDDs use 1 (§3.3); flash reaches peak throughput
  // with ~4 outstanding.
  int hdd_outstanding = 1;
  int ssd_outstanding = 4;
  // Receiver-side limit on multitasks with outstanding shuffle requests.
  int network_multitask_limit = 4;
  // The "+1" of §3.4: extra multitasks assigned beyond the schedulers' concurrency
  // sum so round-robin queues never run empty while the driver is asked for work.
  int extra_multitasks = 1;
  // §8 "Disk scheduling" extension: route disk-write monotasks to the disk with the
  // shortest write queue instead of round-robin. Off by default (paper behaviour).
  bool load_aware_disk_writes = false;
  // Ablation: replace the disk scheduler's per-phase round-robin with a single FIFO
  // queue (reproduces the convoy effect §3.3 argues against). Off by default.
  bool fifo_disk_queues = false;
  // §3.5 memory regulation: when a machine's buffered task data exceeds this many
  // bytes, its disk schedulers prioritize write monotasks (clearing output buffers
  // out of memory) over reads. 0 disables the policy (the paper's implementation).
  monoutil::Bytes memory_pressure_threshold;
  // Fixed cost of the leading compute monotask that deserializes the task
  // description and builds the monotask DAG.
  monoutil::SimTime task_launch_overhead = monoutil::Millis(5);
};

class MonotasksExecutorSim : public ExecutorSim, public Auditable {
 public:
  // The executor and its per-resource schedulers model machine-side work. It
  // outlives the simulation run (tests/benches keep it alive past Run()), so
  // `this` captures into monotask completion plumbing cannot dangle.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  MonotasksExecutorSim(Simulation* sim, ClusterSim* cluster, TaskPool* pool,
                       MonoConfig config = {});
  ~MonotasksExecutorSim() override;

  void OnWorkAvailable() override;
  monoutil::Bytes peak_buffered_bytes() const override { return peak_buffered_; }
  const char* trace_name() const override { return "mono"; }
  void set_monotask_log(MonotaskLog* log) override { monotask_log_ = log; }
  MonotaskLog* monotask_log() const { return monotask_log_; }

  const MonoConfig& config() const { return config_; }

  // Maximum multitasks assigned concurrently to `machine` (§3.4).
  int MultitaskLimit(int machine) const;

  // Scheduler access (used by MonoMultitaskSim and by tests).
  CpuSchedulerSim& cpu_scheduler(int machine);
  DiskSchedulerSim& disk_scheduler(int machine, int disk);
  NetworkSchedulerSim& network_scheduler(int machine);
  int num_disks(int machine) const;

  // Picks the disk for a write monotask: round-robin, or the shortest write queue
  // when load-aware writes are enabled.
  int PickWriteDisk(int machine);
  // Picks the disk that serves a shuffle read (round-robin over the machine's disks).
  int PickServeDisk(int machine);

  void AddBuffered(int machine, monoutil::Bytes bytes);
  void RemoveBuffered(int machine, monoutil::Bytes bytes);

  // Trace process group for a machine's work under this executor.
  std::string TraceProcess(int machine) const {
    return "mono:m" + std::to_string(machine);
  }

  // Enables queue-length tracing on every per-resource scheduler (§3.1: contention
  // is visible as queue length). Call before submitting jobs.
  void EnableQueueTraces();

  // Invariant auditing (audit.h): per-machine multitask counts match the running
  // registry; at drain every scheduler queue is empty and no multitask is left.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  friend class MonoMultitaskSim;

  struct WorkerState {
    std::unique_ptr<CpuSchedulerSim> cpu;
    std::vector<std::unique_ptr<DiskSchedulerSim>> disks;
    std::unique_ptr<NetworkSchedulerSim> network;
    int active_multitasks = 0;
    int next_write_disk = 0;
    int next_serve_disk = 0;
    monoutil::Bytes buffered_bytes;
  };

  void TryDispatch(int machine);
  bool DispatchOne(int machine);
  void OnMultitaskComplete(MonoMultitaskSim* multitask);

  Simulation* sim_;
  ClusterSim* cluster_;
  TaskPool* pool_;
  MonoConfig config_;

  std::vector<WorkerState> workers_;
  // Running registry keyed by the executor-assigned dispatch id, not the
  // multitask's address: no schedule decision may depend on heap layout
  // (determinism contract, DESIGN §10).
  std::unordered_map<uint64_t, std::unique_ptr<MonoMultitaskSim>> running_;
  uint64_t next_dispatch_id_ = 0;
  monoutil::Bytes peak_buffered_;
  MonotaskLog* monotask_log_ = nullptr;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_MONOTASK_MONO_EXECUTOR_H_
