#include "src/monotask/resource_schedulers.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/telemetry.h"

namespace monosim {

namespace {

// Always-on per-resource latency decomposition (telemetry.h). Pointers resolve
// once per process; recording is one branch plus a relaxed fetch_add when
// telemetry is on.
void RecordCpuTimes(double service, double wait) {
  if (!monotrace::TelemetryEnabled()) {
    return;
  }
  static monotrace::LatencyHistogram* service_hist =
      monotrace::MetricsRegistry::Global().Histogram("mono.cpu.service_seconds");
  static monotrace::LatencyHistogram* wait_hist =
      monotrace::MetricsRegistry::Global().Histogram(
          "mono.cpu.queue_wait_seconds");
  service_hist->Add(service);
  wait_hist->Add(wait);
}

void RecordDiskTimes(double service, double wait) {
  if (!monotrace::TelemetryEnabled()) {
    return;
  }
  static monotrace::LatencyHistogram* service_hist =
      monotrace::MetricsRegistry::Global().Histogram(
          "mono.disk.service_seconds");
  static monotrace::LatencyHistogram* wait_hist =
      monotrace::MetricsRegistry::Global().Histogram(
          "mono.disk.queue_wait_seconds");
  service_hist->Add(service);
  wait_hist->Add(wait);
}

void RecordNetAcquireWait(double wait) {
  if (!monotrace::TelemetryEnabled()) {
    return;
  }
  static monotrace::LatencyHistogram* wait_hist =
      monotrace::MetricsRegistry::Global().Histogram(
          "mono.net.acquire_wait_seconds");
  wait_hist->Add(wait);
}

}  // namespace

CpuSchedulerSim::CpuSchedulerSim(Simulation* sim, MachineSim* machine)
    : sim_(sim), machine_(machine), cores_(machine->num_cores()) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(machine_ != nullptr);
}

void CpuSchedulerSim::Enqueue(double cpu_seconds, MonotaskDone done) {
  MONO_CHECK(cpu_seconds >= 0);
  MONO_CHECK(done != nullptr);
  queue_.push_back(Item{cpu_seconds, sim_->now(), std::move(done)});
  Dispatch();
  RecordQueue();
}

void CpuSchedulerSim::Dispatch() {
  while (running_ < cores_ && !queue_.empty()) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    RecordQueue();
    ++running_;
    const SimTime dispatched = sim_->now();
    const double wait = (dispatched - item.enqueued).seconds();
    machine_->RunCompute(
        item.cpu_seconds, [this, dispatched, wait, done = std::move(item.done)] {
          --running_;
          const double service = (sim_->now() - dispatched).seconds();
          RecordCpuTimes(service, wait);
          // Admit the next monotask before reporting completion so the core never
          // idles waiting for downstream bookkeeping.
          Dispatch();
          done(service, wait);
        });
  }
}

DiskSchedulerSim::DiskSchedulerSim(Simulation* sim, DiskSim* disk, int max_outstanding,
                                   bool fifo)
    : sim_(sim), disk_(disk), max_outstanding_(max_outstanding), fifo_(fifo) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(disk_ != nullptr);
  MONO_CHECK(max_outstanding >= 1);
}

void DiskSchedulerSim::EnqueueRead(DiskPhase phase, monoutil::Bytes bytes,
                                   MonotaskDone done) {
  MONO_CHECK(phase == DiskPhase::kRead || phase == DiskPhase::kServe);
  const size_t queue = fifo_ ? 0 : static_cast<size_t>(phase);
  queues_[queue].push_back(Item{true, bytes, sim_->now(), std::move(done)});
  Dispatch();
  RecordQueue();
}

void DiskSchedulerSim::EnqueueWrite(monoutil::Bytes bytes, MonotaskDone done) {
  const size_t queue = fifo_ ? 0 : static_cast<size_t>(DiskPhase::kWrite);
  queues_[queue].push_back(Item{false, bytes, sim_->now(), std::move(done)});
  Dispatch();
  RecordQueue();
}

int DiskSchedulerSim::queue_length() const {
  int total = 0;
  for (const auto& queue : queues_) {
    total += static_cast<int>(queue.size());
  }
  return total;
}

void DiskSchedulerSim::Dispatch() {
  while (running_ < max_outstanding_ && queue_length() > 0) {
    // Round-robin over non-empty phase queues, continuing after the last phase
    // served, so reads, writes, and shuffle-serves interleave (§3.3). Under memory
    // pressure, writes jump the rotation to clear buffered data out of memory
    // (§3.5).
    int phase = -1;
    if (under_pressure_ && under_pressure_() &&
        !queues_[static_cast<size_t>(DiskPhase::kWrite)].empty()) {
      phase = static_cast<int>(DiskPhase::kWrite);
    }
    for (int attempt = 0; phase < 0 && attempt < 3; ++attempt) {
      const int candidate = (rr_cursor_ + attempt) % 3;
      if (!queues_[static_cast<size_t>(candidate)].empty()) {
        phase = candidate;
        break;
      }
    }
    MONO_CHECK(phase >= 0);
    rr_cursor_ = (phase + 1) % 3;
    Item item = std::move(queues_[static_cast<size_t>(phase)].front());
    queues_[static_cast<size_t>(phase)].pop_front();
    RecordQueue();
    ++running_;
    const SimTime dispatched = sim_->now();
    const double wait = (dispatched - item.enqueued).seconds();
    auto on_done = [this, dispatched, wait, done = std::move(item.done)] {
      --running_;
      const double service = (sim_->now() - dispatched).seconds();
      RecordDiskTimes(service, wait);
      Dispatch();
      done(service, wait);
    };
    if (item.is_read) {
      disk_->Read(item.bytes, std::move(on_done));
    } else {
      disk_->Write(item.bytes, std::move(on_done));
    }
  }
}

NetworkSchedulerSim::NetworkSchedulerSim(int multitask_limit, Simulation* sim)
    : limit_(multitask_limit), sim_(sim) {
  MONO_CHECK(multitask_limit >= 1);
}

void NetworkSchedulerSim::Acquire(std::function<void(double)> granted) {
  MONO_CHECK(granted != nullptr);
  if (active_ < limit_) {
    ++active_;
    RecordNetAcquireWait(0.0);
    granted(0.0);
    return;
  }
  waiting_.push_back(Waiter{sim_ != nullptr ? sim_->now() : SimTime(),
                            std::move(granted)});
  RecordQueue();
}

void NetworkSchedulerSim::Release() {
  MONO_CHECK(active_ > 0);
  if (!waiting_.empty()) {
    Waiter waiter = std::move(waiting_.front());
    waiting_.pop_front();
    RecordQueue();
    const double wait =
        sim_ != nullptr ? (sim_->now() - waiter.enqueued).seconds() : 0.0;
    RecordNetAcquireWait(wait);
    waiter.granted(wait);  // Slot transfers directly to the next waiter.
    return;
  }
  --active_;
}

}  // namespace monosim
