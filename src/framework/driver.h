// JobDriver: the central job scheduler (the paper's unmodified Spark driver role).
//
// Walks each submitted job through its stages with a barrier between stages, registers
// runnable stages with the TaskPool, notifies the executor, and assembles the
// JobResult (filling per-stage utilization summaries from cluster traces when
// tracing is enabled). Several jobs may be in flight at once; they share the pool.
#ifndef MONOTASKS_SRC_FRAMEWORK_DRIVER_H_
#define MONOTASKS_SRC_FRAMEWORK_DRIVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/machine.h"
#include "src/common/domain.h"
#include "src/common/rng.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/executor.h"
#include "src/framework/job_spec.h"
#include "src/framework/metrics.h"
#include "src/framework/stage_execution.h"
#include "src/framework/task_pool.h"
#include "src/simcore/simulation.h"
#include "src/storage/dfs.h"

namespace monosim {

class JobDriver {
 public:
  MONO_DOMAIN("driver");

  JobDriver(Simulation* sim, ClusterSim* cluster, DfsSim* dfs, TaskPool* pool);

  JobDriver(const JobDriver&) = delete;
  JobDriver& operator=(const JobDriver&) = delete;

  // Must be set before the first SubmitJob.
  void set_executor(ExecutorSim* executor) { executor_ = executor; }

  using DoneCallback = std::function<void(JobResult)>;

  // Submits a job; stages run in order with a barrier in between. `done` fires (as a
  // simulation event) when the last stage completes.
  void SubmitJob(JobSpec spec, DoneCallback done);

  // Convenience: submits `spec` and runs the simulation until it completes.
  JobResult RunJob(JobSpec spec);

 private:
  struct JobState {
    JobSpec spec;
    DoneCallback done;
    monoutil::Rng rng{1};
    std::vector<std::unique_ptr<StageExecution>> stages;
    size_t next_stage = 0;
    JobResult result;
    ClusterSim::UsageCounters stage_start_counters;
    // Driver-timeline trace track for this job; stage spans nest inside the job
    // span on it. Invalid when tracing was off at submit.
    monotrace::TrackRef trace_track;
  };

  void ActivateNextStage(JobState* job);
  void OnStageComplete(JobState* job, StageExecution* stage);
  void FillUtilization(StageResult* result) const;

  Simulation* sim_;
  ClusterSim* cluster_;
  DfsSim* dfs_;
  TaskPool* pool_;
  ExecutorSim* executor_ = nullptr;
  std::vector<std::unique_ptr<JobState>> jobs_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_DRIVER_H_
