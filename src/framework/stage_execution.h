// StageExecution: runtime bookkeeping for one stage of one job.
//
// Owns the per-task parameters (sizes, preferred machines), hands tasks out with
// locality preference, accumulates the stage's metrics, and fires a completion
// callback when the last task finishes. Shared by both executors.
#ifndef MONOTASKS_SRC_FRAMEWORK_STAGE_EXECUTION_H_
#define MONOTASKS_SRC_FRAMEWORK_STAGE_EXECUTION_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/domain.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/framework/job_spec.h"
#include "src/framework/metrics.h"
#include "src/framework/task.h"
#include "src/storage/dfs.h"

namespace monosim {

class StageExecution {
 public:
  MONO_DOMAIN("driver");

  // `prev` is the previous stage of the same job (nullptr for the first); it must
  // have completed when this stage reads shuffle data. `rng` drives task jitter.
  StageExecution(const JobSpec& job, int stage_index, int num_machines, const DfsSim* dfs,
                 const StageExecution* prev, monoutil::Rng* rng);

  StageExecution(const StageExecution&) = delete;
  StageExecution& operator=(const StageExecution&) = delete;

  const StageSpec& spec() const { return spec_; }
  const StageExecution* prev() const { return prev_; }
  int num_machines() const { return num_machines_; }

  // ---- Task handout ----

  // Returns the next task for `machine` (preferring tasks whose input is local),
  // or nullopt if no tasks remain unassigned.
  std::optional<TaskAssignment> TakeTask(int machine);

  // Number of tasks not yet handed out.
  int unassigned_tasks() const { return unassigned_; }

  // ---- Executor callbacks ----

  void set_on_complete(std::function<void()> on_complete) {
    on_complete_ = std::move(on_complete);
  }

  // Records the stage activation time (set once by the driver).
  void Activate(monoutil::SimTime now);
  bool activated() const { return activated_; }

  void OnTaskStarted(int task_index, monoutil::SimTime now);
  // Marks a task finished; fires the completion callback after the last one.
  void OnTaskFinished(int task_index, monoutil::SimTime now);
  bool AllTasksFinished() const { return finished_ == spec_.num_tasks; }

  // ---- Shuffle bookkeeping ----

  // Map-side executors report where they wrote shuffle data.
  void RecordShuffleWrite(int machine, monoutil::Bytes bytes);
  // Bytes of this stage's shuffle output stored on each machine.
  const std::vector<monoutil::Bytes>& shuffle_bytes_per_machine() const {
    return shuffle_on_machine_;
  }

  // ---- Metrics ----

  StageResult& result() { return result_; }
  const StageResult& result() const { return result_; }

  // Trace attribution label ("mono:map"), set by the driver at activation; every
  // span the executors emit for this stage's work carries it.
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }
  const std::string& trace_label() const { return trace_label_; }

 private:
  struct TaskParams {
    // DFS input replicas (empty: no locality preference). Any replica holder can
    // read the block locally; a non-holder reads remotely from the primary.
    std::vector<DfsBlock::Replica> replicas;
    monoutil::Bytes input_bytes;
    double cpu_seconds = 0.0;
    double deser_cpu_seconds = 0.0;
    double decompress_cpu_seconds = 0.0;
    monoutil::Bytes shuffle_write_bytes;
    monoutil::Bytes output_bytes;
  };

  TaskAssignment MakeAssignment(int task_index, int machine) const;

  StageSpec spec_;
  const StageExecution* prev_;
  int num_machines_;

  std::vector<TaskParams> tasks_;
  std::vector<bool> taken_;
  std::vector<std::deque<int>> local_queue_;  // Per-machine preferred task indices.
  std::deque<int> any_queue_;                 // Tasks with no locality preference.
  int unassigned_ = 0;
  int finished_ = 0;
  bool activated_ = false;

  std::vector<monoutil::SimTime> task_start_;
  std::vector<monoutil::Bytes> shuffle_on_machine_;
  std::function<void()> on_complete_;
  StageResult result_;
  std::string trace_label_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_STAGE_EXECUTION_H_
