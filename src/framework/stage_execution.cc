#include "src/framework/stage_execution.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace monosim {

using monoutil::Bytes;
using monoutil::SimTime;

StageExecution::StageExecution(const JobSpec& job, int stage_index, int num_machines,
                               const DfsSim* dfs, const StageExecution* prev,
                               monoutil::Rng* rng)
    : spec_(job.stages[static_cast<size_t>(stage_index)]),
      prev_(prev),
      num_machines_(num_machines),
      local_queue_(static_cast<size_t>(num_machines)),
      shuffle_on_machine_(static_cast<size_t>(num_machines), Bytes()) {
  MONO_CHECK(num_machines >= 1);
  MONO_CHECK(rng != nullptr);
  result_.name = spec_.name;
  result_.stage_index = stage_index;
  result_.num_tasks = spec_.num_tasks;
  result_.monotask_times.disk_seconds_per_machine.assign(
      static_cast<size_t>(num_machines), 0.0);
  result_.monotask_times.disk_bytes_per_machine.assign(
      static_cast<size_t>(num_machines), Bytes());

  const int n = spec_.num_tasks;
  tasks_.resize(static_cast<size_t>(n));
  taken_.assign(static_cast<size_t>(n), false);
  task_start_.assign(static_cast<size_t>(n), SimTime());

  // Draw correlated jitter factors and normalize them to mean 1 so stage totals are
  // exactly as specified regardless of the draw.
  std::vector<double> factor(static_cast<size_t>(n));
  double factor_sum = 0.0;
  for (auto& f : factor) {
    f = rng->Uniform(1.0 - spec_.task_size_jitter, 1.0 + spec_.task_size_jitter);
    factor_sum += f;
  }
  for (auto& f : factor) {
    f *= static_cast<double>(n) / factor_sum;
  }

  // Total input bytes: for DFS input, from the file; otherwise from the spec.
  Bytes total_input = spec_.input_bytes;
  const DfsFile* file = nullptr;
  if (spec_.input == InputSource::kDfs) {
    MONO_CHECK(dfs != nullptr);
    file = &dfs->GetFile(spec_.input_file);
    MONO_CHECK_MSG(static_cast<int>(file->blocks.size()) == n,
                   "DFS input stage must have one task per block");
    total_input = file->total_bytes();
  }
  if (spec_.input == InputSource::kShuffle) {
    MONO_CHECK(prev_ != nullptr);
  }

  // Cumulative-rounding partition: task t's share of a byte total is the difference
  // of two rounded prefix sums, so the per-task amounts always sum to the total
  // exactly, whatever the jitter factors are.
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int t = 0; t < n; ++t) {
    prefix[static_cast<size_t>(t) + 1] =
        prefix[static_cast<size_t>(t)] + factor[static_cast<size_t>(t)];
  }
  auto share = [&](Bytes total, int t) -> Bytes {
    const double denom = prefix[static_cast<size_t>(n)];
    const auto lo = Bytes(static_cast<int64_t>(static_cast<double>(total.count()) *
                                               prefix[static_cast<size_t>(t)] / denom));
    const auto hi = Bytes(static_cast<int64_t>(static_cast<double>(total.count()) *
                                               prefix[static_cast<size_t>(t) + 1] / denom));
    return hi - lo;
  };

  const double total_cpu = spec_.cpu_seconds_per_task * static_cast<double>(n);
  for (int t = 0; t < n; ++t) {
    TaskParams& params = tasks_[static_cast<size_t>(t)];
    const double f = factor[static_cast<size_t>(t)];
    if (file != nullptr) {
      // Block sizes are fixed by the DFS; jitter applies to compute/output only.
      const DfsBlock& block = file->blocks[static_cast<size_t>(t)];
      params.input_bytes = block.size;
      params.replicas = block.replicas;
    } else {
      params.input_bytes = share(total_input, t);
    }
    params.cpu_seconds = total_cpu * f / static_cast<double>(n);
    params.deser_cpu_seconds = params.cpu_seconds * spec_.deser_fraction;
    params.decompress_cpu_seconds = params.cpu_seconds * spec_.decompress_fraction;
    params.shuffle_write_bytes = share(spec_.shuffle_bytes, t);
    params.output_bytes = share(spec_.output_bytes, t);
    if (!params.replicas.empty()) {
      // The task is local to every machine holding a replica of its block.
      for (const auto& replica : params.replicas) {
        local_queue_[static_cast<size_t>(replica.machine)].push_back(t);
      }
    } else {
      any_queue_.push_back(t);
    }
  }
  unassigned_ = n;

  // Ground-truth usage totals (independent of which executor runs the stage).
  result_.usage.cpu_seconds = total_cpu;
  result_.usage.deser_cpu_seconds = total_cpu * spec_.deser_fraction;
  result_.usage.decompress_cpu_seconds = total_cpu * spec_.decompress_fraction;
}

std::optional<TaskAssignment> StageExecution::TakeTask(int machine) {
  // Sanctioned channel: executors pull tasks straight from the stage when they
  // bypass the pool (and via TaskPool::TakeTask otherwise).
  MONO_DOMAIN_CHANNEL();
  MONO_CHECK(machine >= 0 && machine < num_machines_);
  if (unassigned_ == 0) {
    return std::nullopt;
  }
  auto pop_untaken = [this](std::deque<int>& queue) -> int {
    while (!queue.empty()) {
      const int t = queue.front();
      queue.pop_front();
      if (!taken_[static_cast<size_t>(t)]) {
        return t;
      }
    }
    return -1;
  };

  // Prefer a task whose input block lives on this machine.
  int t = pop_untaken(local_queue_[static_cast<size_t>(machine)]);
  if (t < 0) {
    t = pop_untaken(any_queue_);
  }
  if (t < 0) {
    // Steal a non-local task from the machine with the most pending local work.
    size_t best = 0;
    size_t best_size = 0;
    for (size_t m = 0; m < local_queue_.size(); ++m) {
      if (local_queue_[m].size() > best_size) {
        best = m;
        best_size = local_queue_[m].size();
      }
    }
    if (best_size > 0) {
      t = pop_untaken(local_queue_[best]);
    }
  }
  if (t < 0) {
    return std::nullopt;
  }
  taken_[static_cast<size_t>(t)] = true;
  --unassigned_;
  return MakeAssignment(t, machine);
}

TaskAssignment StageExecution::MakeAssignment(int task_index, int machine) const {
  const TaskParams& params = tasks_[static_cast<size_t>(task_index)];
  TaskAssignment assignment;
  assignment.stage = const_cast<StageExecution*>(this);
  assignment.task_index = task_index;
  assignment.machine = machine;
  // Read from the local replica when this machine holds one; otherwise remotely
  // from the primary.
  assignment.input_machine = machine;
  assignment.input_disk = 0;
  if (!params.replicas.empty()) {
    assignment.input_machine = params.replicas[0].machine;
    assignment.input_disk = params.replicas[0].disk;
    for (const auto& replica : params.replicas) {
      if (replica.machine == machine) {
        assignment.input_machine = replica.machine;
        assignment.input_disk = replica.disk;
        break;
      }
    }
  }
  assignment.input_local = assignment.input_machine == machine;
  assignment.input_bytes = params.input_bytes;
  assignment.cpu_seconds = params.cpu_seconds;
  assignment.deser_cpu_seconds = params.deser_cpu_seconds;
  assignment.decompress_cpu_seconds = params.decompress_cpu_seconds;
  assignment.shuffle_write_bytes = params.shuffle_write_bytes;
  assignment.output_bytes = params.output_bytes;
  return assignment;
}

void StageExecution::Activate(SimTime now) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(!activated_);
  activated_ = true;
  result_.start = now;
}

void StageExecution::OnTaskStarted(int task_index, SimTime now) {
  // Sanctioned channel: machine-domain executors report task lifecycle events
  // into the driver's bookkeeping (here and in the two methods below).
  MONO_DOMAIN_CHANNEL();
  task_start_[static_cast<size_t>(task_index)] = now;
}

void StageExecution::OnTaskFinished(int task_index, SimTime now) {
  MONO_DOMAIN_CHANNEL();
  MONO_CHECK(finished_ < spec_.num_tasks);
  result_.task_seconds +=
      (now - task_start_[static_cast<size_t>(task_index)]).seconds();
  ++finished_;
  if (finished_ == spec_.num_tasks) {
    result_.end = now;
    if (on_complete_) {
      on_complete_();
    }
  }
}

void StageExecution::RecordShuffleWrite(int machine, Bytes bytes) {
  MONO_DOMAIN_CHANNEL();
  MONO_CHECK(machine >= 0 && machine < num_machines_);
  shuffle_on_machine_[static_cast<size_t>(machine)] += bytes;
}

}  // namespace monosim
