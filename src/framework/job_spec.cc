#include "src/framework/job_spec.h"

#include "src/common/check.h"

namespace monosim {

void JobSpec::Validate() const {
  MONO_CHECK_MSG(!stages.empty(), "job must have at least one stage");
  for (size_t s = 0; s < stages.size(); ++s) {
    const StageSpec& stage = stages[s];
    MONO_CHECK_MSG(stage.num_tasks > 0, "stage must have tasks");
    MONO_CHECK(stage.cpu_seconds_per_task >= 0);
    MONO_CHECK(stage.deser_fraction >= 0 && stage.deser_fraction <= 1.0);
    MONO_CHECK(stage.input_compression_ratio >= 1.0);
    MONO_CHECK(stage.decompress_fraction >= 0 && stage.decompress_fraction <= 1.0);
    MONO_CHECK(stage.deser_fraction + stage.decompress_fraction <= 1.0);
    MONO_CHECK(stage.task_size_jitter >= 0 && stage.task_size_jitter < 1.0);
    switch (stage.input) {
      case InputSource::kDfs:
        MONO_CHECK_MSG(!stage.input_file.empty(), "kDfs input requires input_file");
        break;
      case InputSource::kShuffle: {
        MONO_CHECK_MSG(s > 0, "first stage cannot read shuffle data");
        const StageSpec& prev = stages[s - 1];
        MONO_CHECK_MSG(prev.output == OutputSink::kShuffle,
                       "kShuffle input requires the previous stage to write shuffle data");
        MONO_CHECK_MSG(stage.input_bytes == prev.shuffle_bytes,
                       "shuffle input bytes must equal previous stage's shuffle output");
        break;
      }
      case InputSource::kMemory:
      case InputSource::kNone:
        break;
    }
    switch (stage.output) {
      case OutputSink::kShuffle:
        MONO_CHECK_MSG(stage.shuffle_bytes > monoutil::Bytes(0), "kShuffle output requires shuffle_bytes");
        MONO_CHECK_MSG(s + 1 < stages.size(), "last stage cannot write shuffle data");
        break;
      case OutputSink::kDfs:
        MONO_CHECK_MSG(stage.output_bytes >= monoutil::Bytes(0), "negative output bytes");
        break;
      case OutputSink::kNone:
        break;
    }
  }
}

}  // namespace monosim
