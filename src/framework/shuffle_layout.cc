#include "src/framework/shuffle_layout.h"

#include "src/common/check.h"

namespace monosim {

using monoutil::Bytes;

std::vector<ShufflePortion> ComputeShufflePortions(const TaskAssignment& task) {
  const StageExecution* prev = task.stage->prev();
  MONO_CHECK_MSG(prev != nullptr, "shuffle input requires a previous stage");
  const auto& on_machine = prev->shuffle_bytes_per_machine();
  Bytes total_shuffle;
  for (Bytes b : on_machine) {
    total_shuffle += b;
  }
  MONO_CHECK_MSG(total_shuffle > Bytes(0), "previous stage wrote no shuffle data");

  const int num_machines = static_cast<int>(on_machine.size());
  std::vector<ShufflePortion> portions;
  Bytes assigned;
  const int start = task.task_index % num_machines;
  for (int i = 0; i < num_machines; ++i) {
    const int src = (start + i) % num_machines;
    Bytes portion;
    if (i == num_machines - 1) {
      portion = task.input_bytes - assigned;
    } else {
      portion = Bytes(static_cast<int64_t>(
          static_cast<double>(task.input_bytes.count()) *
          static_cast<double>(on_machine[static_cast<size_t>(src)].count()) /
          static_cast<double>(total_shuffle.count())));
    }
    assigned += portion;
    if (portion > Bytes(0)) {
      portions.push_back(ShufflePortion{src, portion});
    }
  }
  return portions;
}

}  // namespace monosim
