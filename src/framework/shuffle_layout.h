// Shuffle fetch layout: which machines a reduce task fetches its input from.
//
// A reduce task's input is its share of the previous stage's shuffle output,
// distributed across machines proportionally to where the map tasks wrote it.
// Rounding is assigned to the last portion so the sum is exact; the rotation start
// depends on the task index so concurrent reduce tasks spread their first requests
// across the cluster.
#ifndef MONOTASKS_SRC_FRAMEWORK_SHUFFLE_LAYOUT_H_
#define MONOTASKS_SRC_FRAMEWORK_SHUFFLE_LAYOUT_H_

#include <vector>

#include "src/common/units.h"
#include "src/framework/stage_execution.h"
#include "src/framework/task.h"

namespace monosim {

struct ShufflePortion {
  int src_machine = 0;
  monoutil::Bytes bytes;
};

// Computes the fetch portions for `task` (whose stage reads shuffle data). Portions
// with zero bytes are omitted. The portion from the task's own machine (if any) is
// included; callers handle it as a local read.
std::vector<ShufflePortion> ComputeShufflePortions(const TaskAssignment& task);

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_SHUFFLE_LAYOUT_H_
