// TaskPool: the set of currently-runnable stages across all submitted jobs.
//
// Executors pull tasks from the pool when a machine has spare capacity. When several
// jobs are runnable at once (Fig 16 runs two sorts concurrently), the pool hands out
// tasks round-robin across stages so the jobs share the cluster.
#ifndef MONOTASKS_SRC_FRAMEWORK_TASK_POOL_H_
#define MONOTASKS_SRC_FRAMEWORK_TASK_POOL_H_

#include <optional>
#include <vector>

#include "src/common/domain.h"
#include "src/framework/stage_execution.h"
#include "src/framework/task.h"

namespace monosim {

class TaskPool {
 public:
  MONO_DOMAIN("driver");

  void AddStage(StageExecution* stage);
  void RemoveStage(StageExecution* stage);

  // Takes one task runnable on `machine`, rotating across registered stages.
  std::optional<TaskAssignment> TakeTask(int machine);

  // True if any registered stage still has unassigned tasks.
  bool HasWork() const;

 private:
  std::vector<StageExecution*> stages_;
  size_t cursor_ = 0;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_TASK_POOL_H_
