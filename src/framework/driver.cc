#include "src/framework/driver.h"

#include <utility>

#include "src/common/check.h"

namespace monosim {

JobDriver::JobDriver(Simulation* sim, ClusterSim* cluster, DfsSim* dfs, TaskPool* pool)
    : sim_(sim), cluster_(cluster), dfs_(dfs), pool_(pool) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK(cluster_ != nullptr);
  MONO_CHECK(pool_ != nullptr);
}

void JobDriver::SubmitJob(JobSpec spec, DoneCallback done) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK_MSG(executor_ != nullptr, "set_executor must be called before SubmitJob");
  spec.Validate();
  auto job = std::make_unique<JobState>();
  job->spec = std::move(spec);
  job->done = std::move(done);
  job->rng = monoutil::Rng(job->spec.seed);
  job->result.job_name = job->spec.name;
  job->result.start = sim_->now();
  JobState* raw = job.get();
  jobs_.push_back(std::move(job));
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    // One driver track per submission; the executor tag keeps a Spark run and a
    // monotasks run of the same job apart in a shared trace file.
    raw->trace_track = tracer->Track(
        "driver", std::string(executor_->trace_name()) + ":" + raw->spec.name + "#" +
                      std::to_string(jobs_.size() - 1));
    tracer->BeginSpan(raw->trace_track, raw->spec.name, "job", sim_->now().seconds());
  }
  ActivateNextStage(raw);
}

JobResult JobDriver::RunJob(JobSpec spec) {
  bool finished = false;
  JobResult result;
  SubmitJob(std::move(spec), [&finished, &result](JobResult r) {
    finished = true;
    result = std::move(r);
  });
  sim_->Run();
  MONO_CHECK_MSG(finished, "simulation drained without completing the job");
  return result;
}

void JobDriver::ActivateNextStage(JobState* job) {
  const int stage_index = static_cast<int>(job->next_stage);
  ++job->next_stage;
  const StageExecution* prev =
      job->stages.empty() ? nullptr : job->stages.back().get();
  auto stage = std::make_unique<StageExecution>(job->spec, stage_index,
                                                cluster_->num_machines(), dfs_, prev,
                                                &job->rng);
  StageExecution* raw = stage.get();
  job->stages.push_back(std::move(stage));
  raw->set_on_complete([this, job, raw] { OnStageComplete(job, raw); });
  raw->set_trace_label(std::string(executor_->trace_name()) + ":" + raw->spec().name);
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    if (job->trace_track.valid()) {
      tracer->BeginSpan(job->trace_track, raw->spec().name, "stage",
                        sim_->now().seconds(), raw->trace_label());
    }
  }
  raw->Activate(sim_->now());
  job->stage_start_counters = cluster_->SnapshotUsage();
  pool_->AddStage(raw);
  executor_->OnWorkAvailable();
}

void JobDriver::OnStageComplete(JobState* job, StageExecution* stage) {
  MONO_DOMAIN_MUTATION();
  pool_->RemoveStage(stage);
  FillUtilization(&stage->result());
  // Device-level measurement over the stage window (includes any concurrent jobs'
  // work — that ambiguity is the point of the Fig 16 experiment).
  const ClusterSim::UsageCounters end = cluster_->SnapshotUsage();
  const ClusterSim::UsageCounters& start = job->stage_start_counters;
  MeasuredUsage& measured = stage->result().measured;
  measured.cpu_seconds = end.cpu_seconds - start.cpu_seconds;
  measured.disk_read_bytes = end.disk_read_bytes - start.disk_read_bytes;
  measured.disk_write_bytes = end.disk_write_bytes - start.disk_write_bytes;
  measured.network_bytes = end.network_bytes - start.network_bytes;
  job->result.stages.push_back(stage->result());
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    if (job->trace_track.valid()) {
      tracer->EndSpan(job->trace_track, sim_->now().seconds());  // stage span
      if (job->next_stage >= job->spec.stages.size()) {
        tracer->EndSpan(job->trace_track, sim_->now().seconds());  // job span
      }
    }
  }

  if (job->next_stage < job->spec.stages.size()) {
    ActivateNextStage(job);
    return;
  }
  job->result.end = sim_->now();
  job->result.peak_buffered_bytes = executor_->peak_buffered_bytes();
  // Digest of every event fired up to job completion; the determinism witness
  // for this run (metrics.h).
  job->result.sim_digest = sim_->digest();
  if (job->done) {
    // Deliver via an event so the callback does not run inside executor frames.
    auto done = std::move(job->done);
    auto result = job->result;
    sim_->ScheduleAfter(monoutil::SimTime(),
                        [done = std::move(done), result = std::move(result)] {
      done(result);
    }, "job-done");
  }
}

void JobDriver::FillUtilization(StageResult* result) const {
  if (!cluster_->trace_enabled() || result->end <= result->start) {
    return;
  }
  result->utilization.measured = true;
  const monoutil::SimTime from = result->start;
  const monoutil::SimTime to = result->end;
  for (int m = 0; m < cluster_->num_machines(); ++m) {
    const MachineSim& machine = cluster_->machine(m);
    result->utilization.cpu.push_back(machine.cpu().MeanUtilization(from, to));
    double disk_util = 0.0;
    for (int d = 0; d < machine.num_disks(); ++d) {
      disk_util += machine.disk(d).MeanUtilization(from, to);
    }
    result->utilization.disk.push_back(disk_util /
                                       static_cast<double>(machine.num_disks()));
    result->utilization.network.push_back(
        cluster_->fabric().MeanIngressUtilization(m, from, to));
  }
}

}  // namespace monosim
