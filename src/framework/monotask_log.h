// MonotaskLog: per-monotask lifecycle records, always on, trace-free.
//
// Every monotask's life has three measurable segments:
//
//   ready ──(queue wait)──► dispatch ──(service)──► done
//
// where `ready` is when its dependencies were met and it entered a resource
// scheduler's queue, `dispatch` is when the resource started working on it,
// and `done` is completion. The executor records one MonotaskRecord per
// monotask as a side effect of its completion callbacks — the paper's §3.1
// point that this instrumentation falls out of the architecture for free.
//
// Unlike the Tracer (opt-in, unbounded, wall-format JSON), the log is a plain
// bounded vector of PODs: the critical-path analyzer (src/model) walks it to
// attribute end-to-end runtime to resources without MONO_TRACE ever being set.
// When the cap is reached further records are counted as dropped rather than
// grown — analyses must check dropped() before claiming completeness.
#ifndef MONOTASKS_SRC_FRAMEWORK_MONOTASK_LOG_H_
#define MONOTASKS_SRC_FRAMEWORK_MONOTASK_LOG_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace monosim {

// Which physical resource the monotask occupied. Matches the trace categories
// ("cpu" / "disk" / "network") so blame computed from the log can be
// cross-checked against trace_report.
enum class MonoResource { kCpu = 0, kDisk = 1, kNetwork = 2 };

inline const char* MonoResourceName(MonoResource r) {
  switch (r) {
    case MonoResource::kCpu:
      return "cpu";
    case MonoResource::kDisk:
      return "disk";
    case MonoResource::kNetwork:
      return "network";
  }
  return "?";
}

struct MonotaskRecord {
  uint64_t dispatch_id = 0;  // Executor dispatch id of the owning multitask.
  int stage_index = 0;
  int machine = 0;           // Machine whose resource did the work.
  MonoResource resource = MonoResource::kCpu;
  const char* phase = "";    // "disk-read", "compute", "flow", ... (literal).
  monoutil::SimTime ready;
  monoutil::SimTime dispatch;
  monoutil::SimTime done;

  monoutil::SimTime queue_wait() const { return dispatch - ready; }
  monoutil::SimTime service() const { return done - dispatch; }
};

class MonotaskLog {
 public:
  // Default cap: 1M records ≈ 64 MB, far beyond any workload in the repo but
  // a hard bound nonetheless.
  static constexpr size_t kDefaultCapacity = 1 << 20;

  explicit MonotaskLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  MonotaskLog(const MonotaskLog&) = delete;
  MonotaskLog& operator=(const MonotaskLog&) = delete;

  void Record(const MonotaskRecord& record) {
    if (records_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    records_.push_back(record);
  }

  const std::vector<MonotaskRecord>& records() const { return records_; }
  uint64_t dropped() const { return dropped_; }

  void Clear() {
    records_.clear();
    dropped_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<MonotaskRecord> records_;
  uint64_t dropped_ = 0;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_MONOTASK_LOG_H_
