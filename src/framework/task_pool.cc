#include "src/framework/task_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace monosim {

void TaskPool::AddStage(StageExecution* stage) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(stage != nullptr);
  stages_.push_back(stage);
}

void TaskPool::RemoveStage(StageExecution* stage) {
  MONO_DOMAIN_MUTATION();
  auto it = std::find(stages_.begin(), stages_.end(), stage);
  MONO_CHECK_MSG(it != stages_.end(), "stage not registered");
  const size_t index = static_cast<size_t>(it - stages_.begin());
  stages_.erase(it);
  if (cursor_ > index) {
    --cursor_;
  }
  if (!stages_.empty()) {
    cursor_ %= stages_.size();
  } else {
    cursor_ = 0;
  }
}

std::optional<TaskAssignment> TaskPool::TakeTask(int machine) {
  // Sanctioned channel: executors (machine domain) pull work from the
  // driver-owned pool by design.
  MONO_DOMAIN_CHANNEL();
  for (size_t attempt = 0; attempt < stages_.size(); ++attempt) {
    const size_t index = (cursor_ + attempt) % stages_.size();
    auto task = stages_[index]->TakeTask(machine);
    if (task.has_value()) {
      cursor_ = (index + 1) % stages_.size();
      return task;
    }
  }
  return std::nullopt;
}

bool TaskPool::HasWork() const {
  for (const StageExecution* stage : stages_) {
    if (stage->unassigned_tasks() > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace monosim
