#include "src/framework/environment.h"

namespace monosim {

SimEnvironment::SimEnvironment(const ClusterConfig& config, int dfs_replication) {
  cluster_ = std::make_unique<ClusterSim>(&sim_, config);
  dfs_ = std::make_unique<DfsSim>(config.num_machines,
                                  static_cast<int>(config.machine.disks.size()),
                                  dfs_replication, config.seed);
  driver_ = std::make_unique<JobDriver>(&sim_, cluster_.get(), dfs_.get(), &pool_);
}

void SimEnvironment::AttachExecutor(ExecutorSim* executor) {
  executor->set_monotask_log(&monotask_log_);
  driver_->set_executor(executor);
}

}  // namespace monosim
