// ExecutorSim: the interface both execution architectures implement.
//
// The driver activates stages and registers them with the TaskPool; it then notifies
// the executor, which pulls tasks for machines with spare capacity and runs them —
// either as fine-grained pipelined multitasks (SparkExecutorSim) or decomposed into
// monotasks under per-resource schedulers (MonotasksExecutorSim).
#ifndef MONOTASKS_SRC_FRAMEWORK_EXECUTOR_H_
#define MONOTASKS_SRC_FRAMEWORK_EXECUTOR_H_

#include "src/common/units.h"

namespace monosim {

class MonotaskLog;

class ExecutorSim {
 public:
  virtual ~ExecutorSim() = default;

  // Called whenever new tasks may be available in the pool (a stage was activated).
  // The executor should try to fill idle capacity on every machine.
  virtual void OnWorkAvailable() = 0;

  // Attaches a per-monotask lifecycle log (monotask_log.h); the executor does
  // not take ownership and `log` must outlive it. Executors without monotask
  // granularity (the Spark baseline) ignore it.
  virtual void set_monotask_log(MonotaskLog* log) { (void)log; }

  // Peak bytes of task data buffered in application memory on any single machine.
  virtual monoutil::Bytes peak_buffered_bytes() const { return monoutil::Bytes(); }

  // Short architecture tag used to prefix trace stage labels ("spark:map" vs
  // "mono:map"), so one trace file can hold both executors' runs of the same job.
  virtual const char* trace_name() const { return "executor"; }
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_EXECUTOR_H_
