// TaskAssignment: one multitask, bound to a machine, with its concrete sizes.
//
// The driver's locality-aware placement produces these; the executors consume them.
// Sizes are per-task (already jittered and normalized so stage totals are exact).
#ifndef MONOTASKS_SRC_FRAMEWORK_TASK_H_
#define MONOTASKS_SRC_FRAMEWORK_TASK_H_

#include "src/common/units.h"

namespace monosim {

class StageExecution;

struct TaskAssignment {
  StageExecution* stage = nullptr;
  int task_index = 0;
  // Machine the task will run on.
  int machine = 0;
  // For DFS input: whether the input block is local, and where it lives.
  bool input_local = true;
  int input_machine = 0;
  int input_disk = 0;

  monoutil::Bytes input_bytes;
  double cpu_seconds = 0.0;
  double deser_cpu_seconds = 0.0;
  double decompress_cpu_seconds = 0.0;
  monoutil::Bytes shuffle_write_bytes;
  monoutil::Bytes output_bytes;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_TASK_H_
