// SimEnvironment: one-stop ownership of a simulated cluster run.
//
// Benches and tests build an environment from a ClusterConfig, attach an executor
// (Spark-baseline or monotasks), and run jobs through the driver. The environment
// wires the pieces in the right order and keeps their lifetimes straight.
#ifndef MONOTASKS_SRC_FRAMEWORK_ENVIRONMENT_H_
#define MONOTASKS_SRC_FRAMEWORK_ENVIRONMENT_H_

#include <memory>

#include "src/cluster/machine.h"
#include "src/common/domain.h"
#include "src/framework/driver.h"
#include "src/framework/executor.h"
#include "src/framework/monotask_log.h"
#include "src/framework/task_pool.h"
#include "src/simcore/simulation.h"
#include "src/storage/dfs.h"

namespace monosim {

class SimEnvironment {
 public:
  // Top-level wiring lives with the driver; its accessors are pass-throughs
  // into the components' own domains.
  MONO_DOMAIN("driver");

  explicit SimEnvironment(const ClusterConfig& config, int dfs_replication = 1);

  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  Simulation& sim() { return sim_; }
  ClusterSim& cluster() { return *cluster_; }
  DfsSim& dfs() { return *dfs_; }
  TaskPool& pool() { return pool_; }
  JobDriver& driver() { return *driver_; }

  // Attaches the executor; must be called exactly once before submitting jobs. The
  // environment does not take ownership. The environment's MonotaskLog is
  // handed to the executor, so monotask-granularity executors record lifecycle
  // records into it automatically.
  void AttachExecutor(ExecutorSim* executor);

  // Per-monotask lifecycle records (monotask_log.h) accumulated by the
  // attached executor — the input of the critical-path analyzer (src/model).
  // Empty under the Spark baseline executor.
  MonotaskLog& monotask_log() { return monotask_log_; }
  const MonotaskLog& monotask_log() const { return monotask_log_; }

  // Whether cluster device tracing was enabled for this run. When false, the
  // StageUtilization vectors in job results are empty and `measured` is false —
  // "not measured", not "0% utilized".
  bool cluster_trace_enabled() const { return cluster_->trace_enabled(); }

 private:
  Simulation sim_;
  std::unique_ptr<ClusterSim> cluster_;
  std::unique_ptr<DfsSim> dfs_;
  TaskPool pool_;
  std::unique_ptr<JobDriver> driver_;
  MonotaskLog monotask_log_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_ENVIRONMENT_H_
