// Job and stage specifications.
//
// A job is a linear chain of bulk-synchronous stages (the structure Spark gives the
// paper's benchmark workloads once the DAG scheduler has run: map stage -> shuffle ->
// reduce stage, possibly repeated). Each stage describes the per-task resource profile
// — where input comes from, how much CPU work each task performs, and where output
// goes. Executors (multitask / monotask) decide *how* those resources are used; the
// spec only says how much.
#ifndef MONOTASKS_SRC_FRAMEWORK_JOB_SPEC_H_
#define MONOTASKS_SRC_FRAMEWORK_JOB_SPEC_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace monosim {

enum class InputSource {
  kNone,     // Generated in place (e.g. synthetic data generators).
  kDfs,      // Read from DFS blocks; tasks prefer the block's home machine.
  kMemory,   // Cached in memory on the machines (no read I/O).
  kShuffle,  // Fetched from the previous stage's shuffle output.
};

enum class OutputSink {
  kNone,
  kShuffle,  // Written locally as shuffle data for the next stage.
  kDfs,      // Written to the DFS (the job's final output).
};

struct StageSpec {
  std::string name;
  int num_tasks = 0;

  InputSource input = InputSource::kNone;
  // For kDfs: the DFS file name (the file's block count must equal num_tasks).
  std::string input_file;
  // For kMemory / kShuffle / kNone: total input bytes across all tasks. For kShuffle
  // this must equal the previous stage's shuffle_bytes.
  monoutil::Bytes input_bytes;

  // Total single-threaded CPU work per task, including (de)serialization and any
  // decompression.
  double cpu_seconds_per_task = 0.0;
  // Fraction of the CPU work that deserializes the input (separable thanks to
  // monotasks; used by the §6.3 what-if model).
  double deser_fraction = 0.0;
  // Input compression (only meaningful for kDfs input): input_bytes above are the
  // *compressed* bytes read from disk; uncompressed, the data would be
  // input_compression_ratio times larger. decompress_fraction is the share of the
  // CPU work that decompresses — both feed the "should I store compressed or
  // uncompressed data?" what-if from the paper's introduction.
  double input_compression_ratio = 1.0;
  double decompress_fraction = 0.0;

  OutputSink output = OutputSink::kNone;
  // Total bytes across all tasks for the chosen sink.
  monoutil::Bytes shuffle_bytes;
  monoutil::Bytes output_bytes;
  // If true, shuffle output is kept in memory rather than written to disk (the ML
  // workload in §5.2 stores shuffle data in-memory).
  bool shuffle_to_memory = false;

  // Multiplicative per-task size variation: each task's sizes are scaled by a factor
  // drawn uniformly from [1 - jitter, 1 + jitter] (normalized so totals are exact).
  double task_size_jitter = 0.05;
};

struct JobSpec {
  std::string name;
  std::vector<StageSpec> stages;
  uint64_t seed = 1;

  // Aborts (via MONO_CHECK) if the spec is internally inconsistent: a kShuffle stage
  // not preceded by a kShuffle-output stage, byte totals that disagree, etc.
  void Validate() const;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_FRAMEWORK_JOB_SPEC_H_
