// Streaming and batch statistics used for experiment reporting.
#ifndef MONOTASKS_SRC_COMMON_STATS_H_
#define MONOTASKS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace monoutil {

// Online mean / variance / extrema accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Five-number summary used for the paper's box-and-whisker plots (Fig 6):
// 5th / 25th / 50th / 75th / 95th percentiles.
struct BoxplotSummary {
  double p5 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

// Returns the q-quantile (q in [0, 1]) of `samples` using linear interpolation between
// order statistics. `samples` may be unsorted; it is copied. Returns 0 when empty.
double Percentile(std::vector<double> samples, double q);

// Computes the Fig-6-style five-number summary of `samples` (one sort, not
// one per percentile).
BoxplotSummary Boxplot(const std::vector<double>& samples);

// Returns the median of `samples` (0 when empty).
double Median(const std::vector<double>& samples);

// Relative error |actual - predicted| / |actual|.
//
// When actual == 0 the error is undefined; this returns 0 by choice (pinned by
// a unit test): callers compare model predictions against measurements, and a
// zero measurement means "this resource/stage didn't run here", where flagging
// a huge error would drown real disagreements. Callers for whom predicted != 0
// against actual == 0 IS a disagreement must special-case it themselves (as
// CriticalPathReport::CrossCheckWithTrace does).
double RelativeError(double predicted, double actual);

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_STATS_H_
