// Minimal leveled logging.
//
// Benches and examples default to kInfo; simulator internals log at kDebug so traces
// can be turned on when investigating a schedule without recompiling.
#ifndef MONOTASKS_SRC_COMMON_LOGGING_H_
#define MONOTASKS_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace monoutil {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Sets/returns the global minimum level that is emitted (default kWarning, so library
// users see nothing unless they opt in).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr if `level` is at or above the global level.
void LogLine(LogLevel level, const std::string& message);

// Internal: stream-style log statement builder used by the MONO_LOG macro.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace monoutil

#define MONO_LOG(level) ::monoutil::LogMessage(::monoutil::LogLevel::level)

#endif  // MONOTASKS_SRC_COMMON_LOGGING_H_
