// Ownership-domain annotations and their runtime cross-check.
//
// The sharded simulation core (ROADMAP) partitions components into ownership
// domains — "machine", "fabric", "driver", "storage" — and requires that state
// in one domain is only mutated from another through sanctioned channels
// (scheduled events, fabric control messages, the audit layer). mono_lint's
// domain-ownership rule enforces that matrix statically from the MONO_DOMAIN
// annotations below; this header supplies the annotations plus a dynamic
// cross-check so a stale annotation turns the test suite red instead of
// rotting:
//
//   * MONO_DOMAIN("machine")   — declares the class's owning domain. Pure
//     metadata at runtime (a constexpr string member the scope macros read);
//     mono_lint parses it to build the cross-file access matrix.
//   * MONO_SIM_OWNED           — declares that the class's lifetime is tied to
//     its Simulation: no scheduled callback capturing `this` can fire after
//     destruction (the destructor cancels pending events, or the object
//     outlives the simulation by construction). mono_lint's escaping-capture
//     rule only permits `this` captures into deferring APIs for such classes.
//   * MONO_DOMAIN_MUTATION()   — first line of an externally-callable mutation
//     entry point. When checks are enabled and the calling context already
//     carries a *different* domain, MONO_CHECK-aborts: that is exactly the
//     cross-shard mutation the sharded core cannot allow. Then enters this
//     class's domain for the dynamic extent of the call.
//   * MONO_DOMAIN_CHANNEL()    — a sanctioned cross-domain entry point (the
//     runtime twin of the linter's sanctioned-channel list): enters this
//     class's domain without checking the caller's.
//   * MONO_DOMAIN_NEUTRAL()    — erases the current domain for a scope. Placed
//     where ownership is genuinely handed off: the event kernel invoking a
//     scheduled callback, and components invoking stored user continuations
//     (completion callbacks). Work running under a neutral scope may enter any
//     domain.
//
// The check is audit-gated, not build-type-gated: ScopedAudit (src/simcore)
// enables it on installation, so the gtest audit listener arms it for every
// test while production runs pay one relaxed atomic load per scope. The state
// is thread-local, touches nothing the event digest folds, and therefore
// cannot perturb schedules.
#ifndef MONOTASKS_SRC_COMMON_DOMAIN_H_
#define MONOTASKS_SRC_COMMON_DOMAIN_H_

#include <atomic>

namespace monodomain {

namespace internal {

extern std::atomic<int> g_checks_enabled;
extern thread_local const char* tls_current_domain;

// Aborts via MONO_CHECK with a cross-domain-mutation message. Out of line so
// this header stays free of check.h and <cstdio>.
[[noreturn]] void DieCrossDomain(const char* current, const char* entered,
                                 const char* function);

}  // namespace internal

// True while at least one enabler (a ScopedAudit, or a test holding
// ScopedDomainChecks) is installed.
inline bool DomainChecksEnabled() {
  return internal::g_checks_enabled.load(std::memory_order_relaxed) > 0;
}

// Reference-counted enable/disable, called by ScopedAudit's ctor/dtor.
void EnableDomainChecks();
void DisableDomainChecks();

// The domain of the code currently executing on this thread, or nullptr when
// no domain scope is active (neutral). Exposed for tests and audits.
inline const char* CurrentDomain() { return internal::tls_current_domain; }

// RAII enable for tests that want the check without a full ScopedAudit.
class ScopedDomainChecks {
 public:
  ScopedDomainChecks() { EnableDomainChecks(); }
  ~ScopedDomainChecks() { DisableDomainChecks(); }
  ScopedDomainChecks(const ScopedDomainChecks&) = delete;
  ScopedDomainChecks& operator=(const ScopedDomainChecks&) = delete;
};

// Enters `domain` after checking the caller's context (MONO_DOMAIN_MUTATION).
class DomainMutationScope {
 public:
  DomainMutationScope(const char* domain, const char* function)
      : active_(DomainChecksEnabled()) {
    if (!active_) {
      return;
    }
    previous_ = internal::tls_current_domain;
    if (previous_ != nullptr && domain != nullptr &&
        !SameDomain(previous_, domain)) {
      internal::DieCrossDomain(previous_, domain, function);
    }
    internal::tls_current_domain = domain;
  }
  ~DomainMutationScope() {
    if (active_) {
      internal::tls_current_domain = previous_;
    }
  }
  DomainMutationScope(const DomainMutationScope&) = delete;
  DomainMutationScope& operator=(const DomainMutationScope&) = delete;

 private:
  // The annotations are string literals, so identical domains may still have
  // distinct addresses across translation units; compare contents.
  static bool SameDomain(const char* a, const char* b);

  bool active_;
  const char* previous_ = nullptr;
};

// Enters `domain` without checking the caller (MONO_DOMAIN_CHANNEL).
class DomainChannelScope {
 public:
  explicit DomainChannelScope(const char* domain)
      : active_(DomainChecksEnabled()) {
    if (!active_) {
      return;
    }
    previous_ = internal::tls_current_domain;
    internal::tls_current_domain = domain;
  }
  ~DomainChannelScope() {
    if (active_) {
      internal::tls_current_domain = previous_;
    }
  }
  DomainChannelScope(const DomainChannelScope&) = delete;
  DomainChannelScope& operator=(const DomainChannelScope&) = delete;

 private:
  bool active_;
  const char* previous_ = nullptr;
};

// Erases the domain for a scope (MONO_DOMAIN_NEUTRAL).
class DomainNeutralScope {
 public:
  DomainNeutralScope() : active_(DomainChecksEnabled()) {
    if (!active_) {
      return;
    }
    previous_ = internal::tls_current_domain;
    internal::tls_current_domain = nullptr;
  }
  ~DomainNeutralScope() {
    if (active_) {
      internal::tls_current_domain = previous_;
    }
  }
  DomainNeutralScope(const DomainNeutralScope&) = delete;
  DomainNeutralScope& operator=(const DomainNeutralScope&) = delete;

 private:
  bool active_;
  const char* previous_ = nullptr;
};

}  // namespace monodomain

// Class-level annotations (inside the class body, public or private).
#define MONO_DOMAIN(name) static constexpr const char* kMonoDomain = (name)
#define MONO_SIM_OWNED static constexpr bool kMonoSimOwned = true

#define MONO_DOMAIN_CONCAT_INNER(a, b) a##b
#define MONO_DOMAIN_CONCAT(a, b) MONO_DOMAIN_CONCAT_INNER(a, b)

// Method-level scopes. MUTATION/CHANNEL read the enclosing class's kMonoDomain,
// so the class must carry MONO_DOMAIN.
#define MONO_DOMAIN_MUTATION()                                      \
  ::monodomain::DomainMutationScope MONO_DOMAIN_CONCAT(             \
      mono_domain_scope_, __LINE__)(kMonoDomain, __func__)
#define MONO_DOMAIN_CHANNEL()                           \
  ::monodomain::DomainChannelScope MONO_DOMAIN_CONCAT(  \
      mono_domain_scope_, __LINE__)(kMonoDomain)
#define MONO_DOMAIN_NEUTRAL() \
  ::monodomain::DomainNeutralScope MONO_DOMAIN_CONCAT(mono_domain_neutral_, __LINE__)

#endif  // MONOTASKS_SRC_COMMON_DOMAIN_H_
