#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace monoutil {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Percentile() on samples the caller has already sorted (no copy, no re-sort).
double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double Percentile(std::vector<double> samples, double q) {
  MONO_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  return SortedPercentile(samples, q);
}

BoxplotSummary Boxplot(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  BoxplotSummary box;
  box.p5 = SortedPercentile(sorted, 0.05);
  box.p25 = SortedPercentile(sorted, 0.25);
  box.p50 = SortedPercentile(sorted, 0.50);
  box.p75 = SortedPercentile(sorted, 0.75);
  box.p95 = SortedPercentile(sorted, 0.95);
  return box;
}

double Median(const std::vector<double>& samples) { return Percentile(samples, 0.5); }

double RelativeError(double predicted, double actual) {
  if (actual == 0.0) {
    return 0.0;
  }
  return std::abs(actual - predicted) / std::abs(actual);
}

}  // namespace monoutil
