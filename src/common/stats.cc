#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace monoutil {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double q) {
  MONO_CHECK(q >= 0.0 && q <= 1.0);
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

BoxplotSummary Boxplot(const std::vector<double>& samples) {
  BoxplotSummary box;
  box.p5 = Percentile(samples, 0.05);
  box.p25 = Percentile(samples, 0.25);
  box.p50 = Percentile(samples, 0.50);
  box.p75 = Percentile(samples, 0.75);
  box.p95 = Percentile(samples, 0.95);
  return box;
}

double Median(const std::vector<double>& samples) { return Percentile(samples, 0.5); }

double RelativeError(double predicted, double actual) {
  if (actual == 0.0) {
    return 0.0;
  }
  return std::abs(actual - predicted) / std::abs(actual);
}

}  // namespace monoutil
