#include "src/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace monoutil {

namespace {
std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_check_failure_hook.exchange(hook, std::memory_order_acq_rel);
}

void CheckFailed(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "MONO_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  // Fire the hook exactly once even if the hook itself trips a MONO_CHECK:
  // exchange claims it before calling.
  CheckFailureHook hook =
      g_check_failure_hook.exchange(nullptr, std::memory_order_acq_rel);
  if (hook != nullptr) {
    hook();
  }
  std::abort();
}

}  // namespace monoutil
