#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace monoutil {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace monoutil
