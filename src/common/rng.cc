#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace monoutil {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(&s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits give a uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  MONO_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  MONO_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  while (true) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Exponential(double mean) {
  MONO_CHECK(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace monoutil
