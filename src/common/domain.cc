#include "src/common/domain.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"

namespace monodomain {

namespace internal {

std::atomic<int> g_checks_enabled{0};
thread_local const char* tls_current_domain = nullptr;

void DieCrossDomain(const char* current, const char* entered,
                    const char* function) {
  char message[256];
  std::snprintf(message, sizeof(message),
                "cross-domain mutation: %s() owns domain \"%s\" but was "
                "entered from domain \"%s\" without a sanctioned channel "
                "(scheduled event, fabric control message, or audit)",
                function, entered, current);
  MONO_CHECK_MSG(false, message);
  std::abort();  // MONO_CHECK_MSG does not return; keep [[noreturn]] honest.
}

}  // namespace internal

void EnableDomainChecks() {
  internal::g_checks_enabled.fetch_add(1, std::memory_order_relaxed);
}

void DisableDomainChecks() {
  const int previous =
      internal::g_checks_enabled.fetch_sub(1, std::memory_order_relaxed);
  MONO_CHECK_MSG(previous > 0, "DisableDomainChecks without a matching enable");
}

bool DomainMutationScope::SameDomain(const char* a, const char* b) {
  return a == b || std::strcmp(a, b) == 0;
}

}  // namespace monodomain
