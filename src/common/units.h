// Units and conversions used throughout the monotasks libraries.
//
// Simulated time is a double count of seconds (SimTime); data sizes are int64 byte
// counts. Helpers here keep call sites readable (`monoutil::MiB(512)`) and avoid
// magic-number unit mistakes.
#ifndef MONOTASKS_SRC_COMMON_UNITS_H_
#define MONOTASKS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace monoutil {

// Simulated time, in seconds.
using SimTime = double;

// Data size, in bytes.
using Bytes = int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// Convenience constructors for byte quantities.
constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

// Convenience constructors for time quantities (seconds are the base unit).
constexpr SimTime Millis(double n) { return n / 1e3; }
constexpr SimTime Micros(double n) { return n / 1e6; }
constexpr SimTime Minutes(double n) { return n * 60.0; }

// Converts a byte count to fractional mebibytes/gibibytes (for reporting).
constexpr double ToMiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMiB); }
constexpr double ToGiB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGiB); }

// Throughputs are expressed in bytes per second.
using BytesPerSecond = double;

constexpr BytesPerSecond MiBps(double n) { return n * static_cast<double>(kMiB); }
constexpr BytesPerSecond GiBps(double n) { return n * static_cast<double>(kGiB); }

// Converts a link rate in gigabits per second to bytes per second.
constexpr BytesPerSecond Gbps(double n) { return n * 1e9 / 8.0; }

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_UNITS_H_
