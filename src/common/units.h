// Strong unit types used throughout the monotasks libraries.
//
// Simulated time, byte counts, and throughputs are distinct wrapper types with
// a closed dimensional algebra rather than bare `double`/`int64_t` typedefs:
// the paper's §6 performance-clarity model is literally unit arithmetic
// (predicted runtimes are bytes / bandwidth sums per resource), so a swapped
// argument must fail to build instead of silently corrupting predictions.
//
//   SimTime          a point/span on the simulated clock, in seconds (double)
//   Bytes            an exact data size, in bytes (int64_t)
//   BytesPerSecond   a throughput, in bytes per second (double)
//
// The algebra is closed under the physically meaningful operations:
//
//   SimTime ± SimTime            -> SimTime        (single-type design: points
//                                                   and durations share SimTime)
//   SimTime * scalar, / scalar   -> SimTime
//   SimTime / SimTime            -> double         (dimensionless ratio)
//   Bytes ± Bytes                -> Bytes
//   Bytes * scalar, / scalar     -> Bytes          (truncating, like the int64
//                                                   arithmetic it replaces)
//   Bytes / Bytes                -> double         (dimensionless ratio)
//   Bytes / BytesPerSecond       -> SimTime        (transfer time)
//   Bytes / SimTime              -> BytesPerSecond (observed rate)
//   BytesPerSecond * SimTime     -> Bytes          (data moved in a window)
//   BytesPerSecond ± BytesPerSecond, * scalar, / scalar, / (ratio)
//
// plus ordered comparisons within each type. There is NO implicit conversion
// to or from raw arithmetic types: constructors are explicit and the escape
// hatches are named accessors (`.seconds()`, `.count()`, `.bps()`), so mixing
// units is a compile error (see tests/negative_compile/). All three wrappers
// are trivially copyable with exactly the representation the old typedefs had
// (one double / one int64_t), so codegen — and every same-seed event digest —
// is unchanged by the promotion.
//
// Helpers keep call sites readable (`monoutil::MiB(512)` is a Bytes,
// `monoutil::Millis(5)` a SimTime, `monoutil::Gbps(1)` a BytesPerSecond) and
// avoid magic-number unit mistakes.
#ifndef MONOTASKS_SRC_COMMON_UNITS_H_
#define MONOTASKS_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <ostream>

namespace monoutil {

class Bytes;
class BytesPerSecond;

// Simulated time in seconds: both points on the virtual clock and spans
// between them (a single-type design; subtraction of two points yields a span
// of the same type). Construction from a raw double is explicit — write
// Seconds(x) / Millis(x) at call sites; read back with .seconds().
class SimTime {
 public:
  constexpr SimTime() = default;
  explicit constexpr SimTime(double seconds) : seconds_(seconds) {}

  static constexpr SimTime Seconds(double s) { return SimTime(s); }

  // The value in seconds — the only way out of the type.
  constexpr double seconds() const { return seconds_; }

  // Additive algebra (time ± time -> time).
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.seconds_ + b.seconds_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.seconds_ - b.seconds_);
  }
  constexpr SimTime operator-() const { return SimTime(-seconds_); }
  constexpr SimTime& operator+=(SimTime o) {
    seconds_ += o.seconds_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    seconds_ -= o.seconds_;
    return *this;
  }

  // Dimensionless scaling.
  friend constexpr SimTime operator*(SimTime t, double s) {
    return SimTime(t.seconds_ * s);
  }
  friend constexpr SimTime operator*(double s, SimTime t) {
    return SimTime(s * t.seconds_);
  }
  friend constexpr SimTime operator/(SimTime t, double s) {
    return SimTime(t.seconds_ / s);
  }
  constexpr SimTime& operator*=(double s) {
    seconds_ *= s;
    return *this;
  }
  constexpr SimTime& operator/=(double s) {
    seconds_ /= s;
    return *this;
  }

  // Ratio of two times is dimensionless.
  friend constexpr double operator/(SimTime a, SimTime b) {
    return a.seconds_ / b.seconds_;
  }

  // Ordered comparisons.
  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.seconds_ == b.seconds_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.seconds_ != b.seconds_;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) {
    return a.seconds_ < b.seconds_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.seconds_ <= b.seconds_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) {
    return a.seconds_ > b.seconds_;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.seconds_ >= b.seconds_;
  }

 private:
  double seconds_ = 0.0;
};

// An exact data size in bytes. Construction from a raw integer is explicit —
// write Bytes(n) / KiB(n) / MiB(n) at call sites; read back with .count().
// Scalar multiply/divide truncate toward zero, exactly like the int64_t
// arithmetic this type replaces.
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(int64_t count) : count_(count) {}

  // The value as a byte count — the only way out of the type.
  constexpr int64_t count() const { return count_; }

  // Additive algebra (bytes ± bytes -> bytes).
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.count_ + b.count_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.count_ - b.count_);
  }
  constexpr Bytes operator-() const { return Bytes(-count_); }
  constexpr Bytes& operator+=(Bytes o) {
    count_ += o.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    count_ -= o.count_;
    return *this;
  }

  // Dimensionless scaling (truncating, as int64 arithmetic always was).
  friend constexpr Bytes operator*(Bytes b, int64_t s) {
    return Bytes(b.count_ * s);
  }
  friend constexpr Bytes operator*(int64_t s, Bytes b) {
    return Bytes(s * b.count_);
  }
  friend constexpr Bytes operator*(Bytes b, double s) {
    return Bytes(static_cast<int64_t>(static_cast<double>(b.count_) * s));
  }
  friend constexpr Bytes operator*(double s, Bytes b) { return b * s; }
  friend constexpr Bytes operator/(Bytes b, int64_t s) {
    return Bytes(b.count_ / s);
  }
  friend constexpr Bytes operator%(Bytes a, Bytes b) {
    return Bytes(a.count_ % b.count_);
  }

  // Ratio of two sizes is dimensionless (exact division call sites that want
  // int64 semantics use .count() explicitly).
  friend constexpr double operator/(Bytes a, Bytes b) {
    return static_cast<double>(a.count_) / static_cast<double>(b.count_);
  }

  // Cross-type algebra (defined after BytesPerSecond below):
  //   Bytes / BytesPerSecond -> SimTime, Bytes / SimTime -> BytesPerSecond.

  // Ordered comparisons.
  friend constexpr bool operator==(Bytes a, Bytes b) {
    return a.count_ == b.count_;
  }
  friend constexpr bool operator!=(Bytes a, Bytes b) {
    return a.count_ != b.count_;
  }
  friend constexpr bool operator<(Bytes a, Bytes b) {
    return a.count_ < b.count_;
  }
  friend constexpr bool operator<=(Bytes a, Bytes b) {
    return a.count_ <= b.count_;
  }
  friend constexpr bool operator>(Bytes a, Bytes b) {
    return a.count_ > b.count_;
  }
  friend constexpr bool operator>=(Bytes a, Bytes b) {
    return a.count_ >= b.count_;
  }

 private:
  int64_t count_ = 0;
};

// A throughput in bytes per second. Construction from a raw double is
// explicit — write MiBps(x) / Gbps(x) at call sites; read back with .bps().
class BytesPerSecond {
 public:
  constexpr BytesPerSecond() = default;
  explicit constexpr BytesPerSecond(double bps) : bps_(bps) {}

  // The value in bytes per second — the only way out of the type.
  constexpr double bps() const { return bps_; }

  // Additive algebra (rate ± rate -> rate).
  friend constexpr BytesPerSecond operator+(BytesPerSecond a, BytesPerSecond b) {
    return BytesPerSecond(a.bps_ + b.bps_);
  }
  friend constexpr BytesPerSecond operator-(BytesPerSecond a, BytesPerSecond b) {
    return BytesPerSecond(a.bps_ - b.bps_);
  }
  constexpr BytesPerSecond operator-() const { return BytesPerSecond(-bps_); }
  constexpr BytesPerSecond& operator+=(BytesPerSecond o) {
    bps_ += o.bps_;
    return *this;
  }
  constexpr BytesPerSecond& operator-=(BytesPerSecond o) {
    bps_ -= o.bps_;
    return *this;
  }

  // Dimensionless scaling.
  friend constexpr BytesPerSecond operator*(BytesPerSecond r, double s) {
    return BytesPerSecond(r.bps_ * s);
  }
  friend constexpr BytesPerSecond operator*(double s, BytesPerSecond r) {
    return BytesPerSecond(s * r.bps_);
  }
  friend constexpr BytesPerSecond operator/(BytesPerSecond r, double s) {
    return BytesPerSecond(r.bps_ / s);
  }
  constexpr BytesPerSecond& operator*=(double s) {
    bps_ *= s;
    return *this;
  }
  constexpr BytesPerSecond& operator/=(double s) {
    bps_ /= s;
    return *this;
  }

  // Ratio of two rates is dimensionless.
  friend constexpr double operator/(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ / b.bps_;
  }

  // Ordered comparisons.
  friend constexpr bool operator==(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ == b.bps_;
  }
  friend constexpr bool operator!=(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ != b.bps_;
  }
  friend constexpr bool operator<(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ < b.bps_;
  }
  friend constexpr bool operator<=(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ <= b.bps_;
  }
  friend constexpr bool operator>(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ > b.bps_;
  }
  friend constexpr bool operator>=(BytesPerSecond a, BytesPerSecond b) {
    return a.bps_ >= b.bps_;
  }

 private:
  double bps_ = 0.0;
};

// Cross-type algebra: the three conversions the §6 model is built from.

// Transfer time: how long `b` takes at rate `r`.
constexpr SimTime operator/(Bytes b, BytesPerSecond r) {
  return SimTime(static_cast<double>(b.count()) / r.bps());
}

// Observed rate: `b` moved over span `t`.
constexpr BytesPerSecond operator/(Bytes b, SimTime t) {
  return BytesPerSecond(static_cast<double>(b.count()) / t.seconds());
}

// Data moved: rate `r` sustained for span `t` (truncated to whole bytes; call
// sites needing the fractional value multiply the accessors directly).
constexpr Bytes operator*(BytesPerSecond r, SimTime t) {
  return Bytes(static_cast<int64_t>(r.bps() * t.seconds()));
}
constexpr Bytes operator*(SimTime t, BytesPerSecond r) { return r * t; }

// Raw scale factors (dimensionless counts, used by the constructors below and
// by formatting code).
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

// Convenience constructors for byte quantities.
constexpr Bytes KiB(double n) {
  return Bytes(static_cast<int64_t>(n * static_cast<double>(kKiB)));
}
constexpr Bytes MiB(double n) {
  return Bytes(static_cast<int64_t>(n * static_cast<double>(kMiB)));
}
constexpr Bytes GiB(double n) {
  return Bytes(static_cast<int64_t>(n * static_cast<double>(kGiB)));
}

// Convenience constructors for time quantities (seconds are the base unit).
constexpr SimTime Seconds(double n) { return SimTime(n); }
constexpr SimTime Millis(double n) { return SimTime(n / 1e3); }
constexpr SimTime Micros(double n) { return SimTime(n / 1e6); }
constexpr SimTime Minutes(double n) { return SimTime(n * 60.0); }

// Converts a byte count to fractional mebibytes/gibibytes (for reporting).
constexpr double ToMiB(Bytes b) {
  return static_cast<double>(b.count()) / static_cast<double>(kMiB);
}
constexpr double ToGiB(Bytes b) {
  return static_cast<double>(b.count()) / static_cast<double>(kGiB);
}

// Convenience constructors for throughputs.
constexpr BytesPerSecond MiBps(double n) {
  return BytesPerSecond(n * static_cast<double>(kMiB));
}
constexpr BytesPerSecond GiBps(double n) {
  return BytesPerSecond(n * static_cast<double>(kGiB));
}

// Converts a link rate in gigabits per second to bytes per second.
constexpr BytesPerSecond Gbps(double n) {
  return BytesPerSecond(n * 1e9 / 8.0);
}

// Stream output (test failure messages, debugging): value plus unit.
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.seconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << b.count() << "B";
}
inline std::ostream& operator<<(std::ostream& os, BytesPerSecond r) {
  return os << r.bps() << "B/s";
}

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_UNITS_H_
