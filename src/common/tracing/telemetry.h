// Always-on aggregation telemetry: mergeable histograms and time-weighted
// gauges, complementing the opt-in Tracer.
//
// The Tracer answers "what happened when" and costs a span per event, so it is
// gated behind MONO_TRACE. At millions of monotasks per run that is
// unaffordable to leave on, yet the scale directions (sharded simcore,
// multi-tenant p99 benches, straggler scenarios) need percentile-grade
// latency visibility in *every* run. This header is the always-on layer:
//
//   * LatencyHistogram — log-bucketed counts with lock-free Add (one relaxed
//     fetch_add on an atomic bucket) and quantile queries with bounded
//     relative error (~1/kSubBuckets per bucket). Histograms merge by
//     element-wise addition, so per-shard or per-run histograms fold into one.
//   * TimeWeightedGauge — a step function integrated over time (queue depth,
//     dirty bytes, active flows): Set(t, v) accrues value*dt, and the
//     time-weighted mean over the observed window falls out of the integral.
//
// Both are hosted in the extended MetricsRegistry (metrics_registry.h) next to
// the counters; instrumentation sites resolve once and Add forever:
//
//   static LatencyHistogram* wait =
//       MetricsRegistry::Global().Histogram("mono.cpu.queue_wait_seconds");
//   wait->Add(now - enqueued);
//
// TelemetryEnabled() is the kill switch the overhead gate flips: hook sites
// are expected to stay under 5% of the simcore bench with it on (CI enforces
// this via tools/perf_gate.py --pair), and recording never schedules events,
// so same-seed event digests are identical with telemetry on or off
// (tests/telemetry_test.cc pins both).
//
// TelemetrySnapshot is the single JSON schema every bench and the mono_stat
// tool publish: counters, histogram summaries (count/sum/quantiles), and gauge
// summaries (time-weighted mean/last/max), sorted by name so diffs are stable.
#ifndef MONOTASKS_SRC_COMMON_TRACING_TELEMETRY_H_
#define MONOTASKS_SRC_COMMON_TRACING_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace monotrace {

// Global enable for the always-on layer. Defaults to on; the overhead bench
// variants and tests flip it. Hook sites built on the registry check it once
// per record via TelemetryEnabled() (a relaxed load, same cost discipline as
// Tracer::current()).
bool TelemetryEnabled();
void SetTelemetryEnabled(bool enabled);

// Log-bucketed latency/size histogram.
//
// Values are bucketed by binary exponent with kSubBuckets linear sub-buckets
// per octave, covering [kMinValue, kMaxValue); values outside clamp to the
// first/last bucket. With 8 sub-buckets the worst-case relative quantile error
// is ~12.5%, comfortably inside the 5-percentile-grade the benches report.
// All counts are relaxed atomics: Add is wait-free and thread-safe, totals are
// eventually consistent under concurrent readers (exact once writers quiesce,
// which is when snapshots are taken).
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 8;       // Linear steps per octave.
  static constexpr int kOctaves = 64;         // 2^-30 .. 2^34 around 1.0.
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;
  static constexpr double kMinValue = 9.313225746154785e-10;  // 2^-30.

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one sample. Negative and NaN samples clamp to the lowest bucket
  // (they indicate a caller bug but must never corrupt the histogram).
  void Add(double value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    // Sum as a CAS loop like MetricCounter: quantiles come from the buckets,
    // the exact sum feeds mean and totals.
    double observed = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(observed, observed + value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Total recorded samples.
  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  // The q-quantile (q in [0,1]) estimated from the bucket midpoints; 0 when
  // empty. Relative error bounded by the sub-bucket width.
  double Quantile(double q) const;

  // Upper edge of the highest / lowest non-empty bucket (0 when empty):
  // cheap max/min witnesses for summaries.
  double MaxEstimate() const;
  double MinEstimate() const;

  // Element-wise adds `other` into this histogram (the merge operation:
  // per-shard histograms fold into a cluster-wide one).
  void Merge(const LatencyHistogram& other);

  // Zeroes every bucket (tests; mirrors MetricCounter::Reset).
  void Reset();

  // Maps a value to its bucket. Exposed for tests pinning the bucketing.
  static int BucketIndex(double value);
  // Representative (geometric midpoint) value of a bucket.
  static double BucketValue(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<double> sum_{0.0};
};

// A step function integrated over time. Not lock-free: updates take a tiny
// spinlock, because (last_time, last_value, integral) must move together.
// Gauge updates are per-state-change (queue length moved, a flow started) —
// orders of magnitude rarer than histogram Adds — so contention is nil.
class TimeWeightedGauge {
 public:
  TimeWeightedGauge() = default;
  TimeWeightedGauge(const TimeWeightedGauge&) = delete;
  TimeWeightedGauge& operator=(const TimeWeightedGauge&) = delete;

  // Installs value `v` as of time `t` (seconds; virtual or wall, the caller's
  // timeline). Accrues the previous value over [last_t, t]. Time moving
  // backwards (a new Simulation restarting at 0) re-bases the window instead
  // of accruing a negative span.
  void Set(double t, double v);

  double last() const;
  double max() const;
  // Integral of the gauge over the observed window [first_t, last_t].
  double integral() const;
  // integral / (last_t - first_t); `last` when the window is empty.
  double TimeWeightedMean() const;

  void Reset();

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  double last_v_ = 0.0;
  double max_v_ = 0.0;
  double integral_ = 0.0;
  bool started_ = false;
};

// ---- Snapshot schema ----

struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

struct GaugeSummary {
  double last = 0.0;
  double mean = 0.0;  // Time-weighted.
  double max = 0.0;
  double integral = 0.0;
};

// The single JSON-serializable schema all benches and tools publish. Maps are
// name-sorted so emitted JSON is diff-stable.
struct TelemetrySnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, HistogramSummary> histograms;
  std::map<std::string, GaugeSummary> gauges;

  // {"counters": {...}, "histograms": {...}, "gauges": {...}} with summaries
  // inlined. `indent` spaces prefix every line (for embedding in bench JSON).
  std::string ToJson(int indent = 0) const;
};

// True if the MONO_TELEMETRY environment variable names an output path
// (non-empty, not "0").
bool TelemetrySinkRequestedByEnv();

// When MONO_TELEMETRY=<path> is set, registers (once) an atexit hook that
// writes MetricsRegistry::Global()'s TelemetrySnapshot JSON to <path>.
// Process-lifetime like InstallEnvTracerOnce: a bench's runs all fold into
// one snapshot, which is exactly what mergeable aggregation is for.
void InstallEnvTelemetrySinkOnce();

}  // namespace monotrace

#endif  // MONOTASKS_SRC_COMMON_TRACING_TELEMETRY_H_
