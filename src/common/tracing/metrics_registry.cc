#include "src/common/tracing/metrics_registry.h"

namespace monotrace {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter* MetricsRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

double MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value();
}

std::map<std::string, double> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter.value());
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
}

}  // namespace monotrace
