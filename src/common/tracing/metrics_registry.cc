#include "src/common/tracing/metrics_registry.h"

namespace monotrace {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter* MetricsRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

LatencyHistogram* MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

TimeWeightedGauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

double MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.value();
}

std::map<std::string, double> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter.value());
  }
  return out;
}

TelemetrySnapshot MetricsRegistry::TakeTelemetrySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter.value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary s;
    s.count = histogram.count();
    if (s.count > 0) {
      s.sum = histogram.sum();
      s.mean = s.sum / static_cast<double>(s.count);
      s.min = histogram.MinEstimate();
      s.p50 = histogram.Quantile(0.50);
      s.p90 = histogram.Quantile(0.90);
      s.p99 = histogram.Quantile(0.99);
      s.p999 = histogram.Quantile(0.999);
      s.max = histogram.MaxEstimate();
    }
    snap.histograms.emplace(name, s);
  }
  for (const auto& [name, gauge] : gauges_) {
    GaugeSummary s;
    s.last = gauge.last();
    s.mean = gauge.TimeWeightedMean();
    s.max = gauge.max();
    s.integral = gauge.integral();
    snap.gauges.emplace(name, s);
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.Reset();
  }
}

}  // namespace monotrace
