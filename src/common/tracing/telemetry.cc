#include "src/common/tracing/telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/common/tracing/metrics_registry.h"

namespace monotrace {

namespace {

std::atomic<bool> g_telemetry_enabled{true};

// Spinlock guard for TimeWeightedGauge: updates are a handful of double ops,
// far below the cost of parking a thread.
class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

}  // namespace

bool TelemetryEnabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void SetTelemetryEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- LatencyHistogram ----

int LatencyHistogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // Also catches NaN and negatives.
  int exp = 0;
  // frac in [0.5, 1): value = frac * 2^exp.
  const double frac = std::frexp(value, &exp);
  // Octave 0 holds [2^-30, 2^-29): frexp gives exp = -29 for that range.
  int octave = exp + 29;
  if (octave < 0) return 0;
  if (octave >= kOctaves) return kNumBuckets - 1;
  // Linear sub-bucket within the octave: frac-0.5 spans [0, 0.5).
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return octave * kSubBuckets + sub;
}

double LatencyHistogram::BucketValue(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  // Bucket spans [lo, hi) within its octave; report the midpoint.
  const double base = std::ldexp(1.0, octave - 30);  // 2^(octave-30).
  const double lo = base * (1.0 + static_cast<double>(sub) / kSubBuckets);
  const double hi = base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  return 0.5 * (lo + hi);
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the q-th sample, 1-based, clamped to [1, total].
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketValue(i);
  }
  return BucketValue(kNumBuckets - 1);
}

double LatencyHistogram::MaxEstimate() const {
  for (int i = kNumBuckets - 1; i >= 0; --i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      return BucketValue(i);
    }
  }
  return 0.0;
}

double LatencyHistogram::MinEstimate() const {
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      return BucketValue(i);
    }
  }
  return 0.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const double s = other.sum();
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + s,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---- TimeWeightedGauge ----

void TimeWeightedGauge::Set(double t, double v) {
  SpinGuard guard(lock_);
  if (!started_ || t < last_t_) {
    // First observation, or a fresh timeline (a new Simulation restarting at
    // zero): re-base the window rather than accrue a negative span.
    started_ = true;
    first_t_ = t;
    integral_ = 0.0;
    max_v_ = v;
  } else {
    integral_ += last_v_ * (t - last_t_);
  }
  last_t_ = t;
  last_v_ = v;
  if (v > max_v_) max_v_ = v;
}

double TimeWeightedGauge::last() const {
  SpinGuard guard(lock_);
  return last_v_;
}

double TimeWeightedGauge::max() const {
  SpinGuard guard(lock_);
  return max_v_;
}

double TimeWeightedGauge::integral() const {
  SpinGuard guard(lock_);
  return integral_;
}

double TimeWeightedGauge::TimeWeightedMean() const {
  SpinGuard guard(lock_);
  const double window = last_t_ - first_t_;
  return window > 0.0 ? integral_ / window : last_v_;
}

void TimeWeightedGauge::Reset() {
  SpinGuard guard(lock_);
  started_ = false;
  first_t_ = last_t_ = last_v_ = max_v_ = integral_ = 0.0;
}

// ---- TelemetrySnapshot ----

namespace {

void AppendIndent(std::string* out, int n) { out->append(n, ' '); }

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isnan(v)) {
    out->append("null");  // JSON has no NaN.
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string TelemetrySnapshot::ToJson(int indent) const {
  std::string out;
  const int i0 = indent, i1 = indent + 2, i2 = indent + 4;
  AppendIndent(&out, i0);
  out += "{\n";

  AppendIndent(&out, i1);
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendIndent(&out, i2);
    AppendQuoted(&out, name);
    out += ": ";
    AppendDouble(&out, value);
  }
  if (!first) {
    out += "\n";
    AppendIndent(&out, i1);
  }
  out += "},\n";

  AppendIndent(&out, i1);
  out += "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendIndent(&out, i2);
    AppendQuoted(&out, name);
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %llu, \"sum\": %.9g, \"mean\": %.9g, "
                  "\"min\": %.9g, \"p50\": %.9g, \"p90\": %.9g, "
                  "\"p99\": %.9g, \"p999\": %.9g, \"max\": %.9g}",
                  static_cast<unsigned long long>(h.count), h.sum, h.mean,
                  h.min, h.p50, h.p90, h.p99, h.p999, h.max);
    out += buf;
  }
  if (!first) {
    out += "\n";
    AppendIndent(&out, i1);
  }
  out += "},\n";

  AppendIndent(&out, i1);
  out += "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    AppendIndent(&out, i2);
    AppendQuoted(&out, name);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  ": {\"last\": %.9g, \"mean\": %.9g, \"max\": %.9g, "
                  "\"integral\": %.9g}",
                  g.last, g.mean, g.max, g.integral);
    out += buf;
  }
  if (!first) {
    out += "\n";
    AppendIndent(&out, i1);
  }
  out += "}\n";

  AppendIndent(&out, i0);
  out += "}";
  return out;
}

// ---- MONO_TELEMETRY env sink ----

bool TelemetrySinkRequestedByEnv() {
  const char* path = std::getenv("MONO_TELEMETRY");
  return path != nullptr && path[0] != '\0' &&
         !(path[0] == '0' && path[1] == '\0');
}

namespace {

void WriteEnvTelemetrySnapshot() {
  const char* path = std::getenv("MONO_TELEMETRY");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", path);
    return;
  }
  const std::string json =
      MetricsRegistry::Global().TakeTelemetrySnapshot().ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

void InstallEnvTelemetrySinkOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (TelemetrySinkRequestedByEnv()) {
      std::atexit(WriteEnvTelemetrySnapshot);
    }
  });
}

}  // namespace monotrace
