// Tracer: a low-overhead span/counter recorder emitting Chrome Trace Event
// Format JSON (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// The tracer mirrors the SimAudit gating pattern (src/simcore/audit.h): hook
// sites do
//
//   if (monotrace::Tracer* tr = monotrace::Tracer::current()) { tr->...; }
//
// so instrumented code pays one branch (an atomic load) per hook when tracing
// is off — no allocation, no lock. Tests and examples install a tracer with
// `ScopedTracer`; benches opt in by setting MONO_TRACE=<path> (see
// InstallEnvTracerOnce), which accumulates every simulation run in the process
// into one trace file written at exit.
//
// Model. A trace is a forest of *processes* (Perfetto top-level groups), each
// holding *tracks* (rows). Three event kinds land on tracks:
//
//   * spans    — named time intervals. Strictly-nested callers use
//                BeginSpan/EndSpan ('B'/'E' events); concurrent work uses
//                CompleteOnLane, which records a finished interval ('X' event)
//                and automatically parks it on the first free lane of a lane
//                group ("cpu#0", "cpu#1", ...) so overlapping spans never
//                share a row. Lane allocation requires end-time-ordered
//                emission, which retroactive instrumentation (record when the
//                work finishes) gives for free.
//   * counters — named step functions ('C' events): queue lengths, device
//                utilization, dirty bytes.
//   * instants — point markers ('i' events): audit violations.
//
// Spans carry an optional `stage` argument naming the stage execution that
// issued the work ("mono:map"); the trace report (src/model/trace_report.h)
// groups resource blame by it. Work with no stage tag — e.g. buffer-cache
// flushes — is precisely the "time the framework never issued" that §3 of the
// paper says multitask frameworks cannot attribute.
//
// Timestamps are double seconds: virtual time from Simulation::now() in the
// simulator, wall-clock seconds from Tracer::WallNow() in the threaded engine.
// They share a trace file only in the trivial sense; mixing both in one run is
// not meaningful and not done.
//
// Thread safety: all mutation takes an internal mutex (the threaded engine
// traces from scheduler threads); current() is a relaxed atomic load.
#ifndef MONOTASKS_SRC_COMMON_TRACING_TRACER_H_
#define MONOTASKS_SRC_COMMON_TRACING_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace monotrace {

// Identifies a (process, track) row; obtained from Tracer::Track().
struct TrackRef {
  int pid = -1;
  int tid = -1;
  bool valid() const { return pid >= 0; }
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The installed tracer, or nullptr when tracing is off.
  static Tracer* current() { return current_.load(std::memory_order_relaxed); }

  // Registers (or looks up) a process group by name; returns its pid.
  int Process(const std::string& name);

  // Registers (or looks up) a named track within a process group.
  TrackRef Track(const std::string& process, const std::string& track);

  // Strictly-nested span pair on a fixed track ('B'/'E'). `stage`, when
  // non-empty, is attached as the span's stage-attribution argument.
  void BeginSpan(const TrackRef& track, const std::string& name, const char* category,
                 double ts, const std::string& stage = std::string());
  void EndSpan(const TrackRef& track, double ts);

  // A finished interval on a fixed track ('X').
  void CompleteSpan(const TrackRef& track, const std::string& name, const char* category,
                    double start, double end, const std::string& stage = std::string());

  // A finished interval parked on an automatically-chosen lane of the group
  // `lane_base` within `process`: the first lane whose previous span ended at
  // or before `start`, else a new lane "<lane_base>#k". Correct as long as
  // spans in one lane group are emitted in nondecreasing end-time order —
  // which retroactive (completion-time) instrumentation guarantees.
  void CompleteOnLane(const std::string& process, const std::string& lane_base,
                      const std::string& name, const char* category, double start,
                      double end, const std::string& stage = std::string());

  // A sample of the named step-function counter ('C').
  void Counter(const std::string& process, const std::string& series, double ts,
               double value);

  // A point marker ('i'), e.g. an audit violation.
  void Instant(const std::string& process, const std::string& track,
               const std::string& name, double ts,
               const std::string& detail = std::string());

  // Wall-clock seconds since this tracer was created — the timestamp source for
  // the threaded engine, playing the role Simulation::now() plays in the
  // simulator.
  double WallNow() const;

  // Number of events recorded so far (excluding the metadata events synthesized
  // at serialization time).
  std::size_t event_count() const;

  // Serializes the trace: {"traceEvents":[...]} with metadata (process/track
  // names), timestamps in microseconds, events stably sorted by timestamp.
  std::string ToJson() const;

  // ToJson() to a file. Returns false (and logs) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  friend class ScopedTracer;
  friend Tracer* InstallEnvTracerOnce();

  struct Event {
    char phase;         // 'B', 'E', 'X', 'C', 'i'
    int pid = 0;
    int tid = 0;
    double ts = 0.0;    // seconds
    double dur = 0.0;   // seconds, 'X' only
    std::string name;
    const char* category = nullptr;  // static strings only
    std::string stage;  // args.stage for spans; args.detail for instants
    double value = 0.0;  // 'C' only
  };

  struct Lane {
    int tid = 0;
    double last_end = 0.0;
  };

  int ProcessLocked(const std::string& name);
  TrackRef TrackLocked(int pid, const std::string& track);

  static std::atomic<Tracer*> current_;

  mutable std::mutex mu_;
  std::vector<std::string> process_names_;
  std::unordered_map<std::string, int> process_ids_;
  // Track names per process, indexed by tid; tid 0 of every process is an
  // unnamed default row used by counters.
  std::vector<std::vector<std::string>> track_names_;
  std::vector<std::unordered_map<std::string, int>> track_ids_;
  std::map<std::pair<int, std::string>, std::vector<Lane>> lanes_;
  std::vector<Event> events_;
  std::chrono::steady_clock::time_point wall_epoch_;
};

// Installs a Tracer for the enclosing scope. Nests like ScopedAudit: the
// innermost tracer receives events and the previous one is restored on
// destruction.
class ScopedTracer {
 public:
  ScopedTracer();
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  Tracer tracer_;
  Tracer* previous_;
};

// True if the MONO_TRACE environment variable names an output path (non-empty,
// not "0").
bool TraceRequestedByEnv();

// When MONO_TRACE is set, installs a process-lifetime tracer on first call and
// registers an atexit hook that writes it to the MONO_TRACE path; later calls
// (and calls with MONO_TRACE unset) are no-ops. Returns the installed tracer or
// nullptr. Process-lifetime on purpose: a bench that runs the Spark baseline
// and the monotasks executor back to back lands both timelines in one file.
Tracer* InstallEnvTracerOnce();

}  // namespace monotrace

#endif  // MONOTASKS_SRC_COMMON_TRACING_TRACER_H_
