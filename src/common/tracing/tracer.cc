#include "src/common/tracing/tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace monotrace {
namespace {

// JSON string escaping for names and stage labels.
void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

// Timestamps: seconds -> microseconds with sub-microsecond precision kept.
void AppendMicros(std::string& out, double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  out += buf;
}

}  // namespace

std::atomic<Tracer*> Tracer::current_{nullptr};

Tracer::Tracer() : wall_epoch_(std::chrono::steady_clock::now()) {}

int Tracer::ProcessLocked(const std::string& name) {
  auto it = process_ids_.find(name);
  if (it != process_ids_.end()) {
    return it->second;
  }
  const int pid = static_cast<int>(process_names_.size());
  process_ids_.emplace(name, pid);
  process_names_.push_back(name);
  // tid 0 is the process's unnamed default row (counters live there).
  track_names_.push_back({std::string()});
  track_ids_.push_back({});
  return pid;
}

TrackRef Tracer::TrackLocked(int pid, const std::string& track) {
  auto& ids = track_ids_[static_cast<std::size_t>(pid)];
  auto it = ids.find(track);
  if (it != ids.end()) {
    return TrackRef{pid, it->second};
  }
  auto& names = track_names_[static_cast<std::size_t>(pid)];
  const int tid = static_cast<int>(names.size());
  ids.emplace(track, tid);
  names.push_back(track);
  return TrackRef{pid, tid};
}

int Tracer::Process(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return ProcessLocked(name);
}

TrackRef Tracer::Track(const std::string& process, const std::string& track) {
  std::lock_guard<std::mutex> lock(mu_);
  return TrackLocked(ProcessLocked(process), track);
}

void Tracer::BeginSpan(const TrackRef& track, const std::string& name,
                       const char* category, double ts, const std::string& stage) {
  MONO_CHECK(track.valid());
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'B', track.pid, track.tid, ts, 0.0, name, category, stage, 0.0});
}

void Tracer::EndSpan(const TrackRef& track, double ts) {
  MONO_CHECK(track.valid());
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{'E', track.pid, track.tid, ts, 0.0, std::string(), nullptr, std::string(), 0.0});
}

void Tracer::CompleteSpan(const TrackRef& track, const std::string& name,
                          const char* category, double start, double end,
                          const std::string& stage) {
  MONO_CHECK(track.valid());
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'X', track.pid, track.tid, start, std::max(0.0, end - start),
                          name, category, stage, 0.0});
}

void Tracer::CompleteOnLane(const std::string& process, const std::string& lane_base,
                            const std::string& name, const char* category, double start,
                            double end, const std::string& stage) {
  std::lock_guard<std::mutex> lock(mu_);
  const int pid = ProcessLocked(process);
  auto& lanes = lanes_[{pid, lane_base}];
  Lane* lane = nullptr;
  for (auto& candidate : lanes) {
    // A hair of slack absorbs floating-point jitter between a span's recorded
    // end and the next span's start at the same simulated instant.
    if (candidate.last_end <= start + 1e-12) {
      lane = &candidate;
      break;
    }
  }
  if (lane == nullptr) {
    std::ostringstream track_name;
    track_name << lane_base << "#" << lanes.size();
    const TrackRef track = TrackLocked(pid, track_name.str());
    lanes.push_back(Lane{track.tid, 0.0});
    lane = &lanes.back();
  }
  lane->last_end = std::max(lane->last_end, end);
  events_.push_back(Event{'X', pid, lane->tid, start, std::max(0.0, end - start), name,
                          category, stage, 0.0});
}

void Tracer::Counter(const std::string& process, const std::string& series, double ts,
                     double value) {
  std::lock_guard<std::mutex> lock(mu_);
  const int pid = ProcessLocked(process);
  events_.push_back(Event{'C', pid, 0, ts, 0.0, series, nullptr, std::string(), value});
}

void Tracer::Instant(const std::string& process, const std::string& track,
                     const std::string& name, double ts, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  const TrackRef ref = TrackLocked(ProcessLocked(process), track);
  events_.push_back(Event{'i', ref.pid, ref.tid, ts, 0.0, name, nullptr, detail, 0.0});
}

double Tracer::WallNow() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_epoch_)
      .count();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Stable sort by timestamp: viewers require nondecreasing ts, and stability
  // keeps each 'B' ahead of its zero-length 'E' recorded at the same instant.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  std::string out;
  out.reserve(128 + 96 * (ordered.size() + process_names_.size()));
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };

  // Metadata: process and track names.
  for (std::size_t pid = 0; pid < process_names_.size(); ++pid) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    AppendEscaped(out, process_names_[pid]);
    out += "\"}}";
    const auto& tracks = track_names_[pid];
    for (std::size_t tid = 1; tid < tracks.size(); ++tid) {
      comma();
      out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"name\":\"";
      AppendEscaped(out, tracks[tid]);
      out += "\"}}";
    }
  }

  for (const Event* e : ordered) {
    comma();
    out += "{\"ph\":\"";
    out += e->phase;
    out += "\",\"pid\":";
    out += std::to_string(e->pid);
    out += ",\"tid\":";
    out += std::to_string(e->tid);
    out += ",\"ts\":";
    AppendMicros(out, e->ts);
    if (e->phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(out, e->dur);
    }
    if (e->phase != 'E') {
      out += ",\"name\":\"";
      AppendEscaped(out, e->name);
      out += "\"";
    }
    if (e->category != nullptr) {
      out += ",\"cat\":\"";
      AppendEscaped(out, e->category);
      out += "\"";
    }
    if (e->phase == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (e->phase == 'C') {
      out += ",\"args\":{\"value\":";
      AppendNumber(out, e->value);
      out += "}";
    } else if (e->phase == 'i') {
      out += ",\"args\":{\"detail\":\"";
      AppendEscaped(out, e->stage);
      out += "\"}";
    } else if (!e->stage.empty()) {
      out += ",\"args\":{\"stage\":\"";
      AppendEscaped(out, e->stage);
      out += "\"}";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool Tracer::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    MONO_LOG(kError) << "Tracer: cannot open trace output " << path;
    return false;
  }
  file << ToJson();
  file.flush();
  if (!file) {
    MONO_LOG(kError) << "Tracer: short write to " << path;
    return false;
  }
  return true;
}

ScopedTracer::ScopedTracer() : previous_(Tracer::current()) {
  Tracer::current_.store(&tracer_, std::memory_order_relaxed);
}

ScopedTracer::~ScopedTracer() {
  Tracer::current_.store(previous_, std::memory_order_relaxed);
}

bool TraceRequestedByEnv() {
  const char* value = std::getenv("MONO_TRACE");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

namespace {
Tracer* env_tracer = nullptr;
std::string* env_trace_path = nullptr;
}  // namespace

Tracer* InstallEnvTracerOnce() {
  static bool attempted = false;
  if (attempted) {
    return env_tracer;
  }
  attempted = true;
  if (!TraceRequestedByEnv()) {
    return nullptr;
  }
  // Intentionally leaked: the atexit hook below is the last user.
  env_tracer = new Tracer();
  env_trace_path = new std::string(std::getenv("MONO_TRACE"));
  Tracer::current_.store(env_tracer, std::memory_order_relaxed);
  std::atexit([] {
    if (env_tracer->WriteFile(*env_trace_path)) {
      MONO_LOG(kInfo) << "Tracer: wrote " << env_tracer->event_count() << " events to "
                     << *env_trace_path << " (open in https://ui.perfetto.dev)";
    }
  });
  return env_tracer;
}

}  // namespace monotrace
