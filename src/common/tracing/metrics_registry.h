// MetricsRegistry: process-global named counters, histograms, and gauges.
//
// Where the Tracer records *when* things happened, the registry keeps cheap
// always-on aggregates — events fired, tasks completed, bytes flushed, and
// (via telemetry.h) latency distributions and time-weighted occupancy — that
// examples and benches can publish without enabling tracing. Counters are
// doubles (byte and second totals overflow int64 semantics awkwardly) and
// additions are lock-free CAS loops, so instrumented code may add from the
// threaded engine's scheduler threads; histogram Adds are single relaxed
// fetch_adds (see telemetry.h).
//
// Usage at an instrumentation site (resolve once, add many times):
//
//   MetricCounter* flushed = MetricsRegistry::Global().Get("cache.bytes_flushed");
//   LatencyHistogram* wait =
//       MetricsRegistry::Global().Histogram("mono.cpu.queue_wait_seconds");
//   ...
//   flushed->Add(chunk_bytes);
//   wait->Add(now - enqueued);
//
// Get()/Histogram()/Gauge() return stable pointers for the life of the
// registry; instruments are never removed. ResetForTest() zeroes (not removes)
// everything so tests can assert deltas without coordinating names.
#ifndef MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_
#define MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "src/common/tracing/telemetry.h"

namespace monotrace {

class MetricCounter {
 public:
  MetricCounter() = default;
  MetricCounter(const MetricCounter&) = delete;
  MetricCounter& operator=(const MetricCounter&) = delete;

  void Add(double delta) {
    double observed = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(observed, observed + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the counter named `name`, creating it at zero on first use. The
  // pointer stays valid for the registry's lifetime.
  MetricCounter* Get(const std::string& name);

  // Returns the histogram / gauge named `name`, creating it empty on first
  // use. Pointers stay valid for the registry's lifetime, so instrumentation
  // sites may cache them in function-local statics.
  LatencyHistogram* Histogram(const std::string& name);
  TimeWeightedGauge* Gauge(const std::string& name);

  // Current value of `name` (0 if never created).
  double Value(const std::string& name) const;

  // Name -> value snapshot of the counters only, sorted by name.
  std::map<std::string, double> Snapshot() const;

  // Full snapshot: counters plus histogram and gauge summaries. The single
  // schema benches and examples/mono_stat publish (telemetry.h).
  TelemetrySnapshot TakeTelemetrySnapshot() const;

  // Zeroes every instrument (registrations survive, cached pointers stay
  // valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so returned pointers survive later inserts.
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, TimeWeightedGauge> gauges_;
};

}  // namespace monotrace

#endif  // MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_
