// MetricsRegistry: process-global named monotonic counters.
//
// Where the Tracer records *when* things happened, the registry keeps cheap
// always-on totals — events fired, tasks completed, bytes flushed — that
// examples and benches can print without enabling tracing. Counters are
// doubles (byte and second totals overflow int64 semantics awkwardly) and
// additions are lock-free CAS loops, so instrumented code may add from the
// threaded engine's scheduler threads.
//
// Usage at an instrumentation site (resolve once, add many times):
//
//   MetricCounter* flushed = MetricsRegistry::Global().Get("cache.bytes_flushed");
//   ...
//   flushed->Add(chunk_bytes);
//
// Get() returns a stable pointer for the life of the registry; counters are
// never removed. ResetForTest() zeroes (not removes) every counter so tests
// can assert deltas without coordinating names.
#ifndef MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_
#define MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>

namespace monotrace {

class MetricCounter {
 public:
  MetricCounter() = default;
  MetricCounter(const MetricCounter&) = delete;
  MetricCounter& operator=(const MetricCounter&) = delete;

  void Add(double delta) {
    double observed = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(observed, observed + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the counter named `name`, creating it at zero on first use. The
  // pointer stays valid for the registry's lifetime.
  MetricCounter* Get(const std::string& name);

  // Current value of `name` (0 if never created).
  double Value(const std::string& name) const;

  // Name -> value snapshot, sorted by name.
  std::map<std::string, double> Snapshot() const;

  // Zeroes every counter (registrations survive, cached pointers stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so Get()'s returned pointers survive later inserts.
  std::map<std::string, MetricCounter> counters_;
};

}  // namespace monotrace

#endif  // MONOTASKS_SRC_COMMON_TRACING_METRICS_REGISTRY_H_
