// Plain-text table and CSV emission for benchmark harnesses.
//
// Every bench binary prints the rows/series of one figure from the paper. TablePrinter
// renders an aligned text table to stdout (and optionally CSV) so output is directly
// comparable with the paper's plots.
#ifndef MONOTASKS_SRC_COMMON_TABLE_H_
#define MONOTASKS_SRC_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace monoutil {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  // Renders an aligned, pipe-separated table.
  void Print(std::ostream& out) const;

  // Renders comma-separated values (no alignment padding).
  void PrintCsv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits = 2);

// Formats a time with an adaptive unit (ms / s / min).
std::string FormatSeconds(SimTime time);

// Formats a byte count with an adaptive unit (B / KiB / MiB / GiB).
std::string FormatBytes(Bytes bytes);

// Formats a throughput with an adaptive unit (B/s / KiB/s / MiB/s / GiB/s).
std::string FormatRate(BytesPerSecond rate);

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_TABLE_H_
