#include "src/common/rate_limiter.h"

#include <algorithm>
#include <thread>

#include "src/common/check.h"

namespace monoutil {

RateLimiter::RateLimiter(BytesPerSecond bytes_per_second, Bytes burst_bytes)
    : rate_(bytes_per_second),
      burst_(burst_bytes > Bytes(0)
                 ? burst_bytes
                 : std::max(Bytes(1),
                            Bytes(static_cast<int64_t>(bytes_per_second.bps() / 100)))),
      last_fill_(Clock::now()) {
  MONO_CHECK(bytes_per_second > BytesPerSecond(0));
}

void RateLimiter::set_time_scale(double factor) {
  MONO_CHECK(factor > 0);
  const monoutil::MutexLock lock(mutex_);
  time_scale_ = factor;
}

void RateLimiter::Consume(Bytes n) {
  MONO_CHECK(n >= Bytes(0));
  double remaining = static_cast<double>(n.count());
  while (remaining > 0) {
    double wait_seconds = 0.0;
    {
      const monoutil::MutexLock lock(mutex_);
      const auto now = Clock::now();
      const double elapsed = std::chrono::duration<double>(now - last_fill_).count();
      last_fill_ = now;
      available_ = std::min(static_cast<double>(burst_.count()),
                            available_ + elapsed * rate_.bps() * time_scale_);
      const double take = std::min(available_, remaining);
      available_ -= take;
      remaining -= take;
      if (remaining > 0) {
        wait_seconds = remaining / (rate_.bps() * time_scale_);
        // Sleep in bounded slices so rate changes take effect promptly.
        wait_seconds = std::min(wait_seconds, 0.01);
      }
    }
    if (wait_seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_seconds));
    }
  }
}

}  // namespace monoutil
