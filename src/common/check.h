// Lightweight invariant checking.
//
// MONO_CHECK aborts with a message when a precondition or invariant is violated. These
// stay enabled in release builds: the simulators and schedulers in this repository rely
// on internal invariants (non-negative times, dependency counts reaching zero exactly
// once) whose silent violation would produce quietly-wrong experiment results.
#ifndef MONOTASKS_SRC_COMMON_CHECK_H_
#define MONOTASKS_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace monoutil {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "MONO_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace monoutil

#define MONO_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::monoutil::CheckFailed(#cond, __FILE__, __LINE__, "");         \
    }                                                                 \
  } while (0)

#define MONO_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::monoutil::CheckFailed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                 \
  } while (0)

#endif  // MONOTASKS_SRC_COMMON_CHECK_H_
