// Lightweight invariant checking.
//
// MONO_CHECK aborts with a message when a precondition or invariant is violated. These
// stay enabled in release builds: the simulators and schedulers in this repository rely
// on internal invariants (non-negative times, dependency counts reaching zero exactly
// once) whose silent violation would produce quietly-wrong experiment results.
#ifndef MONOTASKS_SRC_COMMON_CHECK_H_
#define MONOTASKS_SRC_COMMON_CHECK_H_

namespace monoutil {

// Called after the failure message prints but before abort(). The flight
// recorder (simcore) installs one so a crash dumps the recent event trail.
// The hook is consumed before it runs (so a hook that itself CHECK-fails
// cannot recurse) and must not return control flow past the failure — abort
// still follows.
using CheckFailureHook = void (*)();

// Installs `hook`, returning the previous one (nullptr if none). Pass nullptr
// to uninstall.
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace monoutil

#define MONO_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::monoutil::CheckFailed(#cond, __FILE__, __LINE__, "");         \
    }                                                                 \
  } while (0)

#define MONO_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::monoutil::CheckFailed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                 \
  } while (0)

#endif  // MONOTASKS_SRC_COMMON_CHECK_H_
