#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/units.h"

namespace monoutil {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MONO_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MONO_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      out << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatSeconds(SimTime time) {
  const double seconds = time.seconds();
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 180.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FormatBytes(Bytes bytes) {
  const double value = static_cast<double>(bytes.count());
  char buf[64];
  const double kib = static_cast<double>(kKiB);
  const double mib = static_cast<double>(kMiB);
  const double gib = static_cast<double>(kGiB);
  if (value < kib) {
    std::snprintf(buf, sizeof(buf), "%.0f B", value);
  } else if (value < mib) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", value / kib);
  } else if (value < gib) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", value / mib);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", value / gib);
  }
  return buf;
}

std::string FormatRate(BytesPerSecond rate) {
  const double value = rate.bps();
  char buf[64];
  const double kib = static_cast<double>(kKiB);
  const double mib = static_cast<double>(kMiB);
  const double gib = static_cast<double>(kGiB);
  if (value < kib) {
    std::snprintf(buf, sizeof(buf), "%.0f B/s", value);
  } else if (value < mib) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB/s", value / kib);
  } else if (value < gib) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB/s", value / mib);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s", value / gib);
  }
  return buf;
}

}  // namespace monoutil
