// Annotated mutex primitives for the threaded execution engine.
//
// Thin wrappers over std::mutex / std::condition_variable whose entry points
// carry the Clang thread-safety attributes (thread_annotations.h), so that
// GUARDED_BY / REQUIRES contracts on engine state are actually enforced by
// -Wthread-safety: libstdc++'s own mutex types are unannotated and invisible
// to the analysis. The wrappers add no overhead — every method is an inline
// forward to the standard primitive.
#ifndef MONOTASKS_SRC_COMMON_MUTEX_H_
#define MONOTASKS_SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace monoutil {

class CondVar;

// An annotated std::mutex. Prefer MutexLock over manual Lock()/Unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII guard: acquires the mutex for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with Mutex. Wait() atomically releases the mutex
// while blocked and reacquires it before returning, exactly like
// std::condition_variable — callers hold the mutex across the call, which is
// what REQUIRES documents. Use an explicit `while (!condition) cv.Wait(mu);`
// loop rather than a predicate overload: the loop body is visible to the
// thread-safety analysis, a predicate lambda is not.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait, then
    // release the unique_lock without unlocking: ownership stays with the
    // caller's MutexLock, whose scope the annotations track.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_MUTEX_H_
