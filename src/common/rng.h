// Deterministic pseudo-random number generation.
//
// All randomness in the simulators flows through Rng so that experiments are exactly
// reproducible from a seed. The generator is SplitMix64-seeded xoshiro256**, which is
// fast, has a tiny state, and is identical on every platform (unlike std::mt19937's
// distribution implementations, whose outputs vary across standard libraries).
#ifndef MONOTASKS_SRC_COMMON_RNG_H_
#define MONOTASKS_SRC_COMMON_RNG_H_

#include <cstdint>

namespace monoutil {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  // Resets the generator state from `seed`.
  void Reseed(uint64_t seed);

  // Returns a uniformly distributed 64-bit value.
  uint64_t NextU64();

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  // Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  // Returns an integer uniformly distributed in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Returns a sample from an exponential distribution with the given mean (> 0).
  double Exponential(double mean);

  // Returns a sample from a normal distribution (Box-Muller; one value per call).
  double Normal(double mean, double stddev);

  // Returns a child generator whose stream is independent of this one. Used to give
  // each simulated machine / workload its own stream so adding one consumer does not
  // perturb the draws seen by others.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_RNG_H_
