// Clang thread-safety analysis annotations (-Wthread-safety).
//
// These macros attach Clang's capability attributes to mutexes, guarded data
// members, and locking functions so the locking contracts of the threaded
// execution engine are checked at compile time: accessing a GUARDED_BY member
// without holding its mutex, or calling a REQUIRES function unlocked, is a
// compiler warning (an error under the `tsan`/CI configurations, which pass
// -Werror=thread-safety). On compilers without the attributes (GCC) every macro
// expands to nothing, so the annotations are free documentation.
//
// libstdc++'s std::mutex carries no capability annotations, so the analysis
// cannot see its lock()/unlock() calls; use monoutil::Mutex / MutexLock /
// CondVar (src/common/mutex.h), which wrap std::mutex with annotated entry
// points.
#ifndef MONOTASKS_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define MONOTASKS_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define MONO_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define MONO_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

// Marks a class as a lockable capability (e.g. a mutex type).
#define CAPABILITY(x) MONO_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// Marks an RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_CAPABILITY MONO_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data member may only be read or written while holding the given capability.
#define GUARDED_BY(x) MONO_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) MONO_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Function may only be called while holding the given capabilities.
#define REQUIRES(...) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

// Function may only be called while holding the capabilities shared.
#define REQUIRES_SHARED(...) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

// Function releases the capability (which must be held on entry).
#define RELEASE(...) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

// Function attempts to acquire the capability; first argument is the return
// value that signals success.
#define TRY_ACQUIRE(...) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called while holding the given capabilities (deadlock
// prevention for non-reentrant mutexes).
#define EXCLUDES(...) MONO_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Asserts at runtime that the capability is held (and tells the analysis so).
#define ASSERT_CAPABILITY(x) \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) MONO_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Turns the analysis off for one function (constructors of objects handed to
// other threads, intentional lock-free reads, etc.). Use sparingly, with a
// comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  MONO_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // MONOTASKS_SRC_COMMON_THREAD_ANNOTATIONS_H_
