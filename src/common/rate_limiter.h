// Wall-clock token-bucket rate limiter.
//
// The threaded execution engine uses RateLimiter to emulate physical device throughput
// (disk bandwidth, NIC bandwidth) on real threads: a device thread calls Consume(bytes)
// and is blocked until the bucket admits that many bytes at the configured rate.
#ifndef MONOTASKS_SRC_COMMON_RATE_LIMITER_H_
#define MONOTASKS_SRC_COMMON_RATE_LIMITER_H_

#include <chrono>
#include <cstdint>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace monoutil {

class RateLimiter {
 public:
  // `bytes_per_second` must be > 0. `burst_bytes` bounds how far the bucket can run
  // ahead; it defaults to 1/100th of a second of budget.
  explicit RateLimiter(BytesPerSecond bytes_per_second, Bytes burst_bytes = Bytes(0));

  // Blocks the calling thread until `n` bytes are admitted. Thread-safe.
  void Consume(Bytes n) EXCLUDES(mutex_);

  // Returns the configured rate.
  BytesPerSecond rate() const { return rate_; }

  // Scales simulated device time: with factor f, a transfer that would take t seconds
  // of device time blocks the caller for t/f wall seconds. Used by tests and examples
  // to run "10 seconds of disk" in milliseconds while preserving relative timing.
  void set_time_scale(double factor) EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  const BytesPerSecond rate_;
  const Bytes burst_;

  Mutex mutex_;
  double time_scale_ GUARDED_BY(mutex_) = 1.0;
  double available_ GUARDED_BY(mutex_) = 0.0;  // Bytes currently in the bucket.
  Clock::time_point last_fill_ GUARDED_BY(mutex_);
};

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_RATE_LIMITER_H_
