// Wall-clock token-bucket rate limiter.
//
// The threaded execution engine uses RateLimiter to emulate physical device throughput
// (disk bandwidth, NIC bandwidth) on real threads: a device thread calls Consume(bytes)
// and is blocked until the bucket admits that many bytes at the configured rate.
#ifndef MONOTASKS_SRC_COMMON_RATE_LIMITER_H_
#define MONOTASKS_SRC_COMMON_RATE_LIMITER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "src/common/units.h"

namespace monoutil {

class RateLimiter {
 public:
  // `bytes_per_second` must be > 0. `burst_bytes` bounds how far the bucket can run
  // ahead; it defaults to 1/100th of a second of budget.
  explicit RateLimiter(BytesPerSecond bytes_per_second, Bytes burst_bytes = 0);

  // Blocks the calling thread until `n` bytes are admitted. Thread-safe.
  void Consume(Bytes n);

  // Returns the configured rate.
  BytesPerSecond rate() const { return rate_; }

  // Scales simulated device time: with factor f, a transfer that would take t seconds
  // of device time blocks the caller for t/f wall seconds. Used by tests and examples
  // to run "10 seconds of disk" in milliseconds while preserving relative timing.
  void set_time_scale(double factor);

 private:
  using Clock = std::chrono::steady_clock;

  BytesPerSecond rate_;
  Bytes burst_;
  double time_scale_ = 1.0;

  std::mutex mutex_;
  double available_ = 0.0;      // Bytes currently in the bucket.
  Clock::time_point last_fill_;
};

}  // namespace monoutil

#endif  // MONOTASKS_SRC_COMMON_RATE_LIMITER_H_
