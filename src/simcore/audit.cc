#include "src/simcore/audit.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/domain.h"
#include "src/common/tracing/tracer.h"

namespace monosim {

SimAudit* SimAudit::current_ = nullptr;

void SimAudit::Report(monoutil::SimTime time, std::string source, std::string invariant,
                      std::string detail) {
  // Land the violation on the trace timeline where it occurred, so a broken
  // invariant can be eyeballed next to the spans that triggered it.
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    tracer->Instant("audit", source, invariant, time.seconds(), detail);
  }
  violations_.push_back(
      AuditViolation{time, std::move(source), std::move(invariant), std::move(detail)});
}

void SimAudit::Expect(bool ok, monoutil::SimTime time, const char* source,
                      const char* invariant, const char* detail) {
  ++checks_;
  if (!ok) {
    Report(time, source, invariant, detail);
  }
}

std::string SimAudit::Summary() const {
  if (violations_.empty()) {
    std::ostringstream out;
    out << "audit clean (" << checks_ << " checks)";
    return out.str();
  }
  // Cap the listing: one broken invariant typically re-fires at every subsequent
  // boundary, and the first few occurrences carry all the signal.
  constexpr size_t kMaxListed = 10;
  std::ostringstream out;
  out << violations_.size() << " invariant violation(s) in " << checks_ << " checks:";
  for (size_t i = 0; i < violations_.size() && i < kMaxListed; ++i) {
    const AuditViolation& v = violations_[i];
    out << "\n  [t=" << v.time << "] " << v.source << ": " << v.invariant << " — "
        << v.detail;
  }
  if (violations_.size() > kMaxListed) {
    out << "\n  ... and " << (violations_.size() - kMaxListed) << " more";
  }
  return out.str();
}

ScopedAudit::ScopedAudit(Mode mode) : mode_(mode), previous_(SimAudit::current_) {
  SimAudit::current_ = &audit_;
  // Installing an audit also arms the ownership-domain cross-check
  // (src/common/domain.h): the same tests that verify conservation invariants
  // verify that no component is mutated from outside its domain.
  monodomain::EnableDomainChecks();
}

ScopedAudit::~ScopedAudit() {
  monodomain::DisableDomainChecks();
  SimAudit::current_ = previous_;
  if (mode_ == kFatal && !audit_.ok()) {
    std::fprintf(stderr, "SimAudit: %s\n", audit_.Summary().c_str());
    MONO_CHECK_MSG(audit_.ok(), "simulation invariant audit failed (see above)");
  }
}

bool AuditRequestedByEnv() {
  const char* value = std::getenv("MONO_SIM_AUDIT");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

EnvScopedAudit::EnvScopedAudit() {
  if (AuditRequestedByEnv()) {
    audit_.emplace(ScopedAudit::kFatal);
  }
}

}  // namespace monosim
