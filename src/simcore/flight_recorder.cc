#include "src/simcore/flight_recorder.h"

#include <cinttypes>

namespace monosim {

std::vector<FlightRecorder::Entry> FlightRecorder::Trail() const {
  std::vector<Entry> out;
  const uint64_t retained = total_ < kCapacity ? total_ : kCapacity;
  out.reserve(retained);
  for (uint64_t i = total_ - retained; i < total_; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

void FlightRecorder::Dump(std::FILE* out) const {
  const std::vector<Entry> trail = Trail();
  std::fprintf(out,
               "flight recorder: last %zu of %" PRIu64
               " fired events (oldest first)\n",
               trail.size(), total_);
  for (const Entry& e : trail) {
    std::fprintf(out, "  t=%-14.9g seq=%-8" PRIu64 " digest=%016" PRIx64 " %s\n",
                 e.when.seconds(), e.seq, e.digest, e.tag);
  }
}

}  // namespace monosim
