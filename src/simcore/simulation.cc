#include "src/simcore/simulation.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/domain.h"

namespace monosim {

namespace {

SimDigestTrail*& CurrentTrailSlot() {
  static SimDigestTrail* current = nullptr;
  return current;
}

// The simulation currently inside Step(), so the MONO_CHECK failure hook can
// dump its flight recorder. A plain stack via `previous` capture handles the
// (rare) nested case of one simulation's event running another simulation.
thread_local Simulation* g_stepping_sim = nullptr;

void DumpSteppingSimOnCheckFailure() {
  if (g_stepping_sim != nullptr) {
    g_stepping_sim->DumpFlightRecorder(stderr);
  }
}

void InstallCheckFailureDumpOnce() {
  static const bool installed = [] {
    monoutil::SetCheckFailureHook(&DumpSteppingSimOnCheckFailure);
    return true;
  }();
  (void)installed;
}

}  // namespace

SimDigestTrail::SimDigestTrail() : previous_(CurrentTrailSlot()) {
  CurrentTrailSlot() = this;
}

SimDigestTrail::~SimDigestTrail() { CurrentTrailSlot() = previous_; }

SimDigestTrail* SimDigestTrail::current() { return CurrentTrailSlot(); }

void EventHandle::Cancel() {
  Simulation* sim = owner_ != nullptr ? *owner_ : nullptr;
  if (sim != nullptr && record_ != nullptr) {
    sim->CancelRecord(record_, generation_);
  }
}

bool EventHandle::pending() const {
  // The record pointer is only dereferenceable while the Simulation (and with
  // it the slab pool) is alive; a matching generation means the record still
  // belongs to this handle's event (neither fired nor recycled).
  Simulation* sim = owner_ != nullptr ? *owner_ : nullptr;
  return sim != nullptr && record_ != nullptr &&
         record_->generation == generation_ && !record_->cancelled;
}

Simulation::Simulation() : self_slot_(std::make_shared<Simulation*>(this)) {
  // The hook is global and idempotent; installing from the constructor keeps
  // it out of the per-event path.
  InstallCheckFailureDumpOnce();
}

Simulation::~Simulation() {
  if (SimDigestTrail* trail = SimDigestTrail::current()) {
    trail->Record(fired_, digest_);
  }
  // Outstanding handles become inert: their Cancel()/pending() must not touch
  // the slab pool once it is freed below.
  *self_slot_ = nullptr;
}

void Simulation::DumpFlightRecorder(std::FILE* out) const {
  std::fprintf(out, "simulation: t=%.9g fired=%llu digest=%016llx\n", now_.seconds(),
               static_cast<unsigned long long>(fired_),
               static_cast<unsigned long long>(digest_));
  recorder_.Dump(out);
}

void Simulation::GrowRecordPool() {
  auto slab = std::make_unique<EventRecord[]>(kRecordsPerSlab);
  // Thread the fresh records onto the free list back to front, so the pool
  // hands them out in slab order (stable, address-independent behaviour).
  for (size_t i = kRecordsPerSlab; i-- > 0;) {
    slab[i].next_free = free_records_;
    free_records_ = &slab[i];
  }
  slabs_.push_back(std::move(slab));
}

EventRecord* Simulation::AllocRecord() {
  if (free_records_ == nullptr) {
    GrowRecordPool();
  }
  EventRecord* record = free_records_;
  free_records_ = record->next_free;
  record->next_free = nullptr;
  return record;
}

void Simulation::FreeRecord(EventRecord* record) {
  record->fn.reset();  // Returns any arena block; captured state dies here.
  record->cancelled = false;
  record->tag = "";
  // Invalidate every outstanding handle to the event this record carried.
  ++record->generation;
  record->next_free = free_records_;
  free_records_ = record;
}

void Simulation::CancelRecord(EventRecord* record, uint64_t generation) {
  if (record->generation != generation || record->cancelled) {
    return;  // Already fired/recycled, or already a tombstone.
  }
  record->cancelled = true;
  record->fn.reset();  // Release captured state promptly.
  ++tombstones_;
}

EventHandle Simulation::ScheduleRecord(SimTime when, InlineCallback&& fn,
                                       const char* tag) {
  MONO_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  MONO_CHECK(static_cast<bool>(fn));
  MONO_CHECK(tag != nullptr);
  EventRecord* record = AllocRecord();
  record->fn = std::move(fn);
  record->tag = tag;
  const uint64_t seq = next_seq_++;
  if (BeforeLimit(when, seq)) {
    // Due before the current batch's boundary: joins the near heap so pops
    // interleave it correctly with the sorted batch.
    near_heap_.push_back(QueueEntry{when, seq, record});
    SiftUp(near_heap_.size() - 1);
  } else {
    // The common case — at or beyond the boundary: one unsorted append, no
    // sift. Ordering is recovered in batch when the entry migrates near.
    far_.push_back(QueueEntry{when, seq, record});
  }
  MaybeCompact();
  return EventHandle(self_slot_, record, record->generation);
}

void Simulation::MixDigest(SimTime when, uint64_t seq, const char* tag) {
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  const auto mix_bytes = [this](const unsigned char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      digest_ ^= data[i];
      digest_ *= kFnvPrime;
    }
  };
  static_assert(sizeof(SimTime) == sizeof(uint64_t));
  const double when_seconds = when.seconds();
  uint64_t when_bits = 0;
  std::memcpy(&when_bits, &when_seconds, sizeof(when_bits));
  mix_bytes(reinterpret_cast<const unsigned char*>(&when_bits), sizeof(when_bits));
  mix_bytes(reinterpret_cast<const unsigned char*>(&seq), sizeof(seq));
  mix_bytes(reinterpret_cast<const unsigned char*>(tag), std::strlen(tag));
}

void Simulation::SiftUp(size_t index) {
  const QueueEntry item = near_heap_[index];
  while (index > 0) {
    const size_t parent = (index - 1) / 4;
    if (!Earlier(item, near_heap_[parent])) {
      break;
    }
    near_heap_[index] = near_heap_[parent];
    index = parent;
  }
  near_heap_[index] = item;
}

void Simulation::SiftDown(size_t index) {
  const size_t size = near_heap_.size();
  const QueueEntry item = near_heap_[index];
  for (;;) {
    const size_t first_child = 4 * index + 1;
    if (first_child >= size) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, size);
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (Earlier(near_heap_[child], near_heap_[best])) {
        best = child;
      }
    }
    if (!Earlier(near_heap_[best], item)) {
      break;
    }
    near_heap_[index] = near_heap_[best];
    index = best;
  }
  near_heap_[index] = item;
}

void Simulation::BuildHeap() {
  if (near_heap_.size() < 2) {
    return;
  }
  // Floyd: sift down every parent, deepest first. The last parent of a 4-ary
  // heap of n entries sits at (n - 2) / 4.
  for (size_t index = (near_heap_.size() - 2) / 4 + 1; index-- > 0;) {
    SiftDown(index);
  }
}

void Simulation::MigrateFar() {
  size_t batch = std::max(kMinMigrateBatch, far_.size() / kMigrateShrinkDivisor);
  if (batch >= far_.size()) {
    // Taking everything: the boundary moves just past the latest migrated
    // key, so follow-up schedules at already-seen times stay near (they must
    // interleave with this batch) while genuinely later ones land in far_.
    batch = far_.size();
    SimTime max_when = far_.front().when;
    for (const QueueEntry& entry : far_) {
      max_when = std::max(max_when, entry.when);
    }
    limit_when_ = max_when;
    limit_seq_ = std::numeric_limits<uint64_t>::max();
  } else {
    // Partition so far_[0..batch) are the batch earliest entries; far_[batch]
    // is then the earliest remaining and becomes the new boundary. Keys are
    // unique, so the selected set is deterministic.
    const auto nth = far_.begin() + static_cast<ptrdiff_t>(batch);
    std::nth_element(far_.begin(), nth, far_.end(), Earlier);
    limit_when_ = nth->when;
    limit_seq_ = nth->seq;
  }
  for (size_t i = 0; i < batch; ++i) {
    if (far_[i].record->cancelled) {
      // Tombstones die here instead of riding along to be skipped at pop.
      MONO_CHECK(tombstones_ > 0);
      --tombstones_;
      FreeRecord(far_[i].record);
    } else {
      near_sorted_.push_back(far_[i]);
    }
  }
  far_.erase(far_.begin(), far_.begin() + static_cast<ptrdiff_t>(batch));
  // Descending, so pops take the earliest entry from the back in O(1). One
  // sequential sort per batch replaces a cache-missing sift per event.
  std::sort(near_sorted_.begin(), near_sorted_.end(),
            [](const QueueEntry& a, const QueueEntry& b) { return Earlier(b, a); });
}

Simulation::QueueEntry* Simulation::FrontRaw() {
  for (;;) {
    if (!near_sorted_.empty()) {
      QueueEntry* front = &near_sorted_.back();
      if (!near_heap_.empty() && Earlier(near_heap_.front(), *front)) {
        front = &near_heap_.front();
      }
      return front;
    }
    if (!near_heap_.empty()) {
      return &near_heap_.front();
    }
    if (far_.empty()) {
      return nullptr;
    }
    MigrateFar();
  }
}

Simulation::QueueEntry* Simulation::FrontLive() {
  for (;;) {
    QueueEntry* front = FrontRaw();
    if (front == nullptr || !front->record->cancelled) {
      return front;
    }
    PopTop();
  }
}

Simulation::QueueEntry Simulation::PopTop() {
  QueueEntry top;
  if (!near_sorted_.empty() &&
      (near_heap_.empty() || Earlier(near_sorted_.back(), near_heap_.front()))) {
    top = near_sorted_.back();
    near_sorted_.pop_back();
  } else {
    top = near_heap_.front();
    near_heap_.front() = near_heap_.back();
    near_heap_.pop_back();
    if (!near_heap_.empty()) {
      SiftDown(0);
    }
  }
  if (top.record->cancelled) {
    MONO_CHECK(tombstones_ > 0);
    --tombstones_;
    FreeRecord(top.record);
    top.record = nullptr;
  }
  return top;
}

void Simulation::MaybeCompact() {
  if (tombstones_ == 0) {
    return;  // The common case on the schedule fast path: one load, no sums.
  }
  const size_t total = near_sorted_.size() + near_heap_.size() + far_.size();
  if (!compaction_enabled_ || total < kCompactionMinQueueSize ||
      tombstones_ * 2 <= total) {
    return;
  }
  const auto filter = [this](std::vector<QueueEntry>& entries) {
    size_t out = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].record->cancelled) {
        FreeRecord(entries[i].record);
      } else {
        entries[out++] = entries[i];
      }
    }
    entries.resize(out);
  };
  filter(near_sorted_);  // Stable, so the descending order survives.
  filter(near_heap_);
  filter(far_);
  tombstones_ = 0;
  BuildHeap();
}

bool Simulation::NoLiveEventAtNow() {
  QueueEntry* front = FrontLive();
  return front == nullptr || front->when > now_;
}

void Simulation::RunEpochTasks() {
  // Epoch tasks, like fired events, run domain-neutral: the scheduled-callback
  // boundary is the sanctioned ownership handoff, so whatever domain scheduled
  // the work must not leak into its execution.
  MONO_DOMAIN_NEUTRAL();
  if (!epoch_run_buffer_.empty()) {
    // Re-entered (an epoch task drove this simulation again, e.g. via a nested
    // Run()): fall back to a one-off batch rather than clobbering the buffer.
    std::vector<InlineCallback> tasks = std::move(epoch_tasks_);
    epoch_tasks_.clear();
    for (InlineCallback& task : tasks) {
      task();
    }
    return;
  }
  // Swap the batch into the scratch buffer: callbacks may register follow-up
  // epoch work, which then belongs to the (possibly re-opened) epoch and runs
  // on the next flush. Both vectors keep their capacity across epochs.
  std::swap(epoch_tasks_, epoch_run_buffer_);
  for (InlineCallback& task : epoch_run_buffer_) {
    task();
  }
  epoch_run_buffer_.clear();
}

bool Simulation::Step() {
  for (;;) {
    // Epoch work registered outside any event (e.g. flows started before Run())
    // must flush before the clock can advance past the current time.
    if (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
      continue;
    }
    if (FrontLive() == nullptr) {
      return false;
    }
    QueueEntry entry = PopTop();
    EventRecord* record = entry.record;
    const char* tag = record->tag;
    if (SimAudit* audit = SimAudit::current()) {
      audit->ExpectLazy(entry.when >= last_fired_time_, now_, "simulation",
                        "clock-monotonic", [&] {
                          std::ostringstream detail;
                          detail << "event at t=" << entry.when << " fired after t="
                                 << last_fired_time_;
                          return detail.str();
                        });
    }
    now_ = entry.when;
    last_fired_time_ = entry.when;
    ++fired_;
    MixDigest(entry.when, entry.seq, tag);
    if (recorder_.enabled()) {
      recorder_.Record(entry.when, entry.seq, tag, digest_);
    }
    // Expose this simulation to the MONO_CHECK failure hook while its event
    // (and the epoch/audit work below) runs.
    Simulation* previous_stepping = g_stepping_sim;
    g_stepping_sim = this;
    // Move the callback out and recycle the record before invoking: captured
    // state dies when fn returns, outstanding handles to this event see a
    // bumped generation (fired), and the callback may immediately reuse the
    // record for a follow-up schedule.
    InlineCallback fn = std::move(record->fn);
    FreeRecord(record);
    {
      // A fired event is the sanctioned cross-domain channel: the callback
      // runs domain-neutral and may enter any component's domain.
      MONO_DOMAIN_NEUTRAL();
      fn();
    }
    // Epoch boundary: once no live event shares the current timestamp, flush the
    // deferred epoch work (which may schedule same-time events, re-opening the
    // epoch) and then sweep the audits. Mid-epoch, both wait: batched components
    // are transiently stale until their end-of-epoch flush runs.
    while (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
    }
    if (NoLiveEventAtNow()) {
      RunAuditChecks(AuditPhase::kEventBoundary);
    }
    g_stepping_sim = previous_stepping;
    return true;
  }
}

void Simulation::Run() {
  while (Step()) {
  }
  RunAuditChecks(AuditPhase::kDrain);
}

void Simulation::RunUntil(SimTime deadline) {
  MONO_CHECK(deadline >= now_);
  for (;;) {
    // Epoch work pending at the current time must flush before the clock moves
    // (Step handles the post-fire case; this covers work registered outside any
    // event when the next live event lies beyond the deadline).
    if (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
      continue;
    }
    // Discard tombstones regardless of their virtual time — a remainder of
    // cancelled entries past the deadline must still count as drained — but never
    // fire a live event beyond the deadline.
    QueueEntry* front = FrontLive();
    if (front == nullptr || front->when > deadline) {
      break;
    }
    Step();
  }
  now_ = deadline;
  if (queue_size() == 0) {
    RunAuditChecks(AuditPhase::kDrain);
  }
}

void Simulation::RegisterAuditable(const Auditable* auditable) {
  MONO_CHECK(auditable != nullptr);
  auditables_.push_back(auditable);
}

void Simulation::UnregisterAuditable(const Auditable* auditable) {
  auditables_.erase(std::remove(auditables_.begin(), auditables_.end(), auditable),
                    auditables_.end());
}

void Simulation::RunAuditChecks(AuditPhase phase) {
  SimAudit* audit = SimAudit::current();
  if (audit == nullptr) {
    return;
  }
  if (audit != last_audit_) {
    // A different (nested or fresh) audit installed since the last sweep.
    last_audit_ = audit;
    audit_violations_seen_ = 0;
  }
  for (const Auditable* auditable : auditables_) {
    auditable->AuditInvariants(*audit, phase);
  }
  // A new violation — found by this sweep or reported inline since the last
  // one — dumps the flight recorder once per simulation: in report mode the
  // process keeps running and the schedule context would otherwise be lost by
  // the time the owner inspects the audit.
  if (audit->violations().size() > audit_violations_seen_ && !recorder_dumped_ &&
      recorder_.enabled()) {
    recorder_dumped_ = true;
    std::fprintf(stderr, "audit violation — dumping flight recorder:\n");
    DumpFlightRecorder(stderr);
  }
  audit_violations_seen_ = audit->violations().size();
}

}  // namespace monosim
