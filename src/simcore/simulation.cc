#include "src/simcore/simulation.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace monosim {

namespace {

SimDigestTrail*& CurrentTrailSlot() {
  static SimDigestTrail* current = nullptr;
  return current;
}

// The simulation currently inside Step(), so the MONO_CHECK failure hook can
// dump its flight recorder. A plain stack via `previous` capture handles the
// (rare) nested case of one simulation's event running another simulation.
thread_local Simulation* g_stepping_sim = nullptr;

void DumpSteppingSimOnCheckFailure() {
  if (g_stepping_sim != nullptr) {
    g_stepping_sim->DumpFlightRecorder(stderr);
  }
}

void InstallCheckFailureDumpOnce() {
  static const bool installed = [] {
    monoutil::SetCheckFailureHook(&DumpSteppingSimOnCheckFailure);
    return true;
  }();
  (void)installed;
}

}  // namespace

SimDigestTrail::SimDigestTrail() : previous_(CurrentTrailSlot()) {
  CurrentTrailSlot() = this;
}

SimDigestTrail::~SimDigestTrail() { CurrentTrailSlot() = previous_; }

SimDigestTrail* SimDigestTrail::current() { return CurrentTrailSlot(); }

void EventHandle::Cancel() {
  if (record_ != nullptr && !record_->fired && !record_->cancelled) {
    record_->cancelled = true;
    record_->fn = nullptr;  // Release captured state promptly.
    if (record_->queued_tombstones != nullptr) {
      ++*record_->queued_tombstones;
    }
  }
}

bool EventHandle::pending() const {
  return record_ != nullptr && !record_->fired && !record_->cancelled;
}

Simulation::Simulation() {
  // The hook is global and idempotent; installing from the constructor keeps
  // it out of the per-event path.
  InstallCheckFailureDumpOnce();
}

Simulation::~Simulation() {
  if (SimDigestTrail* trail = SimDigestTrail::current()) {
    trail->Record(fired_, digest_);
  }
}

void Simulation::DumpFlightRecorder(std::FILE* out) const {
  std::fprintf(out, "simulation: t=%.9g fired=%llu digest=%016llx\n", now_,
               static_cast<unsigned long long>(fired_),
               static_cast<unsigned long long>(digest_));
  recorder_.Dump(out);
}

EventHandle Simulation::ScheduleAt(SimTime when, std::function<void()> fn,
                                   const char* tag) {
  MONO_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  MONO_CHECK(fn != nullptr);
  MONO_CHECK(tag != nullptr);
  auto record = std::make_shared<EventHandle::Record>();
  record->fn = std::move(fn);
  record->queued_tombstones = tombstones_;
  queue_.push_back(QueueEntry{when, next_seq_++, tag, record});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  MaybeCompact();
  return EventHandle(std::move(record));
}

EventHandle Simulation::ScheduleAfter(SimTime delay, std::function<void()> fn,
                                      const char* tag) {
  MONO_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn), tag);
}

void Simulation::MixDigest(SimTime when, uint64_t seq, const char* tag) {
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  const auto mix_bytes = [this](const unsigned char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      digest_ ^= data[i];
      digest_ *= kFnvPrime;
    }
  };
  static_assert(sizeof(SimTime) == sizeof(uint64_t));
  uint64_t when_bits = 0;
  std::memcpy(&when_bits, &when, sizeof(when_bits));
  mix_bytes(reinterpret_cast<const unsigned char*>(&when_bits), sizeof(when_bits));
  mix_bytes(reinterpret_cast<const unsigned char*>(&seq), sizeof(seq));
  mix_bytes(reinterpret_cast<const unsigned char*>(tag), std::strlen(tag));
}

Simulation::QueueEntry Simulation::PopTop() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  QueueEntry entry = std::move(queue_.back());
  queue_.pop_back();
  if (entry.record->cancelled) {
    MONO_CHECK(*tombstones_ > 0);
    --*tombstones_;
  }
  return entry;
}

void Simulation::MaybeCompact() {
  if (!compaction_enabled_ || queue_.size() < kCompactionMinQueueSize ||
      *tombstones_ * 2 <= queue_.size()) {
    return;
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [](const QueueEntry& e) { return e.record->cancelled; }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  *tombstones_ = 0;
}

void Simulation::DropLeadingTombstones() {
  while (!queue_.empty() && queue_.front().record->cancelled) {
    PopTop();
  }
}

bool Simulation::NoLiveEventAtNow() {
  DropLeadingTombstones();
  return queue_.empty() || queue_.front().when > now_;
}

void Simulation::RunEpochTasks() {
  // Move the batch out: callbacks may register follow-up epoch work, which then
  // belongs to the (possibly re-opened) epoch and runs on the next flush.
  std::vector<std::function<void()>> tasks = std::move(epoch_tasks_);
  epoch_tasks_.clear();
  for (std::function<void()>& task : tasks) {
    task();
  }
}

void Simulation::AtEpochEnd(std::function<void()> fn) {
  MONO_CHECK(fn != nullptr);
  epoch_tasks_.push_back(std::move(fn));
}

bool Simulation::Step() {
  for (;;) {
    // Epoch work registered outside any event (e.g. flows started before Run())
    // must flush before the clock can advance past the current time.
    if (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
      continue;
    }
    DropLeadingTombstones();
    if (queue_.empty()) {
      return false;
    }
    QueueEntry entry = PopTop();
    if (SimAudit* audit = SimAudit::current()) {
      audit->ExpectLazy(entry.when >= last_fired_time_, now_, "simulation",
                        "clock-monotonic", [&] {
                          std::ostringstream detail;
                          detail << "event at t=" << entry.when << " fired after t="
                                 << last_fired_time_;
                          return detail.str();
                        });
    }
    now_ = entry.when;
    last_fired_time_ = entry.when;
    entry.record->fired = true;
    ++fired_;
    MixDigest(entry.when, entry.seq, entry.tag);
    if (recorder_.enabled()) {
      recorder_.Record(entry.when, entry.seq, entry.tag, digest_);
    }
    // Expose this simulation to the MONO_CHECK failure hook while its event
    // (and the epoch/audit work below) runs.
    Simulation* previous_stepping = g_stepping_sim;
    g_stepping_sim = this;
    // Move the callback out so that captured state dies when it returns.
    std::function<void()> fn = std::move(entry.record->fn);
    fn();
    // Epoch boundary: once no live event shares the current timestamp, flush the
    // deferred epoch work (which may schedule same-time events, re-opening the
    // epoch) and then sweep the audits. Mid-epoch, both wait: batched components
    // are transiently stale until their end-of-epoch flush runs.
    while (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
    }
    if (NoLiveEventAtNow()) {
      RunAuditChecks(AuditPhase::kEventBoundary);
    }
    g_stepping_sim = previous_stepping;
    return true;
  }
}

void Simulation::Run() {
  while (Step()) {
  }
  RunAuditChecks(AuditPhase::kDrain);
}

void Simulation::RunUntil(SimTime deadline) {
  MONO_CHECK(deadline >= now_);
  for (;;) {
    // Epoch work pending at the current time must flush before the clock moves
    // (Step handles the post-fire case; this covers work registered outside any
    // event when the next live event lies beyond the deadline).
    if (!epoch_tasks_.empty() && NoLiveEventAtNow()) {
      RunEpochTasks();
      continue;
    }
    // Discard tombstones regardless of their virtual time — a remainder of
    // cancelled entries past the deadline must still count as drained — but never
    // fire a live event beyond the deadline.
    DropLeadingTombstones();
    if (queue_.empty() || queue_.front().when > deadline) {
      break;
    }
    Step();
  }
  now_ = deadline;
  if (queue_.empty()) {
    RunAuditChecks(AuditPhase::kDrain);
  }
}

void Simulation::RegisterAuditable(const Auditable* auditable) {
  MONO_CHECK(auditable != nullptr);
  auditables_.push_back(auditable);
}

void Simulation::UnregisterAuditable(const Auditable* auditable) {
  auditables_.erase(std::remove(auditables_.begin(), auditables_.end(), auditable),
                    auditables_.end());
}

void Simulation::RunAuditChecks(AuditPhase phase) {
  SimAudit* audit = SimAudit::current();
  if (audit == nullptr) {
    return;
  }
  if (audit != last_audit_) {
    // A different (nested or fresh) audit installed since the last sweep.
    last_audit_ = audit;
    audit_violations_seen_ = 0;
  }
  for (const Auditable* auditable : auditables_) {
    auditable->AuditInvariants(*audit, phase);
  }
  // A new violation — found by this sweep or reported inline since the last
  // one — dumps the flight recorder once per simulation: in report mode the
  // process keeps running and the schedule context would otherwise be lost by
  // the time the owner inspects the audit.
  if (audit->violations().size() > audit_violations_seen_ && !recorder_dumped_ &&
      recorder_.enabled()) {
    recorder_dumped_ = true;
    std::fprintf(stderr, "audit violation — dumping flight recorder:\n");
    DumpFlightRecorder(stderr);
  }
  audit_violations_seen_ = audit->violations().size();
}

}  // namespace monosim
