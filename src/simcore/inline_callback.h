// InlineCallback: small-buffer-optimized move-only callable, plus the
// CallbackArena free-list pool its oversize captures fall back to.
//
// The simulation kernel fires millions of events per second; wrapping every
// event callback in std::function costs a heap allocation (control block or
// oversize capture) plus double indirection on each of them. InlineCallback
// stores the functor inline when it is small (<= kInlineBytes) and nothrow
// movable — which covers every kernel-path capture in this repository — and
// otherwise places it in a block drawn from a CallbackArena: a size-classed
// free-list pool that grows a chunk at a time and recycles blocks forever, so
// even the oversize path performs no steady-state heap allocation. Each
// outline block carries a self-describing header (owning arena + size class),
// which keeps InlineCallback itself arena-agnostic after construction: it can
// be moved across containers and destroyed anywhere the arena still lives.
//
// Ownership contract: a CallbackArena must outlive every InlineCallback whose
// capture it holds. The Simulation declares its arena before the event-record
// slabs and epoch-task buffers for exactly this reason.
#ifndef MONOTASKS_SRC_SIMCORE_INLINE_CALLBACK_H_
#define MONOTASKS_SRC_SIMCORE_INLINE_CALLBACK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace monosim {

// Size-classed free-list pool for callback captures too large for the inline
// buffer. Blocks are drawn from chunk allocations (many blocks per heap
// request) and returned to a per-class free list, never to the heap, so a
// steady-state workload that keeps re-creating the same oversize callback
// touches the allocator only while the pool warms up. Captures beyond the
// largest class fall through to operator new (header-tagged so Free() knows).
class CallbackArena {
 public:
  CallbackArena() = default;
  ~CallbackArena() = default;

  CallbackArena(const CallbackArena&) = delete;
  CallbackArena& operator=(const CallbackArena&) = delete;

  // Returns max_align_t-aligned storage for `bytes`. `arena` may be null, in
  // which case (as for oversize requests) the block comes from operator new;
  // either way the block must be released with Free().
  static void* Allocate(CallbackArena* arena, size_t bytes);

  // Returns `payload` (a pointer previously returned by Allocate) to its
  // owning arena's free list, or to the heap for unpooled blocks.
  static void Free(void* payload);

  // Pool introspection for tests: blocks currently on free lists, and blocks
  // ever carved from chunks.
  size_t free_blocks() const;
  size_t total_blocks() const { return total_blocks_; }

 private:
  struct alignas(alignof(std::max_align_t)) BlockHeader {
    CallbackArena* arena;  // Null: block came straight from operator new.
    size_t size_class;     // Index into free_, unused for unpooled blocks.
    BlockHeader* next_free;
  };

  // Payload bytes per class. Doubling classes keep internal waste under 2x;
  // the largest class comfortably holds any capture seen in this repository.
  static constexpr std::array<size_t, 5> kClassBytes = {64, 128, 256, 512, 1024};
  static constexpr size_t kBlocksPerChunk = 64;

  static void* PayloadOf(BlockHeader* header) { return header + 1; }
  static BlockHeader* HeaderOf(void* payload) {
    return static_cast<BlockHeader*>(payload) - 1;
  }

  void GrowClass(size_t size_class);

  std::array<BlockHeader*, kClassBytes.size()> free_ = {};
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  size_t total_blocks_ = 0;
};

// Move-only type-erased void() callable. The functor lives inline when small
// and nothrow movable, otherwise in a CallbackArena block chosen at
// construction. Invoking an empty InlineCallback is a checked error.
class InlineCallback {
 public:
  // Inline capacity. 48 bytes holds a capture of six pointers — every
  // scheduling site on the kernel hot path fits with room to spare — while
  // keeping the wrapper at 64 bytes, one cache line.
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() = default;

  // Wraps `fn`, drawing overflow storage from `arena` (nullable: oversize
  // captures then come from the heap, still released via the block header).
  // A null function pointer or empty std::function yields an empty callback.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& fn, CallbackArena* arena = nullptr) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "InlineCallback requires a void() callable");
    if constexpr (requires { fn == nullptr; }) {
      if (fn == nullptr) {
        return;  // Empty, like a default-constructed std::function.
      }
    }
    if constexpr (kStoresInline<D>) {
      ::new (static_cast<void*>(inline_buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      void* block = CallbackArena::Allocate(arena, sizeof(D));
      ::new (block) D(std::forward<F>(fn));
      outline_ = block;
      ops_ = &kOutlineOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    MONO_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineCallback");
    ops_->invoke(this);
  }

  // Destroys the wrapped functor (returning any arena block) and empties.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

 private:
  template <typename D>
  static constexpr bool kStoresInline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  struct Ops {
    void (*invoke)(InlineCallback* self);
    // Move-constructs dst's storage from src's and destroys src's functor
    // (src's ops_ is cleared by the caller). Must be noexcept.
    void (*relocate)(InlineCallback* src, InlineCallback* dst);
    void (*destroy)(InlineCallback* self);
  };

  // Declared before the ops tables below: static member initializers are not
  // complete-class contexts, so they can only name members already seen.
  union {
    alignas(alignof(std::max_align_t)) unsigned char inline_buf_[kInlineBytes];
    void* outline_;
  };
  const Ops* ops_ = nullptr;

  template <typename D>
  D* InlineTarget() {
    return std::launder(reinterpret_cast<D*>(inline_buf_));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](InlineCallback* self) { (*self->InlineTarget<D>())(); },
      [](InlineCallback* src, InlineCallback* dst) {
        ::new (static_cast<void*>(dst->inline_buf_))
            D(std::move(*src->InlineTarget<D>()));
        src->InlineTarget<D>()->~D();
      },
      [](InlineCallback* self) { self->InlineTarget<D>()->~D(); },
  };

  template <typename D>
  static constexpr Ops kOutlineOps = {
      [](InlineCallback* self) { (*static_cast<D*>(self->outline_))(); },
      [](InlineCallback* src, InlineCallback* dst) {
        dst->outline_ = src->outline_;
      },
      [](InlineCallback* self) {
        void* block = self->outline_;
        static_cast<D*>(block)->~D();
        CallbackArena::Free(block);
      },
  };

  void MoveFrom(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(&other, this);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_INLINE_CALLBACK_H_
