#include "src/simcore/inline_callback.h"

namespace monosim {

void* CallbackArena::Allocate(CallbackArena* arena, size_t bytes) {
  if (arena != nullptr) {
    for (size_t size_class = 0; size_class < kClassBytes.size(); ++size_class) {
      if (bytes > kClassBytes[size_class]) {
        continue;
      }
      if (arena->free_[size_class] == nullptr) {
        arena->GrowClass(size_class);
      }
      BlockHeader* header = arena->free_[size_class];
      arena->free_[size_class] = header->next_free;
      header->next_free = nullptr;
      return PayloadOf(header);
    }
  }
  // No arena, or the capture exceeds the largest class: a plain heap block,
  // tagged so Free() can tell it apart from pooled ones.
  auto* header = static_cast<BlockHeader*>(
      ::operator new(sizeof(BlockHeader) + bytes, std::align_val_t{alignof(BlockHeader)}));
  header->arena = nullptr;
  header->size_class = 0;
  header->next_free = nullptr;
  return PayloadOf(header);
}

void CallbackArena::Free(void* payload) {
  BlockHeader* header = HeaderOf(payload);
  CallbackArena* arena = header->arena;
  if (arena == nullptr) {
    ::operator delete(header, std::align_val_t{alignof(BlockHeader)});
    return;
  }
  header->next_free = arena->free_[header->size_class];
  arena->free_[header->size_class] = header;
}

void CallbackArena::GrowClass(size_t size_class) {
  const size_t block_bytes = sizeof(BlockHeader) + kClassBytes[size_class];
  auto chunk = std::make_unique<std::byte[]>(block_bytes * kBlocksPerChunk);
  std::byte* cursor = chunk.get();
  for (size_t i = 0; i < kBlocksPerChunk; ++i, cursor += block_bytes) {
    auto* header = ::new (static_cast<void*>(cursor)) BlockHeader;
    header->arena = this;
    header->size_class = size_class;
    header->next_free = free_[size_class];
    free_[size_class] = header;
  }
  total_blocks_ += kBlocksPerChunk;
  chunks_.push_back(std::move(chunk));
}

size_t CallbackArena::free_blocks() const {
  size_t count = 0;
  for (const BlockHeader* header : free_) {
    for (; header != nullptr; header = header->next_free) {
      ++count;
    }
  }
  return count;
}

}  // namespace monosim
