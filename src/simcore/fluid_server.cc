#include "src/simcore/fluid_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/tracing/tracer.h"

namespace monosim {
namespace {

// A request whose remaining service time falls below this is considered complete.
// Expressed in seconds of service so it is independent of the work-unit scale.
constexpr double kCompletionEpsilonSeconds = 1e-9;

}  // namespace

FluidServer::FluidServer(Simulation* sim, std::string name, CapacityFn capacity,
                         double per_request_cap)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(std::move(capacity)),
      per_request_cap_(per_request_cap),
      nominal_capacity_(capacity_(1)),
      last_update_(sim->now()),
      created_at_(sim->now()) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK_MSG(capacity_(1) > 0, "server capacity must be positive");
  sim_->RegisterAuditable(this);
}

FluidServer::~FluidServer() {
  sim_->UnregisterAuditable(this);
}

FluidServer::RequestId FluidServer::SubmitImpl(double amount, InlineCallback&& done,
                                               double weight, double share_weight) {
  MONO_DOMAIN_MUTATION();
  MONO_CHECK(amount >= 0);
  MONO_CHECK(static_cast<bool>(done));
  MONO_CHECK(weight > 0);
  if (share_weight == kSameAsWeight) {
    share_weight = weight;
  }
  MONO_CHECK(share_weight > 0);
  AdvanceProgress();
  const RequestId id = next_id_++;
  active_.push_back(Request{id, amount, weight, share_weight, 0.0, std::move(done)});
  Reschedule();
  return id;
}

double FluidServer::CancelRequest(RequestId id) {
  MONO_DOMAIN_MUTATION();
  AdvanceProgress();
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->id == id) {
      const double remaining = it->remaining;
      active_.erase(it);  // Order-preserving; the active set stays in admission order.
      Reschedule();
      return remaining;
    }
  }
  MONO_CHECK_MSG(false, "CancelRequest: unknown request id");
  return 0.0;
}

void FluidServer::AdvanceProgress() {
  const SimTime now = sim_->now();
  const SimTime dt = now - last_update_;
  if (dt > SimTime()) {
    double rate_sum = 0.0;
    for (auto& req : active_) {
      // Clamp exactly as total_served() does for its between-events extrapolation:
      // a completion event can fire a rounding error past a request's finish time,
      // and crediting the overshoot would let served_ drift past the
      // served-conservation bound over long runs.
      const double served = std::min(req.remaining, req.rate * dt.seconds());
      req.remaining -= served;
      served_ += served;
      rate_sum += req.rate;
    }
    // The active set and its rates were constant over [last_update_, now], so
    // this dt is wholly busy or wholly idle, and saturated iff the granted
    // rates consumed the instantaneous capacity.
    if (!active_.empty()) {
      busy_seconds_ += dt;
      if (rate_sum >= last_capacity_ - 1e-9 * std::max(1.0, last_capacity_)) {
        saturated_seconds_ += dt;
      }
    }
  }
  last_update_ = now;
}

void FluidServer::Reschedule() {
  // Recompute per-request rates for the current active set.
  const int n = active();
  double total_rate = 0.0;
  if (n > 0) {
    double total_weight = 0.0;
    for (const auto& req : active_) {
      total_weight += req.weight;
    }
    const double cap = capacity_(total_weight);
    MONO_CHECK_MSG(cap > 0, "capacity function must be positive for active requests");
    last_capacity_ = cap;
    max_capacity_seen_ = std::max(max_capacity_seen_, cap);
    if (share_policy_ == SharePolicy::kEqualSplitLegacy) {
      // The historical bug: weights feed the capacity function but the split
      // ignores them. Kept (test-only) so the audit layer can be shown to catch it.
      double share = cap / static_cast<double>(n);
      if (per_request_cap_ != kUnlimited) {
        share = std::min(share, per_request_cap_);
      }
      for (auto& req : active_) {
        req.rate = share;
      }
    } else {
      // Weighted fair sharing with a per-request ceiling: start from shares
      // proportional to share weight and water-fill. A request whose proportional
      // share reaches the cap is pinned to it and drops out; the capacity it leaves
      // behind is re-split (again by share weight) among the rest. Every pass pins
      // at least one request or terminates, so the loop runs at most n times.
      std::vector<Request*>& open = reschedule_open_;
      open.clear();
      open.reserve(active_.size());
      for (auto& req : active_) {
        open.push_back(&req);
      }
      double remaining_cap = cap;
      while (!open.empty()) {
        double open_weight = 0.0;
        for (const Request* req : open) {
          open_weight += req->share_weight;
        }
        const double pass_cap = remaining_cap;
        bool pinned_any = false;
        for (auto it = open.begin(); it != open.end();) {
          const double proportional = pass_cap * (*it)->share_weight / open_weight;
          if (per_request_cap_ != kUnlimited && proportional >= per_request_cap_) {
            (*it)->rate = per_request_cap_;
            remaining_cap -= per_request_cap_;
            it = open.erase(it);
            pinned_any = true;
          } else {
            ++it;
          }
        }
        if (!pinned_any) {
          for (Request* req : open) {
            req->rate = pass_cap * req->share_weight / open_weight;
          }
          break;
        }
      }
    }
    for (const auto& req : active_) {
      total_rate += req.rate;
    }
  } else {
    last_capacity_ = 0.0;
  }
  if (trace_enabled_) {
    // Forced: every Reschedule is an active-set change, which is a real trace
    // point even when the total rate happens to come out unchanged (e.g. a cancel
    // under a constant-capacity server).
    rate_trace_.Record(last_update_, total_rate, /*force_point=*/true);
  }
  if (monotrace::Tracer* tracer = monotrace::Tracer::current()) {
    const double denom = nominal_capacity_ > 0 ? nominal_capacity_ : 1.0;
    tracer->Counter("devices", name_, last_update_.seconds(), total_rate / denom);
  }
  // The states visible between events (where contention bugs live) can only be
  // checked here, not from the simulation's event-boundary sweep.
  if (SimAudit* audit = SimAudit::current()) {
    AuditInvariants(*audit, AuditPhase::kEventBoundary);
  }

  // Schedule (or clear) the single completion event for the earliest finisher.
  completion_event_.Cancel();
  if (n == 0) {
    return;
  }
  SimTime min_time{std::numeric_limits<double>::infinity()};
  for (const auto& req : active_) {
    if (req.rate > 0) {
      min_time = std::min(min_time, SimTime(req.remaining / req.rate));
    }
  }
  MONO_CHECK_MSG(std::isfinite(min_time.seconds()),
                 "active request with zero rate would never finish");
  completion_event_ =
      sim_->ScheduleAfter(min_time, [this] { OnCompletionEvent(); }, "fluid-complete");
}

void FluidServer::OnCompletionEvent() {
  AdvanceProgress();
  // Collect completions first: `done` callbacks may re-enter Submit(). The
  // member scratch keeps its capacity across completions; a re-entrant
  // invocation (a done callback driving the simulation back into this server)
  // finds it busy and falls back to a one-off local batch.
  std::vector<InlineCallback> local;
  std::vector<InlineCallback>& done_callbacks =
      done_scratch_.empty() ? done_scratch_ : local;
  size_t out = 0;
  for (size_t i = 0; i < active_.size(); ++i) {
    const double eps = std::max(active_[i].rate, 1.0) * kCompletionEpsilonSeconds;
    if (active_[i].remaining <= eps) {
      done_callbacks.push_back(std::move(active_[i].done));
    } else {
      if (out != i) {
        active_[out] = std::move(active_[i]);
      }
      ++out;
    }
  }
  active_.resize(out);
  Reschedule();
  for (InlineCallback& done : done_callbacks) {
    done();
  }
  done_callbacks.clear();
}

double FluidServer::total_served() const {
  // Include progress accrued since the last bookkeeping update.
  double extra = 0.0;
  const SimTime dt = sim_->now() - last_update_;
  if (dt > SimTime()) {
    for (const auto& req : active_) {
      extra += std::min(req.remaining, req.rate * dt.seconds());
    }
  }
  return served_ + extra;
}

void FluidServer::EnableTrace() {
  trace_enabled_ = true;
  if (rate_trace_.empty()) {
    rate_trace_.Record(sim_->now(), 0.0);
  }
}

double FluidServer::MeanUtilization(SimTime from, SimTime to) const {
  MONO_CHECK(trace_enabled_);
  return rate_trace_.MeanUtilization(from, to, nominal_capacity_);
}

void FluidServer::AuditInvariants(SimAudit& audit, AuditPhase phase) const {
  const SimTime now = sim_->now();
  const char* source = name_.c_str();
  const double cap = last_capacity_;
  const double eps = 1e-9 * std::max(1.0, cap);

  double total_rate = 0.0;
  double reference_ratio = -1.0;
  for (const auto& req : active_) {
    total_rate += req.rate;
    audit.ExpectLazy(req.rate >= 0.0, now, source, "rate-non-negative", [&] {
      std::ostringstream d;
      d << "request " << req.id << " has rate " << req.rate;
      return d.str();
    });
    const bool capped =
        per_request_cap_ != kUnlimited && req.rate >= per_request_cap_ - eps;
    if (per_request_cap_ != kUnlimited) {
      audit.ExpectLazy(req.rate <= per_request_cap_ + eps, now, source,
                       "per-request-cap", [&] {
                         std::ostringstream d;
                         d << "request " << req.id << " rate " << req.rate
                           << " exceeds cap " << per_request_cap_;
                         return d.str();
                       });
    }
    if (!capped) {
      // Weighted fairness: every request not pinned at the per-request cap must
      // receive rate proportional to its share weight (equal rate/share ratios).
      const double ratio = req.rate / req.share_weight;
      if (reference_ratio < 0.0) {
        reference_ratio = ratio;
      } else {
        const bool proportional =
            std::abs(ratio - reference_ratio) <=
            1e-6 * std::max(ratio, reference_ratio) + eps;
        audit.ExpectLazy(proportional, now, source, "weighted-share", [&] {
          std::ostringstream d;
          d << "request " << req.id << " rate/weight " << ratio
            << " != reference " << reference_ratio
            << " (shares not proportional to weights)";
          return d.str();
        });
      }
    }
  }
  if (!active_.empty()) {
    audit.ExpectLazy(total_rate <= cap + eps, now, source, "rate-conservation", [&] {
      std::ostringstream d;
      d << "total rate " << total_rate << " exceeds instantaneous capacity " << cap;
      return d.str();
    });
  }

  // Served work can never exceed the largest capacity ever granted × elapsed time.
  const double elapsed = (now - created_at_).seconds();
  const double bound = std::max(nominal_capacity_, max_capacity_seen_) * elapsed;
  const double served = total_served();
  audit.ExpectLazy(served <= bound + 1e-6 * std::max(1.0, bound), now, source,
                   "served-conservation", [&] {
                     std::ostringstream d;
                     d << "served " << served << " exceeds capacity bound " << bound
                       << " over " << elapsed << "s";
                     return d.str();
                   });

  if (phase == AuditPhase::kDrain) {
    audit.ExpectLazy(active_.empty(), now, source, "drained", [&] {
      std::ostringstream d;
      d << active_.size() << " request(s) still active after the event queue drained";
      return d.str();
    });
  }
}

CapacityFn ConstantCapacity(double capacity) {
  MONO_CHECK(capacity > 0);
  return [capacity](double) { return capacity; };
}

CapacityFn HddCapacity(double bandwidth, double alpha) {
  MONO_CHECK(bandwidth > 0);
  MONO_CHECK(alpha >= 0);
  return [bandwidth, alpha](double active_weight) {
    return bandwidth / (1.0 + alpha * std::max(0.0, active_weight - 1.0));
  };
}

CapacityFn SsdCapacity(double bandwidth, int channels, double single_stream_fraction) {
  MONO_CHECK(bandwidth > 0);
  MONO_CHECK(channels >= 1);
  MONO_CHECK(single_stream_fraction > 0 && single_stream_fraction <= 1.0);
  return [bandwidth, channels, single_stream_fraction](double active_weight) {
    if (channels == 1) {
      return bandwidth;  // A single channel is saturated by any one request.
    }
    const double n = std::min(active_weight, static_cast<double>(channels));
    if (n <= 1.0) {
      return bandwidth * single_stream_fraction;
    }
    // Linear ramp from single_stream_fraction (one request) to 1.0 (channels busy).
    const double frac = single_stream_fraction + (1.0 - single_stream_fraction) *
                                                     (n - 1.0) /
                                                     static_cast<double>(channels - 1);
    return bandwidth * frac;
  };
}

}  // namespace monosim
