#include "src/simcore/fluid_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace monosim {
namespace {

// A request whose remaining service time falls below this is considered complete.
// Expressed in seconds of service so it is independent of the work-unit scale.
constexpr double kCompletionEpsilonSeconds = 1e-9;

}  // namespace

FluidServer::FluidServer(Simulation* sim, std::string name, CapacityFn capacity,
                         double per_request_cap)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(std::move(capacity)),
      per_request_cap_(per_request_cap),
      nominal_capacity_(capacity_(1)),
      last_update_(sim->now()) {
  MONO_CHECK(sim_ != nullptr);
  MONO_CHECK_MSG(capacity_(1) > 0, "server capacity must be positive");
}

FluidServer::RequestId FluidServer::Submit(double amount, std::function<void()> done,
                                           double weight) {
  MONO_CHECK(amount >= 0);
  MONO_CHECK(done != nullptr);
  MONO_CHECK(weight > 0);
  AdvanceProgress();
  const RequestId id = next_id_++;
  active_.push_back(Request{id, amount, weight, 0.0, std::move(done)});
  Reschedule();
  return id;
}

double FluidServer::CancelRequest(RequestId id) {
  AdvanceProgress();
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->id == id) {
      const double remaining = it->remaining;
      active_.erase(it);
      Reschedule();
      return remaining;
    }
  }
  MONO_CHECK_MSG(false, "CancelRequest: unknown request id");
  return 0.0;
}

void FluidServer::AdvanceProgress() {
  const SimTime now = sim_->now();
  const double dt = now - last_update_;
  if (dt > 0) {
    for (auto& req : active_) {
      const double served = req.rate * dt;
      req.remaining = std::max(0.0, req.remaining - served);
      served_ += served;
    }
  }
  last_update_ = now;
}

void FluidServer::Reschedule() {
  // Recompute per-request rates for the current active set.
  const int n = active();
  double total_rate = 0.0;
  if (n > 0) {
    double total_weight = 0.0;
    for (const auto& req : active_) {
      total_weight += req.weight;
    }
    const double cap = capacity_(total_weight);
    MONO_CHECK_MSG(cap > 0, "capacity function must be positive for active requests");
    double share = cap / static_cast<double>(n);
    if (per_request_cap_ != kUnlimited) {
      share = std::min(share, per_request_cap_);
    }
    for (auto& req : active_) {
      req.rate = share;
      total_rate += share;
    }
  }
  if (trace_enabled_) {
    rate_trace_.Record(last_update_, total_rate);
  }

  // Schedule (or clear) the single completion event for the earliest finisher.
  completion_event_.Cancel();
  if (n == 0) {
    return;
  }
  double min_time = std::numeric_limits<double>::infinity();
  for (const auto& req : active_) {
    if (req.rate > 0) {
      min_time = std::min(min_time, req.remaining / req.rate);
    }
  }
  MONO_CHECK_MSG(std::isfinite(min_time), "active request with zero rate would never finish");
  completion_event_ = sim_->ScheduleAfter(min_time, [this] { OnCompletionEvent(); });
}

void FluidServer::OnCompletionEvent() {
  AdvanceProgress();
  // Collect completions first: `done` callbacks may re-enter Submit().
  std::vector<std::function<void()>> done_callbacks;
  for (auto it = active_.begin(); it != active_.end();) {
    const double eps = std::max(it->rate, 1.0) * kCompletionEpsilonSeconds;
    if (it->remaining <= eps) {
      done_callbacks.push_back(std::move(it->done));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& done : done_callbacks) {
    done();
  }
}

double FluidServer::total_served() const {
  // Include progress accrued since the last bookkeeping update.
  double extra = 0.0;
  const double dt = sim_->now() - last_update_;
  if (dt > 0) {
    for (const auto& req : active_) {
      extra += std::min(req.remaining, req.rate * dt);
    }
  }
  return served_ + extra;
}

void FluidServer::EnableTrace() {
  trace_enabled_ = true;
  if (rate_trace_.empty()) {
    rate_trace_.Record(sim_->now(), 0.0);
  }
}

double FluidServer::MeanUtilization(SimTime from, SimTime to) const {
  MONO_CHECK(trace_enabled_);
  return rate_trace_.MeanUtilization(from, to, nominal_capacity_);
}

CapacityFn ConstantCapacity(double capacity) {
  MONO_CHECK(capacity > 0);
  return [capacity](double) { return capacity; };
}

CapacityFn HddCapacity(double bandwidth, double alpha) {
  MONO_CHECK(bandwidth > 0);
  MONO_CHECK(alpha >= 0);
  return [bandwidth, alpha](double active_weight) {
    return bandwidth / (1.0 + alpha * std::max(0.0, active_weight - 1.0));
  };
}

CapacityFn SsdCapacity(double bandwidth, int channels, double single_stream_fraction) {
  MONO_CHECK(bandwidth > 0);
  MONO_CHECK(channels >= 1);
  MONO_CHECK(single_stream_fraction > 0 && single_stream_fraction <= 1.0);
  return [bandwidth, channels, single_stream_fraction](double active_weight) {
    if (channels == 1) {
      return bandwidth;  // A single channel is saturated by any one request.
    }
    const double n = std::min(active_weight, static_cast<double>(channels));
    if (n <= 1.0) {
      return bandwidth * single_stream_fraction;
    }
    // Linear ramp from single_stream_fraction (one request) to 1.0 (channels busy).
    const double frac = single_stream_fraction + (1.0 - single_stream_fraction) *
                                                     (n - 1.0) /
                                                     static_cast<double>(channels - 1);
    return bandwidth * frac;
  };
}

}  // namespace monosim
