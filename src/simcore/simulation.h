// Discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue. Events are callbacks scheduled
// at absolute virtual times; ties are broken by insertion order so runs are fully
// deterministic. Everything in the cluster simulator (devices, schedulers, tasks) is
// driven by this kernel — no wall-clock time or threads are involved.
//
// All events sharing one timestamp form an *epoch*. Components can defer work to
// the end of the current epoch with AtEpochEnd() — the point at which every event
// carrying the current timestamp has fired, just before the clock would advance.
// The network fabric uses this to coalesce all flow arrivals and departures at one
// timestamp into a single max-min solve instead of re-solving per event. The
// registered audit sweep consequently also runs per epoch rather than per event:
// mid-epoch component state is transiently stale by design, and the allocations
// that exist while the clock stands still are exactly the ones the end-of-epoch
// sweep certifies.
//
// Cancellation is lazy: Cancel() marks the queued record as a tombstone, which is
// discarded when it reaches the front of the queue. Cancel-heavy components (the
// network fabric cancels and reschedules a completion event on every rate change)
// would otherwise grow the queue with dead entries whose virtual times lie far in
// the future, so the queue compacts itself — dropping all tombstones and
// re-heapifying — whenever tombstones outnumber live events (and the queue is big
// enough for the rebuild to pay off). This bounds the queue to at most twice the
// live event count plus a constant.
//
// Memory layout (see DESIGN.md, "Kernel memory layout"): steady-state
// schedule/fire performs zero heap allocations. Event records live in
// slab-allocated pools recycled through a free list, callbacks are stored
// inline (InlineCallback, arena fallback for oversize captures), and handles
// carry a generation counter instead of shared ownership, so record reuse and
// compaction cannot be observed through a stale handle.
//
// The queue itself is two-level. Entries ordered before a moving boundary
// live in the *near* structures (a descending sorted array popped from the
// back, plus a small 4-ary heap for entries scheduled mid-batch); everything
// at or beyond the boundary sits in an unsorted *far* buffer that costs one
// append to schedule into. When the near side drains, a batch of the
// earliest far entries is carved out (nth_element + one sort) and becomes
// the next near array. A heap over millions of future events pays a
// cache-missing sift per operation; the two-level layout replaces that with
// sequential batched sorting, roughly doubling schedule/fire throughput at
// queue depths in the millions. Fire order is (time, sequence) either way,
// so the event schedule — and with it the run digest — is bit-identical to
// a single-heap kernel's.
#ifndef MONOTASKS_SRC_SIMCORE_SIMULATION_H_
#define MONOTASKS_SRC_SIMCORE_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/units.h"
#include "src/simcore/audit.h"
#include "src/simcore/flight_recorder.h"
#include "src/simcore/inline_callback.h"

namespace monosim {

using monoutil::SimTime;

class Simulation;

// Pooled storage for one scheduled event. Records are owned by the
// Simulation's slab pool and recycled through a free list: `generation` is
// bumped every time a record returns to the pool, so a handle created for an
// earlier occupant can tell the record no longer belongs to its event.
struct EventRecord {
  InlineCallback fn;
  uint64_t generation = 0;
  const char* tag = "";
  EventRecord* next_free = nullptr;
  bool cancelled = false;
};

// Handle to a scheduled event; lets the owner cancel it before it fires. Default
// constructed handles are empty. Handles are cheap to copy and never own the
// record: they hold (record, generation) plus a shared liveness slot for the
// owning Simulation, so Cancel()/pending() stay safe after the record has been
// recycled, after compaction freed it, and even after the Simulation itself
// has been destroyed (the handle then degrades to an inert one).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly, on an
  // empty handle, on a handle whose record has been recycled, and on a handle
  // that outlived its Simulation.
  void Cancel();

  // True if this handle refers to an event that has neither fired nor been cancelled.
  bool pending() const;

 private:
  friend class Simulation;
  EventHandle(std::shared_ptr<Simulation*> owner, EventRecord* record,
              uint64_t generation)
      : owner_(std::move(owner)), record_(record), generation_(generation) {}

  // Points at the owning Simulation, nulled by its destructor. One shared
  // control block per Simulation (not per event): copying a handle is a
  // refcount bump, never an allocation.
  std::shared_ptr<Simulation*> owner_;
  EventRecord* record_ = nullptr;
  uint64_t generation_ = 0;
};

// Collects the (fired_events, digest) pair of every Simulation destroyed while
// the trail is installed, in destruction order. The determinism test listener
// (tests/digest_listener.cc) installs one per test and compares trails across
// repeated runs: same seed must mean same schedule, byte for byte. Trails nest
// SimAudit-style; the innermost installed trail records.
class SimDigestTrail {
 public:
  struct Entry {
    uint64_t fired = 0;
    uint64_t digest = 0;
    bool operator==(const Entry&) const = default;
  };

  SimDigestTrail();
  ~SimDigestTrail();

  SimDigestTrail(const SimDigestTrail&) = delete;
  SimDigestTrail& operator=(const SimDigestTrail&) = delete;

  // The innermost installed trail, or nullptr.
  static SimDigestTrail* current();

  void Record(uint64_t fired, uint64_t digest) { entries_.push_back({fired, digest}); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  SimDigestTrail* previous_;
  std::vector<Entry> entries_;
};

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time in seconds. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `fn` (any void() callable; captures beyond InlineCallback's
  // inline buffer draw pooled storage from the kernel arena) to run at
  // absolute virtual time `when` (must be >= now()). `tag` labels the event in
  // the run digest; it must point at storage that outlives the event (pass a
  // string literal).
  template <typename F>
  EventHandle ScheduleAt(SimTime when, F&& fn, const char* tag = "") {
    return ScheduleRecord(when, Wrap(std::forward<F>(fn)), tag);
  }

  // Schedules `fn` to run `delay` seconds from now (delay must be >= 0).
  template <typename F>
  EventHandle ScheduleAfter(SimTime delay, F&& fn, const char* tag = "") {
    MONO_CHECK(delay >= SimTime());
    return ScheduleRecord(now_ + delay, Wrap(std::forward<F>(fn)), tag);
  }

  // Runs until the event queue is empty.
  void Run();

  // Runs until the queue is empty or the next *live* event lies beyond `deadline`;
  // the clock is advanced to `deadline` if the run was cut short. A remainder made
  // up entirely of cancelled tombstones counts as drained (the drain-phase audit
  // checks run), exactly as if the queue were empty.
  void RunUntil(SimTime deadline);

  // Fires at most one event (skipping cancelled ones). Returns false when empty.
  // When the fired event is the last one carrying the current timestamp, the
  // pending AtEpochEnd callbacks and the epoch-boundary audit sweep run before
  // Step returns.
  bool Step();

  // Defers `fn` to the end of the current epoch: it runs once every event sharing
  // the current timestamp has fired (equivalently, just before the clock would
  // next advance past now()), and before the epoch-boundary audit sweep.
  // Callbacks run in registration order, are one-shot, and may schedule new
  // events — including at the current time, which re-opens the epoch (the sweep
  // then waits for the new events and any re-registered callbacks). Work
  // registered outside Run()/Step() is flushed before the next event fires, at
  // the still-current time.
  template <typename F>
  void AtEpochEnd(F&& fn) {
    InlineCallback task = Wrap(std::forward<F>(fn));
    MONO_CHECK(static_cast<bool>(task));
    epoch_tasks_.push_back(std::move(task));
  }

  // Number of (non-cancelled) events fired so far.
  uint64_t fired_events() const { return fired_; }

  // Rolling FNV-1a hash over every fired event's (time, sequence, tag) tuple —
  // a compact witness of the whole schedule. Two runs with the same seed and
  // the same code must produce identical digests; any dependence on heap
  // addresses, wall clock, or uncontrolled entropy shows up as a digest
  // mismatch. Cancelled events never contribute (they did not shape the run);
  // the sequence numbers of fired events do, so the *scheduling* order is
  // covered transitively.
  uint64_t digest() const { return digest_; }

  // Queue introspection (tests, benches): total entries including tombstones, and
  // the tombstones among them. queue_size() - queued_tombstones() is the live count.
  size_t queue_size() const {
    return near_sorted_.size() + near_heap_.size() + far_.size();
  }
  uint64_t queued_tombstones() const { return tombstones_; }

  // Compaction is on by default; benches switch it off to measure its effect.
  void set_compaction_enabled(bool enabled) { compaction_enabled_ = enabled; }

  // Queues smaller than this never compact: scanning a handful of entries costs
  // more in bookkeeping than the tombstones cost in memory.
  static constexpr size_t kCompactionMinQueueSize = 64;

  // The arena backing event/epoch callbacks whose captures exceed the inline
  // buffer. Components owned by this simulation (FluidServer, the network
  // fabric) draw their pooled callback storage from here too.
  CallbackArena* callback_arena() { return &callback_arena_; }

  // Pool introspection (tests): event records currently carved from slabs.
  size_t event_pool_capacity() const { return slabs_.size() * kRecordsPerSlab; }

  // Invariant auditing (see audit.h). Registered components are re-checked after
  // every fired event and when the queue drains, whenever a SimAudit is installed.
  // Components must unregister before they are destroyed.
  void RegisterAuditable(const Auditable* auditable);
  void UnregisterAuditable(const Auditable* auditable);

  // Black-box event trail (flight_recorder.h): every fired event is recorded
  // into a bounded ring, dumped to stderr automatically the first time the
  // epoch-boundary/drain audit sweep records a new violation, or when a
  // MONO_CHECK fails while this simulation is stepping. Always on; the
  // telemetry-off bench variant disables it via flight_recorder().
  FlightRecorder& flight_recorder() { return recorder_; }
  const FlightRecorder& flight_recorder() const { return recorder_; }

  // Writes the recorder trail plus the kernel's digest line to `out`.
  void DumpFlightRecorder(std::FILE* out) const;

 private:
  friend class EventHandle;

  // Events recycled per slab allocation. 256 records (~24 KiB) amortizes pool
  // growth to one heap allocation per 256 concurrent events, after which the
  // free list serves every schedule.
  static constexpr size_t kRecordsPerSlab = 256;

  // Runs every registered component's checks, plus the kernel's own clock
  // monotonicity check. No-op when no audit is installed.
  void RunAuditChecks(AuditPhase phase);

  // Queue entry: 24 bytes, so sorting and sifting move a third of the bytes a
  // shared_ptr-carrying entry did. The callback and tag live in the record,
  // off the comparison path.
  struct QueueEntry {
    SimTime when;
    uint64_t seq;
    EventRecord* record;
  };

  static bool Earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // True when (when, seq) sorts before the near/far boundary, i.e. the entry
  // belongs in the near structures.
  bool BeforeLimit(SimTime when, uint64_t seq) const {
    if (when != limit_when_) {
      return when < limit_when_;
    }
    return seq < limit_seq_;
  }

  // Migration batch sizing: take at least kMinMigrateBatch entries (small
  // batches don't amortize the nth_element pass over far_), and at least
  // 1/kMigrateShrinkDivisor of far_ (so the total partitioning work across a
  // drain is a geometric series, O(1) amortized per event).
  static constexpr size_t kMinMigrateBatch = 1 << 16;
  static constexpr size_t kMigrateShrinkDivisor = 4;

  // 4-ary heap primitives over near_heap_.
  void SiftUp(size_t index);
  void SiftDown(size_t index);
  void BuildHeap();

  // Returns the earliest queued entry — migrating a batch out of far_ when
  // the near structures are empty — or nullptr when the whole queue is
  // drained. The returned entry may be a tombstone.
  QueueEntry* FrontRaw();

  // Discards cancelled entries at the front of the queue; returns the
  // earliest live entry, or nullptr when the queue is drained.
  QueueEntry* FrontLive();

  // Carves the next batch of earliest far_ entries into near_sorted_
  // (dropping tombstones on the way) and advances the near/far boundary.
  // Called only with both near structures empty and far_ non-empty.
  void MigrateFar();

  // Wraps a callable for the kernel arena; a ready-made InlineCallback (e.g.
  // one a component built against callback_arena() already) passes through
  // without re-wrapping.
  template <typename F>
  InlineCallback Wrap(F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      return std::forward<F>(fn);
    } else {
      return InlineCallback(std::forward<F>(fn), &callback_arena_);
    }
  }

  // Shared implementation behind the ScheduleAt/ScheduleAfter templates.
  EventHandle ScheduleRecord(SimTime when, InlineCallback&& fn, const char* tag);

  // Slab pool plumbing: records come from the free list (growing a slab when
  // dry) and return to it with their generation bumped.
  EventRecord* AllocRecord();
  void FreeRecord(EventRecord* record);
  void GrowRecordPool();

  // Cancels `record` if `generation` still identifies the caller's event.
  void CancelRecord(EventRecord* record, uint64_t generation);

  // Removes and returns the earliest entry, maintaining the tombstone count.
  // A cancelled entry's record is freed before returning; a live entry's
  // record stays alive for the caller to fire and free. Callers must have
  // seen FrontRaw() != nullptr (the front then sits in the near structures).
  QueueEntry PopTop();

  // True when no live event shares the current timestamp: the epoch is over once
  // pending AtEpochEnd callbacks have run.
  bool NoLiveEventAtNow();

  // Runs and clears the pending epoch-end callbacks (which may register more).
  void RunEpochTasks();

  // Drops every tombstone and re-heapifies when tombstones outnumber live entries.
  void MaybeCompact();

  // Folds a fired event's identity into the run digest.
  void MixDigest(SimTime when, uint64_t seq, const char* tag);

  // Declared first: every InlineCallback below (queued events, pooled records,
  // epoch tasks) may hold an arena block, so the arena must be destroyed last.
  CallbackArena callback_arena_;
  std::vector<std::unique_ptr<EventRecord[]>> slabs_;
  EventRecord* free_records_ = nullptr;
  // Liveness slot shared with every handle; the destructor nulls it.
  std::shared_ptr<Simulation*> self_slot_;

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t fired_ = 0;
  uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis.
  SimTime last_fired_time_;
  // Two-level event queue. near_sorted_ (descending by (when, seq), popped
  // from the back) and near_heap_ (flat 4-ary min-heap for entries scheduled
  // after the current batch was carved) hold every entry ordered before the
  // boundary (limit_when_, limit_seq_); far_ is an unsorted append-only
  // buffer for everything at or beyond it. All three are plain vectors so
  // compaction can filter them in place. The boundary starts at -inf: the
  // first schedule lands in far_, and the first pop migrates a batch.
  std::vector<QueueEntry> near_sorted_;
  std::vector<QueueEntry> near_heap_;
  std::vector<QueueEntry> far_;
  SimTime limit_when_{-std::numeric_limits<double>::infinity()};
  uint64_t limit_seq_ = 0;
  uint64_t tombstones_ = 0;
  bool compaction_enabled_ = true;
  std::vector<const Auditable*> auditables_;
  std::vector<InlineCallback> epoch_tasks_;
  // Ping-pong buffer for RunEpochTasks: the running batch swaps in here so new
  // registrations land in epoch_tasks_, and both vectors keep their capacity —
  // no steady-state allocation per epoch flush.
  std::vector<InlineCallback> epoch_run_buffer_;
  FlightRecorder recorder_;
  // The audit-violation dump fires once per simulation, not per violation.
  bool recorder_dumped_ = false;
  // Violation count already seen in the installed audit, so the boundary sweep
  // also notices violations reported inline (mid-event) since the last sweep.
  const SimAudit* last_audit_ = nullptr;
  size_t audit_violations_seen_ = 0;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_SIMULATION_H_
