// Discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue. Events are callbacks scheduled
// at absolute virtual times; ties are broken by insertion order so runs are fully
// deterministic. Everything in the cluster simulator (devices, schedulers, tasks) is
// driven by this kernel — no wall-clock time or threads are involved.
//
// All events sharing one timestamp form an *epoch*. Components can defer work to
// the end of the current epoch with AtEpochEnd() — the point at which every event
// carrying the current timestamp has fired, just before the clock would advance.
// The network fabric uses this to coalesce all flow arrivals and departures at one
// timestamp into a single max-min solve instead of re-solving per event. The
// registered audit sweep consequently also runs per epoch rather than per event:
// mid-epoch component state is transiently stale by design, and the allocations
// that exist while the clock stands still are exactly the ones the end-of-epoch
// sweep certifies.
//
// Cancellation is lazy: Cancel() marks the queued record as a tombstone, which is
// discarded when it reaches the front of the queue. Cancel-heavy components (the
// network fabric cancels and reschedules a completion event on every rate change)
// would otherwise grow the queue with dead entries whose virtual times lie far in
// the future, so the queue compacts itself — dropping all tombstones and
// re-heapifying — whenever tombstones outnumber live events (and the queue is big
// enough for the rebuild to pay off). This bounds the queue to at most twice the
// live event count plus a constant.
#ifndef MONOTASKS_SRC_SIMCORE_SIMULATION_H_
#define MONOTASKS_SRC_SIMCORE_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/simcore/audit.h"
#include "src/simcore/flight_recorder.h"

namespace monosim {

using monoutil::SimTime;

// Handle to a scheduled event; lets the owner cancel it before it fires. Default
// constructed handles are empty. Handles are cheap to copy (shared ownership of a
// small record).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly or on an
  // empty handle.
  void Cancel();

  // True if this handle refers to an event that has neither fired nor been cancelled.
  bool pending() const;

 private:
  friend class Simulation;
  struct Record {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
    // Counts tombstones still sitting in the owning Simulation's queue; shared so
    // Cancel() stays safe even if the handle outlives the Simulation.
    std::shared_ptr<uint64_t> queued_tombstones;
  };
  explicit EventHandle(std::shared_ptr<Record> record) : record_(std::move(record)) {}
  std::shared_ptr<Record> record_;
};

// Collects the (fired_events, digest) pair of every Simulation destroyed while
// the trail is installed, in destruction order. The determinism test listener
// (tests/digest_listener.cc) installs one per test and compares trails across
// repeated runs: same seed must mean same schedule, byte for byte. Trails nest
// SimAudit-style; the innermost installed trail records.
class SimDigestTrail {
 public:
  struct Entry {
    uint64_t fired = 0;
    uint64_t digest = 0;
    bool operator==(const Entry&) const = default;
  };

  SimDigestTrail();
  ~SimDigestTrail();

  SimDigestTrail(const SimDigestTrail&) = delete;
  SimDigestTrail& operator=(const SimDigestTrail&) = delete;

  // The innermost installed trail, or nullptr.
  static SimDigestTrail* current();

  void Record(uint64_t fired, uint64_t digest) { entries_.push_back({fired, digest}); }
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  SimDigestTrail* previous_;
  std::vector<Entry> entries_;
};

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time in seconds. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `when` (must be >= now()).
  // `tag` labels the event in the run digest; it must point at storage that
  // outlives the event (pass a string literal).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn,
                         const char* tag = "");

  // Schedules `fn` to run `delay` seconds from now (delay must be >= 0).
  EventHandle ScheduleAfter(SimTime delay, std::function<void()> fn,
                            const char* tag = "");

  // Runs until the event queue is empty.
  void Run();

  // Runs until the queue is empty or the next *live* event lies beyond `deadline`;
  // the clock is advanced to `deadline` if the run was cut short. A remainder made
  // up entirely of cancelled tombstones counts as drained (the drain-phase audit
  // checks run), exactly as if the queue were empty.
  void RunUntil(SimTime deadline);

  // Fires at most one event (skipping cancelled ones). Returns false when empty.
  // When the fired event is the last one carrying the current timestamp, the
  // pending AtEpochEnd callbacks and the epoch-boundary audit sweep run before
  // Step returns.
  bool Step();

  // Defers `fn` to the end of the current epoch: it runs once every event sharing
  // the current timestamp has fired (equivalently, just before the clock would
  // next advance past now()), and before the epoch-boundary audit sweep.
  // Callbacks run in registration order, are one-shot, and may schedule new
  // events — including at the current time, which re-opens the epoch (the sweep
  // then waits for the new events and any re-registered callbacks). Work
  // registered outside Run()/Step() is flushed before the next event fires, at
  // the still-current time.
  void AtEpochEnd(std::function<void()> fn);

  // Number of (non-cancelled) events fired so far.
  uint64_t fired_events() const { return fired_; }

  // Rolling FNV-1a hash over every fired event's (time, sequence, tag) tuple —
  // a compact witness of the whole schedule. Two runs with the same seed and
  // the same code must produce identical digests; any dependence on heap
  // addresses, wall clock, or uncontrolled entropy shows up as a digest
  // mismatch. Cancelled events never contribute (they did not shape the run);
  // the sequence numbers of fired events do, so the *scheduling* order is
  // covered transitively.
  uint64_t digest() const { return digest_; }

  // Queue introspection (tests, benches): total entries including tombstones, and
  // the tombstones among them. queue_size() - queued_tombstones() is the live count.
  size_t queue_size() const { return queue_.size(); }
  uint64_t queued_tombstones() const { return *tombstones_; }

  // Compaction is on by default; benches switch it off to measure its effect.
  void set_compaction_enabled(bool enabled) { compaction_enabled_ = enabled; }

  // Queues smaller than this never compact: scanning a handful of entries costs
  // more in bookkeeping than the tombstones cost in memory.
  static constexpr size_t kCompactionMinQueueSize = 64;

  // Invariant auditing (see audit.h). Registered components are re-checked after
  // every fired event and when the queue drains, whenever a SimAudit is installed.
  // Components must unregister before they are destroyed.
  void RegisterAuditable(const Auditable* auditable);
  void UnregisterAuditable(const Auditable* auditable);

  // Black-box event trail (flight_recorder.h): every fired event is recorded
  // into a bounded ring, dumped to stderr automatically the first time the
  // epoch-boundary/drain audit sweep records a new violation, or when a
  // MONO_CHECK fails while this simulation is stepping. Always on; the
  // telemetry-off bench variant disables it via flight_recorder().
  FlightRecorder& flight_recorder() { return recorder_; }
  const FlightRecorder& flight_recorder() const { return recorder_; }

  // Writes the recorder trail plus the kernel's digest line to `out`.
  void DumpFlightRecorder(std::FILE* out) const;

 private:
  // Runs every registered component's checks, plus the kernel's own clock
  // monotonicity check. No-op when no audit is installed.
  void RunAuditChecks(AuditPhase phase);
  struct QueueEntry {
    SimTime when;
    uint64_t seq;
    const char* tag;
    std::shared_ptr<EventHandle::Record> record;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Removes and returns the earliest entry (live or tombstone), maintaining the
  // tombstone count. The queue must not be empty.
  QueueEntry PopTop();

  // Discards cancelled entries sitting at the front of the queue, so the front
  // (if any) is the next live event — the epoch-boundary peek needs its time.
  void DropLeadingTombstones();

  // True when no live event shares the current timestamp: the epoch is over once
  // pending AtEpochEnd callbacks have run.
  bool NoLiveEventAtNow();

  // Runs and clears the pending epoch-end callbacks (which may register more).
  void RunEpochTasks();

  // Drops every tombstone and re-heapifies when tombstones outnumber live entries.
  void MaybeCompact();

  // Folds a fired event's identity into the run digest.
  void MixDigest(SimTime when, uint64_t seq, const char* tag);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t fired_ = 0;
  uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis.
  SimTime last_fired_time_ = 0.0;
  // Binary heap ordered by Later (std::push_heap/std::pop_heap); a plain vector so
  // compaction can filter it in place, which std::priority_queue cannot.
  std::vector<QueueEntry> queue_;
  std::shared_ptr<uint64_t> tombstones_ = std::make_shared<uint64_t>(0);
  bool compaction_enabled_ = true;
  std::vector<const Auditable*> auditables_;
  std::vector<std::function<void()>> epoch_tasks_;
  FlightRecorder recorder_;
  // The audit-violation dump fires once per simulation, not per violation.
  bool recorder_dumped_ = false;
  // Violation count already seen in the installed audit, so the boundary sweep
  // also notices violations reported inline (mid-event) since the last sweep.
  const SimAudit* last_audit_ = nullptr;
  size_t audit_violations_seen_ = 0;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_SIMULATION_H_
