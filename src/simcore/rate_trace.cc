#include "src/simcore/rate_trace.h"

#include <algorithm>

#include "src/common/check.h"

namespace monosim {

using monoutil::SimTime;

void RateTrace::Record(SimTime time, double rate, bool force_point) {
  if (!points_.empty()) {
    MONO_CHECK_MSG(time >= points_.back().time, "rate trace times must be non-decreasing");
    if (points_.back().time == time) {
      points_.back().rate = rate;
      return;
    }
    if (points_.back().rate == rate && !force_point) {
      return;  // No change; avoid unbounded growth from redundant updates.
    }
  }
  points_.push_back(Point{time, rate});
}

double RateTrace::Integrate(SimTime from, SimTime to) const {
  MONO_CHECK(to >= from);
  double total = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const SimTime seg_start = points_[i].time;
    const SimTime seg_end = (i + 1 < points_.size()) ? points_[i + 1].time : to;
    const SimTime lo = std::max(seg_start, from);
    const SimTime hi = std::min(std::max(seg_end, seg_start), to);
    if (hi > lo) {
      total += points_[i].rate * (hi - lo).seconds();
    }
  }
  return total;
}

double RateTrace::MeanUtilization(SimTime from, SimTime to, double capacity) const {
  MONO_CHECK(to > from);
  MONO_CHECK(capacity > 0);
  return Integrate(from, to) / (capacity * (to - from).seconds());
}

double RateTrace::RateAt(SimTime time) const {
  double rate = 0.0;
  for (const auto& point : points_) {
    if (point.time > time) {
      break;
    }
    rate = point.rate;
  }
  return rate;
}

std::vector<double> RateTrace::SampleWindows(SimTime from, SimTime to, SimTime step,
                                             double capacity) const {
  MONO_CHECK(step > SimTime());
  std::vector<double> windows;
  SimTime t = from;
  for (; t + step <= to; t += step) {
    windows.push_back(MeanUtilization(t, t + step, capacity));
  }
  // Cover the trailing partial window rather than silently dropping it. The
  // epsilon guards against a float-residual sliver when the span is an exact
  // multiple of the step.
  if (to - t > 1e-9 * step) {
    windows.push_back(MeanUtilization(t, to, capacity));
  }
  return windows;
}

}  // namespace monosim
