// FlightRecorder: a bounded ring of the most recent fired events.
//
// The run digest (Simulation::digest()) is a perfect witness that two runs
// diverged but says nothing about *where*; full traces (MONO_TRACE) say where
// but are opt-in and unaffordable always-on. The flight recorder fills the
// gap: every fired event appends its (virtual time, sequence, tag) plus the
// rolling digest *after* mixing that event, into a fixed-size ring. When
// something goes wrong — a SimAudit violation, a MONO_CHECK failure — the
// last kCapacity events and the digest trail are dumped automatically, so a
// crash report carries the recent schedule instead of just a stack.
//
// Recording is a handful of stores into preallocated memory (no allocation,
// no hashing beyond the digest the kernel already maintains), cheap enough to
// stay on in every run; set_enabled(false) exists for the overhead bench's
// telemetry-off variant and for tests.
#ifndef MONOTASKS_SRC_SIMCORE_FLIGHT_RECORDER_H_
#define MONOTASKS_SRC_SIMCORE_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/common/units.h"

namespace monosim {

class FlightRecorder {
 public:
  // Events retained. 256 spans several epochs of every workload in the repo
  // while keeping the ring at ~8 KiB.
  static constexpr size_t kCapacity = 256;

  struct Entry {
    monoutil::SimTime when;
    uint64_t seq = 0;
    const char* tag = "";     // Points at the event's literal; never owned.
    uint64_t digest = 0;      // Rolling run digest after mixing this event.
  };

  FlightRecorder() : ring_(kCapacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Record(monoutil::SimTime when, uint64_t seq, const char* tag,
              uint64_t digest) {
    Entry& e = ring_[total_ % kCapacity];
    e.when = when;
    e.seq = seq;
    e.tag = tag;
    e.digest = digest;
    ++total_;
  }

  // Total events ever recorded (>= Trail().size()).
  uint64_t total_recorded() const { return total_; }

  // The retained entries, oldest first.
  std::vector<Entry> Trail() const;

  // Writes the trail to `out`, one event per line, newest last — the format
  // the audit-violation and CHECK-failure dumps use.
  void Dump(std::FILE* out) const;

  void Clear() { total_ = 0; }

 private:
  std::vector<Entry> ring_;
  uint64_t total_ = 0;
  bool enabled_ = true;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_FLIGHT_RECORDER_H_
