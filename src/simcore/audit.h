// SimAudit: runtime invariant auditing for the discrete-event simulator.
//
// The simulator's value rests on its resource accounting being correct: a server
// that silently hands out the wrong shares produces plausible-looking but wrong
// contention results (the weighted-fair-sharing bug this subsystem was built to
// catch). SimAudit lets every simulated component verify conservation and sanity
// invariants while a simulation runs:
//
//   * FluidServer     — rates non-negative, per-request cap respected, total rate
//                       within instantaneous capacity, shares proportional to
//                       weights, served work bounded by capacity × elapsed time;
//   * BufferCacheSim  — byte conservation (submitted == flushed + dirty per disk,
//                       total_dirty == Σ per-disk dirty), sync-waiter thresholds
//                       ascending, no blocked writers or waiters left at drain;
//   * NetworkFabricSim— per-NIC ingress/egress rate sums within bandwidth, flow
//                       bookkeeping consistent (both ingress and egress lists
//                       reconciled against the registry), every flow bottlenecked
//                       at a saturated NIC side where its share is maximal (the
//                       max-min certification — bounds rates from below, so
//                       stranded capacity is caught), no flows left at drain;
//   * executors       — in-flight task bookkeeping consistent, queues empty and no
//                       running multitasks when the simulation drains;
//   * Simulation      — clock monotonicity across fired events.
//
// Checks are hooked in two ways. Components call SimAudit::current() inline at
// their own mutation points (where a transiently-wrong state is actually visible),
// and they register as `Auditable` with their Simulation, which re-checks them
// after every fired event (kEventBoundary) and when the event queue empties
// (kDrain). All hooks are no-ops unless an audit is installed, so simulation code
// pays one branch per hook in normal runs.
//
// Tests opt in with one line (`ScopedAudit audit;`); the test suite additionally
// installs a report-mode audit around every test via a gtest listener. Benches
// enable auditing by setting the MONO_SIM_AUDIT environment variable (see
// bench_util.h).
#ifndef MONOTASKS_SRC_SIMCORE_AUDIT_H_
#define MONOTASKS_SRC_SIMCORE_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace monosim {

class SimAudit;

// When a registered component is asked to verify itself.
enum class AuditPhase {
  kEventBoundary,  // After a simulation event fired.
  kDrain,          // The event queue emptied inside Run()/RunUntil().
};

// A component that can verify its own invariants. Implementations register with
// their Simulation (RegisterAuditable / UnregisterAuditable); the check runs only
// while a SimAudit is installed.
class Auditable {
 public:
  virtual ~Auditable() = default;

  // Verifies invariants, reporting failures to `audit`. Must not mutate
  // simulation state.
  virtual void AuditInvariants(SimAudit& audit, AuditPhase phase) const = 0;
};

// One recorded invariant violation.
struct AuditViolation {
  monoutil::SimTime time;
  std::string source;     // Component name, e.g. "disk0" or "buffer-cache".
  std::string invariant;  // Stable identifier, e.g. "weighted-share".
  std::string detail;     // Human-readable specifics (observed vs expected).
};

class SimAudit {
 public:
  SimAudit() = default;
  SimAudit(const SimAudit&) = delete;
  SimAudit& operator=(const SimAudit&) = delete;

  // The installed audit, or nullptr when auditing is off. Hook sites do:
  //   if (SimAudit* audit = SimAudit::current()) { ... }
  static SimAudit* current() { return current_; }

  // Records a violation of `invariant` observed at virtual time `time`.
  void Report(monoutil::SimTime time, std::string source, std::string invariant,
              std::string detail);

  // Counts the check; records a violation when `ok` is false. Takes C strings so
  // the passing path (every event boundary) performs no allocation.
  void Expect(bool ok, monoutil::SimTime time, const char* source, const char* invariant,
              const char* detail);

  // Like Expect, but `detail_fn() -> std::string` runs only on failure, so call
  // sites can build rich observed-vs-expected messages off the hot path.
  template <typename DetailFn>
  void ExpectLazy(bool ok, monoutil::SimTime time, const char* source,
                  const char* invariant, DetailFn&& detail_fn) {
    ++checks_;
    if (!ok) {
      Report(time, source, invariant, detail_fn());
    }
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }

  // Checks evaluated so far (passing and failing); lets tests assert the audit
  // actually looked at something.
  uint64_t checks_run() const { return checks_; }

  // One line per violation (capped), or "audit clean" — suitable for assertion
  // messages.
  std::string Summary() const;

 private:
  friend class ScopedAudit;
  static SimAudit* current_;

  std::vector<AuditViolation> violations_;
  uint64_t checks_ = 0;
};

// Installs a SimAudit for the enclosing scope. Nests: the innermost audit
// receives the checks, and the previous one is restored on destruction.
class ScopedAudit {
 public:
  enum Mode {
    kFatal,   // Destructor aborts (MONO_CHECK) if any violation was recorded.
    kReport,  // Violations are only collected; the owner inspects audit().
  };

  explicit ScopedAudit(Mode mode = kFatal);
  ~ScopedAudit();

  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

  SimAudit& audit() { return audit_; }
  const SimAudit& audit() const { return audit_; }

 private:
  Mode mode_;
  SimAudit audit_;
  SimAudit* previous_;
};

// True if the MONO_SIM_AUDIT environment variable is set to a non-empty value
// other than "0" — the opt-in used by the benches.
bool AuditRequestedByEnv();

// Installs a fatal ScopedAudit when MONO_SIM_AUDIT asks for one; otherwise inert.
// Declare one at the top of a bench run so every simulation in scope is audited.
class EnvScopedAudit {
 public:
  EnvScopedAudit();

 private:
  std::optional<ScopedAudit> audit_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_AUDIT_H_
