// FluidServer: a capacity-shared ("fluid") resource model for the discrete-event
// simulator.
//
// A FluidServer serves requests measured in abstract work units (CPU-seconds for a
// compute core pool, bytes for a disk). All admitted requests progress simultaneously;
// capacity is split in proportion to the requests' weights (weighted fair sharing),
// optionally capped per request (a single task thread cannot use more than one core) —
// capacity freed by capped requests is redistributed among the uncapped ones. Total
// capacity may itself depend on the number of active requests — this is how HDD seek
// degradation under concurrent streams and SSD channel parallelism are expressed:
//
//   * CPU pool of c cores:  capacity(n) = c,       per-request cap = 1 core
//   * HDD:                  capacity(n) = B / (1 + alpha * (n - 1))   (seek penalty)
//   * SSD with k channels:  capacity(n) = B * ramp(min(n, k) / k)
//
// The server recomputes rates whenever the active set changes and keeps exactly one
// pending completion event, so the event count is proportional to the request count.
// It also integrates served work over time and can record a (time, total-rate) step
// function for utilization plots (Figs 2 and 9 in the paper).
#ifndef MONOTASKS_SRC_SIMCORE_FLUID_SERVER_H_
#define MONOTASKS_SRC_SIMCORE_FLUID_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/domain.h"
#include "src/simcore/audit.h"
#include "src/simcore/rate_trace.h"
#include "src/simcore/simulation.h"

namespace monosim {

// Total capacity (work units per second) available given the sum of the active
// requests' contention weights. Must be positive whenever any request is active.
// Weights let callers express that some request types contend less: a streaming disk
// write merged by the elevator costs less head movement than an interleaved read, so
// it carries a fractional weight.
//
// Config-time only: bound once at server construction, never on the event hot
// path, so the std::function indirection and its one-time allocation are fine.
// mono_lint: allow(std-function-hot-path) -- bound once at construction, never per event.
using CapacityFn = std::function<double(double active_weight)>;

class FluidServer : public Auditable {
 public:
  // Fluid servers model per-machine devices (CPU pools, disks); they are owned
  // by machine-domain components that outlive the simulation run, so `this`
  // captures into their own schedule sites cannot dangle.
  MONO_DOMAIN("machine");
  MONO_SIM_OWNED;

  // `per_request_cap` limits the rate any single request may receive; pass
  // kUnlimited for none. `name` is used in traces and error messages.
  static constexpr double kUnlimited = -1.0;

  FluidServer(Simulation* sim, std::string name, CapacityFn capacity,
              double per_request_cap = kUnlimited);
  ~FluidServer() override;

  FluidServer(const FluidServer&) = delete;
  FluidServer& operator=(const FluidServer&) = delete;

  // How capacity is divided among active requests. kWeightedFair is the model;
  // kEqualSplitLegacy reinstates the historical `cap / n` bug (weights ignored at
  // the split) so tests can demonstrate that the audit layer detects it.
  enum class SharePolicy {
    kWeightedFair,
    kEqualSplitLegacy,
  };
  void set_share_policy_for_test(SharePolicy policy) { share_policy_ = policy; }

  // Identifies an in-service request.
  using RequestId = uint64_t;

  // `share_weight` sentinel for Submit: share capacity in proportion to `weight`.
  static constexpr double kSameAsWeight = -1.0;

  // Admits a request for `amount` work units; `done` (any void() callable — its
  // capture draws pooled storage from the owning simulation's arena when it
  // exceeds the inline buffer) fires when the request completes. Requests are
  // serviced immediately — queueing policy belongs to the schedulers layered
  // above this class. `amount` may be zero, in which case `done` fires at the
  // current time.
  //
  // `weight` (default 1) is the request's contention weight passed to the capacity
  // function — how much device capacity the request's presence costs. `share_weight`
  // is its weight in the fair split of that capacity — how much of it the request
  // receives relative to the others — and defaults to `weight`. They are separate
  // because cost and priority differ on real devices: a write interleaved with reads
  // costs an HDD most of its bandwidth (high contention weight) but the elevator
  // still serves both streams about equally (share weight 1), which is how DiskSim
  // submits it.
  template <typename F>
  RequestId Submit(double amount, F&& done, double weight = 1.0,
                   double share_weight = kSameAsWeight) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      return SubmitImpl(amount, std::forward<F>(done), weight, share_weight);
    } else {
      return SubmitImpl(
          amount, InlineCallback(std::forward<F>(done), sim_->callback_arena()),
          weight, share_weight);
    }
  }

  // Aborts an in-service request; its `done` callback never fires. Returns the
  // remaining (unserved) work.
  double CancelRequest(RequestId id);

  // Number of requests currently in service.
  int active() const { return static_cast<int>(active_.size()); }

  // Total work units served so far (integrated over time).
  double total_served() const;

  // Always-on utilization/saturation accumulators (telemetry tentpole): virtual
  // seconds with at least one active request, and the subset of those during
  // which the granted total rate equaled the instantaneous capacity (the device
  // had no headroom — adding work could only queue). busy - saturated is the
  // window where the device ran but had spare capacity. Both integrate up to
  // the last bookkeeping update; they need no tracing.
  SimTime busy_seconds() const { return busy_seconds_; }
  SimTime saturated_seconds() const { return saturated_seconds_; }

  // Nominal capacity used as the denominator for utilization: capacity(1) unless
  // overridden via set_nominal_capacity (e.g. a CPU pool's core count).
  double nominal_capacity() const { return nominal_capacity_; }
  void set_nominal_capacity(double c) { nominal_capacity_ = c; }

  // Mean utilization over [from, to]: work served in the window divided by
  // nominal_capacity * (to - from). Requires tracing to be enabled.
  double MeanUtilization(SimTime from, SimTime to) const;

  // Enables recording of the (time, total service rate) step function.
  void EnableTrace();
  bool trace_enabled() const { return trace_enabled_; }

  // The recorded total-service-rate step function. Empty unless EnableTrace() was
  // called before the first request.
  const RateTrace& rate_trace() const { return rate_trace_; }

  const std::string& name() const { return name_; }

  // Invariant auditing (audit.h): rates non-negative and within the per-request
  // cap, total rate within the instantaneous capacity, uncapped shares proportional
  // to weights, served work bounded by capacity × elapsed, and no requests left
  // active when the simulation drains.
  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override;

 private:
  struct Request {
    RequestId id;
    double remaining;
    double weight = 1.0;        // Contention weight (capacity-function input).
    double share_weight = 1.0;  // Fair-share weight (capacity-split input).
    // Unit-agnostic: the server drains abstract work (bytes for disks,
    // core-seconds for CPU).
    // mono_lint: allow(raw-unit-double) -- abstract work units per second.
    double rate = 0.0;
    InlineCallback done;
  };

  // Shared implementation behind the Submit template.
  RequestId SubmitImpl(double amount, InlineCallback&& done, double weight,
                       double share_weight);

  // Advances all active requests to the current time, then recomputes rates and
  // reschedules the single completion event.
  void Reschedule();

  // Brings `remaining` up to date with progress since `last_update_`.
  void AdvanceProgress();

  // Fires completions for any requests that have (numerically) finished.
  void OnCompletionEvent();

  Simulation* sim_;
  std::string name_;
  CapacityFn capacity_;
  double per_request_cap_;
  double nominal_capacity_;

  // Active requests, in admission order. A vector (not a list): submit and
  // complete are the fabric's steady-state churn, and vector storage keeps
  // them free of per-request node allocations once the high-water capacity is
  // reached. Nothing holds Request pointers across events.
  std::vector<Request> active_;
  // Scratch for Reschedule's water-filling pass; member so its capacity
  // persists across calls instead of reallocating per rate change.
  std::vector<Request*> reschedule_open_;
  // Scratch for OnCompletionEvent's harvested `done` callbacks (re-entrant
  // invocations fall back to a local batch).
  std::vector<InlineCallback> done_scratch_;
  RequestId next_id_ = 1;
  SimTime last_update_;
  double served_ = 0.0;  // Work units, not a unit-bearing quantity.
  SimTime busy_seconds_;
  SimTime saturated_seconds_;
  EventHandle completion_event_;
  SharePolicy share_policy_ = SharePolicy::kWeightedFair;

  // Audit bookkeeping: when the server was created, the capacity in effect for the
  // current active set, and the largest capacity ever granted (the conservation
  // bound — an SSD's capacity can exceed capacity(1), so nominal alone is too
  // tight a ceiling).
  SimTime created_at_;
  double last_capacity_ = 0.0;
  double max_capacity_seen_ = 0.0;

  bool trace_enabled_ = false;
  RateTrace rate_trace_;
};

// Convenience capacity functions.

// Constant capacity regardless of concurrency (CPU pools, network links).
CapacityFn ConstantCapacity(double capacity);

// HDD model: full bandwidth for one stream-weight, degrading as
// 1 / (1 + alpha * (w - 1)) with total contention weight w.
// Capacity models are in the server's abstract work units per second; disk
// call sites unwrap BytesPerSecond via .bps().
// mono_lint: allow(raw-unit-double) -- abstract work units per second.
CapacityFn HddCapacity(double bandwidth, double alpha);

// SSD model: bandwidth scales up with outstanding requests until `channels` worth of
// weight are busy; `single_stream_fraction` of peak is available to a lone request.
// mono_lint: allow(raw-unit-double) -- same abstract work units as above.
CapacityFn SsdCapacity(double bandwidth, int channels, double single_stream_fraction);

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_FLUID_SERVER_H_
