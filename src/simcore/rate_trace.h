// RateTrace: a recorded (time, rate) step function.
//
// Devices record their instantaneous total service rate here; benches integrate it to
// produce the utilization time series and per-stage utilization statistics that the
// paper plots (Figs 2, 6 and 9).
#ifndef MONOTASKS_SRC_SIMCORE_RATE_TRACE_H_
#define MONOTASKS_SRC_SIMCORE_RATE_TRACE_H_

#include <vector>

#include "src/common/units.h"

namespace monosim {

class RateTrace {
 public:
  struct Point {
    monoutil::SimTime time;
    // Unit-agnostic: traces record fractions-of-capacity (CPU cores) as
    // well as byte rates.
    // mono_lint: allow(raw-unit-double) -- unit-agnostic trace rate.
    double rate;
  };

  // Records that the rate changed to `rate` at `time`. Times must be non-decreasing;
  // a same-time update overwrites the previous point. A later update with an
  // unchanged rate is dropped (redundant updates would grow the trace without
  // bound) unless `force_point` is set — callers pass true when the update marks a
  // real change in the underlying active set (a request completed or was cancelled
  // and the total rate happened to come out equal), so the event stays observable
  // in points().
  // mono_lint: allow(raw-unit-double) -- unit-agnostic rate, see Point.
  void Record(monoutil::SimTime time, double rate, bool force_point = false);

  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  // Integral of the rate over [from, to]. The last recorded rate is assumed to hold
  // forever. Returns 0 for an empty trace.
  double Integrate(monoutil::SimTime from, monoutil::SimTime to) const;

  // Integrate(from, to) / (capacity * (to - from)): the mean fraction of `capacity`
  // in use over the window.
  double MeanUtilization(monoutil::SimTime from, monoutil::SimTime to,
                         double capacity) const;

  // The rate in effect at `time` (0 before the first point).
  double RateAt(monoutil::SimTime time) const;

  // Mean utilizations over consecutive windows of `step` seconds spanning [from, to),
  // for plotting time series. When (to - from) is not an exact multiple of `step`,
  // the trailing partial window [k*step, to) is included as a final (shorter)
  // window rather than silently dropped, so the series always covers the full
  // span; callers that need equal-width windows should pass an exact multiple.
  std::vector<double> SampleWindows(monoutil::SimTime from, monoutil::SimTime to,
                                    monoutil::SimTime step, double capacity) const;

 private:
  std::vector<Point> points_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_SIMCORE_RATE_TRACE_H_
