// DfsSim: an HDFS-like block store model used for job input and output.
//
// Files are split into fixed-size blocks placed across the cluster's machines and
// disks. The job scheduler uses block locations for locality-aware task assignment
// (§3.2: "multitasks are assigned to workers based on data locality"), and the
// executors use them to decide which physical disk serves each read. Placement is
// deterministic given the seed.
#ifndef MONOTASKS_SRC_STORAGE_DFS_H_
#define MONOTASKS_SRC_STORAGE_DFS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/domain.h"
#include "src/common/rng.h"
#include "src/common/units.h"

namespace monosim {

struct DfsBlock {
  monoutil::Bytes size;
  // Machine/disk of each replica; replicas[0] is the primary.
  struct Replica {
    int machine = 0;
    int disk = 0;
  };
  std::vector<Replica> replicas;
};

struct DfsFile {
  std::string name;
  monoutil::Bytes block_size;
  std::vector<DfsBlock> blocks;

  monoutil::Bytes total_bytes() const;
};

class DfsSim {
 public:
  // Passive metadata store: files are created at setup time and only read
  // during a run, so the storage domain needs no runtime mutation guards.
  MONO_DOMAIN("storage");

  // `disks_per_machine` must match the cluster the file will be read on.
  DfsSim(int num_machines, int disks_per_machine, int replication, uint64_t seed);

  // Creates a file of `total_bytes` split into `block_size` blocks, placed round-robin
  // over machines starting at a seeded offset (so distinct files start on distinct
  // machines) and round-robin over disks within each machine. Replicas beyond the
  // primary land on distinct machines.
  const DfsFile& CreateFile(const std::string& name, monoutil::Bytes total_bytes,
                            monoutil::Bytes block_size = monoutil::MiB(128));

  // Creates a file with exactly `num_blocks` equal blocks (the common way benchmarks
  // pin the number of map tasks).
  const DfsFile& CreateFileWithBlocks(const std::string& name, monoutil::Bytes total_bytes,
                                      int num_blocks);

  const DfsFile& GetFile(const std::string& name) const;
  bool HasFile(const std::string& name) const;

  int num_machines() const { return num_machines_; }
  int disks_per_machine() const { return disks_per_machine_; }
  int replication() const { return replication_; }

 private:
  const DfsFile& PlaceFile(const std::string& name, monoutil::Bytes total_bytes,
                           monoutil::Bytes block_size, int num_blocks);

  int num_machines_;
  int disks_per_machine_;
  int replication_;
  monoutil::Rng rng_;
  std::vector<int> next_disk_;  // Per-machine round-robin disk cursor.
  std::unordered_map<std::string, DfsFile> files_;
};

}  // namespace monosim

#endif  // MONOTASKS_SRC_STORAGE_DFS_H_
