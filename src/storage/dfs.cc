#include "src/storage/dfs.h"

#include <utility>

#include "src/common/check.h"

namespace monosim {

using monoutil::Bytes;

Bytes DfsFile::total_bytes() const {
  Bytes total;
  for (const auto& block : blocks) {
    total += block.size;
  }
  return total;
}

DfsSim::DfsSim(int num_machines, int disks_per_machine, int replication, uint64_t seed)
    : num_machines_(num_machines),
      disks_per_machine_(disks_per_machine),
      replication_(replication),
      rng_(seed),
      next_disk_(static_cast<size_t>(num_machines), 0) {
  MONO_CHECK(num_machines >= 1);
  MONO_CHECK(disks_per_machine >= 1);
  MONO_CHECK(replication >= 1);
  MONO_CHECK_MSG(replication <= num_machines, "cannot place more replicas than machines");
}

const DfsFile& DfsSim::CreateFile(const std::string& name, Bytes total_bytes,
                                  Bytes block_size) {
  MONO_CHECK(block_size > Bytes(0));
  const int num_blocks = static_cast<int>(
      (total_bytes + block_size - Bytes(1)).count() / block_size.count());
  return PlaceFile(name, total_bytes, block_size, num_blocks);
}

const DfsFile& DfsSim::CreateFileWithBlocks(const std::string& name, Bytes total_bytes,
                                            int num_blocks) {
  MONO_CHECK(num_blocks >= 1);
  const Bytes block_size = (total_bytes + Bytes(num_blocks - 1)) / num_blocks;
  return PlaceFile(name, total_bytes, block_size, num_blocks);
}

const DfsFile& DfsSim::PlaceFile(const std::string& name, Bytes total_bytes,
                                 Bytes block_size, int num_blocks) {
  MONO_CHECK(total_bytes >= Bytes(0));
  MONO_CHECK_MSG(files_.find(name) == files_.end(), "file already exists");

  DfsFile file;
  file.name = name;
  file.block_size = block_size;
  Bytes remaining = total_bytes;
  const int start = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(num_machines_)));
  for (int b = 0; b < num_blocks; ++b) {
    DfsBlock block;
    block.size = std::min(block_size, remaining);
    remaining -= block.size;
    for (int r = 0; r < replication_; ++r) {
      const int machine = (start + b + r) % num_machines_;
      auto& disk_cursor = next_disk_[static_cast<size_t>(machine)];
      block.replicas.push_back(DfsBlock::Replica{machine, disk_cursor});
      disk_cursor = (disk_cursor + 1) % disks_per_machine_;
    }
    file.blocks.push_back(std::move(block));
  }
  MONO_CHECK_MSG(remaining == Bytes(0), "blocks do not cover the file");
  auto [it, inserted] = files_.emplace(name, std::move(file));
  MONO_CHECK(inserted);
  return it->second;
}

const DfsFile& DfsSim::GetFile(const std::string& name) const {
  auto it = files_.find(name);
  MONO_CHECK_MSG(it != files_.end(), "no such DFS file");
  return it->second;
}

bool DfsSim::HasFile(const std::string& name) const {
  return files_.find(name) != files_.end();
}

}  // namespace monosim
