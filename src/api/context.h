// MonoContext: the driver of the threaded monotasks engine.
//
// Owns the in-process cluster (workers + fabric), turns logical plans into stages at
// shuffle boundaries, decomposes each stage into one multitask per partition, and
// decomposes each multitask into its monotask DAG on the assigned worker:
//
//   map-like:     [disk-read | remote fetch]  ->  compute  ->  disk-write
//   reduce-like:  [local shuffle disk-reads + remote fetch set]  ->  compute  -> ...
//
// Workers are assigned up to their §3.4 multitask limit; there is no
// tasks-per-machine knob (§7). Per-stage monotask service times are accumulated and
// exposed in EngineJobMetrics, feeding the same §6 performance model as the cluster
// simulator.
#ifndef MONOTASKS_SRC_API_CONTEXT_H_
#define MONOTASKS_SRC_API_CONTEXT_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/plan.h"
#include "src/api/serde.h"
#include "src/engine/worker.h"

namespace monotasks {

// Per-stage instrumentation: total service seconds per monotask type (the engine
// counterpart of the simulator's MonotaskTimes).
struct EngineStageMetrics {
  std::string name;
  double wall_seconds = 0.0;
  double compute_seconds = 0.0;
  double disk_read_seconds = 0.0;
  double disk_write_seconds = 0.0;
  double network_seconds = 0.0;
  monoutil::Bytes disk_read_bytes;
  monoutil::Bytes disk_write_bytes;
  monoutil::Bytes network_bytes;
  int num_tasks = 0;
};

struct EngineJobMetrics {
  std::vector<EngineStageMetrics> stages;
  double wall_seconds = 0.0;
};

class MonoContext {
 public:
  explicit MonoContext(EngineConfig config = {});
  ~MonoContext();

  MonoContext(const MonoContext&) = delete;
  MonoContext& operator=(const MonoContext&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  Worker& worker(int index) { return *workers_[static_cast<size_t>(index)]; }
  const EngineConfig& config() const { return config_; }

  // Distributes serialized partitions across the workers' disks (round-robin) under
  // `name`, creating a source usable by plans. Returns the partition count.
  int CreateSource(const std::string& name, std::vector<Buffer> partitions);

  // Registers partitions as an *in-memory* source: reads cost no disk time (the
  // engine-level equivalent of Spark's deserialized in-memory cache, §6.3).
  // Partitions are pinned round-robin to workers; a non-local consumer pays the
  // network transfer.
  int CreateMemorySource(const std::string& name, std::vector<Buffer> partitions);

  // Runs the plan rooted at `node` and returns one serialized buffer per output
  // partition (collected to the driver). Metrics for the run replace
  // last_job_metrics(). One job runs at a time per context: RunJob is not safe to
  // call from multiple threads concurrently (stages inside the job are, of course,
  // fully parallel).
  std::vector<Buffer> RunJob(const std::shared_ptr<const PlanNode>& root);

  // Runs the plan and writes its output partitions to worker disks as blocks named
  // `name.<p>` (a new source), instead of collecting.
  void RunJobToSource(const std::shared_ptr<const PlanNode>& root,
                      const std::string& name);

  const EngineJobMetrics& last_job_metrics() const { return last_metrics_; }

 private:
  struct StagePlan;
  struct ShuffleSegment;
  struct SourceBlock;
  class StageRunner;

  std::vector<StagePlan> BuildStages(const std::shared_ptr<const PlanNode>& root) const;
  std::vector<Buffer> Execute(const std::shared_ptr<const PlanNode>& root,
                              const std::string& save_as);
  // Runs a sub-plan (the right parent of a join) to a shuffle output bucketed for
  // `num_out_partitions` consumers.
  std::vector<ShuffleSegment> RunToShuffle(
      const std::shared_ptr<const PlanNode>& root,
      const std::function<std::vector<Buffer>(const Buffer&, int)>& partition_fn,
      int num_out_partitions);

  EngineConfig config_;
  std::unique_ptr<InProcessFabric> fabric_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex catalog_mutex_;
  // Uniquifies shuffle block names across stages, jobs, and join sub-plans.
  mutable std::atomic<uint64_t> stage_counter_{0};
  // source name -> per-partition location.
  std::map<std::string, std::vector<SourceBlock>> sources_;
  int next_shuffle_id_ = 0;
  EngineJobMetrics last_metrics_;
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_API_CONTEXT_H_
