// Binary serialization for the typed Dataset API.
//
// Partitions move between monotasks as serialized byte buffers (the engine's disks
// and network carry bytes, exactly as in the real system), so every record type needs
// a Serde. Built-in specializations cover integral types, double, std::string, and
// std::pair; user types can specialize monotasks::Serde<T>.
//
// Deserialization cost is real CPU work performed inside compute monotasks — the
// separation the §6.3 what-if depends on.
#ifndef MONOTASKS_SRC_API_SERDE_H_
#define MONOTASKS_SRC_API_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/engine/block_device.h"

namespace monotasks {

// Append-only byte sink.
class ByteWriter {
 public:
  explicit ByteWriter(Buffer* out) : out_(out) { MONO_CHECK(out != nullptr); }

  void PutRaw(const void* data, size_t size) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + size);
  }
  template <typename T>
  void PutPod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutRaw(&value, sizeof(T));
  }
  void PutU64(uint64_t value) { PutPod(value); }

 private:
  Buffer* out_;
};

// Sequential byte source over a Buffer.
class ByteReader {
 public:
  explicit ByteReader(const Buffer& in) : data_(in.data()), size_(in.size()) {}

  void GetRaw(void* out, size_t size) {
    MONO_CHECK_MSG(pos_ + size <= size_, "deserialization ran past the buffer");
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }
  template <typename T>
  T GetPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    GetRaw(&value, sizeof(T));
    return value;
  }
  uint64_t GetU64() { return GetPod<uint64_t>(); }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

template <typename T, typename Enable = void>
struct Serde;

// All trivially-copyable types (ints, double, POD structs).
template <typename T>
struct Serde<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static void Write(ByteWriter* writer, const T& value) { writer->PutPod(value); }
  static T Read(ByteReader* reader) { return reader->GetPod<T>(); }
};

template <>
struct Serde<std::string> {
  static void Write(ByteWriter* writer, const std::string& value) {
    writer->PutU64(value.size());
    writer->PutRaw(value.data(), value.size());
  }
  static std::string Read(ByteReader* reader) {
    const uint64_t size = reader->GetU64();
    std::string value(size, '\0');
    reader->GetRaw(value.data(), size);
    return value;
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>, std::enable_if_t<!std::is_trivially_copyable_v<std::pair<A, B>>>> {
  static void Write(ByteWriter* writer, const std::pair<A, B>& value) {
    Serde<A>::Write(writer, value.first);
    Serde<B>::Write(writer, value.second);
  }
  static std::pair<A, B> Read(ByteReader* reader) {
    A a = Serde<A>::Read(reader);
    B b = Serde<B>::Read(reader);
    return {std::move(a), std::move(b)};
  }
};

// Serializes a whole record vector: count followed by records.
template <typename T>
Buffer SerializeVector(const std::vector<T>& records) {
  Buffer out;
  ByteWriter writer(&out);
  writer.PutU64(records.size());
  for (const T& record : records) {
    Serde<T>::Write(&writer, record);
  }
  return out;
}

template <typename T>
std::vector<T> DeserializeVector(const Buffer& data) {
  ByteReader reader(data);
  const uint64_t count = reader.GetU64();
  std::vector<T> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    records.push_back(Serde<T>::Read(&reader));
  }
  return records;
}

}  // namespace monotasks

#endif  // MONOTASKS_SRC_API_SERDE_H_
