// Bridge from the threaded engine's metrics to the §6 performance model.
//
// The same model that predicts for the cluster simulator works on the real engine:
// per-stage monotask service times and byte counts are exactly the model's inputs.
// (The engine does not separate deserialization time inside its compute closures, so
// the §6.3 in-memory what-if is approximated from disk reads only — use Cache() and
// re-run for the exact answer.)
#ifndef MONOTASKS_SRC_API_ENGINE_MODEL_H_
#define MONOTASKS_SRC_API_ENGINE_MODEL_H_

#include <vector>

#include "src/api/context.h"
#include "src/model/monotasks_model.h"

namespace monotasks {

// Hardware profile of the in-process cluster, usable with monomodel.
inline monomodel::HardwareProfile EngineHardwareProfile(const EngineConfig& config) {
  monomodel::HardwareProfile profile;
  profile.num_machines = config.num_workers;
  profile.cores_per_machine = config.cores_per_worker;
  profile.disks_per_machine = config.disks_per_worker;
  profile.disk_bandwidth = config.disk_bandwidth;
  profile.nic_bandwidth = config.nic_bandwidth;
  return profile;
}

// Converts a completed engine job's metrics to model inputs. Times are wall-clock
// seconds; because devices are time-scaled, the matching hardware profile must use
// effective (scaled) rates — handled by `time_scale` here.
inline std::vector<monomodel::StageModelInput> ToModelInputs(
    const EngineJobMetrics& metrics) {
  std::vector<monomodel::StageModelInput> inputs;
  for (const auto& stage : metrics.stages) {
    monomodel::StageModelInput input;
    input.name = stage.name;
    input.cpu_seconds = stage.compute_seconds;
    input.disk_read_bytes = stage.disk_read_bytes;
    input.input_disk_read_bytes = monoutil::Bytes(0);  // Not separated by the engine's metrics.
    input.disk_write_bytes = stage.disk_write_bytes;
    input.network_bytes = stage.network_bytes;
    input.observed_seconds = stage.wall_seconds;
    inputs.push_back(std::move(input));
  }
  return inputs;
}

// Builds a model over an engine run. `config` must be the configuration the job ran
// with; device rates are scaled by time_scale so that wall-clock observations and
// byte counts are consistent.
inline monomodel::MonotasksModel BuildEngineModel(const EngineJobMetrics& metrics,
                                                  const EngineConfig& config) {
  monomodel::HardwareProfile profile = EngineHardwareProfile(config);
  profile.disk_bandwidth *= config.time_scale;
  profile.nic_bandwidth *= config.time_scale;
  return monomodel::MonotasksModel(ToModelInputs(metrics), profile);
}

}  // namespace monotasks

#endif  // MONOTASKS_SRC_API_ENGINE_MODEL_H_
