// Dataset<T>: the typed, Spark-like public API of the monotasks engine.
//
//   MonoClient client(config);
//   auto words = client.Parallelize<std::string>(lines, 8)
//                    .FlatMap<std::string>(SplitWords)
//                    .Map<std::pair<std::string, int64_t>>(PairWithOne)
//                    .ReduceByKey(Add, 8);
//   for (const auto& [word, count] : words.Collect()) { ... }
//
// Transformations are lazy: they build a logical plan that MonoContext turns into
// stages of multitasks, each decomposed into single-resource monotasks on the
// workers. Nothing in the API exposes (or needs) a tasks-per-machine knob — the
// per-resource schedulers decide concurrency (§7).
#ifndef MONOTASKS_SRC_API_DATASET_H_
#define MONOTASKS_SRC_API_DATASET_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/api/context.h"
#include "src/api/plan.h"
#include "src/api/serde.h"
#include "src/common/rng.h"

namespace monotasks {

template <typename T>
class Dataset;

// Owns the MonoContext and mints root datasets.
class MonoClient {
 public:
  explicit MonoClient(EngineConfig config = {}) : context_(config) {}

  MonoContext& context() { return context_; }

  // Splits `records` into `num_partitions` source partitions distributed across the
  // workers' disks (paying the write time) and returns a Dataset over them.
  template <typename T>
  Dataset<T> Parallelize(const std::vector<T>& records, int num_partitions);

  // A dataset over a source previously written with Dataset::Save.
  template <typename T>
  Dataset<T> FromSource(const std::string& name, int num_partitions);

  const EngineJobMetrics& last_job_metrics() const {
    return context_.last_job_metrics();
  }

 private:
  static std::atomic<uint64_t>& SourceCounter() {
    static std::atomic<uint64_t> counter{0};
    return counter;
  }
  template <typename T>
  friend class Dataset;

  MonoContext context_;
};

template <typename T>
class Dataset {
 public:
  Dataset(MonoClient* client, std::shared_ptr<const PlanNode> node)
      : client_(client), node_(std::move(node)) {}

  int num_partitions() const { return node_->num_partitions; }

  // ---- Narrow transformations (no shuffle) ----

  template <typename U>
  Dataset<U> Map(std::function<U(const T&)> fn) const {
    auto transform = [fn](const Buffer& in) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::vector<U> out;
      out.reserve(records.size());
      for (const T& record : records) {
        out.push_back(fn(record));
      }
      return SerializeVector<U>(out);
    };
    return Dataset<U>(client_, PlanNode::Narrow(node_, std::move(transform)));
  }

  Dataset<T> Filter(std::function<bool(const T&)> predicate) const {
    auto transform = [predicate](const Buffer& in) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::vector<T> out;
      for (T& record : records) {
        if (predicate(record)) {
          out.push_back(std::move(record));
        }
      }
      return SerializeVector<T>(out);
    };
    return Dataset<T>(client_, PlanNode::Narrow(node_, std::move(transform)));
  }

  // Keeps approximately `fraction` of the records, chosen deterministically from
  // `seed` (the same dataset sampled twice with one seed returns the same records).
  Dataset<T> Sample(double fraction, uint64_t seed = 7) const {
    MONO_CHECK(fraction >= 0.0 && fraction <= 1.0);
    auto transform = [fraction, seed](const Buffer& in) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::vector<T> out;
      monoutil::Rng rng(seed ^ std::hash<size_t>{}(records.size()));
      for (T& record : records) {
        if (rng.NextDouble() < fraction) {
          out.push_back(std::move(record));
        }
      }
      return SerializeVector<T>(out);
    };
    return Dataset<T>(client_, PlanNode::Narrow(node_, std::move(transform)));
  }

  template <typename U>
  Dataset<U> FlatMap(std::function<std::vector<U>(const T&)> fn) const {
    auto transform = [fn](const Buffer& in) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::vector<U> out;
      for (const T& record : records) {
        std::vector<U> expanded = fn(record);
        out.insert(out.end(), std::make_move_iterator(expanded.begin()),
                   std::make_move_iterator(expanded.end()));
      }
      return SerializeVector<U>(out);
    };
    return Dataset<U>(client_, PlanNode::Narrow(node_, std::move(transform)));
  }

  // ---- Wide transformations (shuffle) ----

  // Hash-repartitions by a key extractor. The result has `num_partitions` partitions
  // with all records of equal key co-located.
  template <typename K>
  Dataset<T> PartitionBy(std::function<K(const T&)> key_fn, int num_partitions) const {
    auto partition_fn = [key_fn](const Buffer& in, int num_out) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::vector<std::vector<T>> buckets(static_cast<size_t>(num_out));
      for (T& record : records) {
        const size_t bucket =
            std::hash<K>{}(key_fn(record)) % static_cast<size_t>(num_out);
        buckets[bucket].push_back(std::move(record));
      }
      std::vector<Buffer> out;
      out.reserve(buckets.size());
      for (const auto& bucket : buckets) {
        out.push_back(SerializeVector<T>(bucket));
      }
      return out;
    };
    auto merge_fn = [](std::vector<Buffer> buckets) {
      std::vector<T> merged;
      for (const Buffer& bucket : buckets) {
        std::vector<T> records = DeserializeVector<T>(bucket);
        merged.insert(merged.end(), std::make_move_iterator(records.begin()),
                      std::make_move_iterator(records.end()));
      }
      return SerializeVector<T>(merged);
    };
    return Dataset<T>(client_, PlanNode::Shuffle(node_, num_partitions,
                                                 std::move(partition_fn),
                                                 std::move(merge_fn)));
  }

  // Sorts records within hash partitions of the key (sorted runs per partition).
  template <typename K>
  Dataset<T> SortBy(std::function<K(const T&)> key_fn, int num_partitions) const {
    Dataset<T> partitioned = PartitionBy<K>(key_fn, num_partitions);
    auto transform = [key_fn](const Buffer& in) {
      std::vector<T> records = DeserializeVector<T>(in);
      std::sort(records.begin(), records.end(), [&key_fn](const T& a, const T& b) {
        return key_fn(a) < key_fn(b);
      });
      return SerializeVector<T>(records);
    };
    return Dataset<T>(client_, PlanNode::Narrow(partitioned.node_, std::move(transform)));
  }

  // ---- Actions ----

  std::vector<T> Collect() const {
    std::vector<Buffer> partitions = client_->context_.RunJob(node_);
    std::vector<T> out;
    for (const Buffer& partition : partitions) {
      std::vector<T> records = DeserializeVector<T>(partition);
      out.insert(out.end(), std::make_move_iterator(records.begin()),
                 std::make_move_iterator(records.end()));
    }
    return out;
  }

  int64_t Count() const {
    // Counting still moves the data through the engine; a production implementation
    // would add a per-partition pre-aggregation.
    return static_cast<int64_t>(Collect().size());
  }

  // Materializes the dataset as a named source on the workers' disks; read it back
  // with MonoClient::FromSource.
  void Save(const std::string& name) const {
    client_->context_.RunJobToSource(node_, name);
  }

  // Materializes the dataset in worker memory and returns a Dataset over the cached
  // partitions: downstream jobs skip the input disk reads entirely — the §6.3
  // "store input in memory" configuration, on the real engine.
  Dataset<T> Cache() const {
    std::vector<Buffer> partitions = client_->context_.RunJob(node_);
    const int num_partitions = static_cast<int>(partitions.size());
    const std::string name =
        "cache." + std::to_string(MonoClient::SourceCounter().fetch_add(1));
    client_->context_.CreateMemorySource(name, std::move(partitions));
    return Dataset<T>(client_, PlanNode::Source(name, num_partitions));
  }

 private:
  template <typename U>
  friend class Dataset;
  friend class MonoClient;

  MonoClient* client_;
  std::shared_ptr<const PlanNode> node_;

 public:
  // Escape hatch for free-function transformations (e.g. ReduceByKey) that need to
  // extend the plan; not part of the user-facing surface.
  MonoClient* client_for_extension() const { return client_; }
  const std::shared_ptr<const PlanNode>& node_for_extension() const { return node_; }
};

// Key-value convenience: ReduceByKey over Dataset<std::pair<K, V>>.
//
// Map-side combining happens in the partition function (each bucket is pre-reduced
// before it is shuffled), reduce-side merging in the merge function — both inside
// compute monotasks.
template <typename K, typename V>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& dataset,
                                     std::function<V(const V&, const V&)> reduce,
                                     int num_partitions) {
  using Record = std::pair<K, V>;
  auto combine = [reduce](std::vector<Record> records) {
    std::map<K, V> merged;
    for (Record& record : records) {
      auto [it, inserted] = merged.emplace(std::move(record.first),
                                           std::move(record.second));
      if (!inserted) {
        it->second = reduce(it->second, record.second);
      }
    }
    return std::vector<Record>(std::make_move_iterator(merged.begin()),
                               std::make_move_iterator(merged.end()));
  };

  auto partition_fn = [combine](const Buffer& in, int num_out) {
    std::vector<Record> records = DeserializeVector<Record>(in);
    std::vector<std::vector<Record>> buckets(static_cast<size_t>(num_out));
    for (Record& record : records) {
      const size_t bucket =
          std::hash<K>{}(record.first) % static_cast<size_t>(num_out);
      buckets[bucket].push_back(std::move(record));
    }
    std::vector<Buffer> out;
    out.reserve(buckets.size());
    for (auto& bucket : buckets) {
      out.push_back(SerializeVector<Record>(combine(std::move(bucket))));
    }
    return out;
  };
  auto merge_fn = [combine](std::vector<Buffer> fetched) {
    std::vector<Record> all;
    for (const Buffer& bucket : fetched) {
      std::vector<Record> records = DeserializeVector<Record>(bucket);
      all.insert(all.end(), std::make_move_iterator(records.begin()),
                 std::make_move_iterator(records.end()));
    }
    return SerializeVector<Record>(combine(std::move(all)));
  };

  return Dataset<Record>(
      dataset.client_for_extension(),
      PlanNode::Shuffle(dataset.node_for_extension(), num_partitions,
                        std::move(partition_fn), std::move(merge_fn)));
}

// Inner equi-join of two key-value datasets: both sides are hash-partitioned by key
// (a two-parent shuffle, like Spark's join / BDB query 3), and each reduce task
// builds a hash table from its left buckets and probes it with the right.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, W>>> Join(const Dataset<std::pair<K, V>>& left,
                                            const Dataset<std::pair<K, W>>& right,
                                            int num_partitions) {
  using Left = std::pair<K, V>;
  using Right = std::pair<K, W>;
  using Out = std::pair<K, std::pair<V, W>>;

  auto bucket = [](auto tag, const Buffer& in, int num_out) {
    using Record = decltype(tag);
    std::vector<Record> records = DeserializeVector<Record>(in);
    std::vector<std::vector<Record>> buckets(static_cast<size_t>(num_out));
    for (Record& record : records) {
      const size_t b = std::hash<K>{}(record.first) % static_cast<size_t>(num_out);
      buckets[b].push_back(std::move(record));
    }
    std::vector<Buffer> out;
    out.reserve(buckets.size());
    for (const auto& records_for_bucket : buckets) {
      out.push_back(SerializeVector<Record>(records_for_bucket));
    }
    return out;
  };
  auto partition_left = [bucket](const Buffer& in, int num_out) {
    return bucket(Left{}, in, num_out);
  };
  auto partition_right = [bucket](const Buffer& in, int num_out) {
    return bucket(Right{}, in, num_out);
  };

  auto merge2 = [](std::vector<Buffer> left_buckets, std::vector<Buffer> right_buckets) {
    std::multimap<K, V> table;
    for (const Buffer& bucket_data : left_buckets) {
      for (Left& record : DeserializeVector<Left>(bucket_data)) {
        table.emplace(std::move(record.first), std::move(record.second));
      }
    }
    std::vector<Out> joined;
    for (const Buffer& bucket_data : right_buckets) {
      for (Right& record : DeserializeVector<Right>(bucket_data)) {
        auto [lo, hi] = table.equal_range(record.first);
        for (auto it = lo; it != hi; ++it) {
          joined.emplace_back(record.first, std::make_pair(it->second, record.second));
        }
      }
    }
    return SerializeVector<Out>(joined);
  };

  return Dataset<Out>(
      left.client_for_extension(),
      PlanNode::CoGroup(left.node_for_extension(), right.node_for_extension(),
                        num_partitions, std::move(partition_left),
                        std::move(partition_right), std::move(merge2)));
}

template <typename T>
Dataset<T> MonoClient::Parallelize(const std::vector<T>& records, int num_partitions) {
  MONO_CHECK(num_partitions >= 1);
  std::vector<std::vector<T>> split(static_cast<size_t>(num_partitions));
  for (size_t i = 0; i < records.size(); ++i) {
    split[i % static_cast<size_t>(num_partitions)].push_back(records[i]);
  }
  std::vector<Buffer> partitions;
  partitions.reserve(split.size());
  for (const auto& part : split) {
    partitions.push_back(SerializeVector<T>(part));
  }
  const std::string name =
      "parallelize." + std::to_string(SourceCounter().fetch_add(1));
  context_.CreateSource(name, std::move(partitions));
  return Dataset<T>(this, PlanNode::Source(name, num_partitions));
}

template <typename T>
Dataset<T> MonoClient::FromSource(const std::string& name, int num_partitions) {
  return Dataset<T>(this, PlanNode::Source(name, num_partitions));
}

}  // namespace monotasks

#endif  // MONOTASKS_SRC_API_DATASET_H_
