#include "src/api/context.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <utility>

#include "src/common/check.h"

namespace monotasks {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

// ---------- internal structures ----------

struct MonoContext::SourceBlock {
  int worker = 0;
  // Disk index holding the block, or kInMemory for cached (memory-resident) blocks.
  static constexpr int kInMemory = -1;
  int disk = 0;
  std::string block_id;
  // Payload for in-memory blocks (disk == kInMemory).
  std::shared_ptr<const Buffer> cached;
};

// Where one map task's shuffle output lives and how it is sliced per reducer.
struct MonoContext::ShuffleSegment {
  int worker = 0;
  int disk = 0;
  std::string block_id;
  std::vector<std::pair<size_t, size_t>> ranges;  // Per reduce partition: offset, len.
};

struct MonoContext::StagePlan {
  std::string name;
  int num_tasks = 0;
  // Input: exactly one of these.
  bool reads_source = false;
  std::string source_name;
  bool reads_shuffle = false;
  std::function<Buffer(std::vector<Buffer>)> merge_fn;
  // Two-parent (cogroup/join) input: the right sub-plan is executed as its own
  // stage chain whose final stage buckets with partition_fn2.
  bool reads_cogroup = false;
  std::function<Buffer(std::vector<Buffer>, std::vector<Buffer>)> merge2_fn;
  std::shared_ptr<const PlanNode> right_plan;
  std::function<std::vector<Buffer>(const Buffer&, int)> right_partition_fn;
  // Body.
  std::vector<std::function<Buffer(const Buffer&)>> transforms;
  // Output.
  bool writes_shuffle = false;
  int shuffle_out_partitions = 0;
  std::function<std::vector<Buffer>(const Buffer&, int)> partition_fn;
};

// ---------- construction ----------

MonoContext::MonoContext(EngineConfig config) : config_(config) {
  MONO_CHECK(config.num_workers >= 1);
  fabric_ = std::make_unique<InProcessFabric>(config.num_workers, config.nic_bandwidth,
                                              config.time_scale);
  for (int w = 0; w < config.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, config, fabric_.get()));
  }
}

MonoContext::~MonoContext() {
  // Quiesce every worker's scheduler threads before any worker is destroyed:
  // shuffle serves (SubmitDetached) let one worker's threads submit into
  // another worker's schedulers, so destruction must not start while any
  // engine thread is alive (Worker::Shutdown).
  for (auto& worker : workers_) {
    worker->Shutdown();
  }
}

int MonoContext::CreateSource(const std::string& name, std::vector<Buffer> partitions) {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  MONO_CHECK_MSG(sources_.find(name) == sources_.end(), "source already exists");
  std::vector<SourceBlock> blocks;
  for (size_t p = 0; p < partitions.size(); ++p) {
    SourceBlock block;
    block.worker = static_cast<int>(p) % num_workers();
    Worker& worker = *workers_[static_cast<size_t>(block.worker)];
    block.disk = static_cast<int>(p / static_cast<size_t>(num_workers())) %
                 worker.num_disks();
    block.block_id = name + "." + std::to_string(p);
    worker.disk(block.disk).Write(block.block_id, std::move(partitions[p]));
    blocks.push_back(std::move(block));
  }
  const int count = static_cast<int>(blocks.size());
  sources_.emplace(name, std::move(blocks));
  return count;
}

int MonoContext::CreateMemorySource(const std::string& name,
                                    std::vector<Buffer> partitions) {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  MONO_CHECK_MSG(sources_.find(name) == sources_.end(), "source already exists");
  std::vector<SourceBlock> blocks;
  for (size_t p = 0; p < partitions.size(); ++p) {
    SourceBlock block;
    block.worker = static_cast<int>(p) % num_workers();
    block.disk = SourceBlock::kInMemory;
    block.block_id = name + "." + std::to_string(p);
    block.cached = std::make_shared<const Buffer>(std::move(partitions[p]));
    blocks.push_back(std::move(block));
  }
  const int count = static_cast<int>(blocks.size());
  sources_.emplace(name, std::move(blocks));
  return count;
}

// ---------- planning ----------

std::vector<MonoContext::StagePlan> MonoContext::BuildStages(
    const std::shared_ptr<const PlanNode>& root) const {
  // Collect the chain source-first.
  std::vector<const PlanNode*> chain;
  for (const PlanNode* node = root.get(); node != nullptr; node = node->parent.get()) {
    chain.push_back(node);
  }
  std::reverse(chain.begin(), chain.end());
  MONO_CHECK_MSG(chain.front()->kind == PlanNode::Kind::kSource,
                 "plan must begin at a source");

  std::vector<StagePlan> stages;
  StagePlan current;
  current.reads_source = true;
  current.source_name = chain.front()->source_name;
  current.num_tasks = chain.front()->num_partitions;
  for (size_t i = 1; i < chain.size(); ++i) {
    const PlanNode* node = chain[i];
    switch (node->kind) {
      case PlanNode::Kind::kSource:
        MONO_CHECK_MSG(false, "source in the middle of a plan");
        break;
      case PlanNode::Kind::kNarrow:
        current.transforms.push_back(node->transform);
        break;
      case PlanNode::Kind::kShuffle: {
        current.writes_shuffle = true;
        current.shuffle_out_partitions = node->num_partitions;
        current.partition_fn = node->partition_fn;
        current.name = "stage" + std::to_string(stage_counter_.fetch_add(1));
        stages.push_back(std::move(current));
        current = StagePlan{};
        current.reads_shuffle = true;
        current.merge_fn = node->merge_fn;
        current.num_tasks = node->num_partitions;
        break;
      }
      case PlanNode::Kind::kCoGroup: {
        // Left side: the chain we are walking buckets with partition_fn.
        current.writes_shuffle = true;
        current.shuffle_out_partitions = node->num_partitions;
        current.partition_fn = node->partition_fn;
        current.name = "stage" + std::to_string(stage_counter_.fetch_add(1));
        stages.push_back(std::move(current));
        // The joining stage: consumes the left shuffle plus the right sub-plan's.
        current = StagePlan{};
        current.reads_cogroup = true;
        current.merge2_fn = node->merge2_fn;
        current.right_plan = node->parent2;
        current.right_partition_fn = node->partition_fn2;
        current.num_tasks = node->num_partitions;
        break;
      }
    }
  }
  current.name = "stage" + std::to_string(stage_counter_.fetch_add(1));
  stages.push_back(std::move(current));
  return stages;
}

// ---------- stage execution ----------

class MonoContext::StageRunner {
 public:
  StageRunner(MonoContext* ctx, const StagePlan& plan,
              const std::vector<ShuffleSegment>* input_shuffle,
              const std::vector<ShuffleSegment>* input_shuffle2,
              std::vector<ShuffleSegment>* output_shuffle,
              std::vector<Buffer>* collected, std::string save_as,
              EngineStageMetrics* metrics)
      : ctx_(ctx),
        plan_(plan),
        input_shuffle_(input_shuffle),
        input_shuffle2_(input_shuffle2),
        output_shuffle_(output_shuffle),
        collected_(collected),
        save_as_(std::move(save_as)),
        metrics_(metrics),
        local_queue_(static_cast<size_t>(ctx->num_workers())),
        active_(static_cast<size_t>(ctx->num_workers()), 0) {}

  void Run() {
    remaining_ = plan_.num_tasks;
    if (collected_ != nullptr) {
      collected_->assign(static_cast<size_t>(plan_.num_tasks), Buffer{});
    }
    if (output_shuffle_ != nullptr) {
      output_shuffle_->assign(static_cast<size_t>(plan_.num_tasks), ShuffleSegment{});
    }
    // Build locality queues.
    if (plan_.reads_source) {
      const auto& blocks = ctx_->sources_.at(plan_.source_name);
      MONO_CHECK_MSG(static_cast<int>(blocks.size()) == plan_.num_tasks,
                     "stage task count must match the source partition count");
      for (int t = 0; t < plan_.num_tasks; ++t) {
        local_queue_[static_cast<size_t>(blocks[static_cast<size_t>(t)].worker)]
            .push_back(t);
      }
    } else {
      for (int t = 0; t < plan_.num_tasks; ++t) {
        any_queue_.push_back(t);
      }
    }
    const auto start = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Breadth-first initial fill.
      bool assigned = true;
      while (assigned) {
        assigned = false;
        for (int w = 0; w < ctx_->num_workers(); ++w) {
          if (AssignOneLocked(w)) {
            assigned = true;
          }
        }
      }
      cv_.wait(lock, [this] { return remaining_ == 0; });
    }
    metrics_->wall_seconds = SecondsSince(start);
    metrics_->num_tasks = plan_.num_tasks;
    metrics_->name = plan_.name;
  }

 private:
  // Must hold mutex_. Returns true if a task was launched on `worker`.
  bool AssignOneLocked(int worker) {
    Worker& w = ctx_->worker(worker);
    // Task-thread mode has slots (= cores), the knob monotasks removes (§7); the
    // monotasks mode uses the §3.4 formula.
    const int limit = ctx_->config_.mode == ExecutionMode::kTaskThreads
                          ? ctx_->config_.cores_per_worker
                          : w.MultitaskLimit();
    if (active_[static_cast<size_t>(worker)] >= limit) {
      return false;
    }
    int task = -1;
    auto& local = local_queue_[static_cast<size_t>(worker)];
    if (!local.empty()) {
      task = local.front();
      local.pop_front();
    } else if (!any_queue_.empty()) {
      task = any_queue_.front();
      any_queue_.pop_front();
    } else {
      // Steal from the most-loaded local queue.
      size_t best = 0;
      size_t best_size = 0;
      for (size_t q = 0; q < local_queue_.size(); ++q) {
        if (local_queue_[q].size() > best_size) {
          best = q;
          best_size = local_queue_[q].size();
        }
      }
      if (best_size == 0) {
        return false;
      }
      task = local_queue_[best].front();
      local_queue_[best].pop_front();
    }
    ++active_[static_cast<size_t>(worker)];
    LaunchTask(task, worker);
    return true;
  }

  void OnTaskDone(int worker) {
    const std::lock_guard<std::mutex> lock(mutex_);
    --active_[static_cast<size_t>(worker)];
    --remaining_;
    if (remaining_ == 0) {
      cv_.notify_all();
      return;
    }
    while (AssignOneLocked(worker)) {
    }
  }

  void AddMetrics(double* field, double seconds) {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    *field += seconds;
  }
  void AddBytes(monoutil::Bytes* field, monoutil::Bytes bytes) {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    *field += bytes;
  }

  // Unified view over the one or two input shuffle segment vectors.
  size_t TotalSegments() const {
    size_t total = input_shuffle_ != nullptr ? input_shuffle_->size() : 0;
    if (input_shuffle2_ != nullptr) {
      total += input_shuffle2_->size();
    }
    return total;
  }
  const ShuffleSegment& SegmentAt(size_t index) const {
    const size_t left = input_shuffle_->size();
    if (index < left) {
      return (*input_shuffle_)[index];
    }
    return (*input_shuffle2_)[index - left];
  }

  void LaunchTask(int task, int worker_index);
  void LaunchTaskThread(int task, int worker_index);

  MonoContext* ctx_;
  const StagePlan& plan_;
  const std::vector<ShuffleSegment>* input_shuffle_;
  const std::vector<ShuffleSegment>* input_shuffle2_;
  std::vector<ShuffleSegment>* output_shuffle_;
  std::vector<Buffer>* collected_;
  const std::string save_as_;
  EngineStageMetrics* metrics_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<int>> local_queue_;
  std::deque<int> any_queue_;
  std::vector<int> active_;
  int remaining_ = 0;
  std::mutex metrics_mutex_;
};

void MonoContext::StageRunner::LaunchTask(int task, int worker_index) {
  if (ctx_->config_.mode == ExecutionMode::kTaskThreads) {
    LaunchTaskThread(task, worker_index);
    return;
  }
  Worker& worker = ctx_->worker(worker_index);

  // Shared mutable state of this multitask, owned by the closures.
  struct TaskData {
    Buffer input;                  // Source-read input.
    std::vector<Buffer> fetched;   // Shuffle: one buffer per map task.
    Buffer output;                 // Serialized block to write / collect.
    std::vector<std::pair<size_t, size_t>> out_ranges;  // Shuffle output slices.
  };
  auto data = std::make_shared<TaskData>();

  std::vector<std::unique_ptr<Monotask>> tasks;
  std::vector<std::pair<Monotask*, Monotask*>> edges;
  std::vector<Monotask*> inputs;

  if (plan_.reads_source) {
    // Copied under the catalog lock: disk-write completions of this very stage
    // insert the save-target key into sources_ concurrently (tree rebalance),
    // so even reads of a pre-existing key must synchronize.
    SourceBlock block;
    {
      const std::lock_guard<std::mutex> lock(ctx_->catalog_mutex_);
      block = ctx_->sources_.at(plan_.source_name)[static_cast<size_t>(task)];
    }
    if (block.disk == SourceBlock::kInMemory) {
      if (block.worker == worker_index) {
        // Cached locally: no input monotask at all; hand the buffer to compute.
        data->input = *block.cached;
      } else {
        // Cached on another worker: a network monotask pays only the transfer.
        auto fetch = std::make_unique<FunctionMonotask>(
            ResourceType::kNetwork, "fetch-cached:" + block.block_id,
            [this, data, worker_index, block] {
              const auto start = std::chrono::steady_clock::now();
              ctx_->fabric_->Transfer(block.worker, worker_index,
                                      static_cast<monoutil::Bytes>(block.cached->size()));
              data->input = *block.cached;
              AddBytes(&metrics_->network_bytes,
                       static_cast<monoutil::Bytes>(data->input.size()));
              AddMetrics(&metrics_->network_seconds, SecondsSince(start));
            });
        inputs.push_back(fetch.get());
        tasks.push_back(std::move(fetch));
      }
    } else if (block.worker == worker_index) {
      auto read = std::make_unique<FunctionMonotask>(
          ResourceType::kDisk, "read:" + block.block_id,
          [this, data, &worker, block] {
            const auto start = std::chrono::steady_clock::now();
            data->input = worker.disk(block.disk).Read(block.block_id);
            AddMetrics(&metrics_->disk_read_seconds, SecondsSince(start));
            AddBytes(&metrics_->disk_read_bytes,
                     static_cast<monoutil::Bytes>(data->input.size()));
          });
      read->disk_index = block.disk;
      read->disk_queue = DiskQueue::kRead;
      inputs.push_back(read.get());
      tasks.push_back(std::move(read));
    } else {
      // Remote block: a network monotask that has the block served by the home
      // worker's disk scheduler, then pays for the transfer.
      auto fetch = std::make_unique<FunctionMonotask>(
          ResourceType::kNetwork, "fetch:" + block.block_id,
          [this, data, worker_index, block] {
            const auto start = std::chrono::steady_clock::now();
            Worker& home = ctx_->worker(block.worker);
            auto buffer = std::make_shared<Buffer>();
            std::promise<void> served;
            auto serve = std::make_unique<FunctionMonotask>(
                ResourceType::kDisk, "serve:" + block.block_id,
                [this, buffer, &home, block] {
                  const auto serve_start = std::chrono::steady_clock::now();
                  *buffer = home.disk(block.disk).Read(block.block_id);
                  AddMetrics(&metrics_->disk_read_seconds, SecondsSince(serve_start));
                  AddBytes(&metrics_->disk_read_bytes,
                           static_cast<monoutil::Bytes>(buffer->size()));
                });
            serve->disk_index = block.disk;
            serve->disk_queue = DiskQueue::kServe;
            // mono_lint: allow(escaping-capture) -- this frame blocks on the future below until the callback fires.
            home.SubmitDetached(std::move(serve), [&served] { served.set_value(); });
            served.get_future().wait();
            ctx_->fabric_->Transfer(block.worker, worker_index,
                                    static_cast<monoutil::Bytes>(buffer->size()));
            data->input = std::move(*buffer);
            AddBytes(&metrics_->network_bytes,
                     static_cast<monoutil::Bytes>(data->input.size()));
            AddMetrics(&metrics_->network_seconds, SecondsSince(start));
          });
      inputs.push_back(fetch.get());
      tasks.push_back(std::move(fetch));
    }
  }

  if (plan_.reads_shuffle || plan_.reads_cogroup) {
    MONO_CHECK(input_shuffle_ != nullptr);
    const size_t total_segments = TotalSegments();
    data->fetched.assign(total_segments, Buffer{});

    // Local portions: one disk-read monotask per local disk holding segments.
    std::vector<std::vector<int>> per_disk(
        static_cast<size_t>(worker.num_disks()));
    std::vector<int> remote_segments;
    for (size_t m = 0; m < total_segments; ++m) {
      if (SegmentAt(m).worker == worker_index) {
        per_disk[static_cast<size_t>(SegmentAt(m).disk)].push_back(static_cast<int>(m));
      } else {
        remote_segments.push_back(static_cast<int>(m));
      }
    }
    for (int d = 0; d < worker.num_disks(); ++d) {
      if (per_disk[static_cast<size_t>(d)].empty()) {
        continue;
      }
      auto read = std::make_unique<FunctionMonotask>(
          ResourceType::kDisk, "shuffle-read-local",
          [this, data, &worker, d, task,
           segment_ids = per_disk[static_cast<size_t>(d)]] {
            const auto start = std::chrono::steady_clock::now();
            monoutil::Bytes bytes;
            for (int m : segment_ids) {
              const ShuffleSegment& segment = SegmentAt(static_cast<size_t>(m));
              const auto [offset, length] =
                  segment.ranges[static_cast<size_t>(task)];
              data->fetched[static_cast<size_t>(m)] =
                  worker.disk(d).ReadRange(segment.block_id, offset, length);
              bytes += static_cast<monoutil::Bytes>(length);
            }
            AddMetrics(&metrics_->disk_read_seconds, SecondsSince(start));
            AddBytes(&metrics_->disk_read_bytes, bytes);
          });
      read->disk_index = d;
      read->disk_queue = DiskQueue::kRead;
      inputs.push_back(read.get());
      tasks.push_back(std::move(read));
    }

    if (!remote_segments.empty()) {
      // One network monotask performs this multitask's whole remote fetch set, so
      // the receiver-side scheduler admits it as a unit (§3.3).
      auto fetch = std::make_unique<FunctionMonotask>(
          ResourceType::kNetwork, "shuffle-fetch",
          [this, data, worker_index, task, remote_segments] {
            const auto start = std::chrono::steady_clock::now();
            struct PendingFetch {
              int segment;
              std::shared_ptr<Buffer> buffer;
              std::promise<void> served;
            };
            std::vector<std::unique_ptr<PendingFetch>> pending;
            // Issue every serve read up front; they queue on the remote disks.
            for (int m : remote_segments) {
              const ShuffleSegment& segment = SegmentAt(static_cast<size_t>(m));
              auto fetch_state = std::make_unique<PendingFetch>();
              fetch_state->segment = m;
              fetch_state->buffer = std::make_shared<Buffer>();
              Worker& home = ctx_->worker(segment.worker);
              const auto [offset, length] = segment.ranges[static_cast<size_t>(task)];
              auto serve = std::make_unique<FunctionMonotask>(
                  ResourceType::kDisk, "shuffle-serve",
                  [this, buffer = fetch_state->buffer, &home, segment, offset = offset,
                   length = length] {
                    const auto serve_start = std::chrono::steady_clock::now();
                    *buffer = home.disk(segment.disk)
                                  .ReadRange(segment.block_id, offset, length);
                    AddMetrics(&metrics_->disk_read_seconds, SecondsSince(serve_start));
                    AddBytes(&metrics_->disk_read_bytes,
                             static_cast<monoutil::Bytes>(length));
                  });
              serve->disk_index = segment.disk;
              serve->disk_queue = DiskQueue::kServe;
              PendingFetch* raw = fetch_state.get();
              home.SubmitDetached(std::move(serve), [raw] { raw->served.set_value(); });
              pending.push_back(std::move(fetch_state));
            }
            // Collect each portion as it is served, paying the transfer time.
            monoutil::Bytes bytes;
            for (auto& fetch_state : pending) {
              fetch_state->served.get_future().wait();
              const ShuffleSegment& segment =
                  SegmentAt(static_cast<size_t>(fetch_state->segment));
              ctx_->fabric_->Transfer(
                  segment.worker, worker_index,
                  static_cast<monoutil::Bytes>(fetch_state->buffer->size()));
              bytes += static_cast<monoutil::Bytes>(fetch_state->buffer->size());
              data->fetched[static_cast<size_t>(fetch_state->segment)] =
                  std::move(*fetch_state->buffer);
            }
            AddBytes(&metrics_->network_bytes, bytes);
            AddMetrics(&metrics_->network_seconds, SecondsSince(start));
          });
      inputs.push_back(fetch.get());
      tasks.push_back(std::move(fetch));
    }
  }

  // The compute monotask: merge / transform / (bucket for shuffle output).
  auto compute = std::make_unique<FunctionMonotask>(
      ResourceType::kCpu, plan_.name + ".compute",
      [this, data, task] {
        const auto start = std::chrono::steady_clock::now();
        Buffer current;
        if (plan_.reads_cogroup) {
          const size_t left_count = input_shuffle_->size();
          std::vector<Buffer> left(
              std::make_move_iterator(data->fetched.begin()),
              std::make_move_iterator(data->fetched.begin() +
                                      static_cast<ptrdiff_t>(left_count)));
          std::vector<Buffer> right(
              std::make_move_iterator(data->fetched.begin() +
                                      static_cast<ptrdiff_t>(left_count)),
              std::make_move_iterator(data->fetched.end()));
          current = plan_.merge2_fn(std::move(left), std::move(right));
        } else if (plan_.reads_shuffle) {
          current = plan_.merge_fn(std::move(data->fetched));
        } else {
          current = std::move(data->input);
        }
        for (const auto& transform : plan_.transforms) {
          current = transform(current);
        }
        if (plan_.writes_shuffle) {
          std::vector<Buffer> buckets =
              plan_.partition_fn(current, plan_.shuffle_out_partitions);
          MONO_CHECK(static_cast<int>(buckets.size()) == plan_.shuffle_out_partitions);
          Buffer blob;
          data->out_ranges.clear();
          for (const Buffer& bucket : buckets) {
            data->out_ranges.emplace_back(blob.size(), bucket.size());
            blob.insert(blob.end(), bucket.begin(), bucket.end());
          }
          data->output = std::move(blob);
        } else {
          data->output = std::move(current);
        }
        (void)task;
        AddMetrics(&metrics_->compute_seconds, SecondsSince(start));
      });
  Monotask* compute_ptr = compute.get();
  for (Monotask* input : inputs) {
    edges.emplace_back(input, compute_ptr);
  }
  tasks.push_back(std::move(compute));

  // Output monotask.
  const bool writes_disk = plan_.writes_shuffle || !save_as_.empty();
  if (writes_disk) {
    const int disk = worker.PickWriteDisk();
    const std::string block_id = plan_.writes_shuffle
                                     ? "shuffle." + plan_.name + "." + std::to_string(task)
                                     : save_as_ + "." + std::to_string(task);
    auto write = std::make_unique<FunctionMonotask>(
        ResourceType::kDisk, "write:" + block_id,
        [this, data, &worker, disk, block_id, task, worker_index] {
          const auto start = std::chrono::steady_clock::now();
          const auto bytes = static_cast<monoutil::Bytes>(data->output.size());
          worker.disk(disk).Write(block_id, std::move(data->output));
          AddMetrics(&metrics_->disk_write_seconds, SecondsSince(start));
          AddBytes(&metrics_->disk_write_bytes, bytes);
          if (plan_.writes_shuffle) {
            ShuffleSegment segment;
            segment.worker = worker_index;
            segment.disk = disk;
            segment.block_id = block_id;
            segment.ranges = data->out_ranges;
            (*output_shuffle_)[static_cast<size_t>(task)] = std::move(segment);
          } else {
            const std::lock_guard<std::mutex> lock(ctx_->catalog_mutex_);
            auto& blocks = ctx_->sources_[save_as_];
            if (blocks.size() < static_cast<size_t>(plan_.num_tasks)) {
              blocks.resize(static_cast<size_t>(plan_.num_tasks));
            }
            blocks[static_cast<size_t>(task)] =
                SourceBlock{worker_index, disk, block_id};
          }
        });
    write->disk_index = disk;
    write->disk_queue = DiskQueue::kWrite;
    edges.emplace_back(compute_ptr, write.get());
    tasks.push_back(std::move(write));
  } else {
    // Collected output: stash the buffer at compute completion (no disk involved).
    auto stash = std::make_unique<FunctionMonotask>(
        ResourceType::kCpu, "collect",
        [this, data, task] {
          const std::lock_guard<std::mutex> lock(metrics_mutex_);
          (*collected_)[static_cast<size_t>(task)] = std::move(data->output);
        });
    edges.emplace_back(compute_ptr, stash.get());
    tasks.push_back(std::move(stash));
  }

  worker.dag_scheduler().SubmitDag(std::move(tasks), edges,
                                   // mono_lint: allow(escaping-capture) -- the runner joins every task before it is destroyed.
                                   [this, worker_index] { OnTaskDone(worker_index); });
}

// The baseline architecture: the entire multitask runs on one slot thread, doing its
// own I/O against the shared devices. No per-resource scheduling, no receiver-side
// admission — concurrent tasks contend however they happen to interleave, and the
// only per-task measurement available afterwards is wall time.
void MonoContext::StageRunner::LaunchTaskThread(int task, int worker_index) {
  Worker& worker = ctx_->worker(worker_index);
  auto body = std::make_unique<FunctionMonotask>(
      ResourceType::kCpu, plan_.name + ".task",
      [this, task, worker_index, &worker] {
        // ---- Input ----
        Buffer current;
        if (plan_.reads_source) {
          // Copied under the catalog lock, as in the monotask path: concurrent
          // save-target inserts rebalance the sources_ tree.
          SourceBlock block;
          {
            const std::lock_guard<std::mutex> lock(ctx_->catalog_mutex_);
            block = ctx_->sources_.at(plan_.source_name)[static_cast<size_t>(task)];
          }
          const auto start = std::chrono::steady_clock::now();
          if (block.disk == SourceBlock::kInMemory) {
            current = *block.cached;
            if (block.worker != worker_index) {
              ctx_->fabric_->Transfer(block.worker, worker_index,
                                      static_cast<monoutil::Bytes>(current.size()));
              AddBytes(&metrics_->network_bytes,
                       static_cast<monoutil::Bytes>(current.size()));
            }
            AddMetrics(&metrics_->network_seconds, SecondsSince(start));
          } else {
            Worker& home = ctx_->worker(block.worker);
            current = home.disk(block.disk).Read(block.block_id);
            AddBytes(&metrics_->disk_read_bytes,
                     static_cast<monoutil::Bytes>(current.size()));
            if (block.worker != worker_index) {
              ctx_->fabric_->Transfer(block.worker, worker_index,
                                      static_cast<monoutil::Bytes>(current.size()));
              AddBytes(&metrics_->network_bytes,
                       static_cast<monoutil::Bytes>(current.size()));
            }
            AddMetrics(&metrics_->disk_read_seconds, SecondsSince(start));
          }
        } else if (plan_.reads_shuffle || plan_.reads_cogroup) {
          const size_t total_segments = TotalSegments();
          std::vector<Buffer> fetched(total_segments);
          const auto start = std::chrono::steady_clock::now();
          for (size_t m = 0; m < total_segments; ++m) {
            const ShuffleSegment& segment = SegmentAt(m);
            const auto [offset, length] = segment.ranges[static_cast<size_t>(task)];
            Worker& home = ctx_->worker(segment.worker);
            fetched[m] = home.disk(segment.disk).ReadRange(segment.block_id, offset,
                                                           length);
            AddBytes(&metrics_->disk_read_bytes,
                     static_cast<monoutil::Bytes>(length));
            if (segment.worker != worker_index) {
              ctx_->fabric_->Transfer(segment.worker, worker_index,
                                      static_cast<monoutil::Bytes>(length));
              AddBytes(&metrics_->network_bytes,
                       static_cast<monoutil::Bytes>(length));
            }
          }
          AddMetrics(&metrics_->network_seconds, SecondsSince(start));
          const auto merge_start = std::chrono::steady_clock::now();
          if (plan_.reads_cogroup) {
            const size_t left_count = input_shuffle_->size();
            std::vector<Buffer> left(
                std::make_move_iterator(fetched.begin()),
                std::make_move_iterator(fetched.begin() +
                                        static_cast<ptrdiff_t>(left_count)));
            std::vector<Buffer> right(
                std::make_move_iterator(fetched.begin() +
                                        static_cast<ptrdiff_t>(left_count)),
                std::make_move_iterator(fetched.end()));
            current = plan_.merge2_fn(std::move(left), std::move(right));
          } else {
            current = plan_.merge_fn(std::move(fetched));
          }
          AddMetrics(&metrics_->compute_seconds, SecondsSince(merge_start));
        }

        // ---- Compute ----
        const auto compute_start = std::chrono::steady_clock::now();
        for (const auto& transform : plan_.transforms) {
          current = transform(current);
        }
        Buffer output;
        std::vector<std::pair<size_t, size_t>> out_ranges;
        if (plan_.writes_shuffle) {
          std::vector<Buffer> buckets =
              plan_.partition_fn(current, plan_.shuffle_out_partitions);
          for (const Buffer& bucket : buckets) {
            out_ranges.emplace_back(output.size(), bucket.size());
            output.insert(output.end(), bucket.begin(), bucket.end());
          }
        } else {
          output = std::move(current);
        }
        AddMetrics(&metrics_->compute_seconds, SecondsSince(compute_start));

        // ---- Output ----
        const bool writes_disk = plan_.writes_shuffle || !save_as_.empty();
        if (writes_disk) {
          const int disk = worker.PickWriteDisk();
          const std::string block_id =
              plan_.writes_shuffle
                  ? "shuffle." + plan_.name + "." + std::to_string(task)
                  : save_as_ + "." + std::to_string(task);
          const auto write_start = std::chrono::steady_clock::now();
          const auto bytes = static_cast<monoutil::Bytes>(output.size());
          worker.disk(disk).Write(block_id, std::move(output));
          AddMetrics(&metrics_->disk_write_seconds, SecondsSince(write_start));
          AddBytes(&metrics_->disk_write_bytes, bytes);
          if (plan_.writes_shuffle) {
            ShuffleSegment segment;
            segment.worker = worker_index;
            segment.disk = disk;
            segment.block_id = block_id;
            segment.ranges = std::move(out_ranges);
            (*output_shuffle_)[static_cast<size_t>(task)] = std::move(segment);
          } else {
            const std::lock_guard<std::mutex> lock(ctx_->catalog_mutex_);
            auto& blocks = ctx_->sources_[save_as_];
            if (blocks.size() < static_cast<size_t>(plan_.num_tasks)) {
              blocks.resize(static_cast<size_t>(plan_.num_tasks));
            }
            blocks[static_cast<size_t>(task)] =
                SourceBlock{worker_index, disk, block_id};
          }
        } else {
          const std::lock_guard<std::mutex> lock(metrics_mutex_);
          (*collected_)[static_cast<size_t>(task)] = std::move(output);
        }
      });
  worker.SubmitDetached(std::move(body),
                        // mono_lint: allow(escaping-capture) -- the runner joins every task before it is destroyed.
                        [this, worker_index] { OnTaskDone(worker_index); });
}

// ---------- job execution ----------

std::vector<MonoContext::ShuffleSegment> MonoContext::RunToShuffle(
    const std::shared_ptr<const PlanNode>& root,
    const std::function<std::vector<Buffer>(const Buffer&, int)>& partition_fn,
    int num_out_partitions) {
  std::vector<StagePlan> stages = BuildStages(root);
  // The sub-plan's final stage buckets its output for the consuming join stage.
  StagePlan& last = stages.back();
  MONO_CHECK_MSG(!last.writes_shuffle, "sub-plan already ends in a shuffle write");
  last.writes_shuffle = true;
  last.shuffle_out_partitions = num_out_partitions;
  last.partition_fn = partition_fn;

  std::vector<ShuffleSegment> shuffle_in;
  std::vector<ShuffleSegment> shuffle_out;
  for (size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& plan = stages[s];
    shuffle_out.clear();
    std::vector<ShuffleSegment> right_shuffle;
    if (plan.reads_cogroup) {
      right_shuffle = RunToShuffle(plan.right_plan, plan.right_partition_fn,
                                   plan.num_tasks);
    }
    EngineStageMetrics metrics;
    StageRunner runner(this, plan,
                       (plan.reads_shuffle || plan.reads_cogroup) ? &shuffle_in : nullptr,
                       plan.reads_cogroup ? &right_shuffle : nullptr,
                       &shuffle_out, nullptr, std::string(), &metrics);
    runner.Run();
    last_metrics_.stages.push_back(std::move(metrics));
    shuffle_in = std::move(shuffle_out);
  }
  return shuffle_in;
}

std::vector<Buffer> MonoContext::RunJob(const std::shared_ptr<const PlanNode>& root) {
  return Execute(root, "");
}

void MonoContext::RunJobToSource(const std::shared_ptr<const PlanNode>& root,
                                 const std::string& name) {
  {
    const std::lock_guard<std::mutex> lock(catalog_mutex_);
    MONO_CHECK_MSG(sources_.find(name) == sources_.end(), "source already exists");
  }
  Execute(root, name);
}

std::vector<Buffer> MonoContext::Execute(const std::shared_ptr<const PlanNode>& root,
                                         const std::string& save_as) {
  const std::vector<StagePlan> stages = BuildStages(root);
  last_metrics_ = EngineJobMetrics{};
  const auto job_start = std::chrono::steady_clock::now();

  std::vector<ShuffleSegment> shuffle_in;
  std::vector<Buffer> collected;
  for (size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& plan = stages[s];
    const bool is_last = s + 1 == stages.size();
    std::vector<ShuffleSegment> shuffle_out;
    std::vector<ShuffleSegment> right_shuffle;
    if (plan.reads_cogroup) {
      // Execute the right parent sub-plan to its own shuffle output (recursively —
      // it may itself contain shuffles or joins).
      right_shuffle = RunToShuffle(plan.right_plan, plan.right_partition_fn,
                                   plan.num_tasks);
    }
    EngineStageMetrics metrics;
    StageRunner runner(this, plan,
                       (plan.reads_shuffle || plan.reads_cogroup) ? &shuffle_in : nullptr,
                       plan.reads_cogroup ? &right_shuffle : nullptr,
                       plan.writes_shuffle ? &shuffle_out : nullptr,
                       (is_last && save_as.empty()) ? &collected : nullptr,
                       is_last ? save_as : std::string(), &metrics);
    runner.Run();
    last_metrics_.stages.push_back(std::move(metrics));
    shuffle_in = std::move(shuffle_out);
  }
  last_metrics_.wall_seconds = SecondsSince(job_start);
  return collected;
}

}  // namespace monotasks
