// Logical plan nodes for the typed Dataset API.
//
// Dataset<T> methods build a chain of type-erased PlanNodes; the MonoContext turns
// the chain into stages at shuffle boundaries, exactly like Spark's DAG scheduler.
// All record-level work is captured as closures over serialized buffers so the
// execution layer stays untyped.
#ifndef MONOTASKS_SRC_API_PLAN_H_
#define MONOTASKS_SRC_API_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/block_device.h"

namespace monotasks {

struct PlanNode {
  enum class Kind {
    kSource,   // Named partition blocks already resident on the workers.
    kNarrow,   // Per-partition transform (map / filter / flatMap chains).
    kShuffle,  // Repartition: map-side bucketing + reduce-side merge.
    kCoGroup,  // Two-parent shuffle (joins): both sides bucket by the same key.
  };

  Kind kind = Kind::kSource;
  std::shared_ptr<const PlanNode> parent;
  // Second parent, kCoGroup only.
  std::shared_ptr<const PlanNode> parent2;
  int num_partitions = 0;

  // kSource
  std::string source_name;

  // kNarrow: serialized partition in, serialized partition out.
  std::function<Buffer(const Buffer&)> transform;

  // kShuffle/kCoGroup, map side: serialized partition -> one serialized bucket per
  // output partition (bucket r goes to reduce task r). For kCoGroup, partition_fn
  // buckets the left parent and partition_fn2 the right parent.
  std::function<std::vector<Buffer>(const Buffer&, int num_out)> partition_fn;
  std::function<std::vector<Buffer>(const Buffer&, int num_out)> partition_fn2;
  // kShuffle, reduce side: fetched buckets -> the stage's serialized partition.
  std::function<Buffer(std::vector<Buffer>)> merge_fn;
  // kCoGroup, reduce side: buckets from both sides -> the stage's partition.
  std::function<Buffer(std::vector<Buffer> left, std::vector<Buffer> right)> merge2_fn;

  static std::shared_ptr<const PlanNode> Source(std::string name, int partitions) {
    auto node = std::make_shared<PlanNode>();
    node->kind = Kind::kSource;
    node->source_name = std::move(name);
    node->num_partitions = partitions;
    return node;
  }

  static std::shared_ptr<const PlanNode> Narrow(
      std::shared_ptr<const PlanNode> parent,
      std::function<Buffer(const Buffer&)> transform) {
    auto node = std::make_shared<PlanNode>();
    node->kind = Kind::kNarrow;
    node->num_partitions = parent->num_partitions;
    node->parent = std::move(parent);
    node->transform = std::move(transform);
    return node;
  }

  static std::shared_ptr<const PlanNode> Shuffle(
      std::shared_ptr<const PlanNode> parent, int num_partitions,
      std::function<std::vector<Buffer>(const Buffer&, int)> partition_fn,
      std::function<Buffer(std::vector<Buffer>)> merge_fn) {
    auto node = std::make_shared<PlanNode>();
    node->kind = Kind::kShuffle;
    node->num_partitions = num_partitions;
    node->parent = std::move(parent);
    node->partition_fn = std::move(partition_fn);
    node->merge_fn = std::move(merge_fn);
    return node;
  }

  static std::shared_ptr<const PlanNode> CoGroup(
      std::shared_ptr<const PlanNode> left, std::shared_ptr<const PlanNode> right,
      int num_partitions,
      std::function<std::vector<Buffer>(const Buffer&, int)> partition_left,
      std::function<std::vector<Buffer>(const Buffer&, int)> partition_right,
      std::function<Buffer(std::vector<Buffer>, std::vector<Buffer>)> merge2_fn) {
    auto node = std::make_shared<PlanNode>();
    node->kind = Kind::kCoGroup;
    node->num_partitions = num_partitions;
    node->parent = std::move(left);
    node->parent2 = std::move(right);
    node->partition_fn = std::move(partition_left);
    node->partition_fn2 = std::move(partition_right);
    node->merge2_fn = std::move(merge2_fn);
    return node;
  }
};

}  // namespace monotasks

#endif  // MONOTASKS_SRC_API_PLAN_H_
