// Tests for the workload generators: spec validity and calibration invariants.
#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/bdb.h"
#include "src/workloads/clusters.h"
#include "src/workloads/ml.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/read_compute.h"
#include "src/workloads/sort.h"

namespace monoload {
namespace {

using monoutil::GiB;
using monoutil::MiB;

TEST(SortWorkloadTest, RecordBytesAndCpuModel) {
  EXPECT_EQ(SortRecordBytes(1), monoutil::Bytes(16));
  EXPECT_EQ(SortRecordBytes(10), monoutil::Bytes(88));
  // Smaller records -> more CPU per byte.
  EXPECT_GT(SortCpuSeconds(GiB(1), 10), SortCpuSeconds(GiB(1), 50));
  // CPU scales linearly in bytes.
  EXPECT_NEAR(SortCpuSeconds(GiB(2), 20), 2 * SortCpuSeconds(GiB(1), 20), 1e-9);
}

TEST(SortWorkloadTest, JobSpecIsValidAndBalanced) {
  monosim::DfsSim dfs(20, 2, 1, 1);
  SortParams params;
  params.total_bytes = GiB(100);
  params.num_map_tasks = 400;
  params.num_reduce_tasks = 300;
  const monosim::JobSpec job = MakeSortJob(&dfs, params);
  job.Validate();
  ASSERT_EQ(job.stages.size(), 2u);
  EXPECT_EQ(job.stages[0].num_tasks, 400);
  EXPECT_EQ(job.stages[1].num_tasks, 300);
  EXPECT_EQ(job.stages[0].shuffle_bytes, GiB(100));
  EXPECT_EQ(job.stages[1].output_bytes, GiB(100));
  EXPECT_TRUE(dfs.HasFile("sort.input"));
}

TEST(SortWorkloadTest, InMemoryVariantSkipsDfsAndDeser) {
  monosim::DfsSim dfs(20, 2, 1, 1);
  SortParams params;
  params.input_in_memory = true;
  params.num_map_tasks = 100;
  const monosim::JobSpec job = MakeSortJob(&dfs, params);
  job.Validate();
  EXPECT_EQ(job.stages[0].input, monosim::InputSource::kMemory);
  EXPECT_DOUBLE_EQ(job.stages[0].deser_fraction, 0.0);
  EXPECT_FALSE(dfs.HasFile("sort.input"));
  // The cached-deserialized variant does strictly less CPU work per map task.
  SortParams on_disk = params;
  on_disk.input_in_memory = false;
  const monosim::JobSpec disk_job = MakeSortJob(&dfs, on_disk);
  EXPECT_LT(job.stages[0].cpu_seconds_per_task, disk_job.stages[0].cpu_seconds_per_task);
}

TEST(BdbWorkloadTest, AllQueriesValidate) {
  monosim::SimEnvironment env(BdbClusterConfig());
  for (BdbQuery query : AllBdbQueries()) {
    const monosim::JobSpec job = MakeBdbQueryJob(&env.dfs(), query);
    job.Validate();
    EXPECT_FALSE(job.name.empty());
  }
}

TEST(BdbWorkloadTest, QueryShapes) {
  monosim::SimEnvironment env(BdbClusterConfig());
  EXPECT_EQ(MakeBdbQueryJob(&env.dfs(), BdbQuery::k1a).stages.size(), 1u);
  EXPECT_EQ(MakeBdbQueryJob(&env.dfs(), BdbQuery::k2b).stages.size(), 2u);
  EXPECT_EQ(MakeBdbQueryJob(&env.dfs(), BdbQuery::k3c).stages.size(), 3u);
  EXPECT_EQ(MakeBdbQueryJob(&env.dfs(), BdbQuery::k4).stages.size(), 2u);
}

TEST(BdbWorkloadTest, VariantsScaleResultSizes) {
  monosim::SimEnvironment env(BdbClusterConfig());
  const auto q1a = MakeBdbQueryJob(&env.dfs(), BdbQuery::k1a);
  const auto q1c = MakeBdbQueryJob(&env.dfs(), BdbQuery::k1c);
  EXPECT_LT(q1a.stages[0].output_bytes, q1c.stages[0].output_bytes);
  const auto q2a = MakeBdbQueryJob(&env.dfs(), BdbQuery::k2a);
  const auto q2c = MakeBdbQueryJob(&env.dfs(), BdbQuery::k2c);
  EXPECT_LT(q2a.stages[0].shuffle_bytes, q2c.stages[0].shuffle_bytes);
}

TEST(BdbWorkloadTest, TablesAreSharedAcrossQueries) {
  monosim::SimEnvironment env(BdbClusterConfig());
  MakeBdbQueryJob(&env.dfs(), BdbQuery::k2a);
  MakeBdbQueryJob(&env.dfs(), BdbQuery::k2b);  // Must not recreate "bdb.uservisits".
  EXPECT_TRUE(env.dfs().HasFile("bdb.uservisits"));
}

TEST(BdbWorkloadTest, QueryNames) {
  EXPECT_EQ(BdbQueryName(BdbQuery::k1a), "1a");
  EXPECT_EQ(BdbQueryName(BdbQuery::k4), "4");
  EXPECT_EQ(AllBdbQueries().size(), 10u);
}

TEST(MlWorkloadTest, StagesAreInMemoryAndNetworkHeavy) {
  const monosim::JobSpec job = MakeMlJob();
  job.Validate();
  EXPECT_EQ(job.stages.size(), 6u);
  EXPECT_EQ(job.stages[0].input, monosim::InputSource::kMemory);
  for (size_t s = 0; s + 1 < job.stages.size(); ++s) {
    EXPECT_TRUE(job.stages[s].shuffle_to_memory);
    EXPECT_GT(job.stages[s].shuffle_bytes, monoutil::Bytes(0));
  }
  // Last stage has no shuffle output.
  EXPECT_EQ(job.stages.back().output, monosim::OutputSink::kNone);
}

TEST(ReadComputeWorkloadTest, SingleStageWithDfsInput) {
  monosim::DfsSim dfs(20, 2, 1, 1);
  ReadComputeParams params;
  params.num_tasks = 320;
  const monosim::JobSpec job = MakeReadComputeJob(&dfs, params);
  job.Validate();
  ASSERT_EQ(job.stages.size(), 1u);
  EXPECT_EQ(job.stages[0].num_tasks, 320);
  EXPECT_TRUE(dfs.HasFile("readcompute.input"));
}

TEST(ClusterPresetsTest, MatchPaperSetups) {
  const auto sort = SortClusterConfig();
  EXPECT_EQ(sort.num_machines, 20);
  EXPECT_EQ(sort.machine.disks.size(), 2u);
  EXPECT_EQ(sort.machine.disks[0].type, monosim::DiskType::kHdd);

  const auto bdb = BdbClusterConfig();
  EXPECT_EQ(bdb.num_machines, 5);

  const auto bdb_ssd = BdbClusterConfig(/*ssd=*/true);
  EXPECT_EQ(bdb_ssd.machine.disks[0].type, monosim::DiskType::kSsd);

  const auto ml = MlClusterConfig();
  EXPECT_EQ(ml.num_machines, 15);
  EXPECT_EQ(ml.machine.disks[0].type, monosim::DiskType::kSsd);
}


TEST(PageRankWorkloadTest, BuildsTwoStagesPerIteration) {
  monosim::DfsSim dfs(20, 2, 1, 1);
  PageRankParams params;
  params.iterations = 3;
  const monosim::JobSpec job = MakePageRankJob(&dfs, params);
  job.Validate();
  EXPECT_EQ(job.stages.size(), 6u);
  // All intermediate shuffles live in memory; only the final ranks hit the DFS.
  for (size_t s = 0; s + 1 < job.stages.size(); ++s) {
    if (job.stages[s].output == monosim::OutputSink::kShuffle) {
      EXPECT_TRUE(job.stages[s].shuffle_to_memory);
    }
  }
  EXPECT_EQ(job.stages.back().output, monosim::OutputSink::kDfs);
}

TEST(PageRankWorkloadTest, UncachedVariantReadsEdgesFromDfs) {
  monosim::DfsSim dfs(20, 2, 1, 1);
  PageRankParams params;
  params.edges_in_memory = false;
  params.iterations = 2;
  const monosim::JobSpec job = MakePageRankJob(&dfs, params);
  job.Validate();
  EXPECT_EQ(job.stages[0].input, monosim::InputSource::kDfs);
  EXPECT_TRUE(dfs.HasFile("pagerank.edges"));
}

TEST(PageRankWorkloadTest, RunsToCompletionUnderBothExecutors) {
  PageRankParams params;
  params.num_vertices = 1'000'000;
  params.num_edges = 10'000'000;
  params.iterations = 2;
  params.tasks_per_stage = 32;
  for (const bool monotasks : {false, true}) {
    monosim::SimEnvironment env(
        monosim::ClusterConfig::Of(4, monosim::MachineConfig::HddWorker(2)));
    monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
    monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(monotasks ? static_cast<monosim::ExecutorSim*>(&mono)
                                 : static_cast<monosim::ExecutorSim*>(&spark));
    const monosim::JobResult result =
        env.driver().RunJob(MakePageRankJob(&env.dfs(), params));
    EXPECT_EQ(result.stages.size(), 4u);
    EXPECT_GT(result.duration(), monoutil::SimTime());
  }
}

}  // namespace
}  // namespace monoload
