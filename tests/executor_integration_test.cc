// End-to-end tests running the same jobs through both execution architectures on the
// simulated cluster, checking completion, metric consistency, and the qualitative
// behaviours the paper reports.
#include <memory>

#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"

namespace monosim {
namespace {

using monoutil::GiB;
using monoutil::MiB;

// A 2-machine, 4-core, 2-HDD toy cluster for fast tests.
ClusterConfig SmallCluster() {
  MachineConfig machine = MachineConfig::HddWorker(2);
  machine.cores = 4;
  ClusterConfig config = ClusterConfig::Of(2, machine);
  return config;
}

// Map (DFS input -> shuffle) + reduce (shuffle -> DFS output), sized so every
// resource does nontrivial work.
JobSpec MapReduceJob(SimEnvironment* env, int map_tasks = 8, int reduce_tasks = 8) {
  env->dfs().CreateFileWithBlocks("input", MiB(512), map_tasks);
  JobSpec job;
  job.name = "test-mapreduce";
  StageSpec map;
  map.name = "map";
  map.num_tasks = map_tasks;
  map.input = InputSource::kDfs;
  map.input_file = "input";
  map.cpu_seconds_per_task = 0.4;
  map.deser_fraction = 0.3;
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = MiB(256);
  StageSpec reduce;
  reduce.name = "reduce";
  reduce.num_tasks = reduce_tasks;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = MiB(256);
  reduce.cpu_seconds_per_task = 0.3;
  reduce.output = OutputSink::kDfs;
  reduce.output_bytes = MiB(128);
  job.stages = {map, reduce};
  return job;
}

JobResult RunWithSpark(SimEnvironment* env, JobSpec job, SparkConfig config = {}) {
  SparkExecutorSim executor(&env->sim(), &env->cluster(), &env->pool(), config);
  env->AttachExecutor(&executor);
  return env->driver().RunJob(std::move(job));
}

JobResult RunWithMonotasks(SimEnvironment* env, JobSpec job, MonoConfig config = {}) {
  MonotasksExecutorSim executor(&env->sim(), &env->cluster(), &env->pool(), config);
  env->AttachExecutor(&executor);
  return env->driver().RunJob(std::move(job));
}

TEST(ExecutorIntegrationTest, SparkRunsMapReduceToCompletion) {
  SimEnvironment env(SmallCluster());
  const JobResult result = RunWithSpark(&env, MapReduceJob(&env));
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_GT(result.duration(), monoutil::SimTime());
  EXPECT_EQ(result.stages[0].num_tasks, 8);
  EXPECT_EQ(result.stages[1].num_tasks, 8);
  // Stages execute with a barrier.
  EXPECT_GE(result.stages[1].start, result.stages[0].end);
  EXPECT_LE(result.stages[1].end, result.end);
}

TEST(ExecutorIntegrationTest, MonotasksRunsMapReduceToCompletion) {
  SimEnvironment env(SmallCluster());
  const JobResult result = RunWithMonotasks(&env, MapReduceJob(&env));
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_GT(result.duration(), monoutil::SimTime());
  EXPECT_GE(result.stages[1].start, result.stages[0].end);
}

TEST(ExecutorIntegrationTest, GroundTruthUsageMatchesSpec) {
  SimEnvironment env(SmallCluster());
  const JobResult result = RunWithMonotasks(&env, MapReduceJob(&env));
  const auto& map = result.stages[0];
  // Map: reads 512 MiB of input, writes 256 MiB of shuffle, 8 * 0.4 s of CPU.
  EXPECT_EQ(map.usage.disk_read_bytes, MiB(512));
  EXPECT_EQ(map.usage.disk_write_bytes, MiB(256));
  EXPECT_NEAR(map.usage.cpu_seconds, 3.2, 1e-9);
  EXPECT_NEAR(map.usage.deser_cpu_seconds, 3.2 * 0.3, 1e-9);
  const auto& reduce = result.stages[1];
  // Reduce: reads all shuffle data from disk (local and serve-side), writes output.
  EXPECT_EQ(reduce.usage.disk_read_bytes, MiB(256));
  EXPECT_EQ(reduce.usage.disk_write_bytes, MiB(128));
  // Roughly half the shuffle crosses the network on a 2-machine cluster.
  EXPECT_GT(reduce.usage.network_bytes, MiB(64));
  EXPECT_LT(reduce.usage.network_bytes, MiB(224));
}

TEST(ExecutorIntegrationTest, SparkUsageMatchesMonotasksUsage) {
  // Ground-truth work is a property of the job, not the architecture.
  SimEnvironment env_spark(SmallCluster());
  const JobResult spark = RunWithSpark(&env_spark, MapReduceJob(&env_spark));
  SimEnvironment env_mono(SmallCluster());
  const JobResult mono = RunWithMonotasks(&env_mono, MapReduceJob(&env_mono));
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(spark.stages[s].usage.disk_read_bytes, mono.stages[s].usage.disk_read_bytes);
    EXPECT_EQ(spark.stages[s].usage.disk_write_bytes,
              mono.stages[s].usage.disk_write_bytes);
    EXPECT_NEAR(spark.stages[s].usage.cpu_seconds, mono.stages[s].usage.cpu_seconds,
                1e-9);
  }
}

TEST(ExecutorIntegrationTest, MonotaskTimesAreOnlyReportedByMonotasks) {
  SimEnvironment env_spark(SmallCluster());
  const JobResult spark = RunWithSpark(&env_spark, MapReduceJob(&env_spark));
  EXPECT_EQ(spark.stages[0].monotask_times.compute_count, 0);

  SimEnvironment env_mono(SmallCluster());
  const JobResult mono = RunWithMonotasks(&env_mono, MapReduceJob(&env_mono));
  const auto& map_times = mono.stages[0].monotask_times;
  EXPECT_EQ(map_times.compute_count, 8);
  // One input read + one shuffle write per map task.
  EXPECT_EQ(map_times.disk_count, 16);
  EXPECT_NEAR(map_times.compute_seconds, 3.2, 0.01);
  EXPECT_GT(map_times.disk_read_seconds, 0.0);
  EXPECT_GT(map_times.disk_write_seconds, 0.0);
  const auto& reduce_times = mono.stages[1].monotask_times;
  EXPECT_EQ(reduce_times.compute_count, 8);
  EXPECT_GT(reduce_times.network_count, 0);
  EXPECT_GT(reduce_times.network_seconds, 0.0);
}

TEST(ExecutorIntegrationTest, MonotaskDiskServiceTimesAreIdeal) {
  // One monotask per HDD at a time means disk service time == bytes / bandwidth.
  SimEnvironment env(SmallCluster());
  const JobResult result = RunWithMonotasks(&env, MapReduceJob(&env));
  const auto& map_times = result.stages[0].monotask_times;
  const double bandwidth = SmallCluster().machine.disks[0].bandwidth.bps();
  const double ideal_read_seconds = static_cast<double>(MiB(512).count()) / bandwidth;
  EXPECT_NEAR(map_times.disk_read_seconds, ideal_read_seconds,
              ideal_read_seconds * 0.02);
}

TEST(ExecutorIntegrationTest, MonotasksUsesMoreMemoryThanSpark) {
  // §3.5: all of a multitask's data is materialized in memory around the compute
  // monotask, unlike pipelined chunks.
  SimEnvironment env_spark(SmallCluster());
  const JobResult spark = RunWithSpark(&env_spark, MapReduceJob(&env_spark));
  SimEnvironment env_mono(SmallCluster());
  const JobResult mono = RunWithMonotasks(&env_mono, MapReduceJob(&env_mono));
  EXPECT_GT(mono.peak_buffered_bytes, spark.peak_buffered_bytes);
}

TEST(ExecutorIntegrationTest, DeterministicAcrossRuns) {
  SimEnvironment env1(SmallCluster());
  const JobResult r1 = RunWithMonotasks(&env1, MapReduceJob(&env1));
  SimEnvironment env2(SmallCluster());
  const JobResult r2 = RunWithMonotasks(&env2, MapReduceJob(&env2));
  EXPECT_DOUBLE_EQ(r1.duration().seconds(), r2.duration().seconds());
  EXPECT_DOUBLE_EQ(r1.stages[0].end.seconds(), r2.stages[0].end.seconds());
}

TEST(ExecutorIntegrationTest, SparkWriteThroughIsSlowerForWriteHeavyJobs) {
  // A write-heavy single-stage job: forcing writes to disk must not be faster.
  auto make_job = [](SimEnvironment* env) {
    env->dfs().CreateFileWithBlocks("input", MiB(64), 8);
    JobSpec job;
    job.name = "write-heavy";
    StageSpec stage;
    stage.name = "write";
    stage.num_tasks = 8;
    stage.input = InputSource::kDfs;
    stage.input_file = "input";
    stage.cpu_seconds_per_task = 0.05;
    stage.output = OutputSink::kDfs;
    stage.output_bytes = GiB(1);
    job.stages = {stage};
    return job;
  };
  SimEnvironment env_lazy(SmallCluster());
  SparkConfig lazy;
  const JobResult lazy_result = RunWithSpark(&env_lazy, make_job(&env_lazy), lazy);
  SimEnvironment env_flush(SmallCluster());
  SparkConfig flush;
  flush.write_through = true;
  const JobResult flush_result = RunWithSpark(&env_flush, make_job(&env_flush), flush);
  EXPECT_GT(flush_result.duration(), lazy_result.duration() * 0.99);
}

TEST(ExecutorIntegrationTest, InMemoryInputSkipsDiskReads) {
  SimEnvironment env(SmallCluster());
  JobSpec job;
  job.name = "cached";
  StageSpec stage;
  stage.name = "scan";
  stage.num_tasks = 8;
  stage.input = InputSource::kMemory;
  stage.input_bytes = MiB(512);
  stage.cpu_seconds_per_task = 0.2;
  job.stages = {stage};
  const JobResult result = RunWithMonotasks(&env, job);
  EXPECT_EQ(result.stages[0].usage.disk_read_bytes, monoutil::Bytes(0));
  EXPECT_EQ(result.stages[0].monotask_times.disk_count, 0);
  EXPECT_EQ(result.stages[0].monotask_times.compute_count, 8);
}

TEST(ExecutorIntegrationTest, ShuffleToMemorySkipsDiskEntirely) {
  SimEnvironment env(SmallCluster());
  JobSpec job;
  job.name = "ml-like";
  StageSpec map;
  map.name = "map";
  map.num_tasks = 8;
  map.input = InputSource::kMemory;
  map.input_bytes = MiB(128);
  map.cpu_seconds_per_task = 0.2;
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = MiB(128);
  map.shuffle_to_memory = true;
  StageSpec reduce;
  reduce.name = "reduce";
  reduce.num_tasks = 8;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = MiB(128);
  reduce.cpu_seconds_per_task = 0.2;
  job.stages = {map, reduce};
  const JobResult result = RunWithMonotasks(&env, job);
  EXPECT_EQ(result.stages[0].usage.disk_write_bytes, monoutil::Bytes(0));
  EXPECT_EQ(result.stages[1].usage.disk_read_bytes, monoutil::Bytes(0));
  EXPECT_GT(result.stages[1].usage.network_bytes, monoutil::Bytes(0));
}

TEST(ExecutorIntegrationTest, UtilizationFilledWhenTracingEnabled) {
  SimEnvironment env(SmallCluster());
  env.cluster().EnableTrace();
  const JobResult result = RunWithMonotasks(&env, MapReduceJob(&env));
  const auto& util = result.stages[0].utilization;
  ASSERT_EQ(util.cpu.size(), 2u);
  ASSERT_EQ(util.disk.size(), 2u);
  for (double u : util.cpu) {
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  for (double u : util.disk) {
    EXPECT_GT(u, 0.0);
  }
}

TEST(ExecutorIntegrationTest, ConcurrentJobsBothComplete) {
  SimEnvironment env(SmallCluster());
  MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), MonoConfig{});
  env.AttachExecutor(&executor);
  env.dfs().CreateFileWithBlocks("input", MiB(512), 8);

  auto make_job = [](const std::string& name) {
    JobSpec job;
    job.name = name;
    StageSpec stage;
    stage.name = "scan";
    stage.num_tasks = 8;
    stage.input = InputSource::kDfs;
    stage.input_file = "input";
    stage.cpu_seconds_per_task = 0.3;
    job.stages = {stage};
    return job;
  };

  int completed = 0;
  env.driver().SubmitJob(make_job("job-a"), [&](JobResult) { ++completed; });
  env.driver().SubmitJob(make_job("job-b"), [&](JobResult) { ++completed; });
  env.sim().Run();
  EXPECT_EQ(completed, 2);
}

TEST(ExecutorIntegrationTest, MonotaskMultitaskLimitFollowsFormula) {
  SimEnvironment env(SmallCluster());
  MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), MonoConfig{});
  // 4 cores + 2 HDDs * 1 + network 4 + 1 extra = 11.
  EXPECT_EQ(executor.MultitaskLimit(0), 11);
}

TEST(ExecutorIntegrationTest, SsdMultitaskLimitCountsChannels) {
  MachineConfig machine = MachineConfig::SsdWorker(2);
  machine.cores = 8;
  SimEnvironment env(ClusterConfig::Of(2, machine));
  MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), MonoConfig{});
  // 8 cores + 2 SSDs * 4 + network 4 + 1 extra = 21.
  EXPECT_EQ(executor.MultitaskLimit(0), 21);
}

}  // namespace
}  // namespace monosim
