#include "src/cluster/buffer_cache.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/cluster/disk.h"
#include "src/simcore/simulation.h"

namespace monosim {
namespace {

using monoutil::Bytes;

class BufferCacheTest : public ::testing::Test {
 protected:
  void MakeCache(BufferCacheConfig config, int num_disks = 1) {
    DiskConfig disk_config;
    disk_config.type = DiskType::kHdd;
    disk_config.bandwidth = monoutil::BytesPerSecond(100.0);  // 100 B/s for easy arithmetic.
    disk_config.seek_alpha = 0.0;
    std::vector<DiskSim*> raw;
    for (int d = 0; d < num_disks; ++d) {
      disks_.push_back(
          std::make_unique<DiskSim>(&sim_, "disk" + std::to_string(d), disk_config));
      raw.push_back(disks_.back().get());
    }
    cache_ = std::make_unique<BufferCacheSim>(&sim_, config, std::move(raw));
  }

  Simulation sim_;
  std::vector<std::unique_ptr<DiskSim>> disks_;
  std::unique_ptr<BufferCacheSim> cache_;
};

TEST_F(BufferCacheTest, SmallWriteCompletesAtMemorySpeed) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(1000);
  config.writeback_delay = monoutil::Seconds(30.0);
  config.memory_bandwidth = monoutil::BytesPerSecond(1000.0);
  MakeCache(config);
  double done_at = -1.0;
  cache_->Write(0, Bytes(100), [&] { done_at = sim_.now().seconds(); });
  sim_.RunUntil(monoutil::Seconds(1.0));
  // 100 B at 1000 B/s of memory bandwidth = 0.1 s; far faster than the 1 s the disk
  // would need.
  EXPECT_NEAR(done_at, 0.1, 1e-9);
  EXPECT_EQ(disks_[0]->bytes_written(), Bytes(0));  // Nothing flushed yet.
}

TEST_F(BufferCacheTest, WritebackFlushesAfterDelay) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(1000);
  config.writeback_delay = monoutil::Seconds(5.0);
  config.flush_chunk = Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  cache_->Write(0, Bytes(100), [] {});
  sim_.RunUntil(monoutil::Seconds(4.9));
  EXPECT_EQ(cache_->total_flushed(), Bytes(0));
  sim_.Run();
  EXPECT_EQ(cache_->total_flushed(), Bytes(100));
  EXPECT_EQ(cache_->total_dirty(), Bytes(0));
  EXPECT_EQ(disks_[0]->bytes_written(), Bytes(100));
}

TEST_F(BufferCacheTest, PressureStartsFlushingImmediately) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(100);
  config.writeback_delay = monoutil::Seconds(1000.0);  // Would never fire in this test.
  config.flush_chunk = Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  cache_->Write(0, Bytes(100), [] {});  // Exactly at the limit: flushing must start.
  sim_.RunUntil(monoutil::Seconds(2.0));
  EXPECT_GT(cache_->total_flushed(), Bytes(0));
}

TEST_F(BufferCacheTest, OverLimitWritesBlockUntilFlushed) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(100);
  config.writeback_delay = monoutil::Seconds(1000.0);
  config.flush_chunk = Bytes(100);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  double first_done = -1.0;
  double second_done = -1.0;
  cache_->Write(0, Bytes(100), [&] { first_done = sim_.now().seconds(); });
  cache_->Write(0, Bytes(100), [&] { second_done = sim_.now().seconds(); });
  sim_.Run();
  EXPECT_GE(first_done, 0.0);
  // The second write had to wait for the first 100 B flush (1 s at 100 B/s).
  EXPECT_GE(second_done, 1.0);
  EXPECT_EQ(cache_->total_flushed(), Bytes(200));
}

TEST_F(BufferCacheTest, FlushContendsWithForegroundReads) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(50);
  config.writeback_delay = monoutil::Seconds(1000.0);
  config.flush_chunk = Bytes(100);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  // Fill the cache beyond the limit so flushing starts, then issue a read.
  cache_->Write(0, Bytes(200), [] {});
  double read_done = -1.0;
  disks_[0]->Read(Bytes(100), [&](/*no args*/) { read_done = sim_.now().seconds(); });
  sim_.Run();
  // Alone, the read would take 1 s; sharing the disk with flush writes it must take
  // measurably longer.
  EXPECT_GT(read_done, 1.5);
}

TEST_F(BufferCacheTest, FlusherDrainsMultipleDisks) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(10);  // Immediate pressure.
  config.writeback_delay = monoutil::Seconds(1000.0);
  config.flush_chunk = Bytes(100);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config, /*num_disks=*/2);
  cache_->Write(0, Bytes(300), [] {});
  cache_->Write(1, Bytes(300), [] {});
  sim_.Run();
  EXPECT_EQ(disks_[0]->bytes_written(), Bytes(300));
  EXPECT_EQ(disks_[1]->bytes_written(), Bytes(300));
  EXPECT_EQ(cache_->total_dirty(), Bytes(0));
}

TEST_F(BufferCacheTest, WritebackReArmsAfterDrain) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(1000);
  config.writeback_delay = monoutil::Seconds(1.0);
  config.flush_chunk = Bytes(100);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  cache_->Write(0, Bytes(50), [] {});
  sim_.Run();
  EXPECT_EQ(cache_->total_flushed(), Bytes(50));
  // A later write must get its own delayed writeback, not be stranded.
  cache_->Write(0, Bytes(60), [] {});
  sim_.Run();
  EXPECT_EQ(cache_->total_flushed(), Bytes(110));
}

TEST_F(BufferCacheTest, BlockedWritesAdmitInFifoOrder) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(100);
  config.writeback_delay = monoutil::Seconds(1000.0);
  config.flush_chunk = Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  cache_->Write(0, Bytes(100), [] {});  // Fills the cache; the rest throttle.
  std::vector<int> completion_order;
  std::vector<double> completion_times;
  for (int i = 0; i < 3; ++i) {
    cache_->Write(0, Bytes(50), [&, i] {
      completion_order.push_back(i);
      completion_times.push_back(sim_.now().seconds());
    });
  }
  sim_.Run();
  // Throttled writers are admitted strictly in arrival order as flushing frees
  // headroom, never reordered by size or disk state.
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 0);
  EXPECT_EQ(completion_order[1], 1);
  EXPECT_EQ(completion_order[2], 2);
  EXPECT_LE(completion_times[0], completion_times[1]);
  EXPECT_LE(completion_times[1], completion_times[2]);
  EXPECT_EQ(cache_->total_flushed(), Bytes(250));
}

TEST_F(BufferCacheTest, SyncWaitersReleaseAcrossInterleavedWrites) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(1000);
  config.writeback_delay = monoutil::Seconds(1000.0);  // Sync writes force flushing themselves.
  config.flush_chunk = Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config);
  // Interleave async and sync writes to the same disk. Flushing is FIFO, so the
  // first sync write is durable once 150 B (async 100 + its own 50) have been
  // flushed, the second once all 250 B have.
  double first_sync_done = -1.0;
  double second_sync_done = -1.0;
  cache_->Write(0, Bytes(100), [] {});
  cache_->WriteSync(0, Bytes(50), [&] { first_sync_done = sim_.now().seconds(); });
  cache_->Write(0, Bytes(50), [] {});
  cache_->WriteSync(0, Bytes(50), [&] { second_sync_done = sim_.now().seconds(); });
  sim_.Run();
  // 100 B/s disk: 150 B flushed at t=1.5, 250 B at t=2.5 (memory copies are
  // instantaneous at this bandwidth scale).
  EXPECT_NEAR(first_sync_done, 1.5, 1e-6);
  EXPECT_NEAR(second_sync_done, 2.5, 1e-6);
  EXPECT_EQ(cache_->total_flushed(), Bytes(250));
}

TEST_F(BufferCacheTest, BytesAreConservedAfterDrain) {
  BufferCacheConfig config;
  config.dirty_limit = Bytes(120);
  config.writeback_delay = monoutil::Seconds(2.0);
  config.flush_chunk = Bytes(64);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e6);
  MakeCache(config, /*num_disks=*/2);
  // A mix of cached, throttled, and sync writes across both disks.
  monoutil::Bytes submitted;
  for (int i = 0; i < 4; ++i) {
    cache_->Write(i % 2, Bytes(70), [] {});
    submitted += Bytes(70);
  }
  cache_->WriteSync(0, Bytes(30), [] {});
  submitted += Bytes(30);
  sim_.Run();
  // Every submitted byte must end up flushed: none lost, none duplicated.
  EXPECT_EQ(cache_->total_flushed(), submitted);
  EXPECT_EQ(cache_->total_dirty(), Bytes(0));
  EXPECT_EQ(disks_[0]->bytes_written() + disks_[1]->bytes_written(), submitted);
  EXPECT_FALSE(cache_->flushing());
}

TEST_F(BufferCacheTest, ZeroByteWriteCompletes) {
  BufferCacheConfig config;
  MakeCache(config);
  bool done = false;
  cache_->Write(0, Bytes(0), [&] { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace monosim
