// End-to-end tests of the typed Dataset API running real computations through the
// threaded monotasks engine.
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/dataset.h"

namespace monotasks {
namespace {

EngineConfig FastConfig(int workers = 2, int cores = 2, int disks = 1) {
  EngineConfig config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.disks_per_worker = disks;
  config.time_scale = 2000.0;  // Device seconds pass in fractions of a millisecond.
  return config;
}

TEST(SerdeTest, RoundTripsPrimitives) {
  const std::vector<int64_t> values = {1, -5, 1 << 30};
  EXPECT_EQ(DeserializeVector<int64_t>(SerializeVector<int64_t>(values)), values);
  const std::vector<std::string> strings = {"", "a", "hello world"};
  EXPECT_EQ(DeserializeVector<std::string>(SerializeVector<std::string>(strings)),
            strings);
}

TEST(SerdeTest, RoundTripsPairs) {
  using Record = std::pair<std::string, int64_t>;
  const std::vector<Record> records = {{"x", 1}, {"longer key", -7}};
  EXPECT_EQ(DeserializeVector<Record>(SerializeVector<Record>(records)), records);
}

TEST(SerdeTest, RoundTripsDoubles) {
  const std::vector<double> values = {0.0, -1.5, 3.14159};
  EXPECT_EQ(DeserializeVector<double>(SerializeVector<double>(values)), values);
}

TEST(DatasetTest, ParallelizeAndCollectPreservesRecords) {
  MonoClient client(FastConfig());
  std::vector<int64_t> input;
  for (int64_t i = 0; i < 100; ++i) {
    input.push_back(i);
  }
  auto data = client.Parallelize<int64_t>(input, 4);
  std::vector<int64_t> output = data.Collect();
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, input);
}

TEST(DatasetTest, MapTransformsEveryRecord) {
  MonoClient client(FastConfig());
  auto data = client.Parallelize<int64_t>({1, 2, 3, 4, 5}, 2);
  auto doubled = data.Map<int64_t>([](const int64_t& x) { return 2 * x; });
  std::vector<int64_t> output = doubled.Collect();
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, (std::vector<int64_t>{2, 4, 6, 8, 10}));
}

TEST(DatasetTest, FilterDropsRecords) {
  MonoClient client(FastConfig());
  std::vector<int64_t> input;
  for (int64_t i = 0; i < 50; ++i) {
    input.push_back(i);
  }
  auto evens = client.Parallelize<int64_t>(input, 4).Filter(
      [](const int64_t& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Count(), 25);
}

TEST(DatasetTest, FlatMapExpandsRecords) {
  MonoClient client(FastConfig());
  auto data = client.Parallelize<std::string>({"a b", "c d e"}, 2);
  auto words = data.FlatMap<std::string>([](const std::string& line) {
    std::vector<std::string> out;
    std::istringstream stream(line);
    std::string word;
    while (stream >> word) {
      out.push_back(word);
    }
    return out;
  });
  EXPECT_EQ(words.Count(), 5);
}

TEST(DatasetTest, WordCountEndToEnd) {
  MonoClient client(FastConfig(3, 2, 2));
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back("the quick brown fox jumps over the lazy dog the end");
  }
  using WordCount = std::pair<std::string, int64_t>;
  auto counts_data =
      client.Parallelize<std::string>(lines, 8)
          .FlatMap<WordCount>([](const std::string& line) {
            std::vector<WordCount> out;
            std::istringstream stream(line);
            std::string word;
            while (stream >> word) {
              out.emplace_back(word, 1);
            }
            return out;
          });
  auto reduced = ReduceByKey<std::string, int64_t>(
      counts_data, [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  std::map<std::string, int64_t> counts;
  for (auto& [word, count] : reduced.Collect()) {
    counts[word] += count;  // Keys are already unique; += guards accidental dups.
  }
  EXPECT_EQ(counts["the"], 3 * 40);
  EXPECT_EQ(counts["fox"], 40);
  EXPECT_EQ(counts.size(), 9u);
}

TEST(DatasetTest, ReduceByKeyProducesUniqueKeys) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> input;
  for (int64_t i = 0; i < 200; ++i) {
    input.emplace_back(i % 10, 1);
  }
  auto reduced = ReduceByKey<int64_t, int64_t>(
      client.Parallelize<Record>(input, 4),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  const std::vector<Record> output = reduced.Collect();
  EXPECT_EQ(output.size(), 10u);
  for (const auto& [key, count] : output) {
    EXPECT_EQ(count, 20) << "key " << key;
  }
}

TEST(DatasetTest, PartitionByCoLocatesEqualKeys) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> input;
  for (int64_t i = 0; i < 60; ++i) {
    input.emplace_back(i % 6, i);
  }
  auto partitioned = client.Parallelize<Record>(input, 3).PartitionBy<int64_t>(
      [](const Record& r) { return r.first; }, 5);
  EXPECT_EQ(partitioned.Count(), 60);
}

TEST(DatasetTest, SortBySortsWithinPartitions) {
  MonoClient client(FastConfig());
  std::vector<int64_t> input = {9, 3, 7, 1, 8, 2, 6, 4, 5, 0};
  auto sorted = client.Parallelize<int64_t>(input, 3).SortBy<int64_t>(
      [](const int64_t& x) { return x; }, 1);
  // With a single output partition the result is totally sorted.
  EXPECT_EQ(sorted.Collect(), (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(DatasetTest, SaveAndReadBack) {
  MonoClient client(FastConfig());
  auto data = client.Parallelize<int64_t>({5, 6, 7, 8}, 2);
  data.Map<int64_t>([](const int64_t& x) { return x + 1; }).Save("bumped");
  auto reloaded = client.FromSource<int64_t>("bumped", 2);
  std::vector<int64_t> output = reloaded.Collect();
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, (std::vector<int64_t>{6, 7, 8, 9}));
}

TEST(DatasetTest, MetricsExposeMonotaskTimes) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> input;
  for (int64_t i = 0; i < 500; ++i) {
    input.emplace_back(i % 50, i);
  }
  auto reduced = ReduceByKey<int64_t, int64_t>(
      client.Parallelize<Record>(input, 4),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  reduced.Collect();

  const EngineJobMetrics& metrics = client.last_job_metrics();
  ASSERT_EQ(metrics.stages.size(), 2u);
  const auto& map_stage = metrics.stages[0];
  EXPECT_EQ(map_stage.num_tasks, 4);
  EXPECT_GT(map_stage.compute_seconds, 0.0);
  EXPECT_GT(map_stage.disk_read_bytes, monoutil::Bytes(0));   // Source blocks read from disk.
  EXPECT_GT(map_stage.disk_write_bytes, monoutil::Bytes(0));  // Shuffle data written to disk.
  const auto& reduce_stage = metrics.stages[1];
  EXPECT_GT(reduce_stage.disk_read_bytes, monoutil::Bytes(0));  // Shuffle served from disk.
  EXPECT_GT(reduce_stage.network_bytes, monoutil::Bytes(0));    // Cross-worker portions.
  EXPECT_GT(metrics.wall_seconds, 0.0);
}

TEST(DatasetTest, MultiStagePipeline) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> input;
  for (int64_t i = 0; i < 100; ++i) {
    input.emplace_back(i % 10, 1);
  }
  // Two chained shuffles: count per key, then count keys per count value.
  auto counts = ReduceByKey<int64_t, int64_t>(
      client.Parallelize<Record>(input, 4),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 3);
  auto swapped = counts.Map<Record>([](const Record& r) {
    return Record{r.second, 1};
  });
  auto histogram = ReduceByKey<int64_t, int64_t>(
      swapped, [](const int64_t& a, const int64_t& b) { return a + b; }, 2);
  const std::vector<Record> output = histogram.Collect();
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output[0].first, 10);   // Every key appeared 10 times...
  EXPECT_EQ(output[0].second, 10);  // ...and there are 10 keys.
}

TEST(DatasetTest, ManyPartitionsOnFewWorkers) {
  MonoClient client(FastConfig(2, 2, 1));
  std::vector<int64_t> input;
  for (int64_t i = 0; i < 1000; ++i) {
    input.push_back(i);
  }
  // 32 partitions across 2 workers: multiple waves through the schedulers.
  auto data = client.Parallelize<int64_t>(input, 32);
  auto total = data.Map<int64_t>([](const int64_t& x) { return x; }).Count();
  EXPECT_EQ(total, 1000);
}

TEST(DatasetTest, EmptyPartitionsAreHandled) {
  MonoClient client(FastConfig());
  // 3 records over 8 partitions: most partitions are empty.
  auto data = client.Parallelize<int64_t>({1, 2, 3}, 8);
  auto reduced = ReduceByKey<int64_t, int64_t>(
      data.Map<std::pair<int64_t, int64_t>>(
          [](const int64_t& x) { return std::pair<int64_t, int64_t>{x % 2, x}; }),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  EXPECT_EQ(reduced.Collect().size(), 2u);
}


TEST(DatasetTest, CacheSkipsDiskOnReRead) {
  MonoClient client(FastConfig());
  std::vector<int64_t> input;
  for (int64_t i = 0; i < 4000; ++i) {
    input.push_back(i);
  }
  auto cached = client.Parallelize<int64_t>(input, 4).Cache();

  // Record device counters, then run a job over the cached data.
  monoutil::Bytes reads_before;
  for (int w = 0; w < client.context().num_workers(); ++w) {
    for (int d = 0; d < client.context().worker(w).num_disks(); ++d) {
      reads_before += client.context().worker(w).disk(d).bytes_read();
    }
  }
  const int64_t total = cached.Map<int64_t>([](const int64_t& x) { return x; }).Count();
  EXPECT_EQ(total, 4000);
  monoutil::Bytes reads_after;
  for (int w = 0; w < client.context().num_workers(); ++w) {
    for (int d = 0; d < client.context().worker(w).num_disks(); ++d) {
      reads_after += client.context().worker(w).disk(d).bytes_read();
    }
  }
  EXPECT_EQ(reads_after, reads_before);  // The cached job touched no disk.
}

TEST(DatasetTest, CachePreservesRecords) {
  MonoClient client(FastConfig());
  auto cached = client.Parallelize<int64_t>({7, 8, 9}, 2).Cache();
  auto out = cached.Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int64_t>{7, 8, 9}));
}

TEST(DatasetTest, CachedDataFlowsThroughShuffles) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> input;
  for (int64_t i = 0; i < 100; ++i) {
    input.emplace_back(i % 5, 1);
  }
  auto cached = client.Parallelize<Record>(input, 4).Cache();
  auto reduced = ReduceByKey<int64_t, int64_t>(
      cached, [](const int64_t& a, const int64_t& b) { return a + b; }, 3);
  EXPECT_EQ(reduced.Collect().size(), 5u);
}


TEST(DatasetJoinTest, InnerJoinMatchesKeys) {
  MonoClient client(FastConfig());
  using UserAge = std::pair<int64_t, int64_t>;
  using UserCity = std::pair<int64_t, std::string>;
  auto ages = client.Parallelize<UserAge>(
      {{1, 30}, {2, 41}, {3, 28}, {5, 60}}, 2);
  auto cities = client.Parallelize<UserCity>(
      {{1, std::string("berkeley")}, {2, std::string("shanghai")},
       {4, std::string("nowhere")}}, 3);
  auto joined = Join<int64_t, int64_t, std::string>(ages, cities, 2);
  auto out = joined.Collect();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);  // Keys 1 and 2 only.
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[0].second.first, 30);
  EXPECT_EQ(out[0].second.second, "berkeley");
  EXPECT_EQ(out[1].first, 2);
  EXPECT_EQ(out[1].second.second, "shanghai");
}

TEST(DatasetJoinTest, JoinHandlesDuplicateKeys) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  auto left = client.Parallelize<Record>({{7, 1}, {7, 2}}, 2);
  auto right = client.Parallelize<Record>({{7, 10}, {7, 20}, {8, 30}}, 2);
  auto joined = Join<int64_t, int64_t, int64_t>(left, right, 3);
  // Cross product within key 7: 2 x 2 = 4 results.
  EXPECT_EQ(joined.Collect().size(), 4u);
}

TEST(DatasetJoinTest, JoinComposesWithFurtherStages) {
  MonoClient client(FastConfig());
  using Record = std::pair<int64_t, int64_t>;
  std::vector<Record> left_in;
  std::vector<Record> right_in;
  for (int64_t i = 0; i < 50; ++i) {
    left_in.emplace_back(i % 10, 1);
    right_in.emplace_back(i % 10, 2);
  }
  auto joined = Join<int64_t, int64_t, int64_t>(
      client.Parallelize<Record>(left_in, 3), client.Parallelize<Record>(right_in, 4),
      2);
  // 5 left x 5 right per key = 25 pairs per key, 10 keys.
  auto summed = ReduceByKey<int64_t, int64_t>(
      joined.Map<Record>([](const std::pair<int64_t, std::pair<int64_t, int64_t>>& r) {
        return Record{r.first, 1};
      }),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 2);
  const auto out = summed.Collect();
  ASSERT_EQ(out.size(), 10u);
  for (const auto& [key, count] : out) {
    EXPECT_EQ(count, 25) << key;
  }
}

TEST(DatasetJoinTest, JoinWorksInTaskThreadsMode) {
  EngineConfig config = FastConfig();
  config.mode = ExecutionMode::kTaskThreads;
  MonoClient client(config);
  using Record = std::pair<int64_t, int64_t>;
  auto left = client.Parallelize<Record>({{1, 10}, {2, 20}}, 2);
  auto right = client.Parallelize<Record>({{1, 100}, {3, 300}}, 2);
  auto joined = Join<int64_t, int64_t, int64_t>(left, right, 2);
  const auto out = joined.Collect();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[0].second.first, 10);
  EXPECT_EQ(out[0].second.second, 100);
}


TEST(DatasetTest, SampleIsDeterministicAndApproximate) {
  MonoClient client(FastConfig());
  std::vector<int64_t> input;
  for (int64_t i = 0; i < 4000; ++i) {
    input.push_back(i);
  }
  auto data = client.Parallelize<int64_t>(input, 4);
  auto first = data.Sample(0.25, 99).Collect();
  auto second = data.Sample(0.25, 99).Collect();
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  EXPECT_EQ(first, second);  // Same seed, same sample.
  EXPECT_GT(first.size(), 800u);
  EXPECT_LT(first.size(), 1200u);  // ~1000 expected.
  EXPECT_TRUE(data.Sample(0.0).Collect().empty());
  EXPECT_EQ(data.Sample(1.0).Count(), 4000);
}

}  // namespace
}  // namespace monotasks
