// Focused tests of the Spark-baseline executor's mechanisms: slots, buffer-cache
// vs write-through writes, chunk jitter, and the shuffle-serve concurrency cap.
#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/read_compute.h"
#include "src/workloads/sort.h"

namespace monosim {
namespace {

using monoutil::GiB;
using monoutil::MiB;

ClusterConfig TinyCluster(int machines = 2) {
  MachineConfig machine = MachineConfig::HddWorker(2);
  machine.cores = 4;
  return ClusterConfig::Of(machines, machine);
}

JobResult RunSort(const ClusterConfig& cluster, SparkConfig config,
                  monoutil::Bytes bytes = MiB(512), int tasks = 16) {
  SimEnvironment env(cluster);
  SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), config);
  env.AttachExecutor(&spark);
  monoload::SortParams params;
  params.total_bytes = bytes;
  params.num_map_tasks = tasks;
  params.num_reduce_tasks = tasks;
  return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
}

TEST(SparkExecutorTest, SlotCountBoundsConcurrency) {
  // With s slots per machine, at most s * machines tasks can be in flight: stage
  // task-seconds is bounded by slots * wall time.
  for (int slots : {1, 2, 8}) {
    SparkConfig config;
    config.slots_per_machine = slots;
    const JobResult result = RunSort(TinyCluster(), config);
    for (const auto& stage : result.stages) {
      const double capacity = static_cast<double>(slots) * 2 * stage.duration().seconds();
      EXPECT_LE(stage.task_seconds, capacity * 1.001)
          << "slots=" << slots << " stage=" << stage.name;
    }
  }
}

TEST(SparkExecutorTest, FewerSlotsSlowCpuBoundJobs) {
  SparkConfig one_slot;
  one_slot.slots_per_machine = 1;
  SparkConfig four_slots;
  four_slots.slots_per_machine = 4;
  const double slow = RunSort(TinyCluster(), one_slot).duration().seconds();
  const double fast = RunSort(TinyCluster(), four_slots).duration().seconds();
  EXPECT_GT(slow, fast * 1.5);
}

TEST(SparkExecutorTest, LazyWritesStayInCacheWhenSmall) {
  // A small job's writes fit under the dirty limit: no disk writes happen during
  // the job with lazy (default) writes, but do with write-through.
  auto disk_writes = [](bool write_through) {
    SimEnvironment env(TinyCluster());
    SparkConfig config;
    config.write_through = write_through;
    SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), config);
    env.AttachExecutor(&spark);
    monoload::ReadComputeParams params;  // Single stage job...
    params.total_bytes = MiB(64);
    params.num_tasks = 8;
    JobSpec job = monoload::MakeReadComputeJob(&env.dfs(), params);
    job.stages[0].output = OutputSink::kDfs;  // ...that writes 64 MiB of output.
    job.stages[0].output_bytes = MiB(64);
    // Sample the device counters at *job completion*: the OS flushes the cache
    // eventually (the simulation drains those events afterwards), but by then the
    // job's runtime was already unaffected — exactly the §5.3 visibility gap.
    monoutil::Bytes written_at_completion;
    env.driver().SubmitJob(job, [&](JobResult) {
      for (int m = 0; m < env.cluster().num_machines(); ++m) {
        for (int d = 0; d < env.cluster().machine(m).num_disks(); ++d) {
          written_at_completion += env.cluster().machine(m).disk(d).bytes_written();
        }
      }
    });
    env.sim().Run();
    return written_at_completion;
  };
  EXPECT_EQ(disk_writes(false), monoutil::Bytes(0));  // Absorbed by the cache (the 1c effect).
  // Forced to disk (chunked writes truncate a few fractional bytes per chunk).
  EXPECT_NEAR(static_cast<double>(disk_writes(true).count()),
              static_cast<double>(MiB(64).count()),
              1024.0);
}

TEST(SparkExecutorTest, WriteThroughIsNeverFasterForWriteHeavyJobs) {
  SparkConfig lazy;
  SparkConfig flush;
  flush.write_through = true;
  const double lazy_seconds = RunSort(TinyCluster(), lazy, GiB(4), 32).duration().seconds();
  const double flush_seconds = RunSort(TinyCluster(), flush, GiB(4), 32).duration().seconds();
  EXPECT_GE(flush_seconds, lazy_seconds * 0.999);
}

TEST(SparkExecutorTest, ChunkJitterPreservesMeanRuntime) {
  SparkConfig smooth;
  SparkConfig jittery;
  jittery.chunk_cpu_jitter_cv = 0.5;
  const double base = RunSort(TinyCluster(), smooth).duration().seconds();
  const double jittered = RunSort(TinyCluster(), jittery).duration().seconds();
  // Lognormal with mean 1: runtime within ~15% of the deterministic run.
  EXPECT_NEAR(jittered, base, base * 0.15);
}

TEST(SparkExecutorTest, ServeConcurrencyCapLimitsShuffleServiceThrash) {
  // A lower serve cap reduces disk contention during the reduce stage's shuffle
  // serving; a huge cap must not be faster than the bounded pool.
  SparkConfig bounded;
  bounded.serve_read_concurrency = 4;
  SparkConfig unbounded;
  unbounded.serve_read_concurrency = 64;
  const double with_cap = RunSort(TinyCluster(4), bounded, GiB(4), 64).duration().seconds();
  const double without = RunSort(TinyCluster(4), unbounded, GiB(4), 64).duration().seconds();
  EXPECT_LE(with_cap, without * 1.02);
}

TEST(SparkExecutorTest, DeterministicWithJitterSeed) {
  SparkConfig config;
  config.chunk_cpu_jitter_cv = 0.5;
  const double first = RunSort(TinyCluster(), config).duration().seconds();
  const double second = RunSort(TinyCluster(), config).duration().seconds();
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace monosim
