// Tests for the log-driven critical-path analyzer (src/model/critical_path.h):
// exact sweep attribution on hand-built logs, truncation reporting, and the
// ISSUE acceptance check — on a traced sort run, log-derived per-stage blame
// must agree with the trace_report pipeline within 5%.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/model/critical_path.h"
#include "src/model/trace_report.h"
#include "src/monotask/mono_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace monomodel {
namespace {

using monosim::MonoResource;
using monosim::MonotaskLog;
using monosim::MonotaskRecord;

MonotaskRecord Rec(int stage, MonoResource resource, double ready, double dispatch,
                   double done) {
  MonotaskRecord rec;
  rec.stage_index = stage;
  rec.resource = resource;
  rec.phase = "test";
  rec.ready = monoutil::Seconds(ready);
  rec.dispatch = monoutil::Seconds(dispatch);
  rec.done = monoutil::Seconds(done);
  return rec;
}

TEST(CriticalPathTest, SequentialPhasesGetFullSlices) {
  MonotaskLog log;
  // cpu serves [0, 10); the disk monotask waits in queue, then serves [10, 14).
  log.Record(Rec(0, MonoResource::kCpu, 0.0, 0.0, 10.0));
  log.Record(Rec(0, MonoResource::kDisk, 0.0, 10.0, 14.0));
  const CriticalPathReport report = CriticalPathReport::Build(log);
  ASSERT_EQ(report.stages().size(), 1u);
  const StageCriticalPath& stage = report.stages()[0];
  EXPECT_DOUBLE_EQ(stage.duration().seconds(), 14.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("cpu").critical_seconds, 10.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("disk").critical_seconds, 4.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("disk").queue_wait_seconds, 10.0);
  EXPECT_DOUBLE_EQ(stage.blocked_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stage.idle_seconds, 0.0);
  EXPECT_EQ(stage.dominant(), "cpu");
}

TEST(CriticalPathTest, OverlapSplitsProportionally) {
  MonotaskLog log;
  // cpu and disk both in service over [0, 10): each carries half the wall.
  log.Record(Rec(0, MonoResource::kCpu, 0.0, 0.0, 10.0));
  log.Record(Rec(0, MonoResource::kDisk, 0.0, 0.0, 10.0));
  const CriticalPathReport report = CriticalPathReport::Build(log);
  const StageCriticalPath& stage = report.stages()[0];
  EXPECT_DOUBLE_EQ(stage.resources.at("cpu").critical_seconds, 5.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("disk").critical_seconds, 5.0);
  // busy_seconds are raw service sums, not shared.
  EXPECT_DOUBLE_EQ(stage.resources.at("cpu").busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("disk").busy_seconds, 10.0);
}

TEST(CriticalPathTest, DistinguishesBlockedFromIdle) {
  MonotaskLog log;
  // Service [0, 5); window gap [5, 6) with nothing ready (idle); [6, 7) with a
  // monotask queued but nothing running (a scheduler gap: blocked); service
  // [7, 8).
  log.Record(Rec(0, MonoResource::kCpu, 0.0, 0.0, 5.0));
  log.Record(Rec(0, MonoResource::kCpu, 6.0, 7.0, 8.0));
  const CriticalPathReport report = CriticalPathReport::Build(log);
  const StageCriticalPath& stage = report.stages()[0];
  EXPECT_DOUBLE_EQ(stage.idle_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stage.blocked_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stage.resources.at("cpu").critical_seconds, 6.0);
}

TEST(CriticalPathTest, JobViewSpansAllStages) {
  MonotaskLog log;
  log.Record(Rec(0, MonoResource::kCpu, 0.0, 0.0, 10.0));
  log.Record(Rec(1, MonoResource::kNetwork, 10.0, 10.0, 25.0));
  const CriticalPathReport report = CriticalPathReport::Build(log);
  EXPECT_EQ(report.stages().size(), 2u);
  EXPECT_DOUBLE_EQ(report.job().duration().seconds(), 25.0);
  EXPECT_EQ(report.job().dominant(), "network");
  ASSERT_NE(report.FindStage(1), nullptr);
  EXPECT_DOUBLE_EQ(report.FindStage(1)->duration().seconds(), 15.0);
  EXPECT_EQ(report.FindStage(7), nullptr);
}

TEST(CriticalPathTest, TruncatedLogIsReportedIncomplete) {
  MonotaskLog log(/*capacity=*/1);
  log.Record(Rec(0, MonoResource::kCpu, 0.0, 0.0, 1.0));
  log.Record(Rec(0, MonoResource::kCpu, 1.0, 1.0, 2.0));  // Dropped.
  EXPECT_EQ(log.dropped(), 1u);
  const CriticalPathReport report = CriticalPathReport::Build(log);
  EXPECT_FALSE(report.complete());
  EXPECT_NE(report.ToString().find("TRUNCATED"), std::string::npos);
}

TEST(CriticalPathTest, EmptyLogYieldsEmptyReport) {
  MonotaskLog log;
  const CriticalPathReport report = CriticalPathReport::Build(log);
  EXPECT_TRUE(report.stages().empty());
  EXPECT_TRUE(report.complete());
  EXPECT_DOUBLE_EQ(report.job().duration().seconds(), 0.0);
}

// The ISSUE acceptance check: on a traced sort run, the blame derived from the
// always-on MonotaskLog agrees with the opt-in trace_report pipeline within 5%
// on every active (stage, resource) pair.
TEST(CriticalPathTest, CrossCheckAgreesWithTraceOnSortRun) {
  monotrace::ScopedTracer scoped;
  monosim::SimEnvironment env(monoload::SmallHddClusterConfig());
  env.cluster().EnableTrace();
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(1);
  const monosim::JobResult result =
      env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));

  ASSERT_FALSE(env.monotask_log().records().empty());
  const CriticalPathReport report = CriticalPathReport::Build(env.monotask_log());
  ASSERT_TRUE(report.complete());

  const ParsedTrace trace = ParseChromeTrace(scoped.tracer().ToJson());
  ASSERT_TRUE(trace.errors.empty());
  const TraceReport trace_report = TraceReport::Build(trace);
  std::map<int, std::string> stage_labels;
  for (const monosim::StageResult& stage : result.stages) {
    stage_labels[stage.stage_index] =
        std::string(executor.trace_name()) + ":" + stage.name;
  }
  const auto checks = report.CrossCheckWithTrace(trace_report, stage_labels,
                                                 /*tolerance=*/0.05);
  ASSERT_FALSE(checks.empty());
  for (const CriticalPathCrossCheck& check : checks) {
    EXPECT_TRUE(check.agree)
        << check.stage << "/" << check.resource << ": log "
        << check.log_busy_seconds << "s vs trace " << check.trace_busy_seconds
        << "s (err " << check.relative_error << ")";
  }
}

}  // namespace
}  // namespace monomodel
