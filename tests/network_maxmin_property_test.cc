// Property tests for the fabric's incremental max-min allocation.
//
// The fabric recomputes rates incrementally, only over the connected component of
// flows sharing a NIC side with a changed endpoint. These tests drive randomized
// flow arrival/departure sequences through a fabric and, at every event boundary,
// compare every active flow's rate against the independent global reference solver
// (maxmin_reference.h). Departures are the completions the byte sizes induce, so
// each sequence exercises both directions of the incremental update.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/simcore/simulation.h"
#include "tests/maxmin_reference.h"

namespace monosim {
namespace {

// Every flow's rate must equal its reference max-min rate (relative tolerance
// covering the two implementations' different accumulation orders).
void ExpectRatesMatchReference(const NetworkFabricSim& fabric, double bandwidth,
                               int num_machines, SimTime now) {
  std::vector<testutil::ReferenceFlow> reference_flows;
  for (const NetworkFabricSim::FlowInfo& info : fabric.ActiveFlows()) {
    reference_flows.push_back({info.id, info.src, info.dst});
  }
  const auto reference =
      testutil::SolveMaxMinReference(reference_flows, num_machines, bandwidth);
  for (const NetworkFabricSim::FlowInfo& info : fabric.ActiveFlows()) {
    const double want = reference.at(info.id);
    ASSERT_NEAR(info.rate, want, 1e-6 * want)
        << "flow " << info.id << " (" << info.src << "->" << info.dst << ") at t="
        << now << " with " << reference_flows.size() << " active flows";
  }
}

TEST(NetworkMaxMinPropertyTest, IncrementalRatesMatchReferenceSolverOnRandomChurn) {
  constexpr int kSequences = 120;
  constexpr double kBandwidth = 100.0;
  for (uint64_t seed = 0; seed < kSequences; ++seed) {
    monoutil::Rng rng(seed + 1);
    const int machines = 2 + static_cast<int>(rng.NextBelow(7));  // 2..8
    const int arrivals = 8 + static_cast<int>(rng.NextBelow(25));  // 8..32

    Simulation sim;
    NetworkFabricSim fabric(&sim, machines, kBandwidth);
    int completed = 0;
    for (int i = 0; i < arrivals; ++i) {
      const int src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
      int dst = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines - 1)));
      if (dst >= src) {
        ++dst;
      }
      const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(500));
      const SimTime at = rng.Uniform(0.0, 5.0);
      sim.ScheduleAt(at, [&fabric, &completed, src, dst, bytes] {
        fabric.StartFlow(src, dst, bytes, [&completed] { ++completed; });
      });
    }
    while (sim.Step()) {
      ExpectRatesMatchReference(fabric, kBandwidth, machines, sim.now());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    EXPECT_EQ(completed, arrivals) << "seed " << seed;
  }
}

TEST(NetworkMaxMinPropertyTest, HeavyFanInSequencesStayWorkConserving) {
  // Skewed sequences: most flows converge on one hot receiver (Spark's
  // many-concurrent-fetch shuffle pattern), the rest are scattered — the shape the
  // legacy min-share model distorted. Work conservation here means every flow is
  // bottlenecked at a saturated NIC, which ExpectRatesMatchReference implies
  // (reference rates are max-min, hence work-conserving).
  constexpr double kBandwidth = 100.0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    monoutil::Rng rng(1000 + seed);
    const int machines = 4 + static_cast<int>(rng.NextBelow(5));  // 4..8
    const int hot = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));

    Simulation sim;
    NetworkFabricSim fabric(&sim, machines, kBandwidth);
    for (int i = 0; i < 24; ++i) {
      const bool to_hot = rng.NextDouble() < 0.7;
      int src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
      int dst = hot;
      if (!to_hot || src == hot) {
        dst = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines - 1)));
        if (dst >= src) {
          ++dst;
        }
      }
      const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(300));
      const SimTime at = rng.Uniform(0.0, 2.0);
      sim.ScheduleAt(at, [&fabric, src, dst, bytes] {
        fabric.StartFlow(src, dst, bytes, [] {});
      });
    }
    while (sim.Step()) {
      ExpectRatesMatchReference(fabric, kBandwidth, machines, sim.now());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

}  // namespace
}  // namespace monosim
