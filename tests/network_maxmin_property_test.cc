// Property tests for the fabric's incremental max-min allocation.
//
// The fabric recomputes rates incrementally, only over the connected component of
// flows sharing a NIC side with a changed endpoint. These tests drive randomized
// flow arrival/departure sequences through a fabric and, at every event boundary,
// compare every active flow's rate against the independent global reference solver
// (maxmin_reference.h). Departures are the completions the byte sizes induce, so
// each sequence exercises both directions of the incremental update.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/simcore/simulation.h"
#include "tests/maxmin_reference.h"

namespace monosim {
namespace {

// Every flow's rate must equal its reference max-min rate (relative tolerance
// covering the two implementations' different accumulation orders).
void ExpectRatesMatchReference(const NetworkFabricSim& fabric, double bandwidth,
                               int num_machines, SimTime now) {
  std::vector<testutil::ReferenceFlow> reference_flows;
  for (const NetworkFabricSim::FlowInfo& info : fabric.ActiveFlows()) {
    reference_flows.push_back({info.id, info.src, info.dst});
  }
  const auto reference =
      testutil::SolveMaxMinReference(reference_flows, num_machines, bandwidth);
  for (const NetworkFabricSim::FlowInfo& info : fabric.ActiveFlows()) {
    const double want = reference.at(info.id);
    ASSERT_NEAR(info.rate.bps(), want, 1e-6 * want)
        << "flow " << info.id << " (" << info.src << "->" << info.dst << ") at t="
        << now << " with " << reference_flows.size() << " active flows";
  }
}

TEST(NetworkMaxMinPropertyTest, IncrementalRatesMatchReferenceSolverOnRandomChurn) {
  constexpr int kSequences = 120;
  constexpr double kBandwidth = 100.0;
  for (uint64_t seed = 0; seed < kSequences; ++seed) {
    monoutil::Rng rng(seed + 1);
    const int machines = 2 + static_cast<int>(rng.NextBelow(7));  // 2..8
    const int arrivals = 8 + static_cast<int>(rng.NextBelow(25));  // 8..32

    Simulation sim;
    NetworkFabricSim fabric(&sim, machines, monoutil::BytesPerSecond(kBandwidth));
    int completed = 0;
    for (int i = 0; i < arrivals; ++i) {
      const int src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
      int dst = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines - 1)));
      if (dst >= src) {
        ++dst;
      }
      const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(500));
      const SimTime at = monoutil::Seconds(rng.Uniform(0.0, 5.0));
      sim.ScheduleAt(at, [&fabric, &completed, src, dst, bytes] {
        fabric.StartFlow(src, dst, bytes, [&completed] { ++completed; });
      });
    }
    while (sim.Step()) {
      ExpectRatesMatchReference(fabric, kBandwidth, machines, sim.now());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    EXPECT_EQ(completed, arrivals) << "seed " << seed;
  }
}

TEST(NetworkMaxMinPropertyTest, SameTimestampBurstsMatchReferenceSolver) {
  // Epoch batching: every arrival and departure sharing one simulation
  // timestamp must be coalesced into a single solve whose allocation matches
  // the global reference. Bursts deliberately include duplicate
  // (src, dst, bytes) triples — those flows receive identical rates, so their
  // completions land on one timestamp too, exercising departure bursts and
  // mixed arrival+departure epochs, not just arrival batching.
  constexpr double kBandwidth = 100.0;
  uint64_t total_batched = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    monoutil::Rng rng(5000 + seed);
    const int machines = 3 + static_cast<int>(rng.NextBelow(6));  // 3..8

    Simulation sim;
    NetworkFabricSim fabric(&sim, machines, monoutil::BytesPerSecond(kBandwidth));
    int completed = 0;
    int launched = 0;
    const int bursts = 2 + static_cast<int>(rng.NextBelow(3));  // 2..4
    for (int b = 0; b < bursts; ++b) {
      const SimTime at = monoutil::Seconds(0.5 * b + rng.Uniform(0.0, 0.25));
      const int width = 3 + static_cast<int>(rng.NextBelow(8));  // 3..10
      int src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
      int dst = 0;
      monoutil::Bytes bytes;
      for (int i = 0; i < width; ++i) {
        // Roughly every other flow repeats the previous triple verbatim.
        if (i == 0 || rng.NextBelow(2) == 0) {
          src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
          dst = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines - 1)));
          if (dst >= src) {
            ++dst;
          }
          bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(400));
        }
        ++launched;
        sim.ScheduleAt(at, [&fabric, &completed, src, dst, bytes] {
          fabric.StartFlow(src, dst, bytes, [&completed] { ++completed; });
        });
      }
    }
    while (sim.Step()) {
      ExpectRatesMatchReference(fabric, kBandwidth, machines, sim.now());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    EXPECT_EQ(completed, launched) << "seed " << seed;
    total_batched += fabric.solver_stats().batched_changes;
  }
  // The sequences must actually have exercised epoch batching: at least some
  // epochs carried more than one arrival/departure into a single solve.
  EXPECT_GT(total_batched, 0u);
}

TEST(NetworkMaxMinPropertyTest, PruningEligibleDeltasArePatchedAndStayCorrect) {
  // Flows confined to disjoint machine pairs: an arrival onto a free pair and
  // the departure of a pair's sole flow are both provably invisible to every
  // other pair's bottleneck set, so the solver must take its local patch path
  // — and the patched rates must still match the global reference at every
  // event boundary.
  constexpr double kBandwidth = 100.0;
  constexpr int kMachines = 8;  // Pairs (0,1) (2,3) (4,5) (6,7).
  Simulation sim;
  NetworkFabricSim fabric(&sim, kMachines, monoutil::BytesPerSecond(kBandwidth));
  monoutil::Rng rng(42);
  int completed = 0;
  constexpr int kArrivals = 24;
  for (int i = 0; i < kArrivals; ++i) {
    const int pair = i % 4;
    const int src = 2 * pair;
    const int dst = 2 * pair + 1;
    const auto bytes = static_cast<monoutil::Bytes>(20 + rng.NextBelow(120));
    // Staggered arrivals: patches only apply to a clean fabric, so each delta
    // gets its own epoch.
    sim.ScheduleAt(monoutil::Seconds(0.05 * i), [&fabric, &completed, src, dst, bytes] {
      fabric.StartFlow(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  while (sim.Step()) {
    ExpectRatesMatchReference(fabric, kBandwidth, kMachines, sim.now());
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  EXPECT_EQ(completed, kArrivals);
  const NetworkFabricSim::SolverStats stats = fabric.solver_stats();
  EXPECT_GT(stats.patched_arrivals, 0u)
      << "no arrival took the patch path on a free disjoint pair";
  EXPECT_GT(stats.patched_departures, 0u)
      << "no departure of a pair's sole flow was patched";
}

TEST(NetworkMaxMinPropertyTest, HeavyFanInSequencesStayWorkConserving) {
  // Skewed sequences: most flows converge on one hot receiver (Spark's
  // many-concurrent-fetch shuffle pattern), the rest are scattered — the shape the
  // legacy min-share model distorted. Work conservation here means every flow is
  // bottlenecked at a saturated NIC, which ExpectRatesMatchReference implies
  // (reference rates are max-min, hence work-conserving).
  constexpr double kBandwidth = 100.0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    monoutil::Rng rng(1000 + seed);
    const int machines = 4 + static_cast<int>(rng.NextBelow(5));  // 4..8
    const int hot = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));

    Simulation sim;
    NetworkFabricSim fabric(&sim, machines, monoutil::BytesPerSecond(kBandwidth));
    for (int i = 0; i < 24; ++i) {
      const bool to_hot = rng.NextDouble() < 0.7;
      int src = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines)));
      int dst = hot;
      if (!to_hot || src == hot) {
        dst = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(machines - 1)));
        if (dst >= src) {
          ++dst;
        }
      }
      const auto bytes = static_cast<monoutil::Bytes>(1 + rng.NextBelow(300));
      const SimTime at = monoutil::Seconds(rng.Uniform(0.0, 2.0));
      sim.ScheduleAt(at, [&fabric, src, dst, bytes] {
        fabric.StartFlow(src, dst, bytes, [] {});
      });
    }
    while (sim.Step()) {
      ExpectRatesMatchReference(fabric, kBandwidth, machines, sim.now());
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

}  // namespace
}  // namespace monosim
