// Unit tests for the simulated per-resource monotask schedulers (§3.3) and the
// buffer cache's synchronous-write mode.
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/buffer_cache.h"
#include "src/cluster/machine.h"
#include "src/monotask/resource_schedulers.h"
#include "src/simcore/simulation.h"

namespace monosim {
namespace {

using monoutil::MiB;

class SchedulerSimTest : public ::testing::Test {
 protected:
  SchedulerSimTest() {
    MachineConfig config;
    config.cores = 2;
    DiskConfig disk;
    disk.bandwidth = monoutil::BytesPerSecond(100.0);  // 100 B/s.
    disk.seek_alpha = 0.5;
    config.disks = {disk, disk};
    machine_ = std::make_unique<MachineSim>(&sim_, 0, config);
  }

  Simulation sim_;
  std::unique_ptr<MachineSim> machine_;
};

TEST_F(SchedulerSimTest, CpuSchedulerRunsAtMostCoreCount) {
  CpuSchedulerSim scheduler(&sim_, machine_.get());
  EXPECT_EQ(scheduler.max_concurrency(), 2);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    scheduler.Enqueue(1.0, [&](double service, double wait) {
      EXPECT_NEAR(service, 1.0, 1e-9);  // Never contended: exactly the work.
      EXPECT_GE(wait, 0.0);
      ++done;
    });
  }
  EXPECT_EQ(scheduler.running(), 2);
  EXPECT_EQ(scheduler.queue_length(), 3);
  sim_.Run();
  EXPECT_EQ(done, 5);
  // 5 monotasks of 1 s on 2 cores: 3 serial rounds.
  EXPECT_NEAR(sim_.now().seconds(), 3.0, 1e-9);
}

TEST_F(SchedulerSimTest, CpuServiceTimeExcludesQueueing) {
  CpuSchedulerSim scheduler(&sim_, machine_.get());
  std::vector<double> services;
  std::vector<double> waits;
  for (int i = 0; i < 4; ++i) {
    scheduler.Enqueue(2.0, [&](double service, double wait) {
      services.push_back(service);
      waits.push_back(wait);
    });
  }
  sim_.Run();
  for (double service : services) {
    EXPECT_NEAR(service, 2.0, 1e-9);  // The queued ones waited 2 s but served 2 s.
  }
  // Two cores: the first pair never waited, the second pair queued for 2 s.
  ASSERT_EQ(waits.size(), 4u);
  EXPECT_NEAR(waits[0], 0.0, 1e-9);
  EXPECT_NEAR(waits[1], 0.0, 1e-9);
  EXPECT_NEAR(waits[2], 2.0, 1e-9);
  EXPECT_NEAR(waits[3], 2.0, 1e-9);
}

TEST_F(SchedulerSimTest, DiskSchedulerRunsOneAtATimeOnHdd) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), /*max_outstanding=*/1);
  std::vector<double> services;
  std::vector<double> waits;
  auto record = [&](double s, double w) {
    services.push_back(s);
    waits.push_back(w);
  };
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record);
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record);
  EXPECT_EQ(scheduler.running(), 1);
  EXPECT_EQ(scheduler.queue_length(), 1);
  sim_.Run();
  // One at a time at full bandwidth: each is served in exactly 1 s despite the
  // disk's punishing seek_alpha — the design's whole point.
  ASSERT_EQ(services.size(), 2u);
  EXPECT_NEAR(services[0], 1.0, 1e-9);
  EXPECT_NEAR(services[1], 1.0, 1e-9);
  EXPECT_NEAR(waits[0], 0.0, 1e-9);
  EXPECT_NEAR(waits[1], 1.0, 1e-9);  // Queued behind the first read.
  EXPECT_NEAR(sim_.now().seconds(), 2.0, 1e-9);
}

TEST_F(SchedulerSimTest, DiskSchedulerRoundRobinsPhases) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), 1);
  std::vector<std::string> order;
  auto record = [&](std::string label) {
    return [&order, label](double, double) { order.push_back(label); };
  };
  // Seed a running monotask, then queue writes before reads.
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w0"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w1"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w2"));
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r0"));
  scheduler.EnqueueRead(DiskPhase::kServe, monoutil::Bytes(100), record("s0"));
  sim_.Run();
  ASSERT_EQ(order.size(), 5u);
  // After w0, the round-robin must visit the read and serve queues before draining
  // the remaining writes (no write convoy).
  EXPECT_EQ(order[1], "s0");
  EXPECT_EQ(order[2], "r0");
  EXPECT_EQ(order[3], "w1");
}

TEST_F(SchedulerSimTest, FifoAblationDrainsWritesFirst) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), 1, /*fifo=*/true);
  std::vector<std::string> order;
  auto record = [&](std::string label) {
    return [&order, label](double, double) { order.push_back(label); };
  };
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w0"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w1"));
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r0"));
  sim_.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"w0", "w1", "r0"}));
}

TEST_F(SchedulerSimTest, SsdSchedulerAllowsMultipleOutstanding) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), /*max_outstanding=*/4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), [&](double, double) { ++done; });
  }
  EXPECT_EQ(scheduler.running(), 4);
  sim_.Run();
  EXPECT_EQ(done, 4);
}

TEST(NetworkSchedulerSimTest, GatesConcurrentFetchSets) {
  NetworkSchedulerSim scheduler(/*multitask_limit=*/2);
  int granted = 0;
  for (int i = 0; i < 5; ++i) {
    // Constructed without a Simulation: the reported wait is always 0.
    scheduler.Acquire([&](double wait) {
      EXPECT_EQ(wait, 0.0);
      ++granted;
    });
  }
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(scheduler.active(), 2);
  EXPECT_EQ(scheduler.queue_length(), 3);
  scheduler.Release();
  EXPECT_EQ(granted, 3);  // The slot transferred to a waiter.
  EXPECT_EQ(scheduler.active(), 2);
  scheduler.Release();
  scheduler.Release();
  EXPECT_EQ(granted, 5);
  scheduler.Release();
  scheduler.Release();
  EXPECT_EQ(scheduler.active(), 0);
}

TEST(BufferCacheSyncTest, WriteSyncCompletesOnlyWhenDurable) {
  Simulation sim;
  DiskConfig disk_config;
  disk_config.bandwidth = monoutil::BytesPerSecond(100.0);
  disk_config.seek_alpha = 0.0;
  DiskSim disk(&sim, "d0", disk_config);
  BufferCacheConfig config;
  config.dirty_limit = MiB(1);
  config.flush_chunk = monoutil::Bytes(100);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e9);
  BufferCacheSim cache(&sim, config, {&disk});

  double done_at = -1.0;
  cache.WriteSync(0, monoutil::Bytes(200), [&] { done_at = sim.now().seconds(); });
  sim.Run();
  // 200 B at 100 B/s must take >= 2 s even though it went through the cache.
  EXPECT_GE(done_at, 2.0 - 1e-9);
  EXPECT_EQ(disk.bytes_written(), monoutil::Bytes(200));
}

TEST(BufferCacheSyncTest, SyncWritersCompleteInOrderPerDisk) {
  Simulation sim;
  DiskConfig disk_config;
  disk_config.bandwidth = monoutil::BytesPerSecond(100.0);
  disk_config.seek_alpha = 0.0;
  DiskSim disk(&sim, "d0", disk_config);
  BufferCacheConfig config;
  config.flush_chunk = monoutil::Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e9);
  BufferCacheSim cache(&sim, config, {&disk});

  std::vector<int> order;
  cache.WriteSync(0, monoutil::Bytes(100), [&] { order.push_back(1); });
  cache.WriteSync(0, monoutil::Bytes(100), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cache.total_flushed(), monoutil::Bytes(200));
}

TEST(BufferCacheSyncTest, AsyncAndSyncWritesCoexist) {
  Simulation sim;
  DiskConfig disk_config;
  disk_config.bandwidth = monoutil::BytesPerSecond(100.0);
  disk_config.seek_alpha = 0.0;
  DiskSim disk(&sim, "d0", disk_config);
  BufferCacheConfig config;
  config.flush_chunk = monoutil::Bytes(50);
  config.memory_bandwidth = monoutil::BytesPerSecond(1e9);
  config.writeback_delay = monoutil::Seconds(1000.0);
  BufferCacheSim cache(&sim, config, {&disk});

  double async_done = -1.0;
  double sync_done = -1.0;
  cache.Write(0, monoutil::Bytes(100), [&] { async_done = sim.now().seconds(); });
  cache.WriteSync(0, monoutil::Bytes(100), [&] { sync_done = sim.now().seconds(); });
  sim.Run();
  EXPECT_LT(async_done, 0.1);  // Memory speed.
  // The sync write waits for both its own bytes and the earlier dirty bytes.
  EXPECT_GE(sync_done, 2.0 - 1e-9);
}


TEST_F(SchedulerSimTest, MemoryPressurePrioritizesWrites) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), 1);
  bool pressure = false;
  scheduler.set_memory_pressure_fn([&pressure] { return pressure; });
  std::vector<std::string> order;
  auto record = [&](std::string label) {
    return [&order, label](double, double) { order.push_back(label); };
  };
  // Seed the disk, then queue reads ahead of writes and raise pressure: the writes
  // must jump the round-robin rotation.
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r0"));
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r1"));
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r2"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w0"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w1"));
  pressure = true;
  sim_.Run();
  ASSERT_EQ(order.size(), 5u);
  // r0 was already running; under pressure both writes are served before r1/r2.
  EXPECT_EQ(order[1], "w0");
  EXPECT_EQ(order[2], "w1");
}

TEST_F(SchedulerSimTest, MemoryPressureOffFallsBackToRoundRobin) {
  DiskSchedulerSim scheduler(&sim_, &machine_->disk(0), 1);
  bool pressure = false;
  scheduler.set_memory_pressure_fn([&pressure] { return pressure; });
  std::vector<std::string> order;
  auto record = [&](std::string label) {
    return [&order, label](double, double) { order.push_back(label); };
  };
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r0"));
  scheduler.EnqueueRead(DiskPhase::kRead, monoutil::Bytes(100), record("r1"));
  scheduler.EnqueueWrite(monoutil::Bytes(100), record("w0"));
  sim_.Run();
  // Without pressure the rotation interleaves: r0, w0, r1.
  EXPECT_EQ(order, (std::vector<std::string>{"r0", "w0", "r1"}));
}

}  // namespace
}  // namespace monosim
