#include "src/storage/dfs.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace monosim {
namespace {

using monoutil::MiB;

TEST(DfsTest, SplitsFileIntoBlocks) {
  DfsSim dfs(4, 2, 1, /*seed=*/1);
  const DfsFile& file = dfs.CreateFile("input", MiB(300), MiB(128));
  EXPECT_EQ(file.blocks.size(), 3u);
  EXPECT_EQ(file.blocks[0].size, MiB(128));
  EXPECT_EQ(file.blocks[2].size, MiB(44));  // Remainder block.
  EXPECT_EQ(file.total_bytes(), MiB(300));
}

TEST(DfsTest, CreateFileWithBlocksPinsTaskCount) {
  DfsSim dfs(4, 2, 1, 1);
  const DfsFile& file = dfs.CreateFileWithBlocks("input", MiB(100), 7);
  EXPECT_EQ(file.blocks.size(), 7u);
  EXPECT_EQ(file.total_bytes(), MiB(100));
}

TEST(DfsTest, BlocksSpreadRoundRobinAcrossMachines) {
  DfsSim dfs(4, 1, 1, 1);
  const DfsFile& file = dfs.CreateFileWithBlocks("input", MiB(400), 8);
  // Exactly two blocks per machine.
  std::vector<int> count(4, 0);
  for (const auto& block : file.blocks) {
    ASSERT_EQ(block.replicas.size(), 1u);
    ++count[static_cast<size_t>(block.replicas[0].machine)];
  }
  for (int c : count) {
    EXPECT_EQ(c, 2);
  }
}

TEST(DfsTest, DisksRotateWithinMachine) {
  DfsSim dfs(1, 2, 1, 1);
  const DfsFile& file = dfs.CreateFileWithBlocks("input", MiB(100), 4);
  EXPECT_NE(file.blocks[0].replicas[0].disk, file.blocks[1].replicas[0].disk);
}

TEST(DfsTest, ReplicasLandOnDistinctMachines) {
  DfsSim dfs(4, 1, 3, 1);
  const DfsFile& file = dfs.CreateFileWithBlocks("input", MiB(100), 4);
  for (const auto& block : file.blocks) {
    ASSERT_EQ(block.replicas.size(), 3u);
    EXPECT_NE(block.replicas[0].machine, block.replicas[1].machine);
    EXPECT_NE(block.replicas[1].machine, block.replicas[2].machine);
    EXPECT_NE(block.replicas[0].machine, block.replicas[2].machine);
  }
}

TEST(DfsTest, GetFileAndHasFile) {
  DfsSim dfs(2, 1, 1, 1);
  dfs.CreateFile("a", MiB(10), MiB(128));
  EXPECT_TRUE(dfs.HasFile("a"));
  EXPECT_FALSE(dfs.HasFile("b"));
  EXPECT_EQ(dfs.GetFile("a").name, "a");
}

TEST(DfsTest, PlacementIsDeterministicPerSeed) {
  DfsSim dfs1(8, 2, 1, 42);
  DfsSim dfs2(8, 2, 1, 42);
  const DfsFile& f1 = dfs1.CreateFileWithBlocks("x", MiB(800), 16);
  const DfsFile& f2 = dfs2.CreateFileWithBlocks("x", MiB(800), 16);
  for (size_t b = 0; b < f1.blocks.size(); ++b) {
    EXPECT_EQ(f1.blocks[b].replicas[0].machine, f2.blocks[b].replicas[0].machine);
    EXPECT_EQ(f1.blocks[b].replicas[0].disk, f2.blocks[b].replicas[0].disk);
  }
}

}  // namespace
}  // namespace monosim
