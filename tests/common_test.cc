#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/simcore/rate_trace.h"

namespace monoutil {
namespace {

TEST(UnitsTest, ByteConstructors) {
  EXPECT_EQ(KiB(1), Bytes(1024));
  EXPECT_EQ(MiB(1), Bytes(1024 * 1024));
  EXPECT_EQ(GiB(2), Bytes(int64_t{2} * 1024 * 1024 * 1024));
  EXPECT_EQ(MiB(0.5), Bytes(512 * 1024));
}

TEST(UnitsTest, TimeConstructors) {
  EXPECT_DOUBLE_EQ(Millis(250).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Minutes(2).seconds(), 120.0);
}

TEST(UnitsTest, GbpsConvertsToBytesPerSecond) {
  EXPECT_NEAR(Gbps(1).bps(), 125e6, 1e-6);
}

// The wrappers must be bit-compatible with the typedefs they replaced: same
// size, same triviality, so struct layouts, memcpy-based digests, and codegen
// are unchanged by the promotion. These are the load-bearing guarantees behind
// the same-seed digest oracle in determinism_test.cc.
static_assert(sizeof(SimTime) == sizeof(double));
static_assert(sizeof(Bytes) == sizeof(int64_t));
static_assert(sizeof(BytesPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<SimTime>);
static_assert(std::is_trivially_copyable_v<Bytes>);
static_assert(std::is_trivially_copyable_v<BytesPerSecond>);

// The closed algebra at compile time: each cross-type operation yields exactly
// the documented type (units.h header comment), nothing else.
static_assert(std::is_same_v<decltype(Bytes() / BytesPerSecond()), SimTime>);
static_assert(std::is_same_v<decltype(Bytes() / SimTime()), BytesPerSecond>);
static_assert(std::is_same_v<decltype(BytesPerSecond() * SimTime()), Bytes>);
static_assert(std::is_same_v<decltype(SimTime() * BytesPerSecond()), Bytes>);
static_assert(std::is_same_v<decltype(SimTime() / SimTime()), double>);
static_assert(std::is_same_v<decltype(Bytes() / Bytes()), double>);
static_assert(std::is_same_v<decltype(BytesPerSecond() / BytesPerSecond()),
                             double>);

TEST(UnitsAlgebraTest, TransferTimeRoundTripsAcrossRandomInputs) {
  // For any size b and rate r: t = b/r is the transfer time, the observed rate
  // b/t recovers r, and the data moved r*t recovers b (to within the one byte
  // the documented truncation may drop). Deterministic seeded sweep — no
  // entropy sources in tests.
  Rng rng(20260808);
  for (int i = 0; i < 1000; ++i) {
    const Bytes b(static_cast<int64_t>(rng.NextBelow(int64_t{1} << 36)) + 1);
    const BytesPerSecond r(rng.Uniform(1e3, 1e10));
    const SimTime t = b / r;
    EXPECT_GT(t, SimTime());
    EXPECT_NEAR((b / t) / r, 1.0, 1e-12);
    const Bytes moved = r * t;
    EXPECT_GE(moved, b - Bytes(1));
    EXPECT_LE(moved, b);
  }
}

TEST(UnitsAlgebraTest, SameTypeRatiosAreExactIdentities) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const SimTime t = Seconds(rng.Uniform(1e-9, 1e6));
    const Bytes b(static_cast<int64_t>(rng.NextBelow(uint64_t{1} << 40)) + 1);
    const BytesPerSecond r = MiBps(rng.Uniform(0.001, 4e4));
    EXPECT_DOUBLE_EQ(t / t, 1.0);
    EXPECT_DOUBLE_EQ(b / b, 1.0);
    EXPECT_DOUBLE_EQ(r / r, 1.0);
    // Scaling then unscaling is the identity (double math, exact for *2 / 2).
    EXPECT_EQ((t * 2.0) / 2.0, t);
    EXPECT_EQ((r * 2.0) / 2.0, r);
  }
}

TEST(UnitsAlgebraTest, AdditiveGroupMatchesUnderlyingRepresentation) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-1e6, 1e6);
    const double y = rng.Uniform(-1e6, 1e6);
    EXPECT_DOUBLE_EQ((Seconds(x) + Seconds(y)).seconds(), x + y);
    EXPECT_DOUBLE_EQ((Seconds(x) - Seconds(y)).seconds(), x - y);
    EXPECT_EQ(-(-Seconds(x)), Seconds(x));
    const auto bx = static_cast<int64_t>(rng.NextBelow(uint64_t{1} << 50));
    const auto by = static_cast<int64_t>(rng.NextBelow(uint64_t{1} << 50));
    EXPECT_EQ(Bytes(bx) + Bytes(by), Bytes(bx + by));
    EXPECT_EQ((Bytes(bx) - Bytes(by)).count(), bx - by);
    // Ordering agrees with the raw representation.
    EXPECT_EQ(Seconds(x) < Seconds(y), x < y);
    EXPECT_EQ(Bytes(bx) >= Bytes(by), bx >= by);
  }
}

TEST(UnitsAlgebraTest, ByteScalingTruncatesLikeInt64Arithmetic) {
  // The scalar ops on Bytes promise int64 semantics (truncation toward zero),
  // exactly what the pre-refactor arithmetic did — digest stability depends
  // on no rounding-mode drift here.
  EXPECT_EQ(Bytes(7) / 2, Bytes(3));
  EXPECT_EQ(Bytes(-7) / 2, Bytes(-3));
  EXPECT_EQ(Bytes(7) * 1.5, Bytes(10));    // 10.5 truncates to 10.
  EXPECT_EQ(1.5 * Bytes(7), Bytes(10));
  EXPECT_EQ(Bytes(10) % Bytes(4), Bytes(2));
  EXPECT_EQ(Bytes(3) * int64_t{4}, Bytes(12));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 1000; ++i) {
    seen[rng.NextBelow(5)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(RngTest, ExponentialHasApproximateMean) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(StatsTest, OnlineStatsBasics) {
  OnlineStats stats;
  stats.Add(1.0);
  stats.Add(2.0);
  stats.Add(3.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 6.0);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-12);
}

TEST(StatsTest, EmptyStatsAreZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(samples), 2.5);
}

TEST(StatsTest, PercentileOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, BoxplotOrdersQuantiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  const BoxplotSummary box = Boxplot(samples);
  EXPECT_LT(box.p5, box.p25);
  EXPECT_LT(box.p25, box.p50);
  EXPECT_LT(box.p50, box.p75);
  EXPECT_LT(box.p75, box.p95);
  EXPECT_NEAR(box.p50, 50.5, 1e-9);
}

TEST(StatsTest, BoxplotMatchesPercentileOnUnsortedInput) {
  // Boxplot sorts once internally; its quantiles must equal the per-call
  // Percentile ones regardless of input order, and the input stays untouched.
  const std::vector<double> samples{9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0, 4.0, 6.0};
  const std::vector<double> original = samples;
  const BoxplotSummary box = Boxplot(samples);
  EXPECT_DOUBLE_EQ(box.p5, Percentile(samples, 0.05));
  EXPECT_DOUBLE_EQ(box.p25, Percentile(samples, 0.25));
  EXPECT_DOUBLE_EQ(box.p50, Percentile(samples, 0.50));
  EXPECT_DOUBLE_EQ(box.p75, Percentile(samples, 0.75));
  EXPECT_DOUBLE_EQ(box.p95, Percentile(samples, 0.95));
  EXPECT_EQ(samples, original);
}

TEST(StatsTest, BoxplotOfEmptyIsZero) {
  const BoxplotSummary box = Boxplot({});
  EXPECT_DOUBLE_EQ(box.p5, 0.0);
  EXPECT_DOUBLE_EQ(box.p95, 0.0);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
}

TEST(StatsTest, RelativeErrorAgainstZeroActualIsZeroByContract) {
  // Pins the documented choice (stats.h): actual == 0 means "didn't run",
  // not "infinite error". Callers treating predicted != 0 vs actual == 0 as
  // disagreement must special-case it (CrossCheckWithTrace does).
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_FALSE(std::isnan(RelativeError(5.0, 0.0)));
}

TEST(TableTest, FormatsAlignedTable) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.234, 1), "1.2");
  EXPECT_EQ(FormatSeconds(Seconds(0.5)), "500.0 ms");
  EXPECT_EQ(FormatSeconds(Seconds(90.0)), "90.0 s");
  EXPECT_EQ(FormatSeconds(Minutes(10)), "10.0 min");
  EXPECT_EQ(FormatBytes(Bytes(512)), "512 B");
  EXPECT_EQ(FormatBytes(Bytes(1536)), "1.5 KiB");
  EXPECT_EQ(FormatBytes(GiB(2)), "2.00 GiB");
  EXPECT_EQ(FormatRate(MiBps(1.5)), "1.5 MiB/s");
  EXPECT_EQ(FormatRate(BytesPerSecond(512.0)), "512 B/s");
  EXPECT_EQ(FormatRate(GiBps(2.0)), "2.00 GiB/s");
}

}  // namespace
}  // namespace monoutil

namespace monosim {
namespace {

TEST(RateTraceTest, IntegratesStepFunction) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 10.0);
  trace.Record(monoutil::Seconds(1.0), 0.0);
  trace.Record(monoutil::Seconds(2.0), 5.0);
  // Last rate extends to the end of the integration window.
  EXPECT_NEAR(trace.Integrate(monoutil::Seconds(0.0), monoutil::Seconds(3.0)), 10.0 + 0.0 + 5.0, 1e-12);
  EXPECT_NEAR(trace.Integrate(monoutil::Seconds(0.5), monoutil::Seconds(1.5)), 5.0, 1e-12);
}

TEST(RateTraceTest, MeanUtilizationNormalizesByCapacity) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 50.0);
  trace.Record(monoutil::Seconds(1.0), 0.0);
  EXPECT_NEAR(trace.MeanUtilization(monoutil::Seconds(0.0), monoutil::Seconds(2.0), 100.0), 0.25, 1e-12);
}

TEST(RateTraceTest, RateAtReturnsStepValue) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(1.0), 3.0);
  trace.Record(monoutil::Seconds(2.0), 7.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(monoutil::Seconds(0.5)), 0.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(monoutil::Seconds(1.5)), 3.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(monoutil::Seconds(2.0)), 7.0);
}

TEST(RateTraceTest, SameTimeUpdateOverwrites) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(1.0), 3.0);
  trace.Record(monoutil::Seconds(1.0), 9.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(monoutil::Seconds(1.0)), 9.0);
  EXPECT_EQ(trace.points().size(), 1u);
}

TEST(RateTraceTest, RedundantUpdatesCoalesce) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 5.0);
  trace.Record(monoutil::Seconds(1.0), 5.0);
  EXPECT_EQ(trace.points().size(), 1u);
}

TEST(RateTraceTest, SampleWindows) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 100.0);
  trace.Record(monoutil::Seconds(1.0), 0.0);
  const auto windows = trace.SampleWindows(monoutil::Seconds(0.0), monoutil::Seconds(2.0), monoutil::Seconds(0.5), 100.0);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_NEAR(windows[0], 1.0, 1e-12);
  EXPECT_NEAR(windows[1], 1.0, 1e-12);
  EXPECT_NEAR(windows[2], 0.0, 1e-12);
  EXPECT_NEAR(windows[3], 0.0, 1e-12);
}

TEST(RateTraceTest, SampleWindowsIncludesTrailingPartialWindow) {
  // [0, 1.25) with step 0.5: two full windows plus the partial [1.0, 1.25). The
  // partial window is included (dropping it would silently truncate a job's last
  // seconds from every utilization series) and is averaged over its own 0.25 s
  // length, not the nominal step.
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 100.0);
  trace.Record(monoutil::Seconds(1.125), 0.0);
  const auto windows = trace.SampleWindows(monoutil::Seconds(0.0), monoutil::Seconds(1.25), monoutil::Seconds(0.5), 100.0);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_NEAR(windows[0], 1.0, 1e-12);
  EXPECT_NEAR(windows[1], 1.0, 1e-12);
  // Busy for 0.125 s of the 0.25 s partial window.
  EXPECT_NEAR(windows[2], 0.5, 1e-12);
}

TEST(RateTraceTest, ForcedPointSurvivesEqualRateDedup) {
  RateTrace trace;
  trace.Record(monoutil::Seconds(0.0), 5.0);
  trace.Record(monoutil::Seconds(1.0), 5.0);  // Redundant: coalesced.
  trace.Record(monoutil::Seconds(2.0), 5.0, /*force_point=*/true);
  ASSERT_EQ(trace.points().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.points()[1].time.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(trace.points()[1].rate, 5.0);
}

}  // namespace
}  // namespace monosim
