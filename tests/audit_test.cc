#include "src/simcore/audit.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/cluster/network.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"

namespace monosim {
namespace {

TEST(SimAuditTest, SuiteListenerInstallsAuditAroundEveryTest) {
  // audit_listener.cc installs a report-mode audit before each test runs; if this
  // fails, the rest of the suite is running unaudited.
  EXPECT_NE(SimAudit::current(), nullptr);
}

TEST(SimAuditTest, CleanRunReportsNoViolationsButCountsChecks) {
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  server.Submit(25.0, [] {}, /*weight=*/1.0);
  server.Submit(75.0, [] {}, /*weight=*/3.0);
  sim.Run();
  EXPECT_TRUE(scoped.audit().ok()) << scoped.audit().Summary();
  // The audit must actually have evaluated invariants, not vacuously passed.
  EXPECT_GT(scoped.audit().checks_run(), 0u);
}

TEST(SimAuditTest, DetectsLegacyEqualSplit) {
  // Reinstate the historical bug — weights feed the capacity function but the
  // split ignores them — and verify the audit layer catches it. This is the bug
  // class SimAudit exists for: every simulation completes and every total is
  // plausible; only the share proportions are wrong.
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  server.set_share_policy_for_test(FluidServer::SharePolicy::kEqualSplitLegacy);
  server.Submit(25.0, [] {}, /*weight=*/1.0);
  server.Submit(75.0, [] {}, /*weight=*/3.0);
  sim.Run();
  ASSERT_FALSE(scoped.audit().ok());
  bool weighted_share_flagged = false;
  for (const AuditViolation& violation : scoped.audit().violations()) {
    if (violation.invariant == "weighted-share") {
      weighted_share_flagged = true;
      EXPECT_EQ(violation.source, "disk");
    }
  }
  EXPECT_TRUE(weighted_share_flagged) << scoped.audit().Summary();
}

TEST(SimAuditTest, EqualWeightsMaskTheLegacyBug) {
  // With equal weights the equal split *is* the weighted split, so the audit
  // stays clean — which is why the bug survived: every equal-weight test passed.
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  server.set_share_policy_for_test(FluidServer::SharePolicy::kEqualSplitLegacy);
  server.Submit(50.0, [] {});
  server.Submit(50.0, [] {});
  sim.Run();
  EXPECT_TRUE(scoped.audit().ok()) << scoped.audit().Summary();
}

TEST(SimAuditTest, DetectsLegacyMinShareNetworkModel) {
  // The fabric twin of the equal-split bug: the old min-of-equal-shares model
  // never over-allocated a NIC, so the ingress/egress-within-bandwidth checks
  // could not see it — under-allocation (stranded capacity) passes bounds that
  // only cut from above. The max-min-bottleneck invariant bounds rates from
  // below: every flow must sit at a saturated NIC side where it has a maximal
  // share, which the stranded m4->m2 flow (50 instead of 200/3) does not.
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  NetworkFabricSim fabric(&sim, 5, monoutil::BytesPerSecond(100.0));
  fabric.set_share_policy_for_test(NetworkFabricSim::SharePolicy::kMinShareLegacy);
  fabric.StartFlow(0, 1, monoutil::Bytes(1000), [] {});
  fabric.StartFlow(0, 1, monoutil::Bytes(1000), [] {});
  fabric.StartFlow(0, 2, monoutil::Bytes(1000), [] {});
  fabric.StartFlow(4, 2, monoutil::Bytes(200), [] {});
  sim.Run();
  ASSERT_FALSE(scoped.audit().ok());
  bool bottleneck_flagged = false;
  for (const AuditViolation& violation : scoped.audit().violations()) {
    if (violation.invariant == "max-min-bottleneck") {
      bottleneck_flagged = true;
      EXPECT_EQ(violation.source, "network-fabric");
    }
  }
  EXPECT_TRUE(bottleneck_flagged) << scoped.audit().Summary();
}

TEST(SimAuditTest, SymmetricShufflesMaskTheLegacyNetworkBug) {
  // On a complete symmetric all-to-all shuffle the min-of-shares allocation *is*
  // max-min fair, so the certification passes — which is why the shortcut
  // survived: the paper's symmetric network-heavy workloads never exposed it.
  // (The flows are started under an absorbed audit: the asymmetric *prefixes* on
  // the way to all-to-all are legitimately flagged, which is the previous test.)
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  fabric.set_share_policy_for_test(NetworkFabricSim::SharePolicy::kMinShareLegacy);
  {
    ScopedAudit absorb(ScopedAudit::kReport);
    for (int src = 0; src < 4; ++src) {
      for (int dst = 0; dst < 4; ++dst) {
        if (src != dst) {
          fabric.StartFlow(src, dst, monoutil::Bytes(300), [] {});
        }
      }
    }
  }
  SimAudit audit;  // Standalone: audits only the complete symmetric state.
  fabric.AuditInvariants(audit, AuditPhase::kEventBoundary);
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  EXPECT_GT(audit.checks_run(), 0u);
}

TEST(SimAuditTest, NestedAuditReceivesChecksAndRestoresOuter) {
  ScopedAudit outer(ScopedAudit::kReport);
  const uint64_t outer_checks_before = outer.audit().checks_run();
  {
    ScopedAudit inner(ScopedAudit::kReport);
    EXPECT_EQ(SimAudit::current(), &inner.audit());
    Simulation sim;
    FluidServer server(&sim, "disk", ConstantCapacity(10.0));
    server.Submit(10.0, [] {});
    sim.Run();
    EXPECT_GT(inner.audit().checks_run(), 0u);
  }
  EXPECT_EQ(SimAudit::current(), &outer.audit());
  EXPECT_EQ(outer.audit().checks_run(), outer_checks_before);
}

TEST(SimAuditTest, SummaryListsViolations) {
  SimAudit audit;  // Standalone, never installed.
  EXPECT_TRUE(audit.ok());
  audit.Report(monoutil::Seconds(1.5), "disk0", "byte-conservation", "submitted 10 != flushed 4 + dirty 5");
  EXPECT_FALSE(audit.ok());
  const std::string summary = audit.Summary();
  EXPECT_NE(summary.find("byte-conservation"), std::string::npos);
  EXPECT_NE(summary.find("disk0"), std::string::npos);
}

TEST(SimAuditTest, AuditRequestedByEnvParsesVariable) {
  unsetenv("MONO_SIM_AUDIT");
  EXPECT_FALSE(AuditRequestedByEnv());
  setenv("MONO_SIM_AUDIT", "0", 1);
  EXPECT_FALSE(AuditRequestedByEnv());
  setenv("MONO_SIM_AUDIT", "1", 1);
  EXPECT_TRUE(AuditRequestedByEnv());
  unsetenv("MONO_SIM_AUDIT");
}

}  // namespace
}  // namespace monosim
