// Property-based and parameterized sweeps over the simulators' invariants.
//
// These tests assert relationships that must hold for *every* configuration in a
// sweep, not point values: determinism, conservation of work, monotonicity of
// runtimes in hardware, and the architectural invariants the paper's design rests on
// (per-disk monotask exclusivity, multitask limits, model consistency).
#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/sort.h"

namespace monosim {
namespace {

using monoutil::GiB;
using monoutil::MiB;

struct SweepParams {
  int machines;
  int disks;
  int values_per_key;
};

std::string SweepName(const ::testing::TestParamInfo<SweepParams>& info) {
  return "m" + std::to_string(info.param.machines) + "_d" +
         std::to_string(info.param.disks) + "_v" +
         std::to_string(info.param.values_per_key);
}

class ExecutorSweepTest : public ::testing::TestWithParam<SweepParams> {
 protected:
  ClusterConfig Cluster() const {
    return ClusterConfig::Of(GetParam().machines,
                             MachineConfig::HddWorker(GetParam().disks));
  }
  monoload::SortParams Sort() const {
    monoload::SortParams params;
    params.total_bytes = GiB(8);
    params.values_per_key = GetParam().values_per_key;
    params.num_map_tasks = 64;
    params.num_reduce_tasks = 64;
    return params;
  }
  JobResult Run(bool monotasks) const {
    SimEnvironment env(Cluster());
    SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
    MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(monotasks ? static_cast<ExecutorSim*>(&mono)
                                 : static_cast<ExecutorSim*>(&spark));
    auto params = Sort();
    return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
  }
};

TEST_P(ExecutorSweepTest, BothExecutorsCompleteWithSameGroundTruthWork) {
  const JobResult spark = Run(false);
  const JobResult mono = Run(true);
  ASSERT_EQ(spark.stages.size(), mono.stages.size());
  for (size_t s = 0; s < spark.stages.size(); ++s) {
    // The work is a property of the job, not the architecture.
    EXPECT_EQ(spark.stages[s].usage.disk_read_bytes, mono.stages[s].usage.disk_read_bytes);
    EXPECT_EQ(spark.stages[s].usage.disk_write_bytes,
              mono.stages[s].usage.disk_write_bytes);
    EXPECT_NEAR(spark.stages[s].usage.cpu_seconds, mono.stages[s].usage.cpu_seconds,
                1e-6);
    // Network bytes depend slightly on task placement (which reduce task lands on
    // which machine changes the local/remote shuffle split), so compare loosely.
    EXPECT_NEAR(static_cast<double>(spark.stages[s].usage.network_bytes.count()),
                static_cast<double>(mono.stages[s].usage.network_bytes.count()),
                0.05 * static_cast<double>(mono.stages[s].usage.network_bytes.count()) + 1.0);
  }
}

TEST_P(ExecutorSweepTest, RuntimeIsNoLessThanTheModeledIdeal) {
  const JobResult mono = Run(true);
  const monomodel::MonotasksModel model(
      mono, monomodel::HardwareProfile::FromCluster(Cluster()));
  for (int s = 0; s < model.num_stages(); ++s) {
    const double ideal = model.IdealTimes(s).bottleneck_seconds();
    // Real execution can only be slower than the perfectly-parallel ideal.
    EXPECT_GE(mono.stages[static_cast<size_t>(s)].duration().seconds(), ideal * 0.999);
  }
}

TEST_P(ExecutorSweepTest, MonotaskComputeTimeMatchesGroundTruth) {
  const JobResult mono = Run(true);
  for (const auto& stage : mono.stages) {
    // The CPU scheduler never over-subscribes cores, so compute monotask service
    // time equals the work they contain.
    EXPECT_NEAR(stage.monotask_times.compute_seconds, stage.usage.cpu_seconds,
                stage.usage.cpu_seconds * 0.01);
  }
}

TEST_P(ExecutorSweepTest, DeterministicAcrossRepeatedRuns) {
  const JobResult first = Run(true);
  const JobResult second = Run(true);
  EXPECT_DOUBLE_EQ(first.duration().seconds(), second.duration().seconds());
  const JobResult spark_first = Run(false);
  const JobResult spark_second = Run(false);
  EXPECT_DOUBLE_EQ(spark_first.duration().seconds(), spark_second.duration().seconds());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecutorSweepTest,
                         ::testing::Values(SweepParams{2, 1, 10}, SweepParams{2, 2, 20},
                                           SweepParams{4, 2, 20}, SweepParams{4, 1, 50},
                                           SweepParams{8, 2, 50}),
                         SweepName);

class DiskScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(DiskScalingTest, MoreDisksNeverSlowTheJob) {
  // Runtime must be non-increasing in the disk count for a disk-heavy job.
  const int disks = GetParam();
  auto run = [](int d) {
    SimEnvironment env(ClusterConfig::Of(4, MachineConfig::HddWorker(d)));
    MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(&mono);
    monoload::SortParams params;
    params.total_bytes = GiB(16);
    params.values_per_key = 100;  // Disk-bound.
    params.num_map_tasks = 64;
    params.num_reduce_tasks = 64;
    return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params)).duration();
  };
  EXPECT_LE(run(disks + 1), run(disks) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Disks, DiskScalingTest, ::testing::Values(1, 2, 3));

class SlotSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SlotSweepTest, SparkCompletesUnderAnySlotCount) {
  SimEnvironment env(ClusterConfig::Of(2, MachineConfig::HddWorker(2)));
  SparkConfig config;
  config.slots_per_machine = GetParam();
  SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), config);
  env.AttachExecutor(&spark);
  monoload::SortParams params;
  params.total_bytes = GiB(4);
  params.num_map_tasks = 32;
  params.num_reduce_tasks = 32;
  const JobResult result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
  EXPECT_EQ(result.stages[0].num_tasks, 32);
  EXPECT_GT(result.duration(), monoutil::SimTime());
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweepTest, ::testing::Values(1, 2, 4, 8, 16, 64));

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, JitterPreservesTotals) {
  // Whatever the seed, per-task jitter must not change the stage's byte totals.
  DfsSim dfs(4, 2, 1, GetParam());
  monoutil::Rng rng(GetParam());
  JobSpec job;
  job.name = "jitter";
  StageSpec spec;
  spec.name = "scan";
  spec.num_tasks = 17;  // Odd count exercises rounding.
  spec.input = InputSource::kNone;
  spec.input_bytes = MiB(999);
  spec.cpu_seconds_per_task = 0.7;
  spec.output = OutputSink::kDfs;
  spec.output_bytes = MiB(333);
  spec.task_size_jitter = 0.2;
  job.stages = {spec};

  StageExecution stage(job, 0, 4, &dfs, nullptr, &rng);
  monoutil::Bytes input_total;
  monoutil::Bytes output_total;
  for (int m = 0; m < 4; ++m) {
    while (auto task = stage.TakeTask(m)) {
      input_total += task->input_bytes;
      output_total += task->output_bytes;
      EXPECT_GE(task->input_bytes, monoutil::Bytes(0));
    }
  }
  EXPECT_EQ(input_total, MiB(999));
  EXPECT_EQ(output_total, MiB(333));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1000u, 31337u));

}  // namespace
}  // namespace monosim
