#include "src/cluster/network.h"

#include <algorithm>
#include <functional>

#include <gtest/gtest.h>

#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace monosim {
namespace {

using monoutil::Bytes;

TEST(NetworkFabricTest, SingleFlowRunsAtLinkRate) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, /*nic_bandwidth=*/monoutil::BytesPerSecond(100.0));
  double done_at = -1.0;
  fabric.StartFlow(0, 1, Bytes(200), [&] { done_at = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(NetworkFabricTest, TwoFlowsToSameReceiverShareIngress) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  int finished = 0;
  fabric.StartFlow(0, 2, Bytes(100), [&] { ++finished; });
  fabric.StartFlow(1, 2, Bytes(100), [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now().seconds(), 2.0, 1e-9);  // Each got 50 B/s.
}

TEST(NetworkFabricTest, TwoFlowsFromSameSenderShareEgress) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  int finished = 0;
  fabric.StartFlow(0, 1, Bytes(100), [&] { ++finished; });
  fabric.StartFlow(0, 2, Bytes(100), [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now().seconds(), 2.0, 1e-9);
}

TEST(NetworkFabricTest, DisjointFlowsDoNotInterfere) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  int finished = 0;
  fabric.StartFlow(0, 1, Bytes(100), [&] { ++finished; });
  fabric.StartFlow(2, 3, Bytes(100), [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-9);
}

TEST(NetworkFabricTest, StrandedCapacityIsRedistributedMaxMinFairly) {
  // The asymmetric fan-in shape the legacy min-of-shares model got wrong. Flows
  // m0->m1, m0->m1, m0->m2 are bottlenecked at m0's egress (100/3 each); flow
  // m4->m2 then deserves everything m2's ingress has left: 100 - 100/3 = 200/3.
  // The legacy model handed it min(100/1 egress, 100/2 ingress) = 50, stranding
  // 100/6 of m2's ingress capacity, so its 200 bytes took 4 s instead of 3 s.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 5, monoutil::BytesPerSecond(100.0));
  double done_at = -1.0;
  fabric.StartFlow(0, 1, Bytes(1000), [] {});
  fabric.StartFlow(0, 1, Bytes(1000), [] {});
  fabric.StartFlow(0, 2, Bytes(1000), [] {});
  const NetworkFabricSim::FlowId fan_in = fabric.StartFlow(4, 2, Bytes(200), [&] {
    done_at = sim.now().seconds();
  });
  EXPECT_NEAR(fabric.flow_rate(fan_in).bps(), 200.0 / 3.0, 1e-6);
  sim.Run();
  EXPECT_NEAR(done_at, 3.0, 1e-6);
}

TEST(NetworkFabricTest, StrandedEgressCapacityIsRedistributedToo) {
  // Mirror image of the fan-in case: m0's ingress is the shared bottleneck
  // (three flows at 100/3), so flow m2->m4 gets the rest of m2's egress
  // (100 - 100/3 = 200/3), not the legacy equal egress split of 50.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 5, monoutil::BytesPerSecond(100.0));
  fabric.StartFlow(1, 0, Bytes(1000), [] {});
  fabric.StartFlow(1, 0, Bytes(1000), [] {});
  fabric.StartFlow(2, 0, Bytes(1000), [] {});
  const NetworkFabricSim::FlowId fan_out = fabric.StartFlow(2, 4, Bytes(200), [] {});
  EXPECT_NEAR(fabric.flow_rate(fan_out).bps(), 200.0 / 3.0, 1e-6);
  sim.Run();
}

TEST(NetworkFabricTest, LegacyMinSharePolicyReproducesTheStrandedRate) {
  // Documents what the old model computed for the same flow set (and pins the
  // test-only policy the audit demonstration in audit_test.cc relies on).
  Simulation sim;
  NetworkFabricSim fabric(&sim, 5, monoutil::BytesPerSecond(100.0));
  fabric.set_share_policy_for_test(NetworkFabricSim::SharePolicy::kMinShareLegacy);
  ScopedAudit absorb(ScopedAudit::kReport);  // Absorb the max-min violations.
  fabric.StartFlow(0, 1, Bytes(1000), [] {});
  fabric.StartFlow(0, 1, Bytes(1000), [] {});
  fabric.StartFlow(0, 2, Bytes(1000), [] {});
  const NetworkFabricSim::FlowId fan_in = fabric.StartFlow(4, 2, Bytes(200), [] {});
  EXPECT_NEAR(fabric.flow_rate(fan_in).bps(), 50.0, 1e-9);
  sim.Run();
}

TEST(NetworkFabricTest, CascadedRedistributionBottomsOutEveryFlow) {
  // Two levels of filling: e0 saturates first (A,B,C at 30); the freed ingress
  // capacity at m2 then lets D rise until e3/i4 saturate, dragging E and F with
  // it. Every flow ends pinned to a saturated NIC side.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 6, monoutil::BytesPerSecond(90.0));
  const auto a = fabric.StartFlow(0, 1, Bytes(1000), [] {});
  const auto b = fabric.StartFlow(0, 1, Bytes(1000), [] {});
  const auto c = fabric.StartFlow(0, 2, Bytes(1000), [] {});
  const auto d = fabric.StartFlow(3, 2, Bytes(1000), [] {});
  const auto e = fabric.StartFlow(3, 4, Bytes(1000), [] {});
  const auto f = fabric.StartFlow(5, 4, Bytes(1000), [] {});
  EXPECT_NEAR(fabric.flow_rate(a).bps(), 30.0, 1e-9);
  EXPECT_NEAR(fabric.flow_rate(b).bps(), 30.0, 1e-9);
  EXPECT_NEAR(fabric.flow_rate(c).bps(), 30.0, 1e-9);
  EXPECT_NEAR(fabric.flow_rate(d).bps(), 45.0, 1e-9);
  EXPECT_NEAR(fabric.flow_rate(e).bps(), 45.0, 1e-9);
  EXPECT_NEAR(fabric.flow_rate(f).bps(), 45.0, 1e-9);
  sim.Run();
}

TEST(NetworkFabricTest, FabricChurnKeepsEventQueueCompact) {
  // Max-min recomputation cancels and reschedules completion events on every flow
  // set change; the simulation's tombstone compaction must keep the queue bounded
  // by the live event count, not the cancellation count.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 8, monoutil::BytesPerSecond(100.0));
  constexpr int kLanes = 64;
  constexpr int kFlowsPerLane = 50;
  size_t max_queue = 0;
  int completed = 0;
  std::function<void(int, int)> launch = [&](int lane, int remaining) {
    if (remaining == 0) {
      return;
    }
    const int src = lane % 8;
    int dst = (lane * 3 + 1) % 8;
    if (dst == src) {
      dst = (dst + 1) % 8;
    }
    fabric.StartFlow(src, dst, Bytes(64 + lane), [&, lane, remaining] {
      ++completed;
      max_queue = std::max(max_queue, sim.queue_size());
      launch(lane, remaining - 1);
    });
  };
  for (int lane = 0; lane < kLanes; ++lane) {
    launch(lane, kFlowsPerLane);
  }
  sim.Run();
  EXPECT_EQ(completed, kLanes * kFlowsPerLane);
  // At most kLanes live completion events exist at once; compaction bounds the
  // queue to twice the live count plus the compaction floor.
  EXPECT_LE(max_queue, 2 * kLanes + Simulation::kCompactionMinQueueSize);
}

TEST(NetworkFabricTest, FlowRateIsMinOfEndpointShares) {
  // Receiver 3 carries two flows (shares: 50 each); sender 0 carries the 0->3 flow
  // plus another egress flow, so 0->3 also gets 50 from the sender side. Flow 1->3
  // is receiver-limited at 50 even though its sender is idle otherwise.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  double flow_1_3_done = -1.0;
  fabric.StartFlow(0, 3, Bytes(1000), [] {});
  fabric.StartFlow(0, 2, Bytes(1000), [] {});
  fabric.StartFlow(1, 3, Bytes(100), [&] { flow_1_3_done = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(flow_1_3_done, 2.0, 1e-6);
}

TEST(NetworkFabricTest, CompletionFreesBandwidthForRemainingFlows) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  double small_done = -1.0;
  double large_done = -1.0;
  fabric.StartFlow(0, 2, Bytes(50), [&] { small_done = sim.now().seconds(); });
  fabric.StartFlow(1, 2, Bytes(150), [&] { large_done = sim.now().seconds(); });
  sim.Run();
  // Both at 50 B/s; small finishes at t=1 (50 B). Large has 100 B left, now alone at
  // 100 B/s -> finishes at t=2.
  EXPECT_NEAR(small_done, 1.0, 1e-9);
  EXPECT_NEAR(large_done, 2.0, 1e-9);
}

TEST(NetworkFabricTest, ZeroByteFlowCompletes) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, monoutil::BytesPerSecond(100.0));
  bool done = false;
  fabric.StartFlow(0, 1, Bytes(0), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(NetworkFabricTest, ControlMessageTakesRequestLatency) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, monoutil::BytesPerSecond(100.0),
                          /*request_latency=*/monoutil::Seconds(0.25));
  double delivered_at = -1.0;
  fabric.SendControl(0, 1, [&] { delivered_at = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(delivered_at, 0.25, 1e-12);
}

TEST(NetworkFabricTest, TracksTotalBytes) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 3, monoutil::BytesPerSecond(100.0));
  fabric.StartFlow(0, 1, Bytes(100), [] {});
  fabric.StartFlow(1, 2, Bytes(300), [] {});
  sim.Run();
  EXPECT_EQ(fabric.total_bytes_transferred(), Bytes(400));
}

TEST(NetworkFabricTest, IngressTraceMeasuresUtilization) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, monoutil::BytesPerSecond(100.0));
  fabric.EnableTrace();
  fabric.StartFlow(0, 1, Bytes(100), [] {});  // Saturates machine 1's ingress for 1s.
  sim.Run();
  sim.ScheduleAt(monoutil::Seconds(2.0), [] {});
  sim.Run();
  EXPECT_NEAR(fabric.MeanIngressUtilization(1, monoutil::Seconds(0.0), monoutil::Seconds(1.0)), 1.0, 1e-9);
  EXPECT_NEAR(fabric.MeanIngressUtilization(1, monoutil::Seconds(0.0), monoutil::Seconds(2.0)), 0.5, 1e-9);
  EXPECT_NEAR(fabric.MeanIngressUtilization(0, monoutil::Seconds(0.0), monoutil::Seconds(2.0)), 0.0, 1e-9);
}

TEST(NetworkFabricTest, FlowCountsTrackActiveFlows) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 3, monoutil::BytesPerSecond(100.0));
  fabric.StartFlow(0, 1, Bytes(100), [] {});
  fabric.StartFlow(2, 1, Bytes(100), [] {});
  EXPECT_EQ(fabric.ingress_flows(1), 2);
  EXPECT_EQ(fabric.egress_flows(0), 1);
  sim.Run();
  EXPECT_EQ(fabric.ingress_flows(1), 0);
  EXPECT_EQ(fabric.egress_flows(0), 0);
}

TEST(NetworkFabricTest, AllToAllShuffleIsSymmetric) {
  // 4 machines, everyone sends 300 B to everyone else. Each NIC carries 3 ingress
  // flows of 300 B at 100/3 B/s -> 9 s total.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, monoutil::BytesPerSecond(100.0));
  int finished = 0;
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src != dst) {
        fabric.StartFlow(src, dst, Bytes(300), [&] { ++finished; });
      }
    }
  }
  sim.Run();
  EXPECT_EQ(finished, 12);
  EXPECT_NEAR(sim.now().seconds(), 9.0, 1e-6);
}

}  // namespace
}  // namespace monosim
