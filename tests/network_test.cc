#include "src/cluster/network.h"

#include <gtest/gtest.h>

#include "src/simcore/simulation.h"

namespace monosim {
namespace {

using monoutil::Bytes;

TEST(NetworkFabricTest, SingleFlowRunsAtLinkRate) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, /*nic_bandwidth=*/100.0);
  double done_at = -1.0;
  fabric.StartFlow(0, 1, 200, [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(NetworkFabricTest, TwoFlowsToSameReceiverShareIngress) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  int finished = 0;
  fabric.StartFlow(0, 2, 100, [&] { ++finished; });
  fabric.StartFlow(1, 2, 100, [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now(), 2.0, 1e-9);  // Each got 50 B/s.
}

TEST(NetworkFabricTest, TwoFlowsFromSameSenderShareEgress) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  int finished = 0;
  fabric.StartFlow(0, 1, 100, [&] { ++finished; });
  fabric.StartFlow(0, 2, 100, [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now(), 2.0, 1e-9);
}

TEST(NetworkFabricTest, DisjointFlowsDoNotInterfere) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  int finished = 0;
  fabric.StartFlow(0, 1, 100, [&] { ++finished; });
  fabric.StartFlow(2, 3, 100, [&] { ++finished; });
  sim.Run();
  EXPECT_EQ(finished, 2);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(NetworkFabricTest, FlowRateIsMinOfEndpointShares) {
  // Receiver 3 carries two flows (shares: 50 each); sender 0 carries the 0->3 flow
  // plus another egress flow, so 0->3 also gets 50 from the sender side. Flow 1->3
  // is receiver-limited at 50 even though its sender is idle otherwise.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  double flow_1_3_done = -1.0;
  fabric.StartFlow(0, 3, 1000, [] {});
  fabric.StartFlow(0, 2, 1000, [] {});
  fabric.StartFlow(1, 3, 100, [&] { flow_1_3_done = sim.now(); });
  sim.Run();
  EXPECT_NEAR(flow_1_3_done, 2.0, 1e-6);
}

TEST(NetworkFabricTest, CompletionFreesBandwidthForRemainingFlows) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  double small_done = -1.0;
  double large_done = -1.0;
  fabric.StartFlow(0, 2, 50, [&] { small_done = sim.now(); });
  fabric.StartFlow(1, 2, 150, [&] { large_done = sim.now(); });
  sim.Run();
  // Both at 50 B/s; small finishes at t=1 (50 B). Large has 100 B left, now alone at
  // 100 B/s -> finishes at t=2.
  EXPECT_NEAR(small_done, 1.0, 1e-9);
  EXPECT_NEAR(large_done, 2.0, 1e-9);
}

TEST(NetworkFabricTest, ZeroByteFlowCompletes) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, 100.0);
  bool done = false;
  fabric.StartFlow(0, 1, 0, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(NetworkFabricTest, ControlMessageTakesRequestLatency) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, 100.0, /*request_latency=*/0.25);
  double delivered_at = -1.0;
  fabric.SendControl(0, 1, [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_NEAR(delivered_at, 0.25, 1e-12);
}

TEST(NetworkFabricTest, TracksTotalBytes) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 3, 100.0);
  fabric.StartFlow(0, 1, 100, [] {});
  fabric.StartFlow(1, 2, 300, [] {});
  sim.Run();
  EXPECT_EQ(fabric.total_bytes_transferred(), 400);
}

TEST(NetworkFabricTest, IngressTraceMeasuresUtilization) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 2, 100.0);
  fabric.EnableTrace();
  fabric.StartFlow(0, 1, 100, [] {});  // Saturates machine 1's ingress for 1s.
  sim.Run();
  sim.ScheduleAt(2.0, [] {});
  sim.Run();
  EXPECT_NEAR(fabric.MeanIngressUtilization(1, 0.0, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(fabric.MeanIngressUtilization(1, 0.0, 2.0), 0.5, 1e-9);
  EXPECT_NEAR(fabric.MeanIngressUtilization(0, 0.0, 2.0), 0.0, 1e-9);
}

TEST(NetworkFabricTest, FlowCountsTrackActiveFlows) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 3, 100.0);
  fabric.StartFlow(0, 1, 100, [] {});
  fabric.StartFlow(2, 1, 100, [] {});
  EXPECT_EQ(fabric.ingress_flows(1), 2);
  EXPECT_EQ(fabric.egress_flows(0), 1);
  sim.Run();
  EXPECT_EQ(fabric.ingress_flows(1), 0);
  EXPECT_EQ(fabric.egress_flows(0), 0);
}

TEST(NetworkFabricTest, AllToAllShuffleIsSymmetric) {
  // 4 machines, everyone sends 300 B to everyone else. Each NIC carries 3 ingress
  // flows of 300 B at 100/3 B/s -> 9 s total.
  Simulation sim;
  NetworkFabricSim fabric(&sim, 4, 100.0);
  int finished = 0;
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src != dst) {
        fabric.StartFlow(src, dst, 300, [&] { ++finished; });
      }
    }
  }
  sim.Run();
  EXPECT_EQ(finished, 12);
  EXPECT_NEAR(sim.now(), 9.0, 1e-6);
}

}  // namespace
}  // namespace monosim
