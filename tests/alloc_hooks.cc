#include "tests/alloc_hooks.h"

#include <cstdlib>
#include <new>

namespace monotest {

std::atomic<long>& AllocationCount() {
  static std::atomic<long> count{0};
  return count;
}

}  // namespace monotest

#if MONO_TEST_ALLOC_HOOKS

void* operator new(std::size_t size) {
  ++monotest::AllocationCount();
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++monotest::AllocationCount();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t padded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, padded ? padded : a)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // MONO_TEST_ALLOC_HOOKS
