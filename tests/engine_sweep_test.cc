// Parameterized sweep over engine configurations: the same word-count job must
// produce identical results on any worker/core/disk topology, in both execution
// modes. This is the engine's thread-safety and correctness net.
#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/dataset.h"

namespace monotasks {
namespace {

struct EngineSweepParams {
  int workers;
  int cores;
  int disks;
  ExecutionMode mode;
};

std::string SweepName(const ::testing::TestParamInfo<EngineSweepParams>& info) {
  return "w" + std::to_string(info.param.workers) + "_c" +
         std::to_string(info.param.cores) + "_d" + std::to_string(info.param.disks) +
         (info.param.mode == ExecutionMode::kMonotasks ? "_mono" : "_slots");
}

class EngineSweepTest : public ::testing::TestWithParam<EngineSweepParams> {
 protected:
  EngineConfig Config() const {
    EngineConfig config;
    config.num_workers = GetParam().workers;
    config.cores_per_worker = GetParam().cores;
    config.disks_per_worker = GetParam().disks;
    config.mode = GetParam().mode;
    config.time_scale = 2000.0;
    return config;
  }
};

TEST_P(EngineSweepTest, WordCountIsTopologyInvariant) {
  MonoClient client(Config());
  using WordCount = std::pair<std::string, int64_t>;
  std::vector<std::string> lines;
  for (int i = 0; i < 60; ++i) {
    lines.push_back("alpha beta gamma alpha");
  }
  auto words = client.Parallelize<std::string>(lines, 12).FlatMap<WordCount>(
      [](const std::string& line) {
        std::vector<WordCount> out;
        std::istringstream stream(line);
        std::string word;
        while (stream >> word) {
          out.emplace_back(word, 1);
        }
        return out;
      });
  auto counts = ReduceByKey<std::string, int64_t>(
      words, [](const int64_t& a, const int64_t& b) { return a + b; }, 5);
  std::map<std::string, int64_t> result;
  for (auto& [word, count] : counts.Collect()) {
    result[word] = count;
  }
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result["alpha"], 120);
  EXPECT_EQ(result["beta"], 60);
  EXPECT_EQ(result["gamma"], 60);
}

TEST_P(EngineSweepTest, ChainedJobsReuseTheContext) {
  MonoClient client(Config());
  auto data = client.Parallelize<int64_t>({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  data.Map<int64_t>([](const int64_t& x) { return x * 2; }).Save("doubled");
  auto total =
      client.FromSource<int64_t>("doubled", 4)
          .Filter([](const int64_t& x) { return x > 4; })
          .Count();
  EXPECT_EQ(total, 6);  // {6, 8, 10, 12, 14, 16}.
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, EngineSweepTest,
    ::testing::Values(EngineSweepParams{1, 1, 1, ExecutionMode::kMonotasks},
                      EngineSweepParams{1, 4, 2, ExecutionMode::kMonotasks},
                      EngineSweepParams{2, 2, 1, ExecutionMode::kMonotasks},
                      EngineSweepParams{3, 2, 2, ExecutionMode::kMonotasks},
                      EngineSweepParams{5, 1, 1, ExecutionMode::kMonotasks},
                      EngineSweepParams{1, 1, 1, ExecutionMode::kTaskThreads},
                      EngineSweepParams{3, 2, 2, ExecutionMode::kTaskThreads},
                      EngineSweepParams{5, 2, 1, ExecutionMode::kTaskThreads}),
    SweepName);

}  // namespace
}  // namespace monotasks
