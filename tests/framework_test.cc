// Tests for the framework layer: specs, stage execution, task pool, shuffle layout.
#include <set>

#include <gtest/gtest.h>

#include "src/framework/job_spec.h"
#include "src/framework/shuffle_layout.h"
#include "src/framework/stage_execution.h"
#include "src/framework/task_pool.h"
#include "src/storage/dfs.h"

namespace monosim {
namespace {

using monoutil::GiB;
using monoutil::MiB;

JobSpec TwoStageJob(int map_tasks = 8, int reduce_tasks = 8) {
  JobSpec job;
  job.name = "test";
  StageSpec map;
  map.name = "map";
  map.num_tasks = map_tasks;
  map.input = InputSource::kDfs;
  map.input_file = "input";
  map.cpu_seconds_per_task = 1.0;
  map.deser_fraction = 0.25;
  map.output = OutputSink::kShuffle;
  map.shuffle_bytes = MiB(256);
  StageSpec reduce;
  reduce.name = "reduce";
  reduce.num_tasks = reduce_tasks;
  reduce.input = InputSource::kShuffle;
  reduce.input_bytes = MiB(256);
  reduce.cpu_seconds_per_task = 0.5;
  reduce.output = OutputSink::kDfs;
  reduce.output_bytes = MiB(64);
  job.stages = {map, reduce};
  return job;
}

TEST(JobSpecTest, ValidSpecPasses) {
  TwoStageJob().Validate();
}

TEST(JobSpecDeathTest, ShuffleInputMustMatchPreviousOutput) {
  JobSpec job = TwoStageJob();
  job.stages[1].input_bytes = MiB(100);  // != map.shuffle_bytes
  EXPECT_DEATH(job.Validate(), "shuffle input bytes");
}

TEST(JobSpecDeathTest, FirstStageCannotReadShuffle) {
  JobSpec job = TwoStageJob();
  job.stages.erase(job.stages.begin());
  EXPECT_DEATH(job.Validate(), "first stage");
}

TEST(JobSpecDeathTest, LastStageCannotWriteShuffle) {
  JobSpec job = TwoStageJob();
  job.stages.pop_back();
  EXPECT_DEATH(job.Validate(), "last stage");
}

class StageExecutionTest : public ::testing::Test {
 protected:
  StageExecutionTest() : dfs_(4, 2, 1, /*seed=*/3), rng_(7) {
    dfs_.CreateFileWithBlocks("input", MiB(512), 8);
    job_ = TwoStageJob();
  }

  DfsSim dfs_;
  monoutil::Rng rng_;
  JobSpec job_;
};

TEST_F(StageExecutionTest, TaskSizesSumToSpecTotals) {
  StageExecution stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  monoutil::Bytes shuffle_total;
  double cpu_total = 0.0;
  for (int m = 0; m < 4; ++m) {
    while (auto task = stage.TakeTask(m)) {
      shuffle_total += task->shuffle_write_bytes;
      cpu_total += task->cpu_seconds;
    }
  }
  EXPECT_EQ(shuffle_total, MiB(256));
  EXPECT_NEAR(cpu_total, 8.0, 1e-9);
}

TEST_F(StageExecutionTest, LocalityPreferredOverStealing) {
  StageExecution stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  // 8 blocks over 4 machines: each machine has 2 local blocks.
  auto first = stage.TakeTask(0);
  auto second = stage.TakeTask(0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(first->input_local);
  EXPECT_TRUE(second->input_local);
  // Third take on machine 0 must steal a non-local block.
  auto third = stage.TakeTask(0);
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(third->input_local);
  EXPECT_NE(third->input_machine, 0);
}

TEST_F(StageExecutionTest, EveryTaskHandedOutExactlyOnce) {
  StageExecution stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  std::set<int> seen;
  for (int i = 0; i < 8; ++i) {
    auto task = stage.TakeTask(i % 4);
    ASSERT_TRUE(task.has_value());
    EXPECT_TRUE(seen.insert(task->task_index).second);
  }
  EXPECT_FALSE(stage.TakeTask(0).has_value());
  EXPECT_EQ(stage.unassigned_tasks(), 0);
}

TEST_F(StageExecutionTest, CompletionCallbackFiresAfterLastTask) {
  StageExecution stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  bool complete = false;
  stage.set_on_complete([&] { complete = true; });
  stage.Activate(monoutil::Seconds(0.0));
  for (int i = 0; i < 8; ++i) {
    auto task = stage.TakeTask(i % 4);
    stage.OnTaskStarted(task->task_index, monoutil::Seconds(1.0));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(complete);
    stage.OnTaskFinished(i, monoutil::Seconds(2.0 + i));
  }
  EXPECT_TRUE(complete);
  EXPECT_TRUE(stage.AllTasksFinished());
  EXPECT_NEAR(stage.result().task_seconds, 8 * 1.0 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7),
              1e-9);
  EXPECT_NEAR(stage.result().end.seconds(), 9.0, 1e-12);
}

TEST_F(StageExecutionTest, ShuffleBytesTrackedPerMachine) {
  StageExecution stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  stage.RecordShuffleWrite(0, MiB(100));
  stage.RecordShuffleWrite(0, MiB(28));
  stage.RecordShuffleWrite(3, MiB(128));
  EXPECT_EQ(stage.shuffle_bytes_per_machine()[0], MiB(128));
  EXPECT_EQ(stage.shuffle_bytes_per_machine()[3], MiB(128));
  EXPECT_EQ(stage.shuffle_bytes_per_machine()[1], monoutil::Bytes(0));
}

TEST_F(StageExecutionTest, ShufflePortionsProportionalAndExact) {
  StageExecution map_stage(job_, 0, 4, &dfs_, nullptr, &rng_);
  map_stage.RecordShuffleWrite(0, MiB(128));  // Half on machine 0.
  map_stage.RecordShuffleWrite(1, MiB(64));
  map_stage.RecordShuffleWrite(2, MiB(64));
  StageExecution reduce_stage(job_, 1, 4, &dfs_, &map_stage, &rng_);
  auto task = reduce_stage.TakeTask(0);
  ASSERT_TRUE(task.has_value());
  const auto portions = ComputeShufflePortions(*task);
  monoutil::Bytes total;
  monoutil::Bytes from_zero;
  for (const auto& portion : portions) {
    total += portion.bytes;
    if (portion.src_machine == 0) {
      from_zero = portion.bytes;
    }
  }
  EXPECT_EQ(total, task->input_bytes);  // Exact, despite proportional rounding.
  // Machine 0 holds half the shuffle data, so roughly half the fetch comes from it.
  EXPECT_NEAR(from_zero / total, 0.5, 0.02);
  // Machine 3 wrote nothing: no portion from it.
  for (const auto& portion : portions) {
    EXPECT_NE(portion.src_machine, 3);
  }
}

TEST(TaskPoolTest, RoundRobinsAcrossStages) {
  DfsSim dfs(2, 1, 1, 3);
  monoutil::Rng rng(7);
  JobSpec job_a;
  job_a.name = "a";
  StageSpec spec;
  spec.name = "scan";
  spec.num_tasks = 4;
  spec.input = InputSource::kNone;
  spec.input_bytes = MiB(8);
  spec.cpu_seconds_per_task = 1.0;
  job_a.stages = {spec};
  JobSpec job_b = job_a;
  job_b.name = "b";

  StageExecution stage_a(job_a, 0, 2, &dfs, nullptr, &rng);
  StageExecution stage_b(job_b, 0, 2, &dfs, nullptr, &rng);
  TaskPool pool;
  pool.AddStage(&stage_a);
  pool.AddStage(&stage_b);
  EXPECT_TRUE(pool.HasWork());

  // Tasks alternate between the two stages.
  auto t1 = pool.TakeTask(0);
  auto t2 = pool.TakeTask(0);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_NE(t1->stage, t2->stage);

  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(pool.TakeTask(1).has_value());
  }
  EXPECT_FALSE(pool.TakeTask(0).has_value());
  EXPECT_FALSE(pool.HasWork());
  pool.RemoveStage(&stage_a);
  pool.RemoveStage(&stage_b);
}

TEST(TaskPoolTest, RemoveStageStopsHandingItsTasks) {
  DfsSim dfs(2, 1, 1, 3);
  monoutil::Rng rng(7);
  JobSpec job;
  job.name = "a";
  StageSpec spec;
  spec.name = "scan";
  spec.num_tasks = 4;
  spec.input = InputSource::kNone;
  spec.input_bytes = MiB(8);
  spec.cpu_seconds_per_task = 1.0;
  job.stages = {spec};
  StageExecution stage(job, 0, 2, &dfs, nullptr, &rng);
  TaskPool pool;
  pool.AddStage(&stage);
  pool.RemoveStage(&stage);
  EXPECT_FALSE(pool.TakeTask(0).has_value());
}

}  // namespace
}  // namespace monosim
