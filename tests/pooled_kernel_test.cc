// Regression tests for the pooled event kernel (slab-allocated records,
// inline callbacks, generation-checked handles, two-level queue).
//
// Three layers of coverage:
//
//  * Digest oracles. The kernel rewrite must not change any schedule: these
//    scenarios were run against the pre-change kernel (std::function events,
//    shared_ptr handles, single binary heap) and their digests hardcoded.
//    Sort order, tombstone handling, epoch batching and fabric churn all feed
//    the digest, so a drifted constant means the rewrite changed observable
//    behaviour, not just its internals.
//
//  * Steady-state allocation. The whole point of the pooled layout: once the
//    pools and queue vectors reach their high-water mark, schedule/fire/cancel
//    churn performs zero heap allocations. Checked with a global operator new
//    hook that counts only inside the measurement window.
//
//  * Handle generation safety. Handles hold (record, generation) into a
//    recycled pool: stale handles — after the event fired, after compaction
//    freed a tombstone, after the record was reused, and even after the whole
//    Simulation died — must degrade to inert, never touch another event.
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/simcore/fluid_server.h"
#include "src/simcore/simulation.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"
#include "tests/alloc_hooks.h"

namespace monosim {
namespace {

using monoutil::MiB;

// ---------------------------------------------------------------------------
// Digest oracles (harvested from the pre-change kernel; see file comment).

TEST(PooledKernelDigest, ScheduleFireSweepMatchesPreChangeKernel) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 50000; ++i) {
    sim.ScheduleAt(monoutil::Seconds(static_cast<double>(i % 997)), [&fired] { ++fired; }, "sweep");
  }
  sim.Run();
  EXPECT_EQ(50000, fired);
  EXPECT_EQ(50000u, sim.fired_events());
  EXPECT_EQ(0x3937eade032d5542ull, sim.digest());
}

TEST(PooledKernelDigest, CancelChurnMatchesPreChangeKernel) {
  Simulation sim;
  EventHandle pending;
  int fired = 0;
  for (int i = 0; i < 20000; ++i) {
    pending.Cancel();
    pending = sim.ScheduleAt(monoutil::Seconds(1e6 + i), [] {}, "doomed");
    if (i % 3 == 0) {
      sim.ScheduleAt(monoutil::Seconds(static_cast<double>(i)), [&fired] { ++fired; }, "live");
    }
  }
  pending.Cancel();
  sim.Run();
  EXPECT_EQ(6667, fired);
  EXPECT_EQ(6667u, sim.fired_events());
  EXPECT_EQ(0x597d7f3fb11f0c88ull, sim.digest());
}

TEST(PooledKernelDigest, FabricBurstChurnMatchesPreChangeKernel) {
  Simulation sim;
  NetworkFabricSim fabric(&sim, 8, monoutil::BytesPerSecond(1e8));
  monoutil::Rng rng(21);
  int completed = 0;
  std::function<void(int)> relaunch = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    const int src = static_cast<int>(rng.NextBelow(8));
    int dst = static_cast<int>(rng.NextBelow(7));
    if (dst >= src) {
      ++dst;
    }
    const auto bytes = monoutil::Bytes(static_cast<int64_t>(1 + rng.NextBelow(1 << 16)));
    fabric.StartFlow(src, dst, bytes, [&, remaining] {
      ++completed;
      relaunch(remaining - 1);
    });
  };
  for (int burst = 0; burst < 6; ++burst) {
    sim.ScheduleAt(monoutil::Seconds(0.01 * burst), [&relaunch] {
      for (int i = 0; i < 8; ++i) {
        relaunch(4);
      }
    });
  }
  sim.Run();
  EXPECT_EQ(192, completed);
  EXPECT_EQ(198u, sim.fired_events());
  EXPECT_EQ(0x91de4ae888161222ull, sim.digest());
}

TEST(PooledKernelDigest, SortJobMatchesPreChangeKernel) {
  SimEnvironment env(monoload::SmallHddClusterConfig());
  monoload::SortParams params;
  params.total_bytes = MiB(256);
  params.values_per_key = 10;
  params.num_map_tasks = 8;
  params.num_reduce_tasks = 8;
  params.seed = 7;
  JobSpec job = monoload::MakeSortJob(&env.dfs(), params);
  MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  env.driver().RunJob(std::move(job));
  EXPECT_EQ(181u, env.sim().fired_events());
  EXPECT_EQ(0x9c0fc9e976a310a5ull, env.sim().digest());
}

// ---------------------------------------------------------------------------
// Steady-state allocation.

// A self-rescheduling event chain; [this] captures stay inline.
struct Chain {
  Simulation* sim;
  double period;
  int remaining;
  int* fired;

  void Arm() {
    if (remaining-- <= 0) {
      return;
    }
    sim->ScheduleAfter(monoutil::Seconds(period), [this] {
      ++*fired;
      Arm();
    }, "chain");
  }
};

// The fabric pattern: every tick cancels a far-future event and schedules a
// replacement, leaving a tombstone behind (exercising compaction), plus an
// oversize callback that cycles a CallbackArena block every tick.
struct Churner {
  Simulation* sim;
  EventHandle doomed;
  int remaining;
  int* fired;

  void Arm() {
    if (remaining-- <= 0) {
      return;
    }
    doomed.Cancel();
    doomed = sim->ScheduleAt(monoutil::Seconds(1e9 + remaining), [] {}, "doomed");
    char pad[64] = {1};  // Forces the outline (arena) callback path.
    sim->ScheduleAfter(monoutil::Seconds(0.25), [this, pad] {
      ++*fired;
      (void)pad;
      sim->AtEpochEnd([this] { ++*fired; });
      Arm();
    }, "churn");
  }
};

#if MONO_TEST_ALLOC_HOOKS
TEST(PooledKernelAlloc, SteadyStateScheduleFireCancelIsHeapFree) {
  Simulation sim;
  int fired = 0;
  std::vector<Chain> chains(8);
  for (size_t i = 0; i < chains.size(); ++i) {
    chains[i] = Chain{&sim, 0.1 + 0.01 * static_cast<double>(i), 1 << 20, &fired};
    chains[i].Arm();
  }
  Churner churner{&sim, {}, 1 << 20, &fired};
  churner.Arm();

  // Warmup: drive every pool, arena class and queue vector past the high-water
  // mark this workload will ever need. More warmup steps than measured steps,
  // so the measured window sees only recycled capacity.
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(sim.Step());
  }

  const long before = monotest::AllocationCount().load();
  bool stepped = true;
  for (int i = 0; i < 4000 && stepped; ++i) {
    stepped = sim.Step();  // No EXPECT inside the window: count only the kernel.
  }
  const long during = monotest::AllocationCount().load() - before;

  EXPECT_TRUE(stepped);
  EXPECT_EQ(0, during)
      << "the steady-state schedule/fire/cancel path touched the heap";
  EXPECT_GT(fired, 0);
  EXPECT_GT(sim.event_pool_capacity(), 0u);
}

TEST(PooledKernelAlloc, FluidServerSubmitCompleteChurnIsHeapFree) {
  Simulation sim;
  FluidServer server(&sim, "dev", ConstantCapacity(1e6));
  int completions = 0;
  struct Pump {
    Simulation* sim;
    FluidServer* server;
    int remaining;
    int* completions;

    void Arm() {
      if (remaining-- <= 0) {
        return;
      }
      server->Submit(1000.0, [this] {
        ++*completions;
        Arm();
      });
    }
  };
  std::vector<Pump> pumps(4);
  for (auto& pump : pumps) {
    pump = Pump{&sim, &server, 1 << 20, &completions};
    pump.Arm();
  }

  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(sim.Step());
  }

  const long before = monotest::AllocationCount().load();
  bool stepped = true;
  for (int i = 0; i < 3000 && stepped; ++i) {
    stepped = sim.Step();
  }
  const long during = monotest::AllocationCount().load() - before;

  EXPECT_TRUE(stepped);
  EXPECT_EQ(0, during)
      << "the steady-state submit/complete path touched the heap";
  EXPECT_GT(completions, 0);
}
#endif  // MONO_TEST_ALLOC_HOOKS

// ---------------------------------------------------------------------------
// Handle generation safety.

TEST(PooledKernelHandles, HandleOutlivesSimulation) {
  EventHandle handle;
  {
    Simulation sim;
    handle = sim.ScheduleAt(monoutil::Seconds(5.0), [] {}, "orphan");
    EXPECT_TRUE(handle.pending());
  }
  // The records (and their slabs) are gone; the handle must be inert, not a
  // dangling pointer into freed pool memory.
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // Must be a no-op.
  EXPECT_FALSE(handle.pending());
}

TEST(PooledKernelHandles, CancelAfterCompactionRecycledTheRecord) {
  Simulation sim;
  // Enough tombstones to trip compaction (tombstones outnumber live entries
  // and the queue exceeds the compaction floor).
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 200; ++i) {
    doomed.push_back(sim.ScheduleAt(monoutil::Seconds(1000.0 + i), [] {}, "doomed"));
  }
  for (EventHandle& handle : doomed) {
    handle.Cancel();
  }
  // This schedule triggers compaction, freeing every cancelled record back to
  // the pool; the next schedules below reuse exactly those records.
  int fired = 0;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&fired] { ++fired; }, "live");
  ASSERT_EQ(0u, sim.queued_tombstones());
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 200; ++i) {
    fresh.push_back(sim.ScheduleAt(monoutil::Seconds(2000.0 + i), [&fired] { ++fired; }, "fresh"));
  }
  // Stale handles point at recycled records now hosting fresh events: their
  // generation no longer matches, so cancelling must not kill the new
  // occupants.
  for (EventHandle& handle : doomed) {
    EXPECT_FALSE(handle.pending());
    handle.Cancel();
  }
  for (EventHandle& handle : fresh) {
    EXPECT_TRUE(handle.pending());
  }
  sim.Run();
  EXPECT_EQ(201, fired);
}

TEST(PooledKernelHandles, CancelAfterFireIsInert) {
  Simulation sim;
  int fired = 0;
  EventHandle first = sim.ScheduleAt(monoutil::Seconds(1.0), [&fired] { ++fired; }, "first");
  ASSERT_TRUE(sim.Step());
  EXPECT_FALSE(first.pending());
  // The fired record is the pool's next free record; this schedule reuses it.
  EventHandle second = sim.ScheduleAt(monoutil::Seconds(2.0), [&fired] { ++fired; }, "second");
  first.Cancel();  // Stale generation: must not cancel `second`.
  EXPECT_TRUE(second.pending());
  sim.Run();
  EXPECT_EQ(2, fired);
}

TEST(PooledKernelHandles, CopiedHandlesShareCancellation) {
  Simulation sim;
  int fired = 0;
  EventHandle a = sim.ScheduleAt(monoutil::Seconds(1.0), [&fired] { ++fired; }, "shared");
  EventHandle b = a;
  b.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  sim.Run();
  EXPECT_EQ(0, fired);
}

}  // namespace
}  // namespace monosim
