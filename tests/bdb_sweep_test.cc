// Parameterized consistency sweep over every Big Data Benchmark query: properties
// that must hold regardless of which query runs.
#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/bdb.h"

namespace monoload {
namespace {

// A scaled-down BDB cluster so the full 10-query sweep stays fast.
monosim::ClusterConfig SmallBdbCluster() {
  return monosim::ClusterConfig::Of(3, monosim::MachineConfig::HddWorker(2));
}

class BdbQuerySweepTest : public ::testing::TestWithParam<BdbQuery> {
 protected:
  monosim::JobResult Run(bool monotasks) const {
    monosim::SimEnvironment env(SmallBdbCluster());
    monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
    monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(monotasks ? static_cast<monosim::ExecutorSim*>(&mono)
                                 : static_cast<monosim::ExecutorSim*>(&spark));
    return env.driver().RunJob(MakeBdbQueryJob(&env.dfs(), GetParam()));
  }
};

TEST_P(BdbQuerySweepTest, StagesRunInOrderWithBarriers) {
  const monosim::JobResult result = Run(true);
  for (size_t s = 1; s < result.stages.size(); ++s) {
    EXPECT_GE(result.stages[s].start, result.stages[s - 1].end);
  }
  EXPECT_GE(result.end, result.stages.back().end);
}

TEST_P(BdbQuerySweepTest, MonotaskDiskSecondsConsistentWithBytes) {
  const monosim::JobResult result = Run(true);
  for (const auto& stage : result.stages) {
    const auto& times = stage.monotask_times;
    const monoutil::Bytes moved =
        stage.usage.disk_read_bytes + stage.usage.disk_write_bytes;
    if (moved == monoutil::Bytes(0)) {
      continue;
    }
    // One monotask per disk at a time: bytes / service time equals device bandwidth.
    const double rate =
        static_cast<double>(moved.count()) /
        (times.disk_read_seconds + times.disk_write_seconds);
    EXPECT_NEAR(rate, monoutil::MiBps(90).bps(), monoutil::MiBps(90).bps() * 0.02)
        << stage.name;
  }
}

TEST_P(BdbQuerySweepTest, ModelIdentityPredictionMatchesObserved) {
  const monosim::JobResult result = Run(true);
  const monomodel::MonotasksModel model(
      result, monomodel::HardwareProfile::FromCluster(SmallBdbCluster()));
  // Predicting for the hardware the job already ran on must return the observed
  // runtime exactly (the §6.2 scaling anchor).
  EXPECT_NEAR(model.PredictJobSeconds(model.baseline()), result.duration().seconds(),
              result.duration().seconds() * 1e-9);
}

TEST_P(BdbQuerySweepTest, ExecutorsAgreeOnStageStructure) {
  const monosim::JobResult spark = Run(false);
  const monosim::JobResult mono = Run(true);
  ASSERT_EQ(spark.stages.size(), mono.stages.size());
  for (size_t s = 0; s < spark.stages.size(); ++s) {
    EXPECT_EQ(spark.stages[s].name, mono.stages[s].name);
    EXPECT_EQ(spark.stages[s].num_tasks, mono.stages[s].num_tasks);
    EXPECT_EQ(spark.stages[s].usage.disk_write_bytes, mono.stages[s].usage.disk_write_bytes);
  }
}

std::string QueryName(const ::testing::TestParamInfo<BdbQuery>& info) {
  return "q" + BdbQueryName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, BdbQuerySweepTest,
                         ::testing::ValuesIn(AllBdbQueries()), QueryName);

}  // namespace
}  // namespace monoload
