#include "src/simcore/fluid_server.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/simcore/simulation.h"

namespace monosim {
namespace {

TEST(FluidServerTest, SingleRequestTakesAmountOverCapacity) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double done_at = -1.0;
  server.Submit(250.0, [&] { done_at = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(done_at, 2.5, 1e-9);
}

TEST(FluidServerTest, ZeroAmountCompletesImmediately) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double done_at = -1.0;
  server.Submit(0.0, [&] { done_at = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(done_at, 0.0, 1e-12);
}

TEST(FluidServerTest, TwoEqualRequestsShareCapacity) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double first = -1.0;
  double second = -1.0;
  server.Submit(100.0, [&] { first = sim.now().seconds(); });
  server.Submit(100.0, [&] { second = sim.now().seconds(); });
  sim.Run();
  // Each gets 50 units/s; both finish at t=2.
  EXPECT_NEAR(first, 2.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(FluidServerTest, LateArrivalSlowsExistingRequest) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double first = -1.0;
  double second = -1.0;
  server.Submit(100.0, [&] { first = sim.now().seconds(); });
  sim.ScheduleAt(monoutil::Seconds(0.5), [&] { server.Submit(100.0, [&] { second = sim.now().seconds(); }); });
  sim.Run();
  // First does 50 units alone in 0.5s, then shares: 50 more at 50/s -> finishes at 1.5.
  EXPECT_NEAR(first, 1.5, 1e-9);
  // Second: 50 of its 100 by t=1.5, then full rate -> 0.5s more.
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(FluidServerTest, PerRequestCapLimitsLoneRequest) {
  Simulation sim;
  // A 4-core CPU pool: a single-threaded task cannot exceed 1 core.
  FluidServer server(&sim, "cpu", ConstantCapacity(4.0), /*per_request_cap=*/1.0);
  double done_at = -1.0;
  server.Submit(2.0, [&] { done_at = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(FluidServerTest, CpuPoolRunsUpToCoresAtFullSpeed) {
  Simulation sim;
  FluidServer server(&sim, "cpu", ConstantCapacity(4.0), /*per_request_cap=*/1.0);
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    server.Submit(1.0, [&] { ++finished; });
  }
  sim.Run();
  EXPECT_EQ(finished, 4);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-9);
}

TEST(FluidServerTest, CpuPoolOversubscriptionSharesCores) {
  Simulation sim;
  FluidServer server(&sim, "cpu", ConstantCapacity(4.0), /*per_request_cap=*/1.0);
  int finished = 0;
  for (int i = 0; i < 8; ++i) {
    server.Submit(1.0, [&] { ++finished; });
  }
  sim.Run();
  // 8 single-core requests on 4 cores: each runs at 0.5 cores.
  EXPECT_EQ(finished, 8);
  EXPECT_NEAR(sim.now().seconds(), 2.0, 1e-9);
}

TEST(FluidServerTest, WeightedRequestsShareInProportion) {
  // Weights {1, 3} on a 100-unit/s server: rates must split 25/75. Amounts sized
  // to the shares make both requests finish at exactly t=1 — only a true 1:3 rate
  // split produces the simultaneous finish (the historical equal split served 50
  // each, finishing the small request at t=0.5).
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double light = -1.0;
  double heavy = -1.0;
  server.Submit(25.0, [&] { light = sim.now().seconds(); }, /*weight=*/1.0);
  server.Submit(75.0, [&] { heavy = sim.now().seconds(); }, /*weight=*/3.0);
  sim.Run();
  EXPECT_NEAR(light, 1.0, 1e-9);
  EXPECT_NEAR(heavy, 1.0, 1e-9);
}

TEST(FluidServerTest, HeavierWeightFinishesEqualWorkFirst) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double light = -1.0;
  double heavy = -1.0;
  server.Submit(100.0, [&] { light = sim.now().seconds(); }, /*weight=*/1.0);
  server.Submit(100.0, [&] { heavy = sim.now().seconds(); }, /*weight=*/3.0);
  sim.Run();
  // Heavy runs at 75 and finishes at 4/3; light then takes the whole server:
  // 100 - 25 * 4/3 = 200/3 units left at 100/s -> finishes at 2.
  EXPECT_NEAR(heavy, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(light, 2.0, 1e-9);
}

TEST(FluidServerTest, WeightedShareRedistributesCappedSurplus) {
  // Capacity 1.5, per-request cap 1, weights {3, 1}: the heavy request's
  // proportional share (1.125) hits the cap, and the surplus goes to the light
  // one (0.5) instead of being wasted.
  Simulation sim;
  FluidServer server(&sim, "cpu", ConstantCapacity(1.5), /*per_request_cap=*/1.0);
  double light = -1.0;
  double heavy = -1.0;
  server.Submit(1.0, [&] { heavy = sim.now().seconds(); }, /*weight=*/3.0);
  server.Submit(1.0, [&] { light = sim.now().seconds(); }, /*weight=*/1.0);
  sim.Run();
  EXPECT_NEAR(heavy, 1.0, 1e-9);
  // Light: 0.5 units by t=1, then alone at the cap -> 0.5 s more.
  EXPECT_NEAR(light, 1.5, 1e-9);
}

TEST(FluidServerTest, ShareWeightOverridesContentionWeight) {
  // An HDD-style capacity function sees the contention weights (1 + 3 = 4 ->
  // capacity 25), but the explicit share weights split that capacity equally.
  Simulation sim;
  FluidServer server(&sim, "hdd", HddCapacity(100.0, 1.0));
  double first = -1.0;
  double second = -1.0;
  server.Submit(25.0, [&] { first = sim.now().seconds(); }, /*weight=*/1.0, /*share_weight=*/1.0);
  server.Submit(25.0, [&] { second = sim.now().seconds(); }, /*weight=*/3.0, /*share_weight=*/1.0);
  sim.Run();
  // capacity(4) = 25, split 12.5/12.5: both finish at t=2. With share weights
  // following the contention weights the second would finish at 25/18.75 ≈ 1.33.
  EXPECT_NEAR(first, 2.0, 1e-9);
  EXPECT_NEAR(second, 2.0, 1e-9);
}

TEST(FluidServerTest, CancelRecordsTracePointEvenWhenRateUnchanged) {
  // Four single-core requests on a 2-core pool: total rate is 2 before and after
  // one of them is cancelled, so the old equal-rate dedup would silently drop the
  // cancel from the trace. The active-set change must stay observable.
  Simulation sim;
  FluidServer server(&sim, "cpu", ConstantCapacity(2.0), /*per_request_cap=*/1.0);
  server.EnableTrace();
  std::vector<FluidServer::RequestId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(server.Submit(10.0, [] {}));
  }
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { server.CancelRequest(ids[0]); });
  sim.Run();
  bool cancel_point_recorded = false;
  for (const auto& point : server.rate_trace().points()) {
    if (point.time == monoutil::Seconds(1.0)) {
      cancel_point_recorded = true;
      EXPECT_NEAR(point.rate, 2.0, 1e-9);  // Unchanged total — the dedup trap.
    }
  }
  EXPECT_TRUE(cancel_point_recorded);
}

TEST(FluidServerTest, HddCapacityDegradesWithConcurrency) {
  CapacityFn capacity = HddCapacity(100.0, 1.0);
  EXPECT_DOUBLE_EQ(capacity(1), 100.0);
  EXPECT_DOUBLE_EQ(capacity(2), 50.0);
  EXPECT_DOUBLE_EQ(capacity(5), 20.0);
}

TEST(FluidServerTest, HddConcurrentRequestsSlowerThanSequential) {
  // Two 100-unit requests on an HDD with alpha=1: concurrent total capacity is 50,
  // so both finish at t=4; run back-to-back they would finish at t=2.
  Simulation sim;
  FluidServer server(&sim, "hdd", HddCapacity(100.0, 1.0));
  double last = -1.0;
  server.Submit(100.0, [&] { last = sim.now().seconds(); });
  server.Submit(100.0, [&] { last = sim.now().seconds(); });
  sim.Run();
  EXPECT_NEAR(last, 4.0, 1e-9);
}

TEST(FluidServerTest, SsdRampReachesPeakAtChannels) {
  CapacityFn capacity = SsdCapacity(400.0, 4, 0.55);
  EXPECT_NEAR(capacity(1), 400.0 * 0.55, 1e-9);
  EXPECT_NEAR(capacity(4), 400.0, 1e-9);
  EXPECT_NEAR(capacity(8), 400.0, 1e-9);  // No benefit beyond the channel count.
  EXPECT_GT(capacity(2), capacity(1));
  EXPECT_GT(capacity(3), capacity(2));
}

TEST(FluidServerTest, SsdSingleChannelIsConstant) {
  CapacityFn capacity = SsdCapacity(400.0, 1, 0.55);
  EXPECT_NEAR(capacity(1), 400.0, 1e-9);
  EXPECT_NEAR(capacity(3), 400.0, 1e-9);
}

TEST(FluidServerTest, CancelReturnsRemainingWork) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  bool done = false;
  auto id = server.Submit(100.0, [&] { done = true; });
  sim.ScheduleAt(monoutil::Seconds(0.25), [&] {
    const double remaining = server.CancelRequest(id);
    EXPECT_NEAR(remaining, 75.0, 1e-9);
  });
  sim.Run();
  EXPECT_FALSE(done);
  EXPECT_EQ(server.active(), 0);
}

TEST(FluidServerTest, TotalServedIntegratesWork) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  server.Submit(100.0, [] {});
  server.Submit(50.0, [] {});
  sim.Run();
  EXPECT_NEAR(server.total_served(), 150.0, 1e-6);
}

TEST(FluidServerTest, ServedWorkConservesSubmittedWorkUnderChurn) {
  // Regression for the served_ accounting drift: AdvanceProgress used to credit
  // rate*dt unclamped while total_served() clamped with min(remaining, rate*dt),
  // so a completion event firing a rounding error past a request's finish time
  // overcounted. Drive many irregular amounts through an HDD-style (nonlinear)
  // capacity with staggered arrivals and cancels, then check served work equals
  // submitted work minus work returned by cancels — and never exceeds it.
  Simulation sim;
  FluidServer server(&sim, "disk", HddCapacity(97.0, 0.35));
  double submitted = 0.0;
  double returned = 0.0;
  std::map<int, FluidServer::RequestId> live_cancellable;  // keyed by arrival index
  for (int i = 0; i < 200; ++i) {
    const double amount = 1.0 + 0.37 * i + (i % 7) * 0.013;
    submitted += amount;
    const double at = 0.05 * i;
    sim.ScheduleAt(monoutil::Seconds(at), [&server, &live_cancellable, amount, i] {
      if (i % 9 != 0) {
        server.Submit(amount, [] {});
        return;
      }
      // Done callbacks only fire from later events, so the map insert below
      // always happens before a completion can erase it.
      const auto id =
          server.Submit(amount, [&live_cancellable, i] { live_cancellable.erase(i); });
      live_cancellable[i] = id;
    });
  }
  sim.ScheduleAt(monoutil::Seconds(3.3), [&] {
    const std::map<int, FluidServer::RequestId> to_cancel = live_cancellable;
    for (const auto& [i, id] : to_cancel) {
      returned += server.CancelRequest(id);
      live_cancellable.erase(i);
    }
  });
  sim.Run();
  EXPECT_EQ(server.active(), 0);
  const double expected = submitted - returned;
  EXPECT_NEAR(server.total_served(), expected, 1e-6 * expected);
  EXPECT_LE(server.total_served(), expected * (1.0 + 1e-9));
}

TEST(FluidServerTest, UtilizationTraceMeasuresBusyFraction) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  server.EnableTrace();
  server.Submit(100.0, [] {});  // Busy during [0, 1].
  sim.Run();
  sim.ScheduleAt(monoutil::Seconds(2.0), [] {});  // Idle during [1, 2].
  sim.Run();
  EXPECT_NEAR(server.MeanUtilization(monoutil::Seconds(0.0), monoutil::Seconds(1.0)), 1.0, 1e-9);
  EXPECT_NEAR(server.MeanUtilization(monoutil::Seconds(0.0), monoutil::Seconds(2.0)), 0.5, 1e-9);
}

TEST(FluidServerTest, DoneCallbackCanResubmit) {
  Simulation sim;
  FluidServer server(&sim, "disk", ConstantCapacity(100.0));
  double second_done = -1.0;
  server.Submit(100.0, [&] {
    server.Submit(100.0, [&] { second_done = sim.now().seconds(); });
  });
  sim.Run();
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(FluidServerTest, ManyRequestsAllComplete) {
  Simulation sim;
  FluidServer server(&sim, "disk", HddCapacity(100.0, 0.15));
  int finished = 0;
  for (int i = 0; i < 64; ++i) {
    server.Submit(10.0 + i, [&] { ++finished; });
  }
  sim.Run();
  EXPECT_EQ(finished, 64);
  EXPECT_EQ(server.active(), 0);
}

}  // namespace
}  // namespace monosim
