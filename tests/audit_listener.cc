// Installs a report-mode SimAudit (audit.h) around every test in the suite, so
// each simulation any test runs is continuously checked against the component
// invariants and the test fails if any are violated. Tests that deliberately
// provoke violations install their own nested ScopedAudit and inspect it; the
// nested audit absorbs the checks, so this listener still sees a clean run.
//
// Registered from a static initializer (the googletest sample10 LeakChecker
// pattern) because the suite links GTest::gtest_main and has no main() to edit.
#include <optional>

#include <gtest/gtest.h>

#include "src/simcore/audit.h"

namespace monosim {
namespace {

class SimAuditListener : public ::testing::EmptyTestEventListener {
 private:
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    audit_.emplace(ScopedAudit::kReport);
  }

  void OnTestEnd(const ::testing::TestInfo& /*info*/) override {
    if (!audit_.has_value()) {
      return;
    }
    EXPECT_TRUE(audit_->audit().ok())
        << "simulation invariant audit: " << audit_->audit().Summary();
    audit_.reset();
  }

  std::optional<ScopedAudit> audit_;
};

[[maybe_unused]] const bool kListenerInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SimAuditListener);
  return true;
}();

}  // namespace
}  // namespace monosim
