// Tests for the threaded execution engine: devices, schedulers, DAG scheduler.
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/engine/block_device.h"
#include "src/engine/dag_scheduler.h"
#include "src/engine/fabric.h"
#include "src/engine/resource_schedulers.h"
#include "src/engine/worker.h"

namespace monotasks {
namespace {

using namespace std::chrono_literals;

Buffer MakeBuffer(size_t size, uint8_t fill = 7) { return Buffer(size, fill); }

TEST(BlockDeviceTest, WriteThenReadRoundTrips) {
  SimulatedBlockDevice device("d0", monoutil::MiBps(1000), /*time_scale=*/1000.0);
  Buffer data = MakeBuffer(4096, 42);
  device.Write("block", data);
  EXPECT_TRUE(device.HasBlock("block"));
  EXPECT_EQ(device.BlockSize("block"), 4096u);
  EXPECT_EQ(device.Read("block"), data);
  EXPECT_EQ(device.bytes_written(), monoutil::Bytes(4096));
  EXPECT_EQ(device.bytes_read(), monoutil::Bytes(4096));
}

TEST(BlockDeviceTest, ReadRangeReturnsSlice) {
  SimulatedBlockDevice device("d0", monoutil::MiBps(1000), 1000.0);
  Buffer data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(static_cast<uint8_t>(i));
  }
  device.Write("block", data);
  const Buffer slice = device.ReadRange("block", 10, 5);
  ASSERT_EQ(slice.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(slice[static_cast<size_t>(i)], 10 + i);
  }
}

TEST(BlockDeviceTest, DeleteRemovesBlock) {
  SimulatedBlockDevice device("d0", monoutil::MiBps(1000), 1000.0);
  device.Write("block", MakeBuffer(16));
  device.DeleteBlock("block");
  EXPECT_FALSE(device.HasBlock("block"));
}

TEST(BlockDeviceTest, TransfersTakeTimeAtConfiguredRate) {
  // 1 MiB at 10 MiB/s with 10x time scale -> ~10 ms of wall time.
  SimulatedBlockDevice device("d0", monoutil::MiBps(10), /*time_scale=*/10.0);
  const auto start = std::chrono::steady_clock::now();
  device.Write("block", MakeBuffer(1 << 20));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.005);
  EXPECT_LT(elapsed, 0.2);
}

TEST(BlockDeviceTest, AccountingIsTimeScaleInvariant) {
  // Regression for the time-scale unit mix-up: EngineConfig defaults to
  // time_scale 50 while the components once defaulted to a silent 1.0, so a
  // device built without forwarding the config's scale ran 50x slower than its
  // siblings. The constructors now require the scale; this pins the other half
  // of the contract — byte accounting (the model bridge's input) never depends
  // on it, so a scale mismatch can only ever distort timing, not totals.
  SimulatedBlockDevice fast("fast", monoutil::MiBps(100), /*time_scale=*/4000.0);
  SimulatedBlockDevice slow("slow", monoutil::MiBps(100), /*time_scale=*/1000.0);
  const Buffer data = MakeBuffer(1 << 16);
  fast.Write("b", data);
  slow.Write("b", data);
  fast.Read("b");
  slow.Read("b");
  EXPECT_EQ(fast.bytes_written(), slow.bytes_written());
  EXPECT_EQ(fast.bytes_read(), slow.bytes_read());
  EXPECT_EQ(fast.charged_bytes(), slow.charged_bytes());
}

TEST(FabricTest, AccountingIsTimeScaleInvariant) {
  InProcessFabric fast(2, monoutil::MiBps(100), /*time_scale=*/4000.0);
  InProcessFabric slow(2, monoutil::MiBps(100), /*time_scale=*/1000.0);
  fast.Transfer(0, 1, monoutil::MiB(1));
  slow.Transfer(0, 1, monoutil::MiB(1));
  EXPECT_EQ(fast.total_bytes(), slow.total_bytes());
  EXPECT_EQ(fast.total_bytes(), monoutil::MiB(1));
}

TEST(FabricTest, LocalTransfersAreFree) {
  InProcessFabric fabric(2, monoutil::MiBps(1), /*time_scale=*/1.0);
  const auto start = std::chrono::steady_clock::now();
  fabric.Transfer(0, 0, monoutil::Bytes(10 << 20));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 0.05);
  EXPECT_EQ(fabric.total_bytes(), monoutil::Bytes(0));
}

TEST(FabricTest, RemoteTransfersAreRateLimitedAndCounted) {
  InProcessFabric fabric(2, monoutil::MiBps(10), /*time_scale=*/10.0);
  const auto start = std::chrono::steady_clock::now();
  fabric.Transfer(0, 1, monoutil::Bytes(1 << 20));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.005);
  EXPECT_EQ(fabric.total_bytes(), monoutil::Bytes(1 << 20));
}

TEST(CpuSchedulerTest, RunsAllTasksAndReportsServiceTime) {
  std::atomic<int> completed{0};
  CpuScheduler scheduler(2, [&](Monotask*, double service) {
    EXPECT_GE(service, 0.0);
    ++completed;
  });
  std::vector<std::unique_ptr<Monotask>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(std::make_unique<FunctionMonotask>(ResourceType::kCpu, "t",
                                                       [&ran] { ++ran; }));
    scheduler.Submit(tasks.back().get());
  }
  while (completed.load() < 8) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(CpuSchedulerTest, ConcurrencyNeverExceedsThreadCount) {
  std::atomic<int> completed{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  CpuScheduler scheduler(3, [&](Monotask*, double) { ++completed; });
  std::vector<std::unique_ptr<Monotask>> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(std::make_unique<FunctionMonotask>(
        ResourceType::kCpu, "t", [&] {
          const int now = ++concurrent;
          int expected = max_concurrent.load();
          while (now > expected && !max_concurrent.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(2ms);
          --concurrent;
        }));
    scheduler.Submit(tasks.back().get());
  }
  while (completed.load() < 12) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_LE(max_concurrent.load(), 3);
  EXPECT_GE(max_concurrent.load(), 2);  // Parallelism actually happened.
}

TEST(DiskSchedulerTest, RoundRobinAlternatesPhases) {
  // One-at-a-time disk: queue 3 writes then 3 reads while the disk is busy; the
  // round-robin must interleave them rather than draining all writes first.
  std::vector<std::string> order;
  std::mutex order_mutex;
  std::atomic<int> completed{0};
  DiskScheduler scheduler(1, [&](Monotask*, double) { ++completed; });

  std::vector<std::unique_ptr<Monotask>> tasks;
  auto add = [&](DiskQueue queue, const std::string& label) {
    auto task = std::make_unique<FunctionMonotask>(
        ResourceType::kDisk, label, [&order, &order_mutex, label] {
          std::this_thread::sleep_for(2ms);
          const std::lock_guard<std::mutex> lock(order_mutex);
          order.push_back(label);
        });
    task->disk_queue = queue;
    tasks.push_back(std::move(task));
  };
  // A long first task holds the disk while the others queue up.
  add(DiskQueue::kWrite, "w0");
  add(DiskQueue::kWrite, "w1");
  add(DiskQueue::kWrite, "w2");
  add(DiskQueue::kRead, "r0");
  add(DiskQueue::kRead, "r1");
  scheduler.Submit(tasks[0].get());
  std::this_thread::sleep_for(1ms);  // Let w0 start.
  for (size_t i = 1; i < tasks.size(); ++i) {
    scheduler.Submit(tasks[i].get());
  }
  while (completed.load() < 5) {
    std::this_thread::sleep_for(1ms);
  }
  // After w0, the round-robin must not run w1 and w2 back-to-back before r0.
  const auto pos = [&](const std::string& label) {
    return std::find(order.begin(), order.end(), label) - order.begin();
  };
  EXPECT_LT(pos("r0"), pos("w2"));
}

TEST(NetworkSchedulerTest, AdmissionLimitHolds) {
  std::atomic<int> completed{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  NetworkScheduler scheduler(2, 4, [&](Monotask*, double) { ++completed; });
  std::vector<std::unique_ptr<Monotask>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(std::make_unique<FunctionMonotask>(
        ResourceType::kNetwork, "f", [&] {
          const int now = ++concurrent;
          int expected = max_concurrent.load();
          while (now > expected && !max_concurrent.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(2ms);
          --concurrent;
        }));
    scheduler.Submit(tasks.back().get());
  }
  while (completed.load() < 8) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_LE(max_concurrent.load(), 2);
}

TEST(DagSchedulerTest, RespectsDependencies) {
  std::vector<std::unique_ptr<Monotask>> owned;
  std::vector<Monotask*> submitted;
  std::mutex mutex;
  // A manual "scheduler": collect ready tasks, run them by hand.
  LocalDagScheduler dag([&](Monotask* task) {
    const std::lock_guard<std::mutex> lock(mutex);
    submitted.push_back(task);
  });

  std::vector<int> run_order;
  auto make = [&](int index) {
    owned.push_back(std::make_unique<FunctionMonotask>(
        ResourceType::kCpu, std::to_string(index),
        [&run_order, index] { run_order.push_back(index); }));
    return owned.back().get();
  };
  Monotask* a = make(0);
  Monotask* b = make(1);
  Monotask* c = make(2);

  bool all_done = false;
  std::vector<std::unique_ptr<Monotask>> tasks = std::move(owned);
  // a -> b, a -> c: only a is ready initially.
  dag.SubmitDag(std::move(tasks), {{a, b}, {a, c}}, [&] { all_done = true; });
  ASSERT_EQ(submitted.size(), 1u);
  EXPECT_EQ(submitted[0], a);

  submitted[0]->Run();
  dag.OnMonotaskComplete(a);
  ASSERT_EQ(submitted.size(), 3u);  // b and c became ready.
  submitted[1]->Run();
  dag.OnMonotaskComplete(submitted[1]);
  EXPECT_FALSE(all_done);
  submitted[2]->Run();
  dag.OnMonotaskComplete(submitted[2]);
  EXPECT_TRUE(all_done);
  EXPECT_EQ(dag.pending(), 0);
}

TEST(WorkerTest, MultitaskLimitFollowsFormula) {
  EngineConfig config;
  config.num_workers = 1;
  config.cores_per_worker = 4;
  config.disks_per_worker = 2;
  config.disk_outstanding = 1;
  config.network_multitask_limit = 4;
  InProcessFabric fabric(1, config.nic_bandwidth, config.time_scale);
  Worker worker(0, config, &fabric);
  // 4 cores + 2 disks + 4 network + 1 = 11.
  EXPECT_EQ(worker.MultitaskLimit(), 11);
}

TEST(WorkerTest, EndToEndDagRunsOnWorker) {
  EngineConfig config;
  config.num_workers = 1;
  config.cores_per_worker = 2;
  config.disks_per_worker = 1;
  config.time_scale = 1000.0;
  InProcessFabric fabric(1, config.nic_bandwidth, config.time_scale);
  Worker worker(0, config, &fabric);

  auto data = std::make_shared<Buffer>();
  std::vector<std::unique_ptr<Monotask>> tasks;
  auto write = std::make_unique<FunctionMonotask>(
      ResourceType::kDisk, "write",
      [&worker] { worker.disk(0).Write("x", Buffer(1024, 5)); });
  write->disk_queue = DiskQueue::kWrite;
  auto read = std::make_unique<FunctionMonotask>(
      ResourceType::kDisk, "read", [&worker, data] { *data = worker.disk(0).Read("x"); });
  read->disk_queue = DiskQueue::kRead;
  auto compute = std::make_unique<FunctionMonotask>(
      ResourceType::kCpu, "sum", [data] {
        long sum = 0;
        for (uint8_t byte : *data) {
          sum += byte;
        }
        MONO_CHECK(sum == 5 * 1024);
      });
  Monotask* write_ptr = write.get();
  Monotask* read_ptr = read.get();
  Monotask* compute_ptr = compute.get();
  tasks.push_back(std::move(write));
  tasks.push_back(std::move(read));
  tasks.push_back(std::move(compute));

  std::promise<void> done;
  worker.dag_scheduler().SubmitDag(std::move(tasks),
                                   {{write_ptr, read_ptr}, {read_ptr, compute_ptr}},
                                   [&done] { done.set_value(); });
  ASSERT_EQ(done.get_future().wait_for(5s), std::future_status::ready);
  EXPECT_EQ(worker.counters().cpu_count.load(), 1);
  EXPECT_EQ(worker.counters().disk_count.load(), 2);
  EXPECT_GT(worker.counters().disk_seconds.load(), 0.0);
}

}  // namespace
}  // namespace monotasks
