// Reference max-min fair solver for the network fabric property tests.
//
// A deliberately simple, global (non-incremental) progressive-filling
// implementation: raise every flow's rate in lockstep; whenever a NIC side
// (ingress or egress) saturates, freeze the flows crossing it; repeat until every
// flow is frozen. NetworkFabricSim computes the same allocation incrementally over
// affected components; the property tests check both agree on randomized flow
// sets, so a bug would have to appear identically in two independently-structured
// implementations to slip through.
#ifndef MONOTASKS_TESTS_MAXMIN_REFERENCE_H_
#define MONOTASKS_TESTS_MAXMIN_REFERENCE_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace monosim {
namespace testutil {

struct ReferenceFlow {
  uint64_t id;
  int src;
  int dst;
};

// Returns the max-min fair rate for every flow, keyed by flow id. `bandwidth` is
// the per-direction NIC bandwidth shared by all machines.
inline std::unordered_map<uint64_t, double> SolveMaxMinReference(
    const std::vector<ReferenceFlow>& flows, int num_machines, double bandwidth) {
  std::vector<double> egress_residual(static_cast<size_t>(num_machines), bandwidth);
  std::vector<double> ingress_residual(static_cast<size_t>(num_machines), bandwidth);
  std::vector<int> egress_unfrozen(static_cast<size_t>(num_machines), 0);
  std::vector<int> ingress_unfrozen(static_cast<size_t>(num_machines), 0);
  for (const ReferenceFlow& flow : flows) {
    ++egress_unfrozen[static_cast<size_t>(flow.src)];
    ++ingress_unfrozen[static_cast<size_t>(flow.dst)];
  }

  const double eps = 1e-12 * bandwidth;
  std::unordered_map<uint64_t, double> rates;
  std::vector<char> frozen(flows.size(), 0);
  size_t remaining = flows.size();
  double level = 0.0;
  while (remaining > 0) {
    double delta = std::numeric_limits<double>::infinity();
    for (int m = 0; m < num_machines; ++m) {
      if (egress_unfrozen[static_cast<size_t>(m)] > 0) {
        delta = std::min(delta, egress_residual[static_cast<size_t>(m)] /
                                    egress_unfrozen[static_cast<size_t>(m)]);
      }
      if (ingress_unfrozen[static_cast<size_t>(m)] > 0) {
        delta = std::min(delta, ingress_residual[static_cast<size_t>(m)] /
                                    ingress_unfrozen[static_cast<size_t>(m)]);
      }
    }
    level += delta;
    for (int m = 0; m < num_machines; ++m) {
      egress_residual[static_cast<size_t>(m)] -=
          delta * egress_unfrozen[static_cast<size_t>(m)];
      ingress_residual[static_cast<size_t>(m)] -=
          delta * ingress_unfrozen[static_cast<size_t>(m)];
    }
    for (size_t i = 0; i < flows.size(); ++i) {
      if (frozen[i]) {
        continue;
      }
      const auto src = static_cast<size_t>(flows[i].src);
      const auto dst = static_cast<size_t>(flows[i].dst);
      if (egress_residual[src] <= eps || ingress_residual[dst] <= eps) {
        frozen[i] = 1;
        rates[flows[i].id] = level;
        --egress_unfrozen[src];
        --ingress_unfrozen[dst];
        --remaining;
      }
    }
  }
  return rates;
}

}  // namespace testutil
}  // namespace monosim

#endif  // MONOTASKS_TESTS_MAXMIN_REFERENCE_H_
