// Regression tests for the ownership-domain runtime cross-check
// (src/common/domain.h): a mis-annotated component — one whose declared
// MONO_DOMAIN does not match how it is actually called — must abort under
// armed checks, while same-domain work, sanctioned channels, neutral
// dispatch, and disarmed runs stay quiet. This is the dynamic twin of
// mono_lint's domain-ownership rule: if an annotation rots, this suite (armed
// via ScopedDomainChecks, and in the wider suite via the audit listener's
// ScopedAudit) turns red instead of the linter silently lying.

#include "src/common/domain.h"

#include "gtest/gtest.h"
#include "src/simcore/audit.h"
#include "src/simcore/simulation.h"

namespace monosim {
namespace {

using monodomain::CurrentDomain;
using monodomain::DomainChecksEnabled;
using monodomain::ScopedDomainChecks;

// A machine-side component: mutations must come from machine-domain code, a
// sanctioned channel, or neutral context.
struct MachinePart {
  MONO_DOMAIN("machine");
  int value = 0;
  void Mutate() {
    MONO_DOMAIN_MUTATION();
    ++value;
  }
  void OnChannel() {
    MONO_DOMAIN_CHANNEL();
    ++value;
  }
};

// A driver-side component that calls MachinePart::Mutate synchronously: the
// mis-annotation (or mis-routing) the cross-check exists to catch.
struct MisbehavingDriver {
  MONO_DOMAIN("driver");
  MachinePart* machine = nullptr;
  void Tick() {
    MONO_DOMAIN_MUTATION();
    machine->Mutate();  // Cross-domain, no channel: aborts when armed.
  }
};

// MONO_DOMAIN declares a static member, so these helper drivers must live at
// namespace scope rather than inside the test bodies.

// machine -> machine: nesting inside one domain is the normal case.
struct SameDomainCaller {
  MONO_DOMAIN("machine");
  void Run(MachinePart* a, MachinePart* b) {
    MONO_DOMAIN_MUTATION();
    a->Mutate();
    b->Mutate();
  }
};

// driver -> machine via a sanctioned channel entry point.
struct ChannelDriver {
  MONO_DOMAIN("driver");
  MachinePart* machine = nullptr;
  void Kick() {
    MONO_DOMAIN_MUTATION();
    machine->OnChannel();  // Sanctioned entry: no caller check.
  }
};

// driver -> machine through an explicit neutral hand-off, as the kernel's
// event dispatch does around every fired callback.
struct NeutralDriver {
  MONO_DOMAIN("driver");
  MachinePart* machine = nullptr;
  void Dispatch() {
    MONO_DOMAIN_MUTATION();
    MONO_DOMAIN_NEUTRAL();
    machine->Mutate();
  }
};

// driver-domain code that routes machine work through the scheduler instead
// of touching the machine directly.
struct PostingDriver {
  MONO_DOMAIN("driver");
  void Post(Simulation* sim, MachinePart* m) {
    MONO_DOMAIN_MUTATION();
    sim->ScheduleAfter(monoutil::Seconds(1.0),
                       // mono_lint: allow(escaping-capture) -- sim.Run() below outlives the event.
                       [m] { m->Mutate(); });
  }
};

TEST(DomainCheckTest, MisannotatedCrossDomainMutationDies) {
  ScopedDomainChecks armed;
  MachinePart machine;
  MisbehavingDriver driver;
  driver.machine = &machine;
  EXPECT_DEATH(driver.Tick(), "cross-domain mutation");
}

TEST(DomainCheckTest, SameDomainNestingIsQuiet) {
  ScopedDomainChecks armed;
  MachinePart outer;
  MachinePart inner;
  SameDomainCaller caller;
  caller.Run(&outer, &inner);
  EXPECT_EQ(outer.value, 1);
  EXPECT_EQ(inner.value, 1);
}

TEST(DomainCheckTest, ChannelEntryDoesNotCheckTheCaller) {
  ScopedDomainChecks armed;
  MachinePart machine;
  ChannelDriver ok;
  ok.machine = &machine;
  ok.Kick();
  EXPECT_EQ(machine.value, 1);
}

TEST(DomainCheckTest, NeutralScopeHandsOffOwnership) {
  ScopedDomainChecks armed;
  MachinePart machine;
  NeutralDriver driver;
  driver.machine = &machine;
  driver.Dispatch();
  EXPECT_EQ(machine.value, 1);
}

TEST(DomainCheckTest, DisarmedChecksTrackNothing) {
  // The suite-wide audit listener arms the check for every test; drop its
  // (refcounted) arm for the scope of this test and restore it at the end.
  monodomain::DisableDomainChecks();
  ASSERT_FALSE(DomainChecksEnabled());
  MachinePart machine;
  MisbehavingDriver driver;
  driver.machine = &machine;
  driver.Tick();  // No abort, and no domain is recorded.
  EXPECT_EQ(machine.value, 1);
  EXPECT_EQ(CurrentDomain(), nullptr);
  monodomain::EnableDomainChecks();
}

TEST(DomainCheckTest, ScheduledEventsAreASanctionedChannel) {
  // The kernel wraps every fired event in a neutral scope, so scheduling is
  // how cross-domain work is legitimately routed: driver-domain code
  // schedules, the callback mutates machine state when it fires.
  ScopedDomainChecks armed;
  Simulation sim;
  MachinePart machine;
  PostingDriver driver;
  driver.Post(&sim, &machine);
  sim.Run();
  EXPECT_EQ(machine.value, 1);
}

TEST(DomainCheckTest, AuditInstallationArmsTheCheck) {
  // The suite-wide audit listener installs a ScopedAudit around every test,
  // so checks are already armed here: audit installation is the production
  // arming path, and the enable is refcounted across nested audits.
  EXPECT_TRUE(DomainChecksEnabled());
  {
    ScopedAudit nested(ScopedAudit::kReport);
    EXPECT_TRUE(DomainChecksEnabled());
  }
  EXPECT_TRUE(DomainChecksEnabled());
  // Dropping the last enabler disarms; restore it for the listener.
  monodomain::DisableDomainChecks();
  EXPECT_FALSE(DomainChecksEnabled());
  monodomain::EnableDomainChecks();
  EXPECT_TRUE(DomainChecksEnabled());
}

}  // namespace
}  // namespace monosim
