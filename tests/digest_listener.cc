// Installs a SimDigestTrail (simulation.h) around every test in the suite and
// compares the trail — the (fired_events, digest) pair of every Simulation the
// test destroyed — across --gtest_repeat iterations. Any test whose simulations
// fire a different event stream on a rerun inside the same process fails, which
// catches schedule nondeterminism (pointer-ordered containers, wall-clock or
// entropy leaks) wherever a test exercises it, without each test opting in.
// The `determinism_repeat` CTest entry runs the suite with --gtest_repeat=2 so
// this comparison fires in CI.
//
// Tests that deliberately run address-dependent schedules install their own
// nested SimDigestTrail; the nested trail absorbs those recordings, so this
// listener only sees the test's deterministic simulations (the same absorption
// pattern as the SimAudit listener in audit_listener.cc).
//
// Registered from a static initializer (the googletest sample10 LeakChecker
// pattern) because the suite links GTest::gtest_main and has no main() to edit.
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/simcore/simulation.h"

namespace monosim {
namespace {

class SimDigestListener : public ::testing::EmptyTestEventListener {
 private:
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    trail_.emplace();
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!trail_.has_value()) {
      return;
    }
    std::vector<SimDigestTrail::Entry> entries = trail_->entries();
    trail_.reset();
    const std::string key =
        std::string(info.test_suite_name()) + "." + info.name();
    const auto it = first_run_.find(key);
    if (it == first_run_.end()) {
      first_run_.emplace(key, std::move(entries));
      return;
    }
    if (entries.empty() || it->second.empty()) {
      // Tests that cache an expensive run in a function-local static (e.g. the
      // traced-sort fixture in tracing_test.cc) simulate only on the first
      // in-process run; an empty side has nothing to compare.
      return;
    }
    EXPECT_EQ(it->second.size(), entries.size())
        << key << ": rerun destroyed a different number of simulations";
    const size_t n = std::min(it->second.size(), entries.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(it->second[i].fired, entries[i].fired)
          << key << ": simulation #" << i << " fired a different event count "
          << "on rerun — the schedule is nondeterministic";
      EXPECT_EQ(it->second[i].digest, entries[i].digest)
          << key << ": simulation #" << i << " produced a different "
          << "event-stream digest on rerun — the schedule depends on heap "
          << "addresses, wall clock, or uncontrolled entropy";
    }
  }

  std::optional<SimDigestTrail> trail_;
  // Trail of each test's first in-process run, keyed by "<suite>.<test>".
  std::map<std::string, std::vector<SimDigestTrail::Entry>> first_run_;
};

[[maybe_unused]] const bool kListenerInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SimDigestListener);
  return true;
}();

}  // namespace
}  // namespace monosim
